#!/usr/bin/env bash
# Full verification gate: formatting, lints, release build, and tests.
# (`just` is not available in the build image, so this is a plain script.)
#
# Simulation-smoke knobs (forwarded to tests/simtest.rs):
#   SIMTEST_CASES=<n>  seeds to sweep in the simtest gate (default 25)
#   SIMTEST_SEED=<n>   replay exactly that seed instead of the sweep —
#                      this is the value a simtest failure report prints.
#
# Load-test knobs (forwarded to tests/loadtest.rs):
#   LOADTEST_SKIP=1     skip the load-harness soak smoke gate
#   LOADTEST_USERS=<n>  soak-test user population (smoke gate pins 2000)
#   LOADTEST_SEED=<n>   replay exactly that seed — the value a loadtest
#                       failure report prints as LOADTEST_SEED=<n>
#   LOADTEST_CASES=<n>  seeds swept per scenario shape (default 1)
#
# Perf-gate knobs (forwarded to the perf_gate, placement_throughput,
# and loadtest binaries):
#   BENCH_SKIP=1            skip the scheduler/placement/loadtest gates
#   BENCH_TOLERANCE_PCT=<n> regression threshold in percent (default 40)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1: root facade crate)"
cargo test -q

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> queue engine integration tests"
cargo test -q --test queue_engine --test dag_workflows

echo "==> reservation layer integration tests"
cargo test -q --test reservations

echo "==> deterministic simulation smoke (${SIMTEST_CASES:-25} seeded scenarios)"
cargo test -q --test simtest

echo "==> fleet placement tests (determinism, rules, dispatch, ops plane)"
cargo test -q --test fleet

echo "==> fleet simulation smoke (seeded sweep + 100-node/10k-user scenario)"
cargo test -q --test simtest fleet_

if [[ "${LOADTEST_SKIP:-0}" == "1" ]]; then
  echo "==> load-harness soak smoke: skipped (LOADTEST_SKIP=1)"
else
  echo "==> load-harness soak smoke (${LOADTEST_USERS:-2000}-user seeded scenarios)"
  LOADTEST_USERS="${LOADTEST_USERS:-2000}" cargo test -q --test loadtest
fi

echo "==> shard-failure smoke (node death mid-wave + stale-wiring catch)"
cargo test -q --test simtest -- fleet_node_death_holds_invariants_across_the_sweep \
  fleet_stale_dead_node_placement_is_caught_with_a_reproducing_seed

echo "==> ops-server smoke (scrape + health over live HTTP)"
cargo run -q --release --example ops_server -- --check

echo "==> rustdoc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> workflow throughput benchmark"
cargo run -q --release -p gyan-bench --bin workflow_throughput
test -s target/BENCH_workflow.json

if [[ "${BENCH_SKIP:-0}" == "1" ]]; then
  echo "==> scheduler perf gate: skipped (BENCH_SKIP=1)"
else
  echo "==> scheduler perf gate (BENCH_scheduler.json, tolerance ${BENCH_TOLERANCE_PCT:-40}%)"
  # Prints the one-line vs-baseline delta summary itself; exits non-zero
  # on a regression past the tolerance, leaving the baseline untouched.
  cargo run -q --release -p gyan-bench --bin perf_gate
  test -s BENCH_scheduler.json

  echo "==> fleet placement gate (BENCH_placement.json, tolerance ${BENCH_TOLERANCE_PCT:-40}%)"
  cargo run -q --release -p gyan-bench --bin placement_throughput
  test -s BENCH_placement.json

  echo "==> load-harness gate (BENCH_loadtest.json, 10^5 users, tolerance ${BENCH_TOLERANCE_PCT:-40}%)"
  cargo run -q --release -p gyan-bench --bin loadtest
  test -s BENCH_loadtest.json
fi

echo "verify: OK"
