#!/usr/bin/env bash
# Full verification gate: formatting, lints, release build, and tests.
# (`just` is not available in the build image, so this is a plain script.)
#
# Simulation-smoke knobs (forwarded to tests/simtest.rs):
#   SIMTEST_CASES=<n>  seeds to sweep in the simtest gate (default 25)
#   SIMTEST_SEED=<n>   replay exactly that seed instead of the sweep —
#                      this is the value a simtest failure report prints.
#
# Load-test knobs (forwarded to tests/loadtest.rs):
#   LOADTEST_SKIP=1     skip the load-harness soak smoke gate
#   LOADTEST_USERS=<n>  soak-test user population (smoke gate pins 2000)
#   LOADTEST_SEED=<n>   replay exactly that seed — the value a loadtest
#                       failure report prints as LOADTEST_SEED=<n>
#   LOADTEST_CASES=<n>  seeds swept per scenario shape (default 1)
#
# Perf-gate knobs (forwarded to the perf_gate, placement_throughput,
# loadtest, and footprint_ablation binaries):
#   BENCH_SKIP=1            skip the scheduler/placement/loadtest/ablation gates
#   BENCH_TOLERANCE_PCT=<n> regression threshold in percent (default 40)
#   BENCH_ABLATION_USERS=<n> ablation population per scenario (default 2000;
#                            changing it makes trajectories incomparable)
set -euo pipefail
cd "$(dirname "$0")/.."

# Append one line per bench-gate run to the committed BENCH_history.jsonl
# so the perf trajectory across commits is greppable without git
# archaeology: {"recorded_at":...,"gate":...,"trajectory":{<the file>}}.
record_bench_history() {
  local gate="$1" file="$2"
  printf '{"recorded_at":"%s","gate":"%s","trajectory":%s}\n' \
    "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$gate" "$(tr -d '\n' < "$file" | tr -s ' ')" \
    >> BENCH_history.jsonl
}

# A committed trajectory must carry the schema its gate writes — catches
# a stale or hand-mangled BENCH_*.json before the gates compare into it.
check_bench_schema() {
  local file="$1" schema="$2"
  if [[ -f "$file" ]] && ! grep -q "\"schema\": \"$schema\"" "$file"; then
    echo "verify: $file does not carry schema $schema" >&2
    exit 1
  fi
}

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1: root facade crate)"
cargo test -q

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> queue engine integration tests"
cargo test -q --test queue_engine --test dag_workflows

echo "==> reservation layer integration tests"
cargo test -q --test reservations

echo "==> deterministic simulation smoke (${SIMTEST_CASES:-25} seeded scenarios)"
cargo test -q --test simtest

echo "==> footprint-profile loop tests (learned hints, OOM retry, /api/profiles)"
cargo test -q --test footprint

echo "==> fleet placement tests (determinism, rules, dispatch, ops plane)"
cargo test -q --test fleet

echo "==> fleet simulation smoke (seeded sweep + 100-node/10k-user scenario)"
cargo test -q --test simtest fleet_

if [[ "${LOADTEST_SKIP:-0}" == "1" ]]; then
  echo "==> load-harness soak smoke: skipped (LOADTEST_SKIP=1)"
else
  echo "==> load-harness soak smoke (${LOADTEST_USERS:-2000}-user seeded scenarios)"
  LOADTEST_USERS="${LOADTEST_USERS:-2000}" cargo test -q --test loadtest
fi

echo "==> shard-failure smoke (node death mid-wave + stale-wiring catch)"
cargo test -q --test simtest -- fleet_node_death_holds_invariants_across_the_sweep \
  fleet_stale_dead_node_placement_is_caught_with_a_reproducing_seed

echo "==> ops-server smoke (scrape + health over live HTTP)"
cargo run -q --release --example ops_server -- --check

echo "==> rustdoc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> workflow throughput benchmark"
cargo run -q --release -p gyan-bench --bin workflow_throughput
test -s target/BENCH_workflow.json
record_bench_history workflow target/BENCH_workflow.json

if [[ "${BENCH_SKIP:-0}" == "1" ]]; then
  echo "==> scheduler perf gate: skipped (BENCH_SKIP=1)"
else
  echo "==> bench trajectory schema sanity"
  check_bench_schema BENCH_scheduler.json "gyan.bench.scheduler/v1"
  check_bench_schema BENCH_placement.json "gyan.bench.placement/v1"
  check_bench_schema BENCH_loadtest.json "gyan.bench.loadtest/v1"
  check_bench_schema BENCH_ablation.json "gyan.bench.ablation/v1"

  echo "==> scheduler perf gate (BENCH_scheduler.json, tolerance ${BENCH_TOLERANCE_PCT:-40}%)"
  # Prints the one-line vs-baseline delta summary itself; exits non-zero
  # on a regression past the tolerance, leaving the baseline untouched.
  cargo run -q --release -p gyan-bench --bin perf_gate
  test -s BENCH_scheduler.json
  record_bench_history scheduler BENCH_scheduler.json

  echo "==> fleet placement gate (BENCH_placement.json, tolerance ${BENCH_TOLERANCE_PCT:-40}%)"
  cargo run -q --release -p gyan-bench --bin placement_throughput
  test -s BENCH_placement.json
  record_bench_history placement BENCH_placement.json

  echo "==> load-harness gate (BENCH_loadtest.json, 10^5 users, tolerance ${BENCH_TOLERANCE_PCT:-40}%)"
  cargo run -q --release -p gyan-bench --bin loadtest
  test -s BENCH_loadtest.json
  record_bench_history loadtest BENCH_loadtest.json

  echo "==> memory-hint ablation gate (BENCH_ablation.json, tolerance ${BENCH_TOLERANCE_PCT:-40}%)"
  cargo run -q --release -p gyan-bench --bin footprint_ablation
  test -s BENCH_ablation.json
  record_bench_history ablation BENCH_ablation.json
fi

echo "verify: OK"
