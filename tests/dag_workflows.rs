//! Diamond GPU/CPU DAG workflows through the full GYAN stack: fan-out
//! branches dispatch in one wave (genuine concurrency through the handler
//! pool), the GYAN hook places each pinned tool on its requested device
//! under both allocation policies, and the join waits for both branches.

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::queue::{DagStep, DagWorkflow, QueueConfig, QueueEngine};
use galaxy::tool::macros::MacroLibrary;
use galaxy::{GalaxyApp, JobState};
use gpusim::GpuCluster;
use gyan::allocation::AllocationPolicy;
use gyan::setup::{install_gyan, GyanConfig};
use seqtools::ToolExecutor;
use std::sync::Arc;

mod common;

use common::{pinned_tool, tiny_fast5, tiny_racon};

fn testbed(policy: AllocationPolicy) -> (GpuCluster, QueueEngine) {
    let cluster = GpuCluster::k80_node();
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    let executor = Arc::new(ToolExecutor::new(&cluster).with_linger());
    executor.register_dataset(tiny_racon("dag_pacbio"));
    executor.register_dataset(tiny_fast5("dag_fast5", 1_000));
    app.set_executor(Box::new(executor.clone()));
    install_gyan(&mut app, &cluster, GyanConfig { policy, ..GyanConfig::default() });
    let lib = MacroLibrary::new();
    app.install_tool_xml(&pinned_tool("racon_dev0", "racon_gpu", "0", "dag_pacbio"), &lib).unwrap();
    app.install_tool_xml(&pinned_tool("bonito_dev1", "bonito basecaller", "1", "dag_fast5"), &lib)
        .unwrap();
    let echo = r#"<tool id="stage"><command>echo $msg</command>
      <inputs><param name="msg" type="text" value="stage"/></inputs>
      <outputs><data name="out" format="txt"/></outputs></tool>"#;
    app.install_tool_xml(echo, &lib).unwrap();
    let engine = QueueEngine::new(app, executor, QueueConfig::default());
    (cluster, engine)
}

fn diamond() -> DagWorkflow {
    DagWorkflow::new("gpu_diamond")
        .step(DagStep::new("stage").with_param("msg", "prep"))
        .step(DagStep::new("racon_dev0").after(0))
        .step(DagStep::new("bonito_dev1").after(0))
        .step(DagStep::new("stage").with_param("msg", "join").after(1).after(2))
}

fn mask(engine: &QueueEngine, id: u64) -> String {
    engine.app().job(id).unwrap().env_var("CUDA_VISIBLE_DEVICES").unwrap().to_string()
}

fn run_diamond(policy: AllocationPolicy) {
    let (cluster, mut engine) = testbed(policy);
    let wf = engine.submit_dag("alice", diamond()).unwrap();
    engine.run_until_idle();

    let report = engine.workflow_report(wf).unwrap();
    assert!(report.ok(), "diamond completes, failed step: {:?}", report.failed_step);
    for id in report.job_ids.iter().flatten() {
        assert_eq!(engine.app().job(*id).unwrap().state(), JobState::Ok);
    }

    // Both branch tools prepared in the same wave saw both devices free:
    // each lands on its requested GPU, under either allocation policy.
    let racon = report.job_ids[1].unwrap();
    let bonito = report.job_ids[2].unwrap();
    assert_eq!(mask(&engine, racon), "0", "{policy:?}");
    assert_eq!(mask(&engine, bonito), "1", "{policy:?}");

    // The lingering processes sit on distinct devices (paper Fig. 10).
    let procs0 = cluster.with_device(0, |d| d.processes().len()).unwrap();
    let procs1 = cluster.with_device(1, |d| d.processes().len()).unwrap();
    assert_eq!((procs0, procs1), (1, 1), "one resident process per device");

    // Branch overlap on the virtual clock: both branches started together
    // (same wave), after prep finished and before the join started.
    let outcome = |i: usize| report.outcomes[i].expect("completed step");
    assert_eq!(outcome(1).start, outcome(2).start, "branches share a dispatch wave");
    assert!(outcome(0).end <= outcome(1).start, "prep precedes the branches");
    assert!(outcome(1).end <= outcome(3).start, "join waits for racon");
    assert!(outcome(2).end <= outcome(3).start, "join waits for bonito");

    // Two jobs genuinely ran between the fan-out and the join: the
    // scheduler audited one step_ready per step and dispatched all four.
    let rec = engine.app().recorder();
    assert_eq!(rec.events_named("galaxy.queue.step_ready").len(), 4);
    assert_eq!(rec.events_named("galaxy.queue.dispatch").len(), 4);
}

#[test]
fn diamond_places_branches_under_pid_policy() {
    run_diamond(AllocationPolicy::ProcessId);
}

#[test]
fn diamond_places_branches_under_memory_policy() {
    run_diamond(AllocationPolicy::MemoryBased);
}

#[test]
fn join_consumes_both_branch_outputs_via_data_edges() {
    let (_cluster, mut engine) = testbed(AllocationPolicy::ProcessId);
    // Replace ordering edges with data edges: the join echoes racon's
    // consensus (its first output dataset).
    let dag = DagWorkflow::new("data_diamond")
        .step(DagStep::new("stage").with_param("msg", "prep"))
        .step(DagStep::new("racon_dev0").after(0))
        .step(DagStep::new("bonito_dev1").after(0))
        .step(DagStep::new("stage").with_input_from("msg", 1).after(2));
    let wf = engine.submit_dag("alice", dag).unwrap();
    engine.run_until_idle();
    let report = engine.workflow_report(wf).unwrap();
    assert!(report.ok(), "failed step: {:?}", report.failed_step);
    let join = report.job_ids[3].unwrap();
    let stdout = &engine.app().job(join).unwrap().stdout;
    assert!(stdout.contains(">consensus"), "join saw racon's output: {stdout}");
}
