//! End-to-end operations plane: boot the embedded introspection server
//! over a real `QueueEngine`/`install_gyan` stack and drive every
//! acceptance surface over actual HTTP —
//!
//! * `/metrics` round-trips through obs's own Prometheus parser;
//! * `/api/gpus` reports exactly the leases the [`LeaseTable`] holds;
//! * a synthetic conflict storm walks the `gpu-conflict-rate` SLO rule
//!   through pending → firing → resolved;
//! * the flight-recorder dump captured at firing time replays as a valid
//!   Chrome trace.

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::queue::{QueueConfig, QueueEngine, SubmissionState};
use galaxy::runners::NullExecutor;
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::GpuCluster;
use gyan::allocation::AllocationPolicy;
use gyan::ops::{default_alert_rules, ops_server};
use gyan::reservations::LeaseTable;
use gyan::setup::{install_gyan, GyanConfig};
use obs::metrics::parse_prometheus;
use obs::serve::http_get;
use obs::slo::{AlertEngine, AlertState};
use std::sync::Arc;

const GPU_TOOL: &str = r#"<tool id="ops_racon" name="Racon">
  <requirements><requirement type="compute">gpu</requirement></requirements>
  <command>racon_gpu reads</command>
  <outputs><data name="out" format="fasta"/></outputs>
</tool>"#;

const CPU_TOOL: &str = r#"<tool id="ops_echo" name="Echo">
  <command>echo $text</command>
  <inputs><param name="text" type="text" value="tick"/></inputs>
  <outputs><data name="out" format="txt"/></outputs>
</tool>"#;

/// The full stack, wired the production way (`install_gyan` shares the
/// recorder, lease table, and virtual clock), plus the alert engine
/// loaded with the stock rules.
struct Stack {
    cluster: GpuCluster,
    engine: QueueEngine,
    table: LeaseTable,
    alerts: AlertEngine,
}

fn stack() -> Stack {
    let cluster = GpuCluster::k80_node();
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    let table = install_gyan(&mut app, &cluster, GyanConfig::default());
    let lib = MacroLibrary::new();
    app.install_tool_xml(GPU_TOOL, &lib).unwrap();
    app.install_tool_xml(CPU_TOOL, &lib).unwrap();
    let alerts = AlertEngine::new(app.recorder());
    for rule in default_alert_rules(&table) {
        alerts.add_rule(rule);
    }
    let engine = QueueEngine::new(app, Arc::new(NullExecutor), QueueConfig::default());
    Stack { cluster, engine, table, alerts }
}

fn serve(stack: &Stack) -> obs::serve::OpsHandle {
    let recorder = stack.engine.app().recorder().clone();
    ops_server(&recorder, &stack.cluster, &stack.table, &stack.engine.ledger(), &stack.alerts)
        .start("127.0.0.1:0")
        .expect("bind ephemeral port")
}

/// Run a mixed GPU/CPU workload, then check `/metrics` parses with the
/// crate's own Prometheus parser and agrees with the registry, and that
/// the job API reflects the ledger.
#[test]
fn metrics_scrape_round_trips_and_jobs_api_matches_ledger() {
    let mut s = stack();
    let gpu = s.engine.submit_async("alice", "ops_racon", &ParamDict::new()).unwrap();
    let cpu = s.engine.submit_async("bob", "ops_echo", &ParamDict::new()).unwrap();
    s.engine.run_until_idle();
    assert_eq!(s.engine.state(gpu), Some(SubmissionState::Ok));
    assert_eq!(s.engine.state(cpu), Some(SubmissionState::Ok));

    let handle = serve(&s);
    let (status, body) = http_get(handle.addr(), "/metrics").unwrap();
    assert_eq!(status, 200);
    let samples = parse_prometheus(&body).expect("scrape parses with the obs parser");
    assert!(!samples.is_empty());
    let registry = s.engine.app().recorder().metrics();
    for name in ["galaxy_jobs_submitted_total", "gyan_reservations_acquired_total"] {
        let sample = samples.iter().find(|p| p.name == name && p.labels.is_empty());
        let sample = sample.unwrap_or_else(|| panic!("{name} missing from scrape"));
        assert_eq!(sample.value, registry.counter_value(name) as f64, "{name}");
    }

    // Job API: both jobs listed in id order with their final state.
    let (status, body) = http_get(handle.addr(), "/api/jobs").unwrap();
    assert_eq!(status, 200);
    let doc = obs::json::parse(&body).expect("jobs json parses");
    let jobs = doc.get("jobs").and_then(|v| v.as_array()).expect("jobs array");
    assert_eq!(jobs.len(), 2);
    for (job, id) in jobs.iter().zip([gpu.0, cpu.0]) {
        assert_eq!(job.get("id").and_then(|v| v.as_f64()), Some(id as f64));
        assert_eq!(job.get("state").and_then(|v| v.as_str()), Some("ok"));
        assert!(job.get("destination").and_then(|v| v.as_str()).is_some());
        assert!(job.get("finished_at").and_then(|v| v.as_f64()).is_some());
    }
    let (status, body) = http_get(handle.addr(), &format!("/api/jobs/{}", gpu.0)).unwrap();
    assert_eq!(status, 200);
    let one = obs::json::parse(&body).unwrap();
    assert_eq!(one.get("tool").and_then(|v| v.as_str()), Some("ops_racon"));
    assert_eq!(one.get("attempts").and_then(|v| v.as_f64()), Some(1.0));
    let (status, _) = http_get(handle.addr(), "/api/jobs/999999").unwrap();
    assert_eq!(status, 404);

    let (status, body) = http_get(handle.addr(), "/healthz").unwrap();
    assert_eq!(status, 200);
    let health = obs::json::parse(&body).unwrap();
    assert_eq!(health.get("status").and_then(|v| v.as_str()), Some("ok"));
    assert!(health.get("galaxy_pool").is_some());
    handle.shutdown();
}

/// `/api/gpus` must agree with the lease table exactly: same devices,
/// same holders, same exclusivity, same memory hints.
#[test]
fn gpus_api_lease_view_matches_the_lease_table() {
    let s = stack();
    let recorder = s.engine.app().recorder().clone();
    // Hold one exclusive lease (free path) and one shared lease on the
    // other device via a second holder requesting the now-busy set.
    s.table
        .allocate_and_lease(
            &s.cluster,
            &[0],
            AllocationPolicy::ProcessId,
            9001,
            256,
            Some(&recorder),
        )
        .expect("grant");
    s.table
        .allocate_and_lease(
            &s.cluster,
            &[1],
            AllocationPolicy::ProcessId,
            9002,
            128,
            Some(&recorder),
        )
        .expect("grant");

    let handle = serve(&s);
    let (status, body) = http_get(handle.addr(), "/api/gpus").unwrap();
    assert_eq!(status, 200);
    let doc = obs::json::parse(&body).expect("gpus json parses");
    let gpus = doc.get("gpus").and_then(|v| v.as_array()).expect("gpus array");
    assert_eq!(gpus.len() as u32, s.cluster.device_count());

    // Rebuild (device, holder, exclusive, hint) tuples from the HTTP view
    // and compare with the table's own snapshot — they must be identical.
    let mut from_http: Vec<(u32, u64, bool, u64)> = Vec::new();
    for gpu in gpus {
        let minor = gpu.get("minor").and_then(|v| v.as_f64()).unwrap() as u32;
        for lease in gpu.get("leases").and_then(|v| v.as_array()).unwrap() {
            assert_eq!(lease.get("device").and_then(|v| v.as_f64()), Some(f64::from(minor)));
            from_http.push((
                minor,
                lease.get("holder").and_then(|v| v.as_f64()).unwrap() as u64,
                lease.get("exclusive").and_then(|v| v.as_bool()).unwrap(),
                lease.get("memory_hint_mib").and_then(|v| v.as_f64()).unwrap() as u64,
            ));
        }
    }
    let from_table: Vec<(u32, u64, bool, u64)> = s
        .table
        .all_leases()
        .iter()
        .map(|l| (l.device, l.holder, l.exclusive, l.memory_hint_mib))
        .collect();
    assert_eq!(from_http, from_table, "HTTP lease view diverged from the LeaseTable");
    assert_eq!(from_table.len(), 2);
    handle.shutdown();
}

/// `/api/profile` must serve the same scope registry the in-process
/// profiler holds: after driving real allocations through the lease
/// table with the profiler enabled, every scope path visible in a local
/// snapshot must come back over live HTTP, including the named
/// allocation-pipeline stages.
#[test]
fn profile_api_serves_the_in_process_scopes_over_http() {
    let s = stack();
    let recorder = s.engine.app().recorder().clone();
    let profiler = obs::profile::global();
    profiler.enable();

    // Drive the instrumented hot path: allocate + release twice so the
    // pipeline scopes (gyan.allocate → alloc.observe → smi.query → …)
    // all record at least one sample.
    for holder in [7001u64, 7002] {
        s.table
            .allocate_and_lease(
                &s.cluster,
                &[0],
                AllocationPolicy::ProcessId,
                holder,
                64,
                Some(&recorder),
            )
            .expect("grant");
        s.table.release(holder, "profiled", Some(&recorder));
    }

    // The in-process view, captured before asking over HTTP. Other tests
    // in the binary may add scopes concurrently, so the HTTP view is
    // asserted to be a superset, never an exact match.
    let local: Vec<String> = profiler.snapshot().into_iter().map(|e| e.path).collect();
    for expected in ["gyan.allocate", "gyan.allocate;alloc.observe;smi.query", "alloc.release"] {
        assert!(
            local.iter().any(|p| p == expected),
            "instrumented pipeline must record {expected:?}: {local:?}"
        );
    }

    let handle = serve(&s);
    let (status, body) = http_get(handle.addr(), "/api/profile").unwrap();
    assert_eq!(status, 200);
    let doc = obs::json::parse(&body).expect("profile json parses");
    let scopes = doc.get("scopes").and_then(|v| v.as_array()).expect("scopes array");
    let over_http: Vec<String> = scopes
        .iter()
        .map(|s| s.get("path").and_then(|v| v.as_str()).expect("scope path").to_string())
        .collect();
    for path in &local {
        assert!(
            over_http.iter().any(|p| p == path),
            "scope {path:?} present in-process but missing over HTTP: {over_http:?}"
        );
    }
    // Sanity on the stats shape: the allocation root carries counts.
    let root = scopes
        .iter()
        .find(|s| s.get("path").and_then(|v| v.as_str()) == Some("gyan.allocate"))
        .expect("gyan.allocate over HTTP");
    assert!(root.get("count").and_then(|v| v.as_f64()).unwrap_or(0.0) >= 2.0);
    assert!(root.get("total_s").and_then(|v| v.as_f64()).is_some());

    // The collapsed export serves the same paths as flamegraph input.
    let (status, collapsed) = http_get(handle.addr(), "/api/profile?format=collapsed").unwrap();
    assert_eq!(status, 200);
    assert!(
        collapsed
            .lines()
            .any(|l| l.starts_with("gyan.allocate ") || l.starts_with("gyan.allocate;")),
        "collapsed output must contain the allocation stacks: {collapsed}"
    );

    profiler.disable();
    handle.shutdown();
}

/// Synthetic conflict storm: one job camps on device 0 with an exclusive
/// lease; a stream of probes requests device 0 and gets redirected —
/// each redirection is a `gyan_reservation_conflicts_total` increment.
/// The `gpu-conflict-rate` rule must walk pending → firing (capturing a
/// flight dump) and resolve once the storm stops.
#[test]
fn conflict_storm_walks_the_alert_through_its_lifecycle() {
    let s = stack();
    let recorder = s.engine.app().recorder().clone();
    let clock = s.cluster.clock().clone();
    let storm = |holder: u64| {
        s.table
            .allocate_and_lease(
                &s.cluster,
                &[0],
                AllocationPolicy::ProcessId,
                holder,
                64,
                Some(&recorder),
            )
            .expect("grant");
        s.table.release(holder, "probe_done", Some(&recorder));
    };

    // Camp on device 0.
    s.table
        .allocate_and_lease(
            &s.cluster,
            &[0],
            AllocationPolicy::ProcessId,
            9001,
            256,
            Some(&recorder),
        )
        .expect("camper grant");

    let handle = serve(&s);
    let mut kinds: Vec<String> = Vec::new();
    let state_of = |rule: &str| -> String {
        let (status, body) = http_get(handle.addr(), "/api/alerts").unwrap();
        assert_eq!(status, 200);
        let doc = obs::json::parse(&body).expect("alerts json parses");
        doc.get("alerts")
            .and_then(|v| v.as_array())
            .unwrap()
            .iter()
            .find(|a| a.get("rule").and_then(|v| v.as_str()) == Some(rule))
            .and_then(|a| a.get("state").and_then(|v| v.as_str()).map(str::to_string))
            .expect("rule present")
    };

    // One conflicting probe per virtual second: a sustained 1/s rate
    // against the 0.5/s threshold.
    for i in 0..6u64 {
        storm(100 + i);
        clock.advance(1.0);
        for tr in s.alerts.evaluate() {
            if tr.rule == "gpu-conflict-rate" {
                kinds.push(tr.kind.to_string());
            }
        }
        if kinds.is_empty() {
            assert_eq!(state_of("gpu-conflict-rate"), "inactive");
        }
    }
    assert_eq!(kinds, vec!["pending", "firing"], "storm must escalate");
    assert_eq!(state_of("gpu-conflict-rate"), "firing");
    assert_eq!(s.alerts.firing(), vec!["gpu-conflict-rate".to_string()]);

    // Firing captured a flight dump, and that dump replays as a valid
    // Chrome trace with the flightrec tracks.
    let dumps = s.alerts.flight_dumps();
    assert_eq!(dumps.len(), 1);
    assert_eq!(dumps[0].rule, "gpu-conflict-rate");
    let trace = dumps[0].snapshot.to_chrome_trace();
    let doc = obs::json::parse(&trace).expect("flight dump replays as a Chrome trace");
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents");
    assert!(
        events.iter().any(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X")),
        "flight dump has complete events"
    );
    // The live endpoint serves the same recorder ring as JSONL.
    let (status, body) = http_get(handle.addr(), "/api/flightrec").unwrap();
    assert_eq!(status, 200);
    for line in body.lines() {
        obs::json::parse(line).expect("flightrec line parses");
    }

    // Storm over: once the rate window drains, the alert resolves.
    clock.advance(15.0);
    let resolved = s.alerts.evaluate();
    assert!(
        resolved.iter().any(|tr| tr.rule == "gpu-conflict-rate"
            && tr.kind == "resolved"
            && tr.from == AlertState::Firing),
        "storm end must resolve the alert: {resolved:?}"
    );
    assert_eq!(state_of("gpu-conflict-rate"), "inactive");
    assert!(s.alerts.firing().is_empty());
    handle.shutdown();
}
