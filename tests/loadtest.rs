//! Load-harness soak suite: seed-swept realistic arrival processes
//! driven through the real queue stack, with the stock SLO alert rules
//! asserted at every wave barrier.
//!
//! Knobs: `LOADTEST_USERS` (population, default 10^4),
//! `LOADTEST_SEED` (pin one reproducing seed), `LOADTEST_CASES`
//! (seeds swept per scenario shape, default 1 — raise for deep soaks).

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::queue::{DispatchMode, QueueConfig, QueueEngine};
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::{GpuArch, GpuCluster};
use gyan::ops::ops_server;
use gyan::setup::{install_gyan, GyanConfig};
use loadgen::{
    env_cases, env_seed, env_users, run_scenario, ArrivalProcess, BoundedPareto, LoadOptions,
    LoadProfile, LoadScenario, DEFAULT_SLO_RULES,
};
use obs::serve::http_get;
use obs::slo::AlertEngine;
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::Arc;

const DEFAULT_USERS: usize = 10_000;

fn quiet_options() -> LoadOptions {
    LoadOptions {
        fail_on: DEFAULT_SLO_RULES.iter().map(|s| s.to_string()).collect(),
        ..Default::default()
    }
}

/// A healthy diurnal day at 10^4 users must complete with every stock
/// SLO rule quiet — across a sweep of seeds, each reproducing exactly.
#[test]
fn diurnal_soak_keeps_all_slos_quiet() {
    let users = env_users(DEFAULT_USERS);
    for seed in sweep_seeds(0xD1A8) {
        let scenario = LoadScenario::diurnal(seed, users);
        let report = run_scenario(&scenario, &quiet_options()).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(report.rejected, 0, "seed {seed}: admission rejected load");
        assert_eq!(report.ok, report.submitted, "seed {seed}: not every job finished OK");
        assert!(report.fired.is_empty(), "seed {seed}: fired {:?}", report.fired);
        assert!(
            report.queue_wait_p99 < 30.0,
            "seed {seed}: p99 {} breaches the SLO",
            report.queue_wait_p99
        );
    }
}

/// Burst windows (two 15-minute 4× spikes) absorb into short waves
/// without breaching the wait SLO.
#[test]
fn burst_soak_keeps_all_slos_quiet() {
    let users = env_users(DEFAULT_USERS);
    for seed in sweep_seeds(0xB057) {
        let scenario = LoadScenario::burst(seed, users);
        let report = run_scenario(&scenario, &quiet_options()).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(report.ok, report.submitted, "seed {seed}");
        assert!(report.fired.is_empty(), "seed {seed}: fired {:?}", report.fired);
    }
}

/// An under-provisioned fleet (one worker against a stream that
/// outpaces it) must page `queue-wait-p99`, and the failure form must
/// carry a flight dump plus the reproducing seed.
#[test]
fn under_provisioned_fleet_fires_queue_wait_p99() {
    let users = env_users(DEFAULT_USERS).div_ceil(5);
    let seed = env_seed().unwrap_or(0xBAD5EED);
    let scenario = LoadScenario::under_provisioned(seed, users);

    // As data: the run completes and records the firing.
    let report = run_scenario(&scenario, &LoadOptions::default()).unwrap_or_else(|f| panic!("{f}"));
    assert!(report.fired.iter().any(|r| r == "queue-wait-p99"), "fired only {:?}", report.fired);
    assert!(report.queue_wait_p99 > 30.0, "p99 {}", report.queue_wait_p99);

    // As an assertion: the same scenario converts into a reproducible
    // failure carrying the operator-facing black box.
    let failure = run_scenario(
        &scenario,
        &LoadOptions { fail_on: vec!["queue-wait-p99".to_string()], ..Default::default() },
    )
    .expect_err("SLO breach must fail the run");
    assert_eq!(failure.reason, "slo");
    assert!(failure.fired_alerts.iter().any(|a| a == "queue-wait-p99"));
    assert!(failure.flight_jsonl.is_some(), "no flight dump captured");
    let text = failure.to_string();
    assert!(text.contains(&format!("LOADTEST_SEED={seed}")), "{text}");
}

/// A cluster whose GPU attempts mostly fail pages `resubmission-burn`
/// (every failed GPU attempt resubmits down the ladder to CPU).
#[test]
fn gpu_flaky_fleet_fires_resubmission_burn() {
    let users = env_users(DEFAULT_USERS).div_ceil(5);
    let seed = env_seed().unwrap_or(0xF1AC);
    let report = run_scenario(&LoadScenario::gpu_flaky(seed, users), &LoadOptions::default())
        .unwrap_or_else(|f| panic!("{f}"));
    assert!(report.fired.iter().any(|r| r == "resubmission-burn"), "fired only {:?}", report.fired);
    // The ladder lands every failed GPU attempt on CPU: no terminal errors.
    assert_eq!(report.error, 0);
    assert_eq!(report.ok, report.submitted);
}

/// The same harness drives the multi-node fleet stack (`install_fleet`)
/// with placements released at every barrier.
#[test]
fn fleet_topology_soak_runs_clean() {
    let users = env_users(DEFAULT_USERS).div_ceil(5);
    let seed = env_seed().unwrap_or(0xF1EE7);
    let report = run_scenario(&LoadScenario::fleet(seed, users), &LoadOptions::default())
        .unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(report.ok, report.submitted);
    assert!(!report.fired.iter().any(|r| r == "fleet-lease-leak"), "{:?}", report.fired);
}

// --- Pool-gauge coherence under the event-driven dispatch loop ---------

const LOAD_ECHO: &str = r#"<tool id="load_echo" name="Echo">
  <command>echo tick</command>
  <outputs><data name="out" format="txt"/></outputs>
</tool>"#;

/// Value of `name` in a `/metrics` body. Untouched counters are not
/// rendered at all, so absence reads as zero.
fn scrape(body: &str, name: &str) -> f64 {
    body.lines()
        .find_map(|line| line.strip_prefix(name).and_then(|rest| rest.trim().parse::<f64>().ok()))
        .unwrap_or(0.0)
}

/// Regression for the event-loop gauge wiring: an operator scraping
/// `/metrics` mid-burst must see a coherent pool — at every wave
/// barrier `queued + busy + executed + skipped == submitted`, and
/// `workers_total` reports the nominal width even though the event
/// backend spawns no OS threads.
#[test]
fn metrics_scrape_mid_burst_conserves_pool_gauges() {
    let cluster = GpuCluster::node(GpuArch::tesla_k80(), 4);
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    app.install_tool_xml(LOAD_ECHO, &MacroLibrary::new()).unwrap();
    let table = install_gyan(&mut app, &cluster, GyanConfig::default());
    let recorder = app.recorder().clone();
    app.set_executor(Box::new(loadgen::LoadExecutor));
    let config = QueueConfig {
        workers: 4,
        capacity: 4_096,
        dispatch: DispatchMode::Event,
        ..QueueConfig::default()
    };
    let mut engine = QueueEngine::new(app, Arc::new(loadgen::LoadExecutor), config);
    let alerts = AlertEngine::new(&recorder);
    let handle = ops_server(&recorder, &cluster, &table, &engine.ledger(), &alerts)
        .start("127.0.0.1:0")
        .expect("bind ops server");

    for i in 0..120u32 {
        engine.submit_async(&format!("u{}", i % 7), "load_echo", &ParamDict::new()).unwrap();
    }

    let mut waves = 0usize;
    let mut scraped_with_backlog = 0usize;
    loop {
        let dispatched = engine.pump_wave();
        let (status, body) = http_get(handle.addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
        let queued = scrape(&body, "galaxy_pool_queue_depth");
        let busy = scrape(&body, "galaxy_pool_workers_busy");
        let executed = scrape(&body, "galaxy_pool_jobs_executed_total");
        let skipped = scrape(&body, "galaxy_pool_jobs_skipped_total");
        let submitted = scrape(&body, "galaxy_pool_jobs_submitted_total");
        assert_eq!(
            queued + busy + executed + skipped,
            submitted,
            "pool gauges incoherent at wave {waves}: {queued} + {busy} + {executed} + {skipped} != {submitted}"
        );
        assert_eq!(scrape(&body, "galaxy_pool_workers_total"), 4.0);
        // At a barrier the pool's ready lane is drained (queued = busy
        // = 0); "mid-burst" means the *engine* still holds a fair-share
        // backlog while we scrape.
        if scrape(&body, "galaxy_queue_depth") > 0.0 {
            scraped_with_backlog += 1;
        }
        if dispatched == 0 {
            break;
        }
        waves += 1;
        assert!(waves < 500, "livelock");
    }
    assert!(scraped_with_backlog > 0, "never scraped mid-burst (queue always drained)");
    handle.shutdown();
    engine.shutdown();
}

// --- Arrival-process and mix properties --------------------------------

proptest! {
    /// The same seed always yields the identical submission schedule.
    #[test]
    fn same_seed_reproduces_the_schedule(seed in any::<u64>()) {
        let scenario = LoadScenario::burst(seed, 500);
        prop_assert_eq!(scenario.generate(), scenario.generate());
    }

    /// Empirical inter-arrival mean tracks the configured rate on a
    /// constant profile (within sampling tolerance).
    #[test]
    fn inter_arrival_mean_matches_rate(rate_milli in 200u64..5_000, seed in any::<u64>()) {
        let rate = rate_milli as f64 / 1_000.0;
        let horizon = 4_000.0 / rate; // ≈ 4000 expected arrivals
        let arrivals: Vec<f64> =
            ArrivalProcess::new(LoadProfile::constant(rate), horizon, seed).collect();
        prop_assert!(arrivals.len() > 3_000, "only {} arrivals", arrivals.len());
        let mean_gap = arrivals.last().unwrap() / arrivals.len() as f64;
        let expected = 1.0 / rate;
        prop_assert!(
            (mean_gap - expected).abs() / expected < 0.10,
            "mean gap {mean_gap} vs 1/λ {expected}"
        );
    }

    /// Heavy-tailed sizes are never zero, negative, or above the cap.
    #[test]
    fn heavy_tail_sizes_stay_positive_and_bounded(
        xm_milli in 100u64..2_000,
        cap_mult in 2u64..50,
        alpha_deci in 8u64..30,
        seed in any::<u64>(),
    ) {
        let dist = BoundedPareto {
            xm: xm_milli as f64 / 1_000.0,
            cap: (xm_milli * cap_mult) as f64 / 1_000.0,
            alpha: alpha_deci as f64 / 10.0,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..2_000 {
            let x = dist.sample(&mut rng);
            prop_assert!(x > 0.0, "non-positive size {x}");
            prop_assert!(x >= dist.xm && x <= dist.cap, "{x} outside [{}, {}]", dist.xm, dist.cap);
        }
    }

    /// Thinning never emits arrivals outside the horizon or out of order.
    #[test]
    fn arrivals_are_ordered_and_in_horizon(seed in any::<u64>()) {
        let profile = LoadProfile {
            base_rate: 2.0,
            diurnal_amplitude: 0.5,
            period_s: 500.0,
            bursts: vec![loadgen::Burst { start_s: 100.0, duration_s: 50.0, multiplier: 3.0 }],
        };
        let arrivals: Vec<f64> = ArrivalProcess::new(profile, 1_000.0, seed).collect();
        prop_assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(arrivals.iter().all(|t| (0.0..1_000.0).contains(t)));
    }
}

/// Seed sweep helper: `LOADTEST_SEED` pins one seed, otherwise
/// `LOADTEST_CASES` seeds derived from a per-shape offset.
fn sweep_seeds(offset: u64) -> Vec<u64> {
    if let Some(seed) = env_seed() {
        return vec![seed];
    }
    (0..env_cases(1)).map(|i| offset + i as u64 * 7_919).collect()
}
