//! Concurrency integration: the handler pool runs several GPU tools
//! *simultaneously* on the simulated cluster; the monitor and nvidia-smi
//! queries observe genuinely overlapping occupancy.

use galaxy::containers::ImageRegistry;
use galaxy::job::conf::Destination;
use galaxy::job::Job;
use galaxy::params::ParamDict;
use galaxy::runners::local::LocalRunner;
use galaxy::scheduler::HandlerPool;
use galaxy::tool::macros::MacroLibrary;
use galaxy::tool::wrapper::parse_tool;
use gpusim::GpuCluster;
use seqtools::{DatasetSpec, ToolExecutor};
use std::sync::Arc;

fn racon_plan(cluster: &GpuCluster, job_id: u64, mask: &str) -> galaxy::runners::ExecutionPlan {
    let tool = parse_tool(
        r#"<tool id="racon_gpu">
          <requirements><requirement type="compute">gpu</requirement></requirements>
          <command>racon_gpu -t 2 conc_racon > out</command>
        </tool>"#,
        &MacroLibrary::new(),
    )
    .unwrap();
    let mut job = Job::new(job_id, "racon_gpu", ParamDict::new());
    job.set_env("GALAXY_GPU_ENABLED", "true");
    job.set_env("CUDA_VISIBLE_DEVICES", mask);
    let dest =
        Destination { id: "local_gpu".into(), runner: "local".into(), params: ParamDict::new() };
    let _ = cluster; // plans carry no cluster; the executor holds it
    LocalRunner.build_plan(&tool, &job, &dest, &ImageRegistry::new(), &[], &[]).unwrap()
}

#[test]
fn pool_runs_gpu_jobs_concurrently_and_releases_devices() {
    let cluster = GpuCluster::k80_node();
    let executor = Arc::new(ToolExecutor::new(&cluster));
    executor.register_dataset(DatasetSpec {
        name: "conc_racon",
        genome_len: 2_000,
        n_reads: 16,
        read_len: 1_500,
        ..DatasetSpec::alzheimers_nfl()
    });

    // Watch for overlapping occupancy: any sample with both devices
    // hosting a process proves concurrency.
    let monitor = gyan::UsageMonitor::start_with_interval(&cluster, 0.5);

    let pool = HandlerPool::new(executor.clone(), 4);
    pool.enqueue(racon_plan(&cluster, 1, "0"));
    pool.enqueue(racon_plan(&cluster, 2, "1"));
    pool.enqueue(racon_plan(&cluster, 3, "0"));
    pool.enqueue(racon_plan(&cluster, 4, "1"));
    let results = pool.wait_all();
    pool.shutdown();

    assert_eq!(results.len(), 4);
    for (id, result) in &results {
        assert_eq!(result.exit_code, 0, "job {id}: {}", result.stderr);
        assert!(result.stdout.starts_with(">consensus"));
        assert!(result.pid.is_some());
    }
    // Distinct processes.
    let mut pids: Vec<u32> = results.values().filter_map(|r| r.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    assert_eq!(pids.len(), 4);

    // All devices released afterwards.
    assert_eq!(cluster.available_devices(), vec![0, 1]);

    // At least one sample saw both devices occupied simultaneously.
    let samples = monitor.stop();
    let overlapping = samples.iter().any(|s| {
        s.devices.iter().all(|d| d.fb_used_mib > 63) // above idle reservation
    });
    assert!(overlapping, "no overlapping GPU occupancy observed in {} samples", samples.len());
}

#[test]
fn deterministic_results_under_concurrency() {
    // The same plan executed serially and through the pool must yield the
    // identical consensus: virtual-time interleaving never leaks into the
    // computation itself.
    let run = |workers: u32| -> String {
        let cluster = GpuCluster::k80_node();
        let executor = Arc::new(ToolExecutor::new(&cluster));
        executor.register_dataset(DatasetSpec {
            name: "conc_racon",
            genome_len: 2_000,
            n_reads: 16,
            read_len: 1_500,
            ..DatasetSpec::alzheimers_nfl()
        });
        let pool = HandlerPool::new(executor, workers);
        pool.enqueue(racon_plan(&cluster, 1, "0"));
        pool.enqueue(racon_plan(&cluster, 2, "1"));
        let results = pool.wait_all();
        pool.shutdown();
        let mut outs: Vec<String> = results.values().map(|r| r.stdout.clone()).collect();
        outs.sort();
        outs.join("\n")
    };
    assert_eq!(run(1), run(4));
}
