//! Calibration regression: the cost model must keep reproducing the
//! paper's headline numbers (within tolerance). Uses a shape-preserving
//! shrink of the benchmark instances so the suite stays fast in debug
//! builds; the `calibrate` harness binary checks the full instances.

use gpusim::{CudaContext, GpuCluster, HostSpec, VirtualClock};
use seqtools::bonito::{basecall_cpu, basecall_gpu, BonitoInput, BonitoModel, BonitoOpts};
use seqtools::racon::{polish_cpu, polish_gpu, RaconInput, RaconOpts};
use seqtools::DatasetSpec;

fn racon_spec() -> DatasetSpec {
    DatasetSpec {
        name: "cal_racon",
        genome_len: 5_000,
        n_reads: 40,
        read_len: 2_000,
        ..DatasetSpec::alzheimers_nfl()
    }
}

fn within(measured: f64, target: f64, tol: f64) -> bool {
    (measured - target).abs() <= target * tol
}

#[test]
fn racon_phase_times_track_the_paper() {
    let input = RaconInput::from_dataset(&racon_spec());
    let opts = RaconOpts { threads: 4, batches: 1, banded: false, window_len: 500 };

    let cpu = polish_cpu(&input, &opts, &HostSpec::xeon_e5_2670(), &VirtualClock::new());
    // Paper: polish 117 s, end-to-end ~410 s (±25% for the shrunk shape).
    assert!(within(cpu.polish_s, 117.0, 0.25), "cpu polish {:.1}", cpu.polish_s);
    assert!(within(cpu.total_s, 410.0, 0.25), "cpu total {:.1}", cpu.total_s);

    let cluster = GpuCluster::k80_node();
    let mut ctx = CudaContext::new(&cluster, None, 1, "racon_gpu").unwrap();
    let gpu = polish_gpu(&input, &opts, &cluster, &mut ctx).unwrap();
    let prof = ctx.destroy();

    // Paper: GPU polish 15 s = 2 s alloc + 13 s kernels; total ~200 s.
    assert!(
        within(gpu.alloc_s + gpu.kernel_s, 15.0, 0.3),
        "gpu alloc+kernel {:.1}",
        gpu.alloc_s + gpu.kernel_s
    );
    assert!(within(gpu.total_s, 200.0, 0.25), "gpu total {:.1}", gpu.total_s);

    // Paper: ~2× end-to-end speedup.
    let speedup = cpu.total_s / gpu.total_s;
    assert!(speedup > 1.6 && speedup < 2.6, "speedup {speedup:.2}");

    // Paper: ~70% memory-dependency stalls, ~20% execution.
    let stalls = prof.stall_analysis();
    assert!(within(stalls.memory_dependency, 0.70, 0.15), "{stalls:?}");
    assert!(within(stalls.execution_dependency, 0.20, 0.25), "{stalls:?}");
}

#[test]
fn racon_profiler_hotspots_match_fig4_ordering() {
    let input = RaconInput::from_dataset(&racon_spec());
    let opts = RaconOpts { threads: 4, batches: 1, banded: false, window_len: 500 };
    let cluster = GpuCluster::k80_node();
    let mut ctx = CudaContext::new(&cluster, None, 1, "racon_gpu").unwrap();
    polish_gpu(&input, &opts, &cluster, &mut ctx).unwrap();
    let prof = ctx.destroy();

    // Fig. 4: synchronization dominates the API section (async copies
    // surface as sync wait), memory transfers and the POA kernels
    // dominate device time.
    let api = prof.api_report();
    assert_eq!(api[0].0, "cudaStreamSynchronize", "{api:?}");
    let gpu_acts = prof.gpu_report();
    assert_eq!(gpu_acts[0].0, "generatePOAKernel", "{gpu_acts:?}");
    assert!(prof.gpu_entry("cudaMemcpyHtoD").unwrap().seconds > 1.0);
    assert!(prof.gpu_entry("generateConsensusKernel").is_some());
}

#[test]
fn bonito_speedup_exceeds_fifty() {
    let spec = DatasetSpec {
        name: "cal_fast5",
        genome_len: 2_000,
        n_reads: 3,
        read_len: 400,
        ..DatasetSpec::acinetobacter_pittii()
    };
    let input = BonitoInput::from_dataset(&spec);
    let model = BonitoModel::tiny(spec.seed);
    let opts = BonitoOpts { chunk: 500, batch: 8, threads: 4 };

    let cpu = basecall_cpu(&input, &model, &opts, &HostSpec::xeon_e5_2670(), &VirtualClock::new());
    let cluster = GpuCluster::k80_node();
    let mut ctx = CudaContext::new(&cluster, None, 2, "bonito").unwrap();
    let gpu = basecall_gpu(&input, &model, &opts, &cluster, &mut ctx).unwrap();
    ctx.destroy();

    let speedup = cpu.total_s / gpu.total_s;
    assert!(speedup > 50.0, "bonito speedup {speedup:.0} (paper: >50x)");
}

#[test]
fn klebsiella_cpu_time_is_roughly_four_times_acinetobacter() {
    // The paper approximates the 5.2 GB dataset at ~4× the 1.5 GB one
    // (3.47× by bytes; "approximated to last 4× longer").
    let shrink = |spec: DatasetSpec, n_reads: usize| DatasetSpec {
        genome_len: 2_000,
        n_reads,
        read_len: 300,
        ..spec
    };
    let host = HostSpec::xeon_e5_2670();
    let model = BonitoModel::tiny(1);
    let opts = BonitoOpts { chunk: 500, batch: 8, threads: 4 };

    let aci = shrink(DatasetSpec::acinetobacter_pittii(), 3);
    let kleb = shrink(DatasetSpec::klebsiella_ksb2(), 10);
    let t_aci =
        basecall_cpu(&BonitoInput::from_dataset(&aci), &model, &opts, &host, &VirtualClock::new())
            .total_s;
    let t_kleb =
        basecall_cpu(&BonitoInput::from_dataset(&kleb), &model, &opts, &host, &VirtualClock::new())
            .total_s;
    let ratio = t_kleb / t_aci;
    assert!(ratio > 2.8 && ratio < 4.2, "ratio {ratio:.2}");
}

#[test]
fn container_overhead_matches_paper() {
    let registry = galaxy::containers::ImageRegistry::with_paper_images();
    registry.pull("gulsumgudukbay/racon_dockerfile").unwrap();
    let overhead = registry.start_overhead("gulsumgudukbay/racon_dockerfile", false).unwrap();
    assert!(within(overhead, 0.6, 0.1), "container overhead {overhead:.2}");
}
