//! The paper's four multi-GPU case studies (§VI-C) asserted end-to-end
//! through the Galaxy + GYAN stack with lingering concurrent jobs.

mod common;

use common::{mask, testbed};
use galaxy::params::ParamDict;
use gpusim::smi;
use gyan::allocation::AllocationPolicy;
use gyan::gpu_usage::get_gpu_usage;

#[test]
fn case1_two_tools_land_on_their_requested_gpus() {
    let (cluster, mut app, _exec) = testbed(AllocationPolicy::ProcessId);
    let racon = app.submit("racon_dev0", &ParamDict::new()).unwrap();
    let bonito = app.submit("bonito_dev1", &ParamDict::new()).unwrap();
    assert_eq!(mask(&app, racon), "0");
    assert_eq!(mask(&app, bonito), "1");

    // nvidia-smi shows each process on its own device (paper Fig. 10).
    let usage = get_gpu_usage(&cluster);
    assert_eq!(usage.proc_gpu_dict[0].1.len(), 1);
    assert_eq!(usage.proc_gpu_dict[1].1.len(), 1);
    let racon_pid = app.job(racon).unwrap().pid.unwrap();
    let bonito_pid = app.job(bonito).unwrap().pid.unwrap();
    assert_eq!(usage.proc_gpu_dict[0].1, vec![racon_pid]);
    assert_eq!(usage.proc_gpu_dict[1].1, vec![bonito_pid]);

    // The busy Bonito device shows the paper's memory footprint.
    let table = smi::render_table(&cluster);
    assert!(table.contains("2734MiB /"), "fig-10 footprint missing:\n{table}");
}

#[test]
fn case2_second_instance_redirected_off_busy_gpu() {
    let (_cluster, mut app, _exec) = testbed(AllocationPolicy::ProcessId);
    let first = app.submit("bonito_dev1", &ParamDict::new()).unwrap();
    let second = app.submit("bonito_dev1", &ParamDict::new()).unwrap();
    assert_eq!(mask(&app, first), "1", "requested device granted while free");
    assert_eq!(mask(&app, second), "0", "busy device: redirected to the free one");
}

#[test]
fn case3_pid_allocation_scatters_when_all_busy() {
    let (cluster, mut app, _exec) = testbed(AllocationPolicy::ProcessId);
    let masks: Vec<String> = (0..4)
        .map(|_| {
            let id = app.submit("racon_dev0", &ParamDict::new()).unwrap();
            mask(&app, id).to_string()
        })
        .collect();
    assert_eq!(masks, vec!["0", "1", "0,1", "0,1"], "paper Fig. 9 Case 3 placement");

    // Fig. 11: instances 3 and 4 appear on BOTH devices.
    let usage = get_gpu_usage(&cluster);
    assert_eq!(usage.proc_gpu_dict[0].1.len(), 3);
    assert_eq!(usage.proc_gpu_dict[1].1.len(), 3);
    let on_both: Vec<u32> = usage.proc_gpu_dict[0]
        .1
        .iter()
        .filter(|pid| usage.proc_gpu_dict[1].1.contains(pid))
        .copied()
        .collect();
    assert_eq!(on_both.len(), 2);
}

#[test]
fn case4_memory_allocation_picks_least_loaded_gpu() {
    let (_cluster, mut app, _exec) = testbed(AllocationPolicy::MemoryBased);
    let racon = app.submit("racon_dev0", &ParamDict::new()).unwrap();
    let b1 = app.submit("bonito_dev1", &ParamDict::new()).unwrap();
    let b2 = app.submit("bonito_dev1", &ParamDict::new()).unwrap();
    assert_eq!(mask(&app, racon), "0");
    assert_eq!(mask(&app, b1), "1");
    // GPU 0 holds only racon's 60 MiB vs bonito's 2.7 GB on GPU 1: the
    // second bonito goes to GPU 0, and to GPU 0 alone (no scattering).
    assert_eq!(mask(&app, b2), "0");
}

#[test]
fn releasing_lingering_jobs_frees_devices() {
    let (cluster, mut app, exec) = testbed(AllocationPolicy::ProcessId);
    let a = app.submit("racon_dev0", &ParamDict::new()).unwrap();
    let _b = app.submit("racon_dev0", &ParamDict::new()).unwrap();
    assert!(cluster.available_devices().is_empty());
    exec.release(app.job(a).unwrap().pid.unwrap());
    assert_eq!(cluster.available_devices(), vec![0]);
    exec.release_all();
    assert_eq!(cluster.available_devices(), vec![0, 1]);
}
