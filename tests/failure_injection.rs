//! Failure injection: the stack must degrade cleanly when the GPU is
//! out of memory, images are missing, executables are unknown, or a
//! workflow step dies.

mod common;

use galaxy::params::ParamDict;
use galaxy::tool::macros::MacroLibrary;
use galaxy::workflow::{Workflow, WorkflowStep};
use galaxy::{GalaxyApp, GalaxyError, JobState};
use gpusim::{GpuCluster, GpuProcess};
use gyan::setup::GyanConfig;
use seqtools::ToolExecutor;
use std::sync::Arc;

fn build(cluster: &GpuCluster, config: GyanConfig) -> (GalaxyApp, Arc<ToolExecutor>) {
    common::build(
        cluster,
        config,
        &[common::tiny_fast5("fail_fast5", 1_200), common::tiny_racon("fail_racon")],
    )
}

const BONITO_DEV1: &str = r#"<tool id="bonito_dev1">
  <requirements><requirement type="compute" version="1">gpu</requirement></requirements>
  <command>bonito basecaller dna_r9.4.1 fail_fast5 > out</command>
</tool>"#;

#[test]
fn gpu_oom_fails_the_job_not_the_framework() {
    let cluster = GpuCluster::k80_node();
    // Hog device 1 so bonito's 512 MiB workspace cannot fit; pin every
    // other device away by hogging device 0 too (so the allocator cannot
    // dodge the failure).
    let total = cluster.with_device(0, |d| d.fb_total_mib()).unwrap();
    cluster.attach_process(0, GpuProcess::compute(1, "hog0", total - 200)).unwrap();
    cluster.attach_process(1, GpuProcess::compute(2, "hog1", total - 200)).unwrap();

    let (mut app, _exec) = build(&cluster, GyanConfig::default());
    app.install_tool_xml(BONITO_DEV1, &MacroLibrary::new()).unwrap();
    let err = app.submit("bonito_dev1", &ParamDict::new()).unwrap_err();
    assert!(matches!(err, GalaxyError::ToolFailed(_)), "{err}");
    let job = app.jobs()[0];
    assert_eq!(job.state(), JobState::Error);
    assert!(job.stderr.contains("out of memory"), "stderr: {}", job.stderr);
    // The failed context must not leak its process onto the devices.
    let procs0 = cluster.with_device(0, |d| d.processes().len()).unwrap();
    let procs1 = cluster.with_device(1, |d| d.processes().len()).unwrap();
    assert_eq!((procs0, procs1), (1, 1), "only the hogs remain");
}

#[test]
fn missing_container_image_fails_mapping_cleanly() {
    let cluster = GpuCluster::k80_node();
    let (mut app, _exec) = build(&cluster, GyanConfig::containerized());
    let wrapper = r#"<tool id="ghost_tool">
      <requirements>
        <requirement type="compute">gpu</requirement>
        <container type="docker">nosuch/image:latest</container>
      </requirements>
      <command>racon_gpu fail_racon</command>
    </tool>"#;
    app.install_tool_xml(wrapper, &MacroLibrary::new()).unwrap();
    let err = app.submit("ghost_tool", &ParamDict::new()).unwrap_err();
    assert!(matches!(err, GalaxyError::Container(_)), "{err}");
    assert_eq!(app.jobs()[0].state(), JobState::Error);
}

#[test]
fn unknown_executable_exits_127() {
    let cluster = GpuCluster::k80_node();
    let (mut app, _exec) = build(&cluster, GyanConfig::default());
    let wrapper = r#"<tool id="typo">
      <command>racoon --help</command>
    </tool>"#;
    app.install_tool_xml(wrapper, &MacroLibrary::new()).unwrap();
    let err = app.submit("typo", &ParamDict::new()).unwrap_err();
    assert!(matches!(err, GalaxyError::ToolFailed(_)));
    let job = app.jobs()[0];
    assert_eq!(job.exit_code, Some(127));
    assert!(job.stderr.contains("command not found"));
}

#[test]
fn workflow_aborts_after_failed_gpu_step() {
    let cluster = GpuCluster::k80_node();
    let total = cluster.with_device(0, |d| d.fb_total_mib()).unwrap();
    cluster.attach_process(0, GpuProcess::compute(1, "hog0", total - 200)).unwrap();
    cluster.attach_process(1, GpuProcess::compute(2, "hog1", total - 200)).unwrap();

    let (mut app, _exec) = build(&cluster, GyanConfig::default());
    app.install_tool_xml(BONITO_DEV1, &MacroLibrary::new()).unwrap();
    let echo = r#"<tool id="report"><command>echo $msg</command>
      <inputs><param name="msg" type="text" value="done"/></inputs></tool>"#;
    app.install_tool_xml(echo, &MacroLibrary::new()).unwrap();

    let wf = Workflow::new("doomed")
        .step(WorkflowStep::new("bonito_dev1"))
        .step(WorkflowStep::new("report").with_param("msg", "never"));
    let run = app.submit_workflow(&wf).unwrap();
    assert_eq!(run.failed_step, Some(0));
    assert!(run.job_ids.is_empty());
    assert_eq!(app.jobs().len(), 1, "second step never submitted");
}

#[test]
fn gpu_failure_falls_back_next_submission_still_works() {
    // After an OOM failure, freeing the hogs lets the next job succeed —
    // the framework carries no poisoned state.
    let cluster = GpuCluster::k80_node();
    let total = cluster.with_device(0, |d| d.fb_total_mib()).unwrap();
    cluster.attach_process(0, GpuProcess::compute(1, "hog0", total - 200)).unwrap();
    cluster.attach_process(1, GpuProcess::compute(2, "hog1", total - 200)).unwrap();
    let (mut app, _exec) = build(&cluster, GyanConfig::default());
    app.install_tool_xml(BONITO_DEV1, &MacroLibrary::new()).unwrap();
    assert!(app.submit("bonito_dev1", &ParamDict::new()).is_err());

    cluster.detach_process(0, 1).unwrap();
    cluster.detach_process(1, 2).unwrap();
    let id = app.submit("bonito_dev1", &ParamDict::new()).unwrap();
    assert_eq!(app.job(id).unwrap().state(), JobState::Ok);
}

#[test]
fn monitor_survives_failed_jobs() {
    let cluster = GpuCluster::k80_node();
    let monitor = gyan::UsageMonitor::start(&cluster);
    let total = cluster.with_device(0, |d| d.fb_total_mib()).unwrap();
    cluster.attach_process(0, GpuProcess::compute(1, "hog0", total - 200)).unwrap();
    cluster.attach_process(1, GpuProcess::compute(2, "hog1", total - 200)).unwrap();
    let (mut app, _exec) = build(&cluster, GyanConfig::default());
    app.install_tool_xml(BONITO_DEV1, &MacroLibrary::new()).unwrap();
    let _ = app.submit("bonito_dev1", &ParamDict::new());
    cluster.clock().advance(5.0);
    let samples = monitor.stop();
    assert!(!samples.is_empty());
    // The hog memory is visible in the trace.
    assert!(samples.last().unwrap().devices[0].fb_used_mib > total - 300);
}
