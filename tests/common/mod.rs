//! Helpers shared across the integration suites (pulled in per-binary
//! with `mod common;`).
//!
//! Each test binary compiles its own copy and no suite uses every
//! helper, so the module opts out of dead-code warnings wholesale.
#![allow(dead_code)]

use galaxy::containers::ImageRegistry;
use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::GpuCluster;
use gyan::allocation::AllocationPolicy;
use gyan::setup::{install_gyan, GyanConfig};
use seqtools::{DatasetSpec, ToolExecutor};
use std::sync::Arc;

/// Laptop-scale PacBio-style dataset (racon input). The name is
/// per-suite so dataset lookups never collide across binaries.
pub fn tiny_racon(name: &'static str) -> DatasetSpec {
    DatasetSpec {
        name,
        genome_len: 1_500,
        n_reads: 12,
        read_len: 1_200,
        ..DatasetSpec::alzheimers_nfl()
    }
}

/// Laptop-scale fast5-style dataset (bonito input). `genome_len` stays a
/// parameter because the suites deliberately size it differently.
pub fn tiny_fast5(name: &'static str, genome_len: usize) -> DatasetSpec {
    DatasetSpec {
        name,
        genome_len,
        n_reads: 2,
        read_len: 250,
        ..DatasetSpec::acinetobacter_pittii()
    }
}

/// A Galaxy app wired the standard way: the shipped GYAN job conf, the
/// paper's image registry, a seqtools executor with `datasets`
/// registered, and GYAN installed with `config`.
pub fn build(
    cluster: &GpuCluster,
    config: GyanConfig,
    datasets: &[DatasetSpec],
) -> (GalaxyApp, Arc<ToolExecutor>) {
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    app.set_registry(ImageRegistry::with_paper_images());
    let executor = Arc::new(ToolExecutor::new(cluster));
    for spec in datasets {
        executor.register_dataset(spec.clone());
    }
    app.set_executor(Box::new(executor.clone()));
    install_gyan(&mut app, cluster, config);
    (app, executor)
}

/// Wrapper XML for a GPU tool pinned to `gpu_ids` via the
/// `<requirement version>` attribute.
pub fn pinned_tool(id: &str, executable: &str, gpu_ids: &str, dataset: &str) -> String {
    format!(
        r#"<tool id="{id}" name="{id}">
          <requirements><requirement type="compute" version="{gpu_ids}">gpu</requirement></requirements>
          <command>{executable} -t 2 {dataset} > out</command>
          <outputs><data name="out" format="fasta"/></outputs>
        </tool>"#
    )
}

/// The paper's multi-GPU case-study testbed (§VI-C): a K80 node, a
/// lingering executor (jobs hold their devices until released), the
/// `case_pacbio` / `case_fast5` datasets, and the two pinned wrappers
/// `racon_dev0` / `bonito_dev1`.
pub fn testbed(policy: AllocationPolicy) -> (GpuCluster, GalaxyApp, Arc<ToolExecutor>) {
    let cluster = GpuCluster::k80_node();
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    let executor = Arc::new(ToolExecutor::new(&cluster).with_linger());
    executor.register_dataset(tiny_racon("case_pacbio"));
    executor.register_dataset(tiny_fast5("case_fast5", 1_000));
    app.set_executor(Box::new(executor.clone()));
    install_gyan(&mut app, &cluster, GyanConfig { policy, ..GyanConfig::default() });
    let lib = MacroLibrary::new();
    app.install_tool_xml(&pinned_tool("racon_dev0", "racon_gpu", "0", "case_pacbio"), &lib)
        .unwrap();
    app.install_tool_xml(&pinned_tool("bonito_dev1", "bonito basecaller", "1", "case_fast5"), &lib)
        .unwrap();
    (cluster, app, executor)
}

/// The `CUDA_VISIBLE_DEVICES` mask exported for job `id`.
pub fn mask(app: &GalaxyApp, id: u64) -> &str {
    app.job(id).unwrap().env_var("CUDA_VISIBLE_DEVICES").unwrap()
}
