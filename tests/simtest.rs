//! Deterministic simulation suite: seeded whole-stack scenarios with
//! fault injection and invariant checking (see `crates/simtest`).
//!
//! Knobs (also honored by `scripts/verify.sh`):
//!
//! * `SIMTEST_CASES=<n>` — number of seeded scenarios to run (default 25).
//! * `SIMTEST_SEED=<n>` — reproduce exactly that seed instead of the
//!   sweep. This is the string a failure report prints.

use simtest::{cases_from_env, check_seed, run_seed, seed_from_env, SimOptions};

/// Sweep seeds 0..N (or replay `SIMTEST_SEED`) under the production
/// wiring: every scenario — whatever faults it injects — must hold all
/// invariants at every wave barrier.
#[test]
fn seeded_scenarios_hold_invariants() {
    let options = SimOptions::default();
    if let Some(seed) = seed_from_env() {
        match check_seed(seed, &options) {
            Ok(report) => println!("SIMTEST_SEED={seed} passed: {report:?}"),
            Err(failure) => panic!("{failure}"),
        }
        return;
    }
    let cases = cases_from_env(25) as u64;
    let mut faulted = 0usize;
    for seed in 0..cases {
        match check_seed(seed, &options) {
            Ok(report) => {
                if report.error > 0 || report.cancelled > 0 {
                    faulted += 1;
                }
            }
            Err(failure) => panic!("{failure}"),
        }
    }
    // The sweep must actually exercise the fault paths, not just happy
    // runs; the generator's fault probabilities guarantee this for any
    // reasonable case count.
    assert!(faulted > 0, "no scenario out of {cases} exercised a fault path");
}

/// The canonical known-bad fault plan: dropping the discard listener
/// leaks the discarded wave's GPU leases. The checker must catch it and
/// print a single reproducing seed.
#[test]
fn unreleased_discard_leases_are_caught_with_a_reproducing_seed() {
    let bad = SimOptions { release_on_discard: false, force_wave_discard: Some(0) };
    let failure = (0..200)
        .find_map(|seed| check_seed(seed, &bad).err())
        .expect("a discarded GPU wave with no release listener must trip an invariant");
    assert_eq!(failure.invariant, "no_leaked_leases", "{failure}");
    let text = failure.to_string();
    assert!(text.contains(&format!("SIMTEST_SEED={}", failure.seed)), "{text}");
    assert!(text.contains("shrunk"), "shrinker did not run: {text}");

    // The operations plane must page on the same condition: the harness
    // evaluates its leaked-lease SLO rule at every wave barrier, so the
    // invariant failure arrives with the alert already firing — and with
    // a flight-recorder dump of the moments leading up to it.
    assert!(
        failure.fired_alerts.iter().any(|a| a == "leaked-lease"),
        "leaked-lease alert did not fire alongside the invariant: {text}"
    );
    assert!(text.contains("fired alerts: leaked-lease"), "{text}");
    let flight = failure.flight_jsonl.as_deref().expect("flight recorder dump captured");
    assert!(flight.starts_with("{\"type\":\"flightrec\""), "{flight}");

    // Reproduction contract: the printed seed alone re-creates the
    // failure, same invariant, no scenario serialization needed.
    let again = run_seed(failure.seed, &bad).expect_err("seed must reproduce the failure");
    assert_eq!(again.invariant, failure.invariant);
    assert!(again.fired_alerts.iter().any(|a| a == "leaked-lease"), "{again}");
}
