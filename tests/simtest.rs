//! Deterministic simulation suite: seeded whole-stack scenarios with
//! fault injection and invariant checking (see `crates/simtest`).
//!
//! Knobs (also honored by `scripts/verify.sh`):
//!
//! * `SIMTEST_CASES=<n>` — number of seeded scenarios to run (default 25).
//! * `SIMTEST_SEED=<n>` — reproduce exactly that seed instead of the
//!   sweep. This is the string a failure report prints.

use simtest::{cases_from_env, check_seed, run_seed, seed_from_env, SimOptions};

/// Sweep seeds 0..N (or replay `SIMTEST_SEED`) under the production
/// wiring: every scenario — whatever faults it injects — must hold all
/// invariants at every wave barrier.
#[test]
fn seeded_scenarios_hold_invariants() {
    let options = SimOptions::default();
    if let Some(seed) = seed_from_env() {
        match check_seed(seed, &options) {
            Ok(report) => println!("SIMTEST_SEED={seed} passed: {report:?}"),
            Err(failure) => panic!("{failure}"),
        }
        return;
    }
    let cases = cases_from_env(25) as u64;
    let mut faulted = 0usize;
    for seed in 0..cases {
        match check_seed(seed, &options) {
            Ok(report) => {
                if report.error > 0 || report.cancelled > 0 {
                    faulted += 1;
                }
            }
            Err(failure) => panic!("{failure}"),
        }
    }
    // The sweep must actually exercise the fault paths, not just happy
    // runs; the generator's fault probabilities guarantee this for any
    // reasonable case count.
    assert!(faulted > 0, "no scenario out of {cases} exercised a fault path");
}

/// The canonical known-bad fault plan: dropping the discard listener
/// leaks the discarded wave's GPU leases. The checker must catch it and
/// print a single reproducing seed.
#[test]
fn unreleased_discard_leases_are_caught_with_a_reproducing_seed() {
    let bad = SimOptions { release_on_discard: false, force_wave_discard: Some(0) };
    let failure = (0..200)
        .find_map(|seed| check_seed(seed, &bad).err())
        .expect("a discarded GPU wave with no release listener must trip an invariant");
    assert_eq!(failure.invariant, "no_leaked_leases", "{failure}");
    let text = failure.to_string();
    assert!(text.contains(&format!("SIMTEST_SEED={}", failure.seed)), "{text}");
    assert!(text.contains("shrunk"), "shrinker did not run: {text}");

    // The operations plane must page on the same condition: the harness
    // evaluates its leaked-lease SLO rule at every wave barrier, so the
    // invariant failure arrives with the alert already firing — and with
    // a flight-recorder dump of the moments leading up to it.
    assert!(
        failure.fired_alerts.iter().any(|a| a == "leaked-lease"),
        "leaked-lease alert did not fire alongside the invariant: {text}"
    );
    assert!(text.contains("fired alerts: leaked-lease"), "{text}");
    let flight = failure.flight_jsonl.as_deref().expect("flight recorder dump captured");
    assert!(flight.starts_with("{\"type\":\"flightrec\""), "{flight}");

    // Reproduction contract: the printed seed alone re-creates the
    // failure, same invariant, no scenario serialization needed.
    let again = run_seed(failure.seed, &bad).expect_err("seed must reproduce the failure");
    assert_eq!(again.invariant, failure.invariant);
    assert!(again.fired_alerts.iter().any(|a| a == "leaked-lease"), "{again}");
}

/// Fleet-layer sweep: seeded multi-node scenarios must hold the
/// per-shard conservation, fleet-wide no-double-booking, and
/// placement↔acquire invariants at every wave barrier.
#[test]
fn fleet_seeded_scenarios_hold_invariants() {
    use simtest::{run_fleet_seed, FleetSimOptions};
    let options = FleetSimOptions::default();
    if let Some(seed) = seed_from_env() {
        match run_fleet_seed(seed, &options) {
            Ok(report) => println!("SIMTEST_SEED={seed} passed: {report:?}"),
            Err(failure) => panic!("{failure}"),
        }
        return;
    }
    let cases = cases_from_env(25) as u64;
    let mut saw_rejection = false;
    for seed in 0..cases {
        match run_fleet_seed(seed, &options) {
            Ok(report) => saw_rejection |= report.rejected > 0,
            Err(failure) => panic!("{failure}"),
        }
    }
    // The rule/memory filters must actually bite somewhere in the sweep.
    assert!(saw_rejection, "no scenario out of {cases} exercised a placement rejection");
}

/// The verify-gate scale: a 100-node heterogeneous fleet with a
/// 10,000-user population holds every invariant, per shard and
/// fleet-wide. `SIMTEST_CASES` caps the sweep (default 3 at this size).
#[test]
fn fleet_100_node_10k_user_scenario_holds_invariants() {
    use simtest::{run_fleet_scenario, FleetScenario, FleetSimOptions};
    let options = FleetSimOptions::default();
    let cases = cases_from_env(3).min(25) as u64;
    for seed in 0..cases {
        let scenario = FleetScenario::large(seed);
        assert_eq!(scenario.node_count(), 100);
        assert_eq!(scenario.users, 10_000);
        let report =
            run_fleet_scenario(&scenario, &options).unwrap_or_else(|failure| panic!("{failure}"));
        assert!(report.ok > 0, "large fleet placed nothing: {report:?}");
    }
}

/// The fleet's canonical known-bad wiring: re-placing a job that still
/// holds leases strands them on the first shard. The checker must catch
/// it and print a single reproducing seed.
#[test]
fn fleet_double_placement_is_caught_with_a_reproducing_seed() {
    use simtest::{run_fleet_seed, FleetSimOptions};
    let bad = FleetSimOptions { double_place: Some(2), ..Default::default() };
    let failure = (0..100)
        .find_map(|seed| run_fleet_seed(seed, &bad).err())
        .expect("a double-placed job must trip a fleet invariant");
    assert!(
        failure.invariant == "fleet_lease_conservation"
            || failure.invariant == "fleet_no_double_booking",
        "{failure}"
    );
    let text = failure.to_string();
    assert!(text.contains(&format!("SIMTEST_SEED={}", failure.seed)), "{text}");

    // Reproduction contract: the printed seed alone re-creates the
    // failure with the same invariant.
    let again = run_fleet_seed(failure.seed, &bad).expect_err("seed must reproduce");
    assert_eq!(again.invariant, failure.invariant);
}

/// Shard-failure sweep: scenarios whose fault plan kills a node mid-wave
/// must keep every invariant under the correct wiring — leases
/// force-released as `node_lost`, lost jobs resubmitted with the dead
/// node excluded (or failed finally), and no booking ever pointing at
/// the corpse.
#[test]
fn fleet_node_death_holds_invariants_across_the_sweep() {
    use simtest::{run_fleet_seed, FleetScenario, FleetSimOptions};
    let options = FleetSimOptions::default();
    let cases = cases_from_env(25) as u64;
    let mut killed = 0usize;
    for seed in 0..cases {
        if FleetScenario::generate(seed).node_fault.is_some() {
            killed += 1;
        }
        if let Err(failure) = run_fleet_seed(seed, &options) {
            panic!("{failure}");
        }
    }
    assert!(killed > 0, "no scenario out of {cases} killed a node");
}

/// The shard-failure known-bad wiring: a fleet that keeps placing onto a
/// dead node (the node's leases were cleaned up, but the shard was never
/// marked dead) must be caught with a single reproducing seed.
#[test]
fn fleet_stale_dead_node_placement_is_caught_with_a_reproducing_seed() {
    use simtest::{run_fleet_seed, FleetSimOptions};
    let bad = FleetSimOptions { ignore_node_death: true, ..Default::default() };
    let failure = (0..100)
        .find_map(|seed| run_fleet_seed(seed, &bad).err())
        .expect("a job booked onto a dead node must trip a fleet invariant");
    assert_eq!(failure.invariant, "fleet_no_dead_node_booking", "{failure}");
    let text = failure.to_string();
    assert!(text.contains(&format!("SIMTEST_SEED={}", failure.seed)), "{text}");
    assert!(failure.scenario.contains("fault=node"), "{}", failure.scenario);

    let again = run_fleet_seed(failure.seed, &bad).expect_err("seed must reproduce");
    assert_eq!(again.invariant, failure.invariant);
}
