//! The reservation layer under the queue engine: same-wave contention
//! cannot double-book a device, invalid requests are audited, leases
//! survive neither failure, resubmission, nor discard shutdown, and a
//! property test holds the no-oversubscription invariant across random
//! schedules.

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::queue::{QueueConfig, QueueEngine, ResubmitPolicy, SubmissionState};
use galaxy::runners::{ExecutionPlan, ExecutionResult, JobExecutor, NullExecutor};
use galaxy::scheduler::{HandlerPool, JOBS_EXECUTED_COUNTER};
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::GpuCluster;
use gyan::allocation::AllocationPolicy;
use gyan::reservations::{
    LeaseTable, RESERVATIONS_ACQUIRED_COUNTER, RESERVATIONS_RELEASED_COUNTER,
    RESERVATION_CONFLICTS_COUNTER,
};
use gyan::setup::{install_gyan, GyanConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// A GPU tool whose requirement pins the given device ids (empty string =
/// no preference). The command is trivial — these tests exercise
/// placement, not tool simulation.
fn gpu_tool(id: &str, gpu_ids: &str) -> String {
    let version =
        if gpu_ids.is_empty() { String::new() } else { format!(" version=\"{gpu_ids}\"") };
    format!(
        r#"<tool id="{id}" name="{id}">
          <requirements><requirement type="compute"{version}>gpu</requirement></requirements>
          <command>echo {id}</command>
          <outputs><data name="out" format="txt"/></outputs>
        </tool>"#
    )
}

fn app_with_tools(
    cluster: &GpuCluster,
    policy: AllocationPolicy,
    tools: &[(&str, &str)],
) -> (GalaxyApp, LeaseTable) {
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    let table = install_gyan(&mut app, cluster, GyanConfig { policy, ..GyanConfig::default() });
    let lib = MacroLibrary::new();
    for (id, pins) in tools {
        app.install_tool_xml(&gpu_tool(id, pins), &lib).unwrap();
    }
    (app, table)
}

fn mask(engine: &QueueEngine, id: u64) -> String {
    engine.app().job(id).unwrap().env_var("CUDA_VISIBLE_DEVICES").unwrap_or("").to_string()
}

/// Two jobs pinned to the same device, prepared in the same dispatch wave
/// while SMI still shows the device free: without the lease table both
/// would export `CUDA_VISIBLE_DEVICES=1`. With it, the first gets the
/// device, the second is redirected, and the conflict is audited.
#[test]
fn same_wave_contention_cannot_double_book() {
    let cluster = GpuCluster::k80_node();
    let (app, table) = app_with_tools(
        &cluster,
        AllocationPolicy::ProcessId,
        &[("racon_dev1", "1"), ("bonito_dev1", "1")],
    );
    let mut engine = QueueEngine::new(app, Arc::new(NullExecutor), QueueConfig::default());

    let first = engine.submit_async("alice", "racon_dev1", &ParamDict::new()).unwrap();
    let second = engine.submit_async("alice", "bonito_dev1", &ParamDict::new()).unwrap();
    engine.run_until_idle();

    assert_eq!(engine.state(first), Some(SubmissionState::Ok));
    assert_eq!(engine.state(second), Some(SubmissionState::Ok));
    // One job holds the pinned device; its wave-mate is redirected to the
    // other device instead of double-booking.
    assert_eq!(mask(&engine, first.0), "1");
    assert_eq!(mask(&engine, second.0), "0");

    let rec = engine.app().recorder();
    let conflicts = rec.events_named("gyan.reservation.conflict");
    assert_eq!(conflicts.len(), 1, "exactly one contention");
    let c = &conflicts[0];
    assert_eq!(c.field("job_id").and_then(|v| v.as_f64()), Some(second.0 as f64));
    assert_eq!(c.field("baseline_devices").and_then(|v| v.as_str()), Some("1"));
    assert_eq!(c.field("granted_devices").and_then(|v| v.as_str()), Some("0"));
    assert_eq!(
        c.field("blocked_by").and_then(|v| v.as_str()),
        Some(format!("1:job{}", first.0).as_str())
    );
    assert_eq!(rec.metrics().counter_value(RESERVATION_CONFLICTS_COUNTER), 1);

    // Both jobs concluded, so every lease is back.
    assert_eq!(table.lease_count(), 0);
    assert_eq!(
        rec.metrics().counter_value(RESERVATIONS_ACQUIRED_COUNTER),
        rec.metrics().counter_value(RESERVATIONS_RELEASED_COUNTER)
    );
}

/// A request naming a device the node does not have is audited as
/// `invalid_request`, not silently treated as "no preference".
#[test]
fn invalid_device_request_is_audited() {
    let cluster = GpuCluster::k80_node();
    let (app, _table) = app_with_tools(&cluster, AllocationPolicy::ProcessId, &[("ghost", "7")]);
    let mut engine = QueueEngine::new(app, Arc::new(NullExecutor), QueueConfig::default());
    let h = engine.submit_async("alice", "ghost", &ParamDict::new()).unwrap();
    engine.run_until_idle();

    assert_eq!(engine.state(h), Some(SubmissionState::Ok));
    // The job still runs — on the free devices.
    assert_eq!(mask(&engine, h.0), "0,1");
    let decisions = engine.app().recorder().events_named("gyan.allocation.decision");
    let d = decisions.iter().find(|e| e.field("requested").and_then(|v| v.as_str()) == Some("7"));
    let d = d.expect("decision for the ghost request");
    assert_eq!(d.field("reason").and_then(|v| v.as_str()), Some("invalid_request"));
    assert_eq!(d.field("invalid_requested").and_then(|v| v.as_str()), Some("7"));
}

/// Fails like a dying device: nonzero exit with a CUDA OOM message on the
/// GPU destination, success anywhere else.
struct FailOnGpu;

impl JobExecutor for FailOnGpu {
    fn execute(&self, plan: &ExecutionPlan) -> ExecutionResult {
        if plan.destination_id == "local_gpu" {
            ExecutionResult::fail(42, "CUDA error: out of memory")
        } else {
            ExecutionResult::ok("recovered on cpu")
        }
    }
}

/// A job failing mid-execute on the GPU must release its lease *before*
/// the resubmitted CPU attempt is prepared — otherwise a retry storm
/// would pin devices nobody is using.
#[test]
fn gpu_failure_releases_lease_before_cpu_retry() {
    let cluster = GpuCluster::k80_node();
    let (app, table) =
        app_with_tools(&cluster, AllocationPolicy::ProcessId, &[("racon_dev1", "1")]);
    let config =
        QueueConfig { resubmit: ResubmitPolicy::gpu_to_cpu("local_cpu"), ..QueueConfig::default() };
    let mut engine = QueueEngine::new(app, Arc::new(FailOnGpu), config);

    let h = engine.submit_async("alice", "racon_dev1", &ParamDict::new()).unwrap();
    engine.run_until_idle();
    assert_eq!(engine.state(h), Some(SubmissionState::Ok), "CPU fallback succeeds");
    assert_eq!(table.lease_count(), 0);

    let rec = engine.app().recorder();
    // Exactly one acquisition: the GPU attempt. The CPU attempt maps to a
    // non-GPU destination and never touches the table.
    assert_eq!(rec.metrics().counter_value(RESERVATIONS_ACQUIRED_COUNTER), 1);
    assert_eq!(rec.metrics().counter_value(RESERVATIONS_RELEASED_COUNTER), 1);

    // Chronology: the failed attempt's release precedes the CPU attempt's
    // preparation (its hook export with gpu_enabled = false).
    let events = rec.events();
    let release = events
        .iter()
        .position(|e| {
            e.name == "gyan.reservation.release"
                && e.field("reason").and_then(|v| v.as_str()) == Some("failed_retryable")
        })
        .expect("retryable-failure release");
    let cpu_prepare = events
        .iter()
        .position(|e| {
            e.name == "gyan.hook.export"
                && e.field("gpu_enabled").and_then(|v| v.as_bool()) == Some(false)
        })
        .expect("CPU attempt hook export");
    assert!(
        release < cpu_prepare,
        "lease released (event {release}) before CPU re-prepare (event {cpu_prepare})"
    );
}

/// Executes slowly enough that a discard shutdown catches queued plans,
/// and remembers which job ids actually ran.
struct SlowOk {
    ran: std::sync::Mutex<Vec<u64>>,
}

impl JobExecutor for SlowOk {
    fn execute(&self, plan: &ExecutionPlan) -> ExecutionResult {
        std::thread::sleep(std::time::Duration::from_millis(25));
        self.ran.lock().unwrap().push(plan.job_id);
        ExecutionResult::ok("")
    }
}

/// Plans skipped by a discard shutdown never execute and never conclude —
/// the pool's discard listener must be the one to release their leases.
#[test]
fn discard_shutdown_releases_leases_of_never_executed_plans() {
    let cluster = GpuCluster::k80_node();
    let (mut app, table) =
        app_with_tools(&cluster, AllocationPolicy::ProcessId, &[("pin0", "0"), ("pin1", "1")]);
    let rec = app.recorder().clone();

    // Prepare a backlog of plans — each preparation leases devices.
    let mut ids = Vec::new();
    let mut plans = Vec::new();
    for i in 0..8 {
        let tool = if i % 2 == 0 { "pin0" } else { "pin1" };
        let id = app.create_job(tool, &ParamDict::new()).unwrap();
        plans.push(app.prepare_plan(id, None).unwrap());
        ids.push(id);
    }
    let acquired = rec.metrics().counter_value(RESERVATIONS_ACQUIRED_COUNTER);
    assert!(acquired > 0);

    let executor = Arc::new(SlowOk { ran: std::sync::Mutex::new(Vec::new()) });
    let pool = HandlerPool::with_recorder(executor.clone(), 1, rec.clone());
    pool.set_discard_listener(table.discard_listener(Some(rec.clone())));
    for plan in plans {
        pool.enqueue(plan);
    }
    pool.shutdown_now();

    let executed = rec.metrics().counter_value(JOBS_EXECUTED_COUNTER);
    assert!(executed < 8, "discard must skip queued plans, ran {executed}");

    // Every never-executed plan's leases were released by the listener;
    // executed plans were never concluded in this harness, so exactly
    // their leases remain.
    let ran = executor.ran.lock().unwrap().clone();
    let holders = table.holders();
    for id in &ids {
        if !ran.contains(id) {
            assert!(!holders.contains(id), "skipped job {id} leaked a lease");
        }
    }
    let held = table.lease_count() as u64;
    let released = rec.metrics().counter_value(RESERVATIONS_RELEASED_COUNTER);
    assert_eq!(acquired, released + held, "acquired = released + still-held");
    let discarded: Vec<_> = rec
        .events_named("gyan.reservation.release")
        .into_iter()
        .filter(|e| e.field("reason").and_then(|v| v.as_str()) == Some("discarded"))
        .collect();
    assert!(!discarded.is_empty(), "listener audited the skipped plans");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No-oversubscription invariant across arbitrary schedules: whatever
    /// the interleaving of users, pins (valid or not), failures, and
    /// worker counts, (a) an exclusive lease is only ever granted on a
    /// device with no active lease, (b) every acquired lease is released,
    /// and (c) every submission reaches a terminal state.
    #[test]
    fn random_schedules_never_oversubscribe(
        jobs in prop::collection::vec(
            (0u8..3, prop::option::of(0u32..4), any::<bool>()),
            1..12,
        ),
        workers in 1u32..5,
    ) {
        let cluster = GpuCluster::k80_node();
        // Tools covering every pin the generator can produce, plus "f_*"
        // twins the executor fails on the GPU destination.
        let mut tools: Vec<(String, String)> = Vec::new();
        for pin in ["", "0", "1", "2", "3"] {
            let suffix = if pin.is_empty() { "none".to_string() } else { pin.to_string() };
            tools.push((format!("t_{suffix}"), pin.to_string()));
            tools.push((format!("f_{suffix}"), pin.to_string()));
        }
        let tool_refs: Vec<(&str, &str)> =
            tools.iter().map(|(id, pin)| (id.as_str(), pin.as_str())).collect();
        let (app, table) = app_with_tools(&cluster, AllocationPolicy::MemoryBased, &tool_refs);

        struct FailTwinsOnGpu;
        impl JobExecutor for FailTwinsOnGpu {
            fn execute(&self, plan: &ExecutionPlan) -> ExecutionResult {
                if plan.destination_id == "local_gpu" && plan.tool_id.starts_with("f_") {
                    ExecutionResult::fail(42, "CUDA error: out of memory")
                } else {
                    ExecutionResult::ok("")
                }
            }
        }

        let config = QueueConfig {
            workers,
            resubmit: ResubmitPolicy::gpu_to_cpu("local_cpu"),
            ..QueueConfig::default()
        };
        let mut engine = QueueEngine::new(app, Arc::new(FailTwinsOnGpu), config);

        let mut handles = Vec::new();
        for (user, pin, fails) in &jobs {
            let prefix = if *fails { "f" } else { "t" };
            let suffix = match pin {
                Some(p) => p.to_string(),
                None => "none".to_string(),
            };
            let tool = format!("{prefix}_{suffix}");
            let user = format!("user{user}");
            handles.push(engine.submit_async(&user, &tool, &ParamDict::new()).unwrap());
        }
        engine.run_until_idle();

        // (c) every submission terminal.
        for h in &handles {
            let state = engine.state(*h);
            prop_assert!(
                matches!(state, Some(SubmissionState::Ok) | Some(SubmissionState::Error)),
                "non-terminal state {state:?}"
            );
        }

        // (b) every lease released.
        prop_assert_eq!(table.lease_count(), 0);
        let rec = engine.app().recorder();
        prop_assert_eq!(
            rec.metrics().counter_value(RESERVATIONS_ACQUIRED_COUNTER),
            rec.metrics().counter_value(RESERVATIONS_RELEASED_COUNTER)
        );

        // (a) replay the audit chronologically: an exclusive acquisition
        // must land on a device with zero active leases.
        let mut active: std::collections::HashMap<u32, Vec<(u64, bool)>> =
            std::collections::HashMap::new();
        for event in rec.events() {
            let device = || event.field("device").and_then(|v| v.as_f64()).unwrap() as u32;
            let holder = || event.field("job_id").and_then(|v| v.as_f64()).unwrap() as u64;
            match event.name.as_str() {
                "gyan.reservation.acquire" => {
                    let exclusive = event.field("exclusive").and_then(|v| v.as_bool()).unwrap();
                    let slot = active.entry(device()).or_default();
                    if exclusive {
                        prop_assert!(
                            slot.is_empty(),
                            "exclusive grant on device {} with {} active lease(s)",
                            device(),
                            slot.len()
                        );
                    }
                    slot.push((holder(), exclusive));
                }
                "gyan.reservation.release" => {
                    let slot = active.entry(device()).or_default();
                    let h = holder();
                    let pos = slot.iter().position(|(owner, _)| *owner == h);
                    prop_assert!(pos.is_some(), "release without a matching lease");
                    slot.remove(pos.unwrap());
                }
                _ => {}
            }
        }
        prop_assert!(active.values().all(Vec::is_empty), "leases left active at end of audit");
    }
}
