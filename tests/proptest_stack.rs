//! Property-based tests across the stack: allocation invariants under
//! arbitrary cluster states, device-mask parsing, window tiling, and POA
//! consensus sanity under random inputs.

use gpusim::cuda::parse_visible_devices;
use gpusim::{GpuCluster, GpuProcess};
use gyan::allocation::{select_gpus, AllocationPolicy};
use gyan::gpu_usage::get_gpu_usage;
use proptest::prelude::*;
use seqtools::poa::PoaGraph;
use seqtools::racon::build_windows;
use seqtools::sim::genome::random_genome;

/// An arbitrary occupancy pattern for a 2-GPU node: per-device process
/// memory sizes (empty vec = idle device).
fn occupancy_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(1u64..2000, 0..4), 2..=2)
}

fn cluster_with(occupancy: &[Vec<u64>]) -> GpuCluster {
    let cluster = GpuCluster::k80_node();
    let mut pid = 1000;
    for (minor, procs) in occupancy.iter().enumerate() {
        for &mib in procs {
            pid += 1;
            cluster.attach_process(minor as u32, GpuProcess::compute(pid, "tool", mib)).unwrap();
        }
    }
    cluster
}

proptest! {
    /// Whatever the cluster state and request, the allocator must return
    /// a non-empty set of *existing* devices, and must grant a requested
    /// free device exactly.
    #[test]
    fn allocation_always_returns_valid_devices(
        occupancy in occupancy_strategy(),
        requested in prop::collection::vec(0u32..4, 0..3),
        memory_policy in any::<bool>(),
    ) {
        let cluster = cluster_with(&occupancy);
        let policy = if memory_policy {
            AllocationPolicy::MemoryBased
        } else {
            AllocationPolicy::ProcessId
        };
        let alloc = select_gpus(&cluster, &requested, policy).expect("node has GPUs");
        prop_assert!(!alloc.devices.is_empty());
        for d in &alloc.devices {
            prop_assert!(*d < 2, "nonexistent device {d}");
        }
        // No duplicates in the mask.
        let mut sorted = alloc.devices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), alloc.devices.len());
        // The exported string parses back to the same devices.
        let parsed = parse_visible_devices(Some(&alloc.cuda_visible_devices), 2);
        prop_assert_eq!(&parsed, &alloc.devices);
        // A requested, existing, free device set must be granted as-is
        // (after deduplication).
        let mut requested_dedup: Vec<u32> = Vec::new();
        for id in &requested {
            if !requested_dedup.contains(id) {
                requested_dedup.push(*id);
            }
        }
        let usage = get_gpu_usage(&cluster);
        let all_free = !requested_dedup.is_empty()
            && requested_dedup.iter().all(|id| usage.avail_gpus.contains(id));
        if all_free {
            prop_assert!(alloc.granted_requested);
            prop_assert_eq!(&alloc.devices, &requested_dedup);
        }
    }

    /// Free devices are always preferred over busy ones.
    #[test]
    fn allocator_prefers_free_devices(occupancy in occupancy_strategy()) {
        let cluster = cluster_with(&occupancy);
        let usage = get_gpu_usage(&cluster);
        let alloc = select_gpus(&cluster, &[], AllocationPolicy::ProcessId).unwrap();
        if !usage.avail_gpus.is_empty() {
            prop_assert_eq!(&alloc.devices, &usage.avail_gpus);
        } else {
            prop_assert_eq!(&alloc.devices, &usage.all_gpus);
        }
    }

    /// The memory policy picks a device of minimal framebuffer usage when
    /// nothing is free.
    #[test]
    fn memory_policy_is_argmin(occupancy in occupancy_strategy()) {
        prop_assume!(occupancy.iter().all(|p| !p.is_empty())); // all busy
        let cluster = cluster_with(&occupancy);
        let alloc = select_gpus(&cluster, &[], AllocationPolicy::MemoryBased).unwrap();
        prop_assert_eq!(alloc.devices.len(), 1);
        let chosen = alloc.devices[0];
        let mem = gyan::gpu_usage::gpu_memory_usage(&cluster);
        let min = mem.iter().map(|(_, used)| *used).min().unwrap();
        let chosen_mem = mem.iter().find(|(m, _)| *m == chosen).unwrap().1;
        prop_assert_eq!(chosen_mem, min);
    }

    /// CUDA_VISIBLE_DEVICES parsing: never panics, never returns
    /// out-of-range or duplicate ordinals.
    #[test]
    fn visible_devices_parsing_is_safe(s in "[0-9, a-z]{0,16}", count in 0u32..8) {
        let parsed = parse_visible_devices(Some(&s), count);
        for d in &parsed {
            prop_assert!(*d < count);
        }
        let mut dedup = parsed.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), parsed.len());
    }

    /// Window tiling covers the draft exactly, regardless of sizes.
    #[test]
    fn windows_tile_exactly(len in 1usize..5000, window in 1usize..1000) {
        let draft = random_genome(len, 42);
        let windows = build_windows(&draft, &[], &[], window);
        prop_assert_eq!(windows.iter().map(|w| w.backbone.len()).sum::<usize>(), len);
        let mut expected_start = 0;
        for w in &windows {
            prop_assert_eq!(w.start, expected_start);
            prop_assert_eq!(w.end - w.start, w.backbone.len());
            expected_start = w.end;
        }
    }

    /// POA: adding the same sequence N times always yields that sequence
    /// as consensus, and edge weights grow linearly.
    #[test]
    fn poa_consensus_of_repeats_is_identity(seq in "[ACGT]{10,60}", n in 1usize..5) {
        let mut g = PoaGraph::from_sequence(seq.as_bytes());
        for _ in 0..n {
            g.add_sequence(seq.as_bytes(), None);
        }
        prop_assert_eq!(g.consensus(), seq.clone());
        prop_assert_eq!(g.consensus_anchored(), seq.clone());
        prop_assert_eq!(g.node_count(), seq.len());
        prop_assert_eq!(g.total_edge_weight() as usize, (n + 1) * (seq.len() - 1));
    }

    /// The nvidia-smi XML stays parseable for arbitrary cluster states
    /// and round-trips the process placement.
    #[test]
    fn smi_xml_roundtrips_processes(occupancy in occupancy_strategy()) {
        let cluster = cluster_with(&occupancy);
        let usage = get_gpu_usage(&cluster);
        for (minor, procs) in occupancy.iter().enumerate() {
            prop_assert_eq!(usage.proc_gpu_dict[minor].1.len(), procs.len());
        }
    }
}

proptest! {
    /// The template engine never panics, whatever the source looks like —
    /// it either parses or returns a structured error.
    #[test]
    fn template_parse_never_panics(src in "[ -~\\n#$]{0,200}") {
        let _ = galaxy::template::Template::parse(&src);
    }

    /// A parsed template renders without panicking when every referenced
    /// variable is defined.
    #[test]
    fn template_render_never_panics_with_full_params(
        cond_val in "[a-z]{0,6}",
        body in "[a-zA-Z ]{0,20}",
    ) {
        let src = format!("#if $flag == \"yes\"\n{body} $x\n#else\nno\n#end if\n");
        let t = galaxy::template::Template::parse(&src).unwrap();
        let mut params = galaxy::ParamDict::new();
        params.set("flag", cond_val);
        params.set("x", "v");
        let rendered = t.render(&params).unwrap();
        prop_assert!(rendered == "no\n" || rendered.contains("v"));
    }

    /// FASTA round-trips arbitrary valid records at any wrap width.
    #[test]
    fn fasta_roundtrip(
        seqs in prop::collection::vec("[ACGTN]{1,80}", 1..5),
        width in 0usize..50,
    ) {
        let records: Vec<seqtools::fasta::FastaRecord> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| seqtools::fasta::FastaRecord::new(format!("r{i}"), s.clone()))
            .collect();
        let text = seqtools::fasta::write_fasta(&records, width);
        let parsed = seqtools::fasta::parse_fasta(&text).unwrap();
        prop_assert_eq!(parsed, records);
    }

    /// Banded and full POA both produce consensus close to the truth when
    /// reads are low-error full-length copies; banding never corrupts the
    /// backbone anchoring.
    #[test]
    fn banded_poa_stays_close_to_full(seed in 0u64..50) {
        use seqtools::sim::reads::{mutate_sequence, ErrorModel};
        use rand::SeedableRng;
        let truth = random_genome(250, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabc);
        let build = |band: Option<usize>, rng: &mut rand::rngs::StdRng| {
            let mut g = PoaGraph::from_sequence(truth.as_bytes());
            for _ in 0..8 {
                let read = mutate_sequence(&truth, &ErrorModel::pacbio().scaled(0.5), rng);
                g.add_sequence(read.as_bytes(), band);
            }
            g.consensus_anchored()
        };
        let full = build(None, &mut rng);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabc);
        let banded = build(Some(100), &mut rng);
        let id_full = seqtools::align::identity(&full, &truth);
        let id_banded = seqtools::align::identity(&banded, &truth);
        prop_assert!(id_full > 0.95, "full {id_full}");
        prop_assert!(id_banded > id_full - 0.05, "banded {id_banded} vs full {id_full}");
    }

    /// The job state machine never reaches Ok without passing Running.
    #[test]
    fn job_state_machine_is_sound(transitions in prop::collection::vec(0u8..6, 0..12)) {
        use galaxy::JobState::*;
        let states = [New, Queued, Running, Ok, Error, Deleted];
        let mut job = galaxy::Job::new(1, "t", galaxy::ParamDict::new());
        let mut ran = false;
        for t in transitions {
            let target = states[t as usize];
            let before = job.state();
            if job.transition(target).is_ok() {
                // Legal edges only.
                prop_assert!(before != target);
                if target == Ok {
                    prop_assert_eq!(before, Running);
                    ran = true;
                }
                if target == Running {
                    prop_assert_eq!(before, Queued);
                }
            } else {
                prop_assert_eq!(job.state(), before, "failed transition must not change state");
            }
        }
        if job.state() == Ok {
            prop_assert!(ran);
        }
    }
}

/// Map a uniform draw in `1..=1_000_000` to a Pareto-tailed sample —
/// the shape of real footprint streams (many small peaks, a heavy
/// tail), and the worst case for fixed-width histogram designs.
fn pareto(u: u64) -> f64 {
    let uniform = u as f64 / 1_000_001.0;
    let xm = 8.0;
    let alpha = 1.3;
    (xm / (1.0 - uniform).powf(1.0 / alpha)).min(1e9)
}

proptest! {
    /// The sketch merge is exactly commutative, and associative up to
    /// float-summation order in the exact `sum` carry-along: shard
    /// sketches merged in any order give identical quantiles — the
    /// property the footprint registry's per-bucket aggregation relies
    /// on for replica-identical profiles.
    #[test]
    fn sketch_merge_is_commutative_and_associative(
        a in prop::collection::vec(1u64..1_000_000, 0..120),
        b in prop::collection::vec(1u64..1_000_000, 0..120),
        c in prop::collection::vec(1u64..1_000_000, 0..120),
    ) {
        let fill = |vals: &[u64]| {
            let mut s = obs::sketch::QuantileSketch::default();
            for &v in vals {
                s.observe(pareto(v));
            }
            s
        };
        let (sa, sb, sc) = (fill(&a), fill(&b), fill(&c));

        // Commutative: bucket counts, min/max, and the f64 sum all
        // commute, so the merged sketches are bitwise-equal structs.
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // Associative: bucket counts add exactly in any grouping, so
        // every quantile matches; only the float sum may differ in the
        // last ulp.
        let mut ab_c = ab.clone();
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c.count(), a_bc.count());
        prop_assert_eq!(ab_c.min(), a_bc.min());
        prop_assert_eq!(ab_c.max(), a_bc.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(ab_c.quantile(q), a_bc.quantile(q), "q={}", q);
        }
        let (s1, s2) = (ab_c.sum(), a_bc.sum());
        prop_assert!((s1 - s2).abs() <= 1e-9 * s1.abs().max(1.0), "{} vs {}", s1, s2);
    }

    /// Two sketches fed the same stream are bitwise-identical — no
    /// hidden randomness, no insertion-order sensitivity beyond the
    /// stream itself.
    #[test]
    fn sketch_is_deterministic(values in prop::collection::vec(1u64..1_000_000, 0..200)) {
        let fill = || {
            let mut s = obs::sketch::QuantileSketch::default();
            for &v in &values {
                s.observe(pareto(v));
            }
            s
        };
        prop_assert_eq!(fill(), fill());
    }

    /// Every quantile estimate is within the promised `2·alpha`
    /// relative error of the exact same-rank sample, even over a
    /// heavy-tailed stream.
    #[test]
    fn sketch_quantiles_respect_the_relative_error_bound(
        values in prop::collection::vec(1u64..1_000_000, 1..300),
    ) {
        let mut sketch = obs::sketch::QuantileSketch::default();
        let mut exact: Vec<f64> = Vec::with_capacity(values.len());
        for &v in &values {
            let x = pareto(v);
            sketch.observe(x);
            exact.push(x);
        }
        exact.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let n = exact.len();
        for q in [0.0, 0.1, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            // The sketch's rank convention: 1-based ceil(q·n), clamped.
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let truth = exact[rank - 1];
            let est = sketch.quantile(q).unwrap();
            let bound = 2.0 * sketch.alpha() * truth + 1e-9;
            prop_assert!(
                (est - truth).abs() <= bound,
                "q={} est={} truth={} bound={}", q, est, truth, bound
            );
        }
    }
}
