//! End-to-end integration: the full Fig. 2 pipeline with GYAN installed —
//! tool XML parse → dynamic destination mapping → GPU allocation → env
//! export → command render → (containerized) execution → history.

use galaxy::history::DatasetState;
use galaxy::params::ParamDict;
use galaxy::tool::macros::MacroLibrary;
use galaxy::{GalaxyApp, JobState};
use gpusim::GpuCluster;
use gyan::setup::GyanConfig;
use seqtools::{DatasetSpec, ToolExecutor};
use std::sync::Arc;

mod common;

fn tiny_racon_spec() -> DatasetSpec {
    DatasetSpec {
        name: "it_racon",
        genome_len: 2_000,
        n_reads: 16,
        read_len: 1_500,
        ..DatasetSpec::alzheimers_nfl()
    }
}

fn tiny_bonito_spec() -> DatasetSpec {
    DatasetSpec {
        name: "it_fast5",
        genome_len: 1_500,
        n_reads: 2,
        read_len: 300,
        ..DatasetSpec::acinetobacter_pittii()
    }
}

const RACON_WRAPPER: &str = r#"<tool id="racon_gpu" name="Racon">
  <requirements>
    <requirement type="compute">gpu</requirement>
    <container type="docker">gulsumgudukbay/racon_dockerfile</container>
  </requirements>
  <command><![CDATA[
#if $__galaxy_gpu_enabled__ == "true"
racon_gpu -t $threads it_racon > out.fa
#else
racon -t $threads it_racon > out.fa
#end if
]]></command>
  <inputs><param name="threads" type="integer" value="2"/></inputs>
  <outputs><data name="consensus" format="fasta"/></outputs>
</tool>"#;

const BONITO_WRAPPER: &str = r#"<tool id="bonito" name="Bonito">
  <requirements><requirement type="compute">gpu</requirement></requirements>
  <command><![CDATA[
#if $__galaxy_gpu_enabled__ == "true"
bonito basecaller dna_r9.4.1 it_fast5 > calls.fa
#else
bonito basecaller --device=cpu dna_r9.4.1 it_fast5 > calls.fa
#end if
]]></command>
  <outputs><data name="basecalls" format="fasta"/></outputs>
</tool>"#;

fn build_app(cluster: &GpuCluster, config: GyanConfig) -> (GalaxyApp, Arc<ToolExecutor>) {
    let (mut app, executor) =
        common::build(cluster, config, &[tiny_racon_spec(), tiny_bonito_spec()]);
    let lib = MacroLibrary::new();
    app.install_tool_xml(RACON_WRAPPER, &lib).unwrap();
    app.install_tool_xml(BONITO_WRAPPER, &lib).unwrap();
    (app, executor)
}

#[test]
fn gpu_job_runs_on_gpu_destination_with_device_mask() {
    let cluster = GpuCluster::k80_node();
    let (mut app, executor) = build_app(&cluster, GyanConfig::default());
    let id = app.submit("racon_gpu", &ParamDict::new()).unwrap();
    let job = app.job(id).unwrap();
    assert_eq!(job.state(), JobState::Ok);
    assert_eq!(job.destination_id.as_deref(), Some("local_gpu"));
    assert_eq!(job.env_var("GALAXY_GPU_ENABLED"), Some("true"));
    assert_eq!(job.env_var("CUDA_VISIBLE_DEVICES"), Some("0,1"));
    assert!(job.command_line.as_deref().unwrap().starts_with("racon_gpu"));
    assert!(job.runtime().unwrap() > 0.0);
    // The GPU run produced an NVProf profile with the POA kernels.
    let prof = executor.profiler_for_job(id).expect("profiler recorded");
    assert!(prof.gpu_entry("generatePOAKernel").is_some());
    // Output landed in the history.
    let datasets = app.history().datasets_for_job(id);
    assert_eq!(datasets.len(), 1);
    assert_eq!(datasets[0].state, DatasetState::Ok);
    assert!(datasets[0].content.starts_with(">consensus"));
}

#[test]
fn same_tool_falls_back_to_cpu_without_gpus() {
    let cluster = GpuCluster::cpu_only_node();
    let (mut app, _executor) = build_app(&cluster, GyanConfig::default());
    let id = app.submit("racon_gpu", &ParamDict::new()).unwrap();
    let job = app.job(id).unwrap();
    assert_eq!(job.state(), JobState::Ok);
    assert_eq!(job.destination_id.as_deref(), Some("local_cpu"));
    assert_eq!(job.env_var("GALAXY_GPU_ENABLED"), Some("false"));
    assert!(job.command_line.as_deref().unwrap().starts_with("racon "));
    assert!(job.env_var("CUDA_VISIBLE_DEVICES").is_none());
}

#[test]
fn containerized_gpu_job_gets_gpus_flag_and_overhead() {
    let cluster = GpuCluster::k80_node();
    let (mut app, _executor) = build_app(&cluster, GyanConfig::containerized());
    let id = app.submit("racon_gpu", &ParamDict::new()).unwrap();
    let job = app.job(id).unwrap();
    assert_eq!(job.destination_id.as_deref(), Some("docker_gpu"));
    // The launch event captured the mutated docker command line.
    let launch = app
        .events()
        .iter()
        .find(|e| e.message.contains("docker run"))
        .expect("docker launch logged");
    assert!(launch.message.contains("--gpus all"));
    assert!(launch.message.contains("CUDA_VISIBLE_DEVICES=0,1"));
    assert!(launch.message.contains("gulsumgudukbay/racon_dockerfile"));
}

#[test]
fn bonito_gpu_and_cpu_paths_give_identical_basecalls() {
    let gpu_cluster = GpuCluster::k80_node();
    let (mut gpu_app, _e1) = build_app(&gpu_cluster, GyanConfig::default());
    let gpu_id = gpu_app.submit("bonito", &ParamDict::new()).unwrap();

    let cpu_cluster = GpuCluster::cpu_only_node();
    let (mut cpu_app, _e2) = build_app(&cpu_cluster, GyanConfig::default());
    let cpu_id = cpu_app.submit("bonito", &ParamDict::new()).unwrap();

    let gpu_out = &gpu_app.history().datasets_for_job(gpu_id)[0].content;
    let cpu_out = &cpu_app.history().datasets_for_job(cpu_id)[0].content;
    assert!(!gpu_out.is_empty());
    assert_eq!(gpu_out, cpu_out, "device choice must not change results");
    // ... but it must change runtime, massively.
    let gpu_t = gpu_app.job(gpu_id).unwrap().runtime().unwrap();
    let cpu_t = cpu_app.job(cpu_id).unwrap().runtime().unwrap();
    assert!(cpu_t / gpu_t > 20.0, "speedup only {:.1}", cpu_t / gpu_t);
}

#[test]
fn sequential_jobs_reuse_freed_gpus() {
    let cluster = GpuCluster::k80_node();
    let (mut app, _executor) = build_app(&cluster, GyanConfig::default());
    for _ in 0..3 {
        let id = app.submit("racon_gpu", &ParamDict::new()).unwrap();
        // Without linger mode every job releases its devices, so each run
        // sees the full node.
        assert_eq!(app.job(id).unwrap().env_var("CUDA_VISIBLE_DEVICES"), Some("0,1"));
    }
    assert_eq!(cluster.available_devices(), vec![0, 1]);
}

#[test]
fn virtual_clock_orders_job_timestamps() {
    let cluster = GpuCluster::k80_node();
    let (mut app, _executor) = build_app(&cluster, GyanConfig::default());
    let a = app.submit("racon_gpu", &ParamDict::new()).unwrap();
    let b = app.submit("racon_gpu", &ParamDict::new()).unwrap();
    let job_a = app.job(a).unwrap();
    let job_b = app.job(b).unwrap();
    assert!(job_a.end_time.unwrap() <= job_b.start_time.unwrap());
    assert!(job_b.end_time.unwrap() > job_a.end_time.unwrap());
}
