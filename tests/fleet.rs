//! The fleet layer end to end: deterministic multi-node placement over
//! heterogeneous architectures, TPV-style destination rules, queue-engine
//! dispatch with node-labeled ledger snapshots, and the node-labeled
//! fleet operations plane.

use fleet::{
    fleet_gpus_json, fleet_nodes_json, fleet_ops_server, install_fleet, policy_by_name, BinPack,
    DestinationRule, DestinationRules, FairShare, Fleet, FleetConfig, NodeClass, PlacementRequest,
};
use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::queue::{QueueConfig, QueueEngine, SubmissionState};
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::GpuCluster;
use obs::serve::http_get;
use obs::slo::AlertEngine;
use obs::Recorder;
use seqtools::ToolExecutor;
use std::sync::Arc;

// &[0] pins one minor so each placement takes exactly one die (an empty
// request takes every free die on the chosen node).
fn request<'a>(job_id: u64, user: &'a str, tool: &'a str, hint: u64) -> PlacementRequest<'a> {
    PlacementRequest { job_id, user, tool_id: tool, requested: &[0], memory_hint_mib: hint }
}

fn heterogeneous_fleet() -> Fleet {
    Fleet::builder()
        .nodes(NodeClass::k80(), 3)
        .nodes(NodeClass::v100(), 2)
        .nodes(NodeClass::a100(), 1)
        .build()
}

// --- Satellite: placement determinism ---------------------------------

/// Same fleet state + same request sequence ⇒ identical node choices,
/// across fresh fleets and across policies.
#[test]
fn placement_is_deterministic_for_every_policy() {
    for policy in ["least_loaded", "bin_pack", "fair_share"] {
        let run = || {
            let fleet = Fleet::builder()
                .nodes(NodeClass::k80(), 4)
                .nodes(NodeClass::a100(), 2)
                .policy(policy_by_name(policy).unwrap())
                .build();
            (0..12u64)
                .map(|job| {
                    let user = if job % 2 == 0 { "ada" } else { "bob" };
                    fleet.place(&request(job, user, "racon_gpu", 256)).map(|p| p.node)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "policy {policy} must be deterministic");
    }
}

/// Tie-break ordering: equal scores resolve to the lowest node id, so an
/// idle homogeneous fleet fills node 0 first, then 1, then 2 — never a
/// permutation.
#[test]
fn ties_resolve_to_the_lowest_node_id_in_order() {
    let fleet = Fleet::builder().nodes(NodeClass::k80(), 3).build();
    let nodes: Vec<u32> = (0..3u64)
        .map(|job| fleet.place(&request(job, "ada", "racon_gpu", 256)).unwrap().node)
        .collect();
    assert_eq!(nodes, vec![0, 1, 2]);
}

// --- Policies over heterogeneous hardware ------------------------------

#[test]
fn bin_pack_saturates_one_node_before_the_next() {
    let fleet = Fleet::builder()
        .nodes(NodeClass::k80(), 2) // 2 dies each
        .policy(Arc::new(BinPack))
        .build();
    let nodes: Vec<u32> = (0..4u64)
        .map(|job| fleet.place(&request(job, "ada", "racon_gpu", 256)).unwrap().node)
        .collect();
    assert_eq!(nodes, vec![0, 0, 1, 1], "fill node 0's two dies, then node 1's");
}

#[test]
fn fair_share_spreads_a_burst_across_nodes() {
    let fleet = Fleet::builder().nodes(NodeClass::k80(), 3).policy(Arc::new(FairShare)).build();
    let nodes: Vec<u32> = (0..3u64)
        .map(|job| fleet.place(&request(job, "ada", "racon_gpu", 256)).unwrap().node)
        .collect();
    assert_eq!(nodes, vec![0, 1, 2], "one user's burst may not pile onto one node");
}

// --- Destination rules over node classes -------------------------------

#[test]
fn rules_route_tools_to_admissible_classes_only() {
    let rules =
        DestinationRules::parse("tool=bonito* classes=v100,a100 min_gpu_mem_mib=12000\ntool=*\n")
            .unwrap();
    let fleet = Fleet::builder()
        .nodes(NodeClass::k80(), 3)
        .nodes(NodeClass::v100(), 1)
        .rules(rules)
        .build();
    // bonito skips all three (lower-id, emptier) K80 nodes.
    let p = fleet.place(&request(1, "ada", "bonito", 256)).expect("v100 admits bonito");
    assert_eq!((p.node, p.node_class.as_str()), (3, "v100"));
    // racon is unconstrained and lands on the first K80.
    let p = fleet.place(&request(2, "ada", "racon_gpu", 256)).expect("k80 admits racon");
    assert_eq!(p.node_class, "k80");
}

#[test]
fn memory_hints_exclude_small_die_classes() {
    let fleet = heterogeneous_fleet();
    // 20 GB only fits an A100 die (K80 = 11,441 MiB, V100 = 16,160 MiB).
    let p = fleet.place(&request(1, "ada", "racon_gpu", 20_000)).expect("a100 fits");
    assert_eq!(p.node_class, "a100");
    // 100 GB fits nothing.
    assert!(fleet.place(&request(2, "ada", "racon_gpu", 100_000)).is_none());
}

#[test]
fn right_sizing_comes_from_the_matching_rule() {
    let rules = DestinationRules::new()
        .with(DestinationRule::any("bonito*").on_classes(["a100"]).with_cores(8).with_mem(65_536))
        .with(DestinationRule::any("*"));
    let fleet = Fleet::builder().nodes(NodeClass::a100(), 1).rules(rules).build();
    let p = fleet.place(&request(1, "ada", "bonito", 1024)).unwrap();
    assert_eq!((p.cores, p.mem_mib), (8, 65_536));
    // The catch-all rule right-sizes to the whole node.
    let p = fleet.place(&request(2, "ada", "racon_gpu", 1024)).unwrap();
    assert_eq!((p.cores, p.mem_mib), (64, 512 * 1024));
}

// --- Queue-engine dispatch with node-labeled snapshots -----------------

// Echo-bodied so the stock executor can run it without datasets; the
// `#if` still proves the GPU branch was taken.
const FLEET_GPU_TOOL: &str = r#"<tool id="racon_gpu" name="Racon">
  <requirements><requirement type="compute">gpu</requirement></requirements>
  <command><![CDATA[
#if $__galaxy_gpu_enabled__ == "true"
echo gpu
#else
echo cpu
#end if
]]></command>
  <outputs><data name="out" format="txt"/></outputs>
</tool>"#;

/// Full dispatch path: QueueEngine fair-share waves → dynamic rule →
/// FleetHook placement → GALAXY_NODE export → node-labeled ledger
/// snapshot, with leases released at the wave barrier.
#[test]
fn queue_dispatch_stamps_the_node_onto_the_ledger() {
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    app.install_tool_xml(FLEET_GPU_TOOL, &MacroLibrary::new()).unwrap();
    let fleet = Fleet::builder().nodes(NodeClass::k80(), 2).nodes(NodeClass::a100(), 1).build();
    // GYAN_JOB_CONF ships local_gpu/local_cpu destinations; point the
    // fleet config at those.
    install_fleet(
        &mut app,
        &fleet,
        FleetConfig {
            gpu_destination: "local_gpu".to_string(),
            gpu_destinations: vec!["local_gpu".to_string()],
            ..FleetConfig::default()
        },
    );
    let executor = Arc::new(ToolExecutor::new(&GpuCluster::cpu_only_node()));
    let mut engine = QueueEngine::new(app, executor, QueueConfig::default());

    let handles: Vec<u64> = (0..3)
        .map(|_| engine.submit_async("ada", "racon_gpu", &ParamDict::new()).unwrap().0)
        .collect();
    engine.run_until_idle();

    let ledger = engine.ledger();
    let nodes: Vec<Option<String>> =
        handles.iter().map(|id| ledger.get(*id).unwrap().node.clone()).collect();
    for (handle, node) in handles.iter().zip(&nodes) {
        assert_eq!(engine.state(galaxy::queue::JobHandle(*handle)), Some(SubmissionState::Ok));
        let name = node.as_deref().unwrap_or_else(|| panic!("job {handle} has no node label"));
        assert!(name.starts_with("k80-") || name.starts_with("a100-"), "unexpected node {name}");
        // The wrapper's #if took the GPU branch.
        assert_eq!(engine.app().job(*handle).unwrap().stdout, "gpu");
    }
    // Wave barrier concluded everything: no leases or bookings survive.
    assert_eq!(fleet.total_lease_count(), 0);
    assert!(fleet.active_placements().is_empty());
}

// --- Fleet operations plane --------------------------------------------

#[test]
fn fleet_ops_plane_labels_gpus_nodes_and_metrics() {
    let recorder = Recorder::new();
    let fleet = Fleet::builder()
        .nodes(NodeClass::k80(), 1)
        .nodes(NodeClass::a100(), 1)
        .recorder(recorder.clone())
        .build();
    fleet.place(&request(1, "ada", "racon_gpu", 256)).unwrap();
    fleet.place(&request(2, "ada", "bonito", 20_000)).unwrap();

    let gpus = obs::json::parse(&fleet_gpus_json(&fleet)).unwrap();
    let devices = gpus.get("gpus").and_then(|v| v.as_array()).unwrap();
    assert_eq!(devices.len(), 10, "2 K80 dies + 8 A100 dies");
    assert!(devices.iter().any(|d| d.get("node").and_then(|v| v.as_str()) == Some("k80-000")));
    assert!(devices.iter().any(|d| d.get("node").and_then(|v| v.as_str()) == Some("a100-001")));

    let nodes = obs::json::parse(&fleet_nodes_json(&fleet)).unwrap();
    let list = nodes.get("nodes").and_then(|v| v.as_array()).unwrap();
    assert_eq!(list.len(), 2);
    assert_eq!(list[1].get("arch").and_then(|v| v.as_str()), Some("A100-SXM4-40GB"));

    let ledger = galaxy::queue::JobsLedger::new();
    let alerts = AlertEngine::new(&recorder);
    let handle =
        fleet_ops_server(&recorder, &fleet, &ledger, &alerts).start("127.0.0.1:0").expect("bind");
    let (status, body) = http_get(handle.addr(), "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("fleet_placements_total{node=\"k80-000\"} 1"), "{body}");
    assert!(body.contains("fleet_placements_total{node=\"a100-001\"} 1"), "{body}");
    let (status, body) = http_get(handle.addr(), "/api/nodes").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"node\":\"a100-001\""), "{body}");
    handle.shutdown();
}

// --- Heterogeneous pricing sanity --------------------------------------

/// The same placement is *priced* differently per node class: a kernel
/// runs strictly faster on newer architectures, so destination rules that
/// steer basecallers to V100/A100 nodes buy real simulated speedups.
#[test]
fn node_classes_price_the_same_kernel_differently() {
    let seconds_on = |class: NodeClass| {
        let spec = gpusim::KernelSpec::fp32("polish", 4096, 256, 1e12, 1e9);
        spec.duration(&class.arch).unwrap().total_s
    };
    let k80 = seconds_on(NodeClass::k80());
    let v100 = seconds_on(NodeClass::v100());
    let a100 = seconds_on(NodeClass::a100());
    assert!(k80 > v100 && v100 > a100, "k80={k80} v100={v100} a100={a100}");
}
