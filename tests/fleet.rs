//! The fleet layer end to end: deterministic multi-node placement over
//! heterogeneous architectures, TPV-style destination rules, queue-engine
//! dispatch with node-labeled ledger snapshots, and the node-labeled
//! fleet operations plane.

use fleet::{
    fleet_gpus_json, fleet_nodes_json, fleet_ops_server, install_fleet, policy_by_name, BinPack,
    DestinationRule, DestinationRules, FairShare, Fleet, FleetConfig, FleetHook, NodeClass,
    PlacementRequest,
};
use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::queue::{QueueConfig, QueueEngine, SubmissionState};
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::GpuCluster;
use obs::serve::http_get;
use obs::slo::AlertEngine;
use obs::Recorder;
use seqtools::ToolExecutor;
use std::sync::Arc;

// &[0] pins one minor so each placement takes exactly one die (an empty
// request takes every free die on the chosen node).
fn request<'a>(job_id: u64, user: &'a str, tool: &'a str, hint: u64) -> PlacementRequest<'a> {
    PlacementRequest {
        job_id,
        user,
        tool_id: tool,
        requested: &[0],
        memory_hint_mib: hint,
        excluded_nodes: &[],
    }
}

fn heterogeneous_fleet() -> Fleet {
    Fleet::builder()
        .nodes(NodeClass::k80(), 3)
        .nodes(NodeClass::v100(), 2)
        .nodes(NodeClass::a100(), 1)
        .build()
}

// --- Satellite: placement determinism ---------------------------------

/// Same fleet state + same request sequence ⇒ identical node choices,
/// across fresh fleets and across policies.
#[test]
fn placement_is_deterministic_for_every_policy() {
    for policy in ["least_loaded", "bin_pack", "fair_share"] {
        let run = || {
            let fleet = Fleet::builder()
                .nodes(NodeClass::k80(), 4)
                .nodes(NodeClass::a100(), 2)
                .policy(policy_by_name(policy).unwrap())
                .build();
            (0..12u64)
                .map(|job| {
                    let user = if job % 2 == 0 { "ada" } else { "bob" };
                    fleet.place(&request(job, user, "racon_gpu", 256)).map(|p| p.node)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "policy {policy} must be deterministic");
    }
}

/// Tie-break ordering: equal scores resolve to the lowest node id, so an
/// idle homogeneous fleet fills node 0 first, then 1, then 2 — never a
/// permutation.
#[test]
fn ties_resolve_to_the_lowest_node_id_in_order() {
    let fleet = Fleet::builder().nodes(NodeClass::k80(), 3).build();
    let nodes: Vec<u32> = (0..3u64)
        .map(|job| fleet.place(&request(job, "ada", "racon_gpu", 256)).unwrap().node)
        .collect();
    assert_eq!(nodes, vec![0, 1, 2]);
}

// --- Policies over heterogeneous hardware ------------------------------

#[test]
fn bin_pack_saturates_one_node_before_the_next() {
    let fleet = Fleet::builder()
        .nodes(NodeClass::k80(), 2) // 2 dies each
        .policy(Arc::new(BinPack))
        .build();
    let nodes: Vec<u32> = (0..4u64)
        .map(|job| fleet.place(&request(job, "ada", "racon_gpu", 256)).unwrap().node)
        .collect();
    assert_eq!(nodes, vec![0, 0, 1, 1], "fill node 0's two dies, then node 1's");
}

#[test]
fn fair_share_spreads_a_burst_across_nodes() {
    let fleet = Fleet::builder().nodes(NodeClass::k80(), 3).policy(Arc::new(FairShare)).build();
    let nodes: Vec<u32> = (0..3u64)
        .map(|job| fleet.place(&request(job, "ada", "racon_gpu", 256)).unwrap().node)
        .collect();
    assert_eq!(nodes, vec![0, 1, 2], "one user's burst may not pile onto one node");
}

// --- Destination rules over node classes -------------------------------

#[test]
fn rules_route_tools_to_admissible_classes_only() {
    let rules =
        DestinationRules::parse("tool=bonito* classes=v100,a100 min_gpu_mem_mib=12000\ntool=*\n")
            .unwrap();
    let fleet = Fleet::builder()
        .nodes(NodeClass::k80(), 3)
        .nodes(NodeClass::v100(), 1)
        .rules(rules)
        .build();
    // bonito skips all three (lower-id, emptier) K80 nodes.
    let p = fleet.place(&request(1, "ada", "bonito", 256)).expect("v100 admits bonito");
    assert_eq!((p.node, p.node_class.as_str()), (3, "v100"));
    // racon is unconstrained and lands on the first K80.
    let p = fleet.place(&request(2, "ada", "racon_gpu", 256)).expect("k80 admits racon");
    assert_eq!(p.node_class, "k80");
}

#[test]
fn memory_hints_exclude_small_die_classes() {
    let fleet = heterogeneous_fleet();
    // 20 GB only fits an A100 die (K80 = 11,441 MiB, V100 = 16,160 MiB).
    let p = fleet.place(&request(1, "ada", "racon_gpu", 20_000)).expect("a100 fits");
    assert_eq!(p.node_class, "a100");
    // 100 GB fits nothing.
    assert!(fleet.place(&request(2, "ada", "racon_gpu", 100_000)).is_none());
}

#[test]
fn right_sizing_comes_from_the_matching_rule() {
    let rules = DestinationRules::new()
        .with(DestinationRule::any("bonito*").on_classes(["a100"]).with_cores(8).with_mem(65_536))
        .with(DestinationRule::any("*"));
    let fleet = Fleet::builder().nodes(NodeClass::a100(), 1).rules(rules).build();
    let p = fleet.place(&request(1, "ada", "bonito", 1024)).unwrap();
    assert_eq!((p.cores, p.mem_mib), (8, 65_536));
    // The catch-all rule right-sizes to the whole node.
    let p = fleet.place(&request(2, "ada", "racon_gpu", 1024)).unwrap();
    assert_eq!((p.cores, p.mem_mib), (64, 512 * 1024));
}

// --- Queue-engine dispatch with node-labeled snapshots -----------------

// Echo-bodied so the stock executor can run it without datasets; the
// `#if` still proves the GPU branch was taken.
const FLEET_GPU_TOOL: &str = r#"<tool id="racon_gpu" name="Racon">
  <requirements><requirement type="compute">gpu</requirement></requirements>
  <command><![CDATA[
#if $__galaxy_gpu_enabled__ == "true"
echo gpu
#else
echo cpu
#end if
]]></command>
  <outputs><data name="out" format="txt"/></outputs>
</tool>"#;

/// Full dispatch path: QueueEngine fair-share waves → dynamic rule →
/// FleetHook placement → GALAXY_NODE export → node-labeled ledger
/// snapshot, with leases released at the wave barrier.
#[test]
fn queue_dispatch_stamps_the_node_onto_the_ledger() {
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    app.install_tool_xml(FLEET_GPU_TOOL, &MacroLibrary::new()).unwrap();
    let fleet = Fleet::builder().nodes(NodeClass::k80(), 2).nodes(NodeClass::a100(), 1).build();
    // GYAN_JOB_CONF ships local_gpu/local_cpu destinations; point the
    // fleet config at those.
    install_fleet(
        &mut app,
        &fleet,
        FleetConfig {
            gpu_destination: "local_gpu".to_string(),
            gpu_destinations: vec!["local_gpu".to_string()],
            ..FleetConfig::default()
        },
    );
    let executor = Arc::new(ToolExecutor::new(&GpuCluster::cpu_only_node()));
    let mut engine = QueueEngine::new(app, executor, QueueConfig::default());

    let handles: Vec<u64> = (0..3)
        .map(|_| engine.submit_async("ada", "racon_gpu", &ParamDict::new()).unwrap().0)
        .collect();
    engine.run_until_idle();

    let ledger = engine.ledger();
    let nodes: Vec<Option<String>> =
        handles.iter().map(|id| ledger.get(*id).unwrap().node.clone()).collect();
    for (handle, node) in handles.iter().zip(&nodes) {
        assert_eq!(engine.state(galaxy::queue::JobHandle(*handle)), Some(SubmissionState::Ok));
        let name = node.as_deref().unwrap_or_else(|| panic!("job {handle} has no node label"));
        assert!(name.starts_with("k80-") || name.starts_with("a100-"), "unexpected node {name}");
        // The wrapper's #if took the GPU branch.
        assert_eq!(engine.app().job(*handle).unwrap().stdout, "gpu");
    }
    // Wave barrier concluded everything: no leases or bookings survive.
    assert_eq!(fleet.total_lease_count(), 0);
    assert!(fleet.active_placements().is_empty());
}

// --- Fleet operations plane --------------------------------------------

#[test]
fn fleet_ops_plane_labels_gpus_nodes_and_metrics() {
    let recorder = Recorder::new();
    let fleet = Fleet::builder()
        .nodes(NodeClass::k80(), 1)
        .nodes(NodeClass::a100(), 1)
        .recorder(recorder.clone())
        .build();
    fleet.place(&request(1, "ada", "racon_gpu", 256)).unwrap();
    fleet.place(&request(2, "ada", "bonito", 20_000)).unwrap();

    let gpus = obs::json::parse(&fleet_gpus_json(&fleet)).unwrap();
    let devices = gpus.get("gpus").and_then(|v| v.as_array()).unwrap();
    assert_eq!(devices.len(), 10, "2 K80 dies + 8 A100 dies");
    assert!(devices.iter().any(|d| d.get("node").and_then(|v| v.as_str()) == Some("k80-000")));
    assert!(devices.iter().any(|d| d.get("node").and_then(|v| v.as_str()) == Some("a100-001")));

    let nodes = obs::json::parse(&fleet_nodes_json(&fleet)).unwrap();
    let list = nodes.get("nodes").and_then(|v| v.as_array()).unwrap();
    assert_eq!(list.len(), 2);
    assert_eq!(list[1].get("arch").and_then(|v| v.as_str()), Some("A100-SXM4-40GB"));

    let ledger = galaxy::queue::JobsLedger::new();
    let alerts = AlertEngine::new(&recorder);
    let handle =
        fleet_ops_server(&recorder, &fleet, &ledger, &alerts).start("127.0.0.1:0").expect("bind");
    let (status, body) = http_get(handle.addr(), "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("fleet_placements_total{node=\"k80-000\"} 1"), "{body}");
    assert!(body.contains("fleet_placements_total{node=\"a100-001\"} 1"), "{body}");
    let (status, body) = http_get(handle.addr(), "/api/nodes").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"node\":\"a100-001\""), "{body}");
    handle.shutdown();
}

// --- Placement-aware resubmission --------------------------------------

// Fails on any GPU attempt (unknown command → exit 127) and succeeds on
// CPU: the resubmission ladder's worst customer.
const GPU_FLAKY_TOOL: &str = r#"<tool id="racon_gpu" name="Racon">
  <requirements><requirement type="compute">gpu</requirement></requirements>
  <command><![CDATA[
#if $__galaxy_gpu_enabled__ == "true"
racoon_segfault
#else
echo cpu
#end if
]]></command>
  <outputs><data name="out" format="txt"/></outputs>
</tool>"#;

fn fleet_engine(fleet: &Fleet, policy: galaxy::queue::ResubmitPolicy) -> QueueEngine {
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    app.install_tool_xml(GPU_FLAKY_TOOL, &MacroLibrary::new()).unwrap();
    install_fleet(
        &mut app,
        fleet,
        FleetConfig {
            gpu_destination: "local_gpu".to_string(),
            gpu_destinations: vec!["local_gpu".to_string()],
            ..FleetConfig::default()
        },
    );
    let executor = Arc::new(ToolExecutor::new(&GpuCluster::cpu_only_node()));
    let config = galaxy::queue::QueueConfig { resubmit: policy, ..Default::default() };
    QueueEngine::new(app, executor, config)
}

/// The tentpole end to end: a GPU failure first retries *on the fleet*
/// with the failed node excluded (landing on the other node class), and
/// only when the node-retry budget is spent falls down the ladder to
/// CPU — each hop audited with the failed node and the exclusion set.
#[test]
fn failed_node_is_excluded_on_retry_before_falling_to_cpu() {
    let fleet = Fleet::builder().nodes(NodeClass::k80(), 1).nodes(NodeClass::a100(), 1).build();
    let policy = galaxy::queue::ResubmitPolicy::placement_aware("local_cpu", 1);
    let mut engine = fleet_engine(&fleet, policy);

    let handle = engine.submit_async("ada", "racon_gpu", &ParamDict::new()).unwrap();
    engine.run_until_idle();

    // Three attempts: k80-000 (fails) → a100-001 (fails) → CPU (ok).
    assert_eq!(engine.state(handle), Some(SubmissionState::Ok));
    let snap = engine.ledger().get(handle.0).unwrap();
    assert_eq!(snap.attempts, 3);
    assert_eq!(snap.destination.as_deref(), Some("local_cpu"));

    let rec = engine.app().recorder();
    let dispatched: Vec<String> = rec
        .events_named("galaxy.queue.dispatch")
        .iter()
        .map(|e| e.field("destination").and_then(|v| v.as_str()).unwrap().to_string())
        .collect();
    assert_eq!(dispatched, ["local_gpu", "local_gpu", "local_cpu"]);

    let resubmits = rec.events_named("galaxy.queue.resubmit");
    assert_eq!(resubmits.len(), 2);
    let field = |i: usize, k: &str| {
        resubmits[i].field(k).and_then(|v| v.as_str()).map(str::to_string).unwrap()
    };
    // Hop 1: node retry — same destination, dead node excluded.
    assert_eq!(field(0, "reason"), "node_excluded");
    assert_eq!(field(0, "from_node"), "k80-000");
    assert_eq!(field(0, "to_destination"), "local_gpu");
    assert_eq!(field(0, "excluded_nodes"), "k80-000");
    // Hop 2: budget spent — down the ladder, from the *other* node.
    assert_eq!(field(1, "reason"), "fallback");
    assert_eq!(field(1, "from_node"), "a100-001");
    assert_eq!(field(1, "to_destination"), "local_cpu");
    assert_eq!(field(1, "excluded_nodes"), "k80-000");

    // Every failed attempt's leases were released before its retry.
    assert_eq!(fleet.total_lease_count(), 0);
    assert!(fleet.active_placements().is_empty());
}

/// Bugfix regression: a GPU→CPU retry must not inherit the failed GPU
/// attempt's exports — the ledger snapshot carries no node label and the
/// job record no `CUDA_VISIBLE_DEVICES`/`GALAXY_NODE` after the CPU
/// attempt concludes.
#[test]
fn cpu_retry_carries_no_stale_node_or_device_mask() {
    let fleet = Fleet::builder().nodes(NodeClass::k80(), 1).build();
    let policy = galaxy::queue::ResubmitPolicy::gpu_to_cpu("local_cpu");
    let mut engine = fleet_engine(&fleet, policy);

    let handle = engine.submit_async("ada", "racon_gpu", &ParamDict::new()).unwrap();
    engine.run_until_idle();

    assert_eq!(engine.state(handle), Some(SubmissionState::Ok));
    // The GPU attempt really ran on a node (the resubmit audit names it) …
    let rec = engine.app().recorder();
    let resubmits = rec.events_named("galaxy.queue.resubmit");
    assert_eq!(resubmits.len(), 1);
    assert_eq!(resubmits[0].field("from_node").and_then(|v| v.as_str()), Some("k80-000"));
    // … but the retried attempt is scrubbed clean of it, everywhere.
    let snap = engine.ledger().get(handle.0).unwrap();
    assert_eq!(snap.node, None, "CPU retry must not keep the dead attempt's node label");
    assert_eq!(snap.destination.as_deref(), Some("local_cpu"));
    let job = engine.app().job(handle.0).unwrap();
    assert_eq!(job.env_var("GALAXY_GPU_ENABLED"), Some("false"));
    assert_eq!(job.env_var("CUDA_VISIBLE_DEVICES"), None);
    assert_eq!(job.env_var(galaxy::GALAXY_NODE_ENV), None);
    assert_eq!(job.stdout, "cpu");
}

/// Release-before-retry ordering: on a single fully-booked node, the
/// retry can only place if the failed attempt's leases were released
/// *before* the retry's placement ran.
#[test]
fn resubmission_releases_leases_before_the_retry_places() {
    let fleet = Fleet::builder().nodes(NodeClass::k80(), 1).build();
    // Retry on the same GPU destination (no node retry, no CPU): both
    // attempts need the node's full die set.
    let policy = galaxy::queue::ResubmitPolicy {
        max_attempts: 2,
        fallbacks: vec!["local_gpu".into()],
        node_retries: 0,
        footprint_retries: 0,
    };
    let mut engine = fleet_engine(&fleet, policy);

    let handle = engine.submit_async("ada", "racon_gpu", &ParamDict::new()).unwrap();
    engine.run_until_idle();

    // Both attempts fail on GPU; the second still *placed* — which is
    // only possible if release preceded the retry's placement.
    assert_eq!(engine.state(handle), Some(SubmissionState::Error));
    let snap = engine.ledger().get(handle.0).unwrap();
    assert_eq!(snap.attempts, 2);
    assert_eq!(snap.node.as_deref(), Some("k80-000"), "retry re-placed on the freed node");
    let job = engine.app().job(handle.0).unwrap();
    assert_eq!(job.env_var("GALAXY_GPU_ENABLED"), Some("true"));
    assert_eq!(fleet.total_lease_count(), 0, "final conclusion released the retry's leases");
}

// --- Release idempotency under failure paths ---------------------------

/// `after_conclude` firing twice for the same job (a retry racing a
/// conclusion) must not double-release or corrupt counts; nor must a
/// release arriving after the job's node already died.
#[test]
fn release_is_idempotent_across_double_conclude_and_node_death() {
    use galaxy::runners::{JobConclusion, JobHook};
    let fleet = Fleet::builder().nodes(NodeClass::k80(), 2).build();
    let hook = FleetHook::new(&fleet, ["fleet_gpu"]);

    // Double conclude.
    fleet.place(&request(1, "ada", "racon_gpu", 256)).unwrap();
    hook.after_conclude(1, JobConclusion::FailedRetryable);
    hook.after_conclude(1, JobConclusion::FailedRetryable);
    assert_eq!(fleet.total_lease_count(), 0);
    assert!(fleet.active_placements().is_empty());

    // Release after node death: the booking is already gone.
    let p = fleet.place(&request(2, "ada", "racon_gpu", 256)).unwrap();
    let node_name = p.node_name.clone();
    assert_eq!(fleet.fail_node(&node_name), Some(vec![2]));
    hook.after_conclude(2, JobConclusion::FailedRetryable);
    assert_eq!(fleet.total_lease_count(), 0);
    assert!(fleet.active_placements().is_empty());

    // The dead node stays out of placement; the survivor still serves.
    let p = fleet.place(&request(3, "ada", "racon_gpu", 256)).expect("survivor places");
    assert_ne!(p.node_name, node_name);
    hook.after_conclude(3, JobConclusion::Ok);
    assert_eq!(fleet.total_lease_count(), 0);
}

// --- Destination memory hints: rule/hook agreement + validation --------

fn hint_conf(hint: &str) -> JobConfig {
    JobConfig::from_xml(&format!(
        r#"<job_conf>
          <plugins><plugin id="local" type="runner" load="x"/></plugins>
          <destinations default="dyn">
            <destination id="dyn" runner="dynamic">
              <param id="function">gpu_dynamic_destination</param>
            </destination>
            <destination id="fleet_gpu" runner="local">
              <param id="gpu_memory_hint_mib">{hint}</param>
            </destination>
            <destination id="local_cpu" runner="local"/>
          </destinations>
        </job_conf>"#
    ))
    .unwrap()
}

const SMALL_GPU_TOOL: &str = r#"<tool id="racon_gpu"><requirements>
  <requirement type="compute">gpu</requirement>
</requirements><command>racon_gpu</command></tool>"#;

/// Bugfix regression: the dynamic rule must resolve the same
/// per-destination `gpu_memory_hint_mib` the hook uses. A 20 GB hint on
/// a K80-only fleet (11,441 MiB dies) must route to CPU at the *rule*,
/// not bounce off placement after committing to the GPU destination.
#[test]
fn rule_and_hook_agree_on_the_destination_memory_hint() {
    let mut app = GalaxyApp::new(hint_conf("20000"));
    app.install_tool_xml(SMALL_GPU_TOOL, &MacroLibrary::new()).unwrap();
    let fleet = Fleet::builder().nodes(NodeClass::k80(), 2).build();
    install_fleet(&mut app, &fleet, FleetConfig::default());

    let id = app.submit("racon_gpu", &ParamDict::new()).unwrap();
    let job = app.job(id).unwrap();
    // With the config-level default (1,024 MiB) the rule would have said
    // "the fleet hosts this" and stranded the job on fleet_gpu with a
    // CPU environment; resolving the destination's own hint routes it
    // straight to the CPU destination instead.
    assert_eq!(job.destination_id.as_deref(), Some("local_cpu"));
    assert_eq!(job.env_var("GALAXY_GPU_ENABLED"), Some("false"));
    assert_eq!(fleet.total_lease_count(), 0);
}

/// Bugfix regression: a malformed `gpu_memory_hint_mib` falls back to
/// the default, but no longer silently — it bumps a counter and emits a
/// decision-audit event naming the typo.
#[test]
fn malformed_memory_hint_is_audited_not_silent() {
    use fleet::{FLEET_INVALID_HINT_COUNTER, FLEET_INVALID_HINT_EVENT};
    let recorder = Recorder::new();
    let mut app = GalaxyApp::new(hint_conf("lots"));
    app.install_tool_xml(SMALL_GPU_TOOL, &MacroLibrary::new()).unwrap();
    let fleet = Fleet::builder().nodes(NodeClass::k80(), 1).recorder(recorder.clone()).build();
    install_fleet(&mut app, &fleet, FleetConfig::default());

    let id = app.submit("racon_gpu", &ParamDict::new()).unwrap();
    // The default hint (1,024 MiB) fits a K80 die: the job still runs on
    // the fleet.
    let job = app.job(id).unwrap();
    assert_eq!(job.destination_id.as_deref(), Some("fleet_gpu"));
    assert_eq!(job.env_var("GALAXY_GPU_ENABLED"), Some("true"));

    assert_eq!(recorder.metrics().counter_value(FLEET_INVALID_HINT_COUNTER), 1);
    let audits = recorder.events_named(FLEET_INVALID_HINT_EVENT);
    assert_eq!(audits.len(), 1);
    assert_eq!(audits[0].field("raw").and_then(|v| v.as_str()), Some("lots"));
    assert_eq!(audits[0].field("destination").and_then(|v| v.as_str()), Some("fleet_gpu"));
    assert_eq!(audits[0].field("fallback_mib").and_then(|v| v.as_f64()), Some(1024.0));
}

// --- Cordon / drain over the queue path --------------------------------

/// Cordoned nodes keep serving releases for their in-flight leases but
/// take no new placements; drain resolves once the count hits zero, and
/// uncordon restores placement.
#[test]
fn cordon_drain_uncordon_lifecycle_over_live_leases() {
    let fleet = Fleet::builder().nodes(NodeClass::k80(), 2).build();
    fleet.place(&request(1, "ada", "racon_gpu", 256)).unwrap();
    assert_eq!(fleet.node_of(1), Some(0));

    assert_eq!(fleet.drain("k80-000"), Some(1), "one lease still draining");
    assert_eq!(fleet.is_drained("k80-000"), Some(false));
    // New work skips the cordoned node even though it is emptier.
    let p = fleet.place(&request(2, "ada", "racon_gpu", 256)).unwrap();
    assert_eq!(p.node_name, "k80-001");
    // The cordoned shard still serves its release; drain resolves.
    fleet.release(1, "ok");
    assert_eq!(fleet.is_drained("k80-000"), Some(true));

    assert!(fleet.uncordon("k80-000"));
    let p = fleet.place(&request(3, "ada", "racon_gpu", 256)).unwrap();
    assert_eq!(p.node_name, "k80-000", "uncordoned node takes work again");
    fleet.release(2, "ok");
    fleet.release(3, "ok");
    assert_eq!(fleet.total_lease_count(), 0);
}

// --- Heterogeneous pricing sanity --------------------------------------

/// The same placement is *priced* differently per node class: a kernel
/// runs strictly faster on newer architectures, so destination rules that
/// steer basecallers to V100/A100 nodes buy real simulated speedups.
#[test]
fn node_classes_price_the_same_kernel_differently() {
    let seconds_on = |class: NodeClass| {
        let spec = gpusim::KernelSpec::fp32("polish", 4096, 256, 1e12, 1e9);
        spec.duration(&class.arch).unwrap().total_s
    };
    let k80 = seconds_on(NodeClass::k80());
    let v100 = seconds_on(NodeClass::v100());
    let a100 = seconds_on(NodeClass::a100());
    assert!(k80 > v100 && v100 > a100, "k80={k80} v100={v100} a100={a100}");
}
