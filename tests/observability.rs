//! End-to-end observability: one instrumented Galaxy + GYAN run exports a
//! span tree per job, decision audit events matching the paper's multi-GPU
//! placements, Prometheus metrics, and a merged Chrome trace in which a
//! job's span encloses its GPU kernel/DMA intervals — all on virtual time,
//! so every artifact is byte-for-byte deterministic.

use galaxy::app::{JOBS_OK_COUNTER, JOBS_SUBMITTED_COUNTER};
use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::runners::{ExecutionPlan, JobExecutor};
use galaxy::scheduler::{
    HandlerPool, JOBS_EXECUTED_COUNTER, QUEUE_DEPTH_GAUGE, WORKERS_BUSY_GAUGE,
};
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::GpuCluster;
use gyan::allocation::AllocationPolicy;
use gyan::setup::{install_gyan, GyanConfig};
use gyan::UsageMonitor;
use obs::metrics::parse_prometheus;
use seqtools::ToolExecutor;
use std::sync::Arc;

mod common;

const PHASES: [&str; 6] = [
    "galaxy.tool_parse",
    "galaxy.map_destination",
    "galaxy.hooks",
    "galaxy.template_render",
    "galaxy.container_assembly",
    "galaxy.dispatch",
];

use common::{pinned_tool, tiny_racon};

/// The multi-GPU testbed from `tests/multi_gpu_cases.rs`, plus a plain CPU
/// tool with no GPU requirement (and without the `bonito_dev1` wrapper,
/// which one test here re-pins onto the racon dataset).
fn testbed(policy: AllocationPolicy) -> (GpuCluster, GalaxyApp, Arc<ToolExecutor>) {
    let cluster = GpuCluster::k80_node();
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    let executor = Arc::new(ToolExecutor::new(&cluster).with_linger());
    executor.register_dataset(tiny_racon("case_pacbio"));
    app.set_executor(Box::new(executor.clone()));
    install_gyan(&mut app, &cluster, GyanConfig { policy, ..GyanConfig::default() });
    let lib = MacroLibrary::new();
    app.install_tool_xml(&pinned_tool("racon_dev0", "racon_gpu", "0", "case_pacbio"), &lib)
        .unwrap();
    app.install_tool_xml(
        r#"<tool id="count_reads" name="count"><command>echo counted > out</command></tool>"#,
        &lib,
    )
    .unwrap();
    (cluster, app, executor)
}

fn job_span(app: &GalaxyApp, job_id: u64) -> obs::SpanData {
    app.recorder()
        .spans_named("galaxy.job")
        .into_iter()
        .find(|s| s.field("job_id").and_then(|v| v.as_f64()) == Some(job_id as f64))
        .expect("job span recorded")
}

#[test]
fn every_pipeline_phase_nests_under_the_job_span() {
    let (_cluster, mut app, _exec) = testbed(AllocationPolicy::ProcessId);
    let gpu_job = app.submit("racon_dev0", &ParamDict::new()).unwrap();
    let cpu_job = app.submit("count_reads", &ParamDict::new()).unwrap();

    for id in [gpu_job, cpu_job] {
        let job = job_span(&app, id);
        let job_end = job.end.expect("job span closed");
        let children: Vec<obs::SpanData> =
            app.recorder().spans().into_iter().filter(|s| s.parent == Some(job.id)).collect();
        let names: Vec<&str> = children.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, PHASES.to_vec(), "job {id} phase spans in pipeline order");
        for phase in &children {
            let end = phase.end.expect("phase span closed");
            assert!(job.start <= phase.start && end <= job_end, "{} nested in job", phase.name);
        }
    }
    // Virtual time: the CPU job starts no earlier than the GPU job ended.
    assert!(job_span(&app, cpu_job).start >= job_span(&app, gpu_job).end.unwrap());
}

#[test]
fn pid_allocation_audits_match_case3_placements() {
    // Paper Fig. 9 Case 3: four racon instances pinned to device 0 under
    // the Process ID strategy land on 0, 1, 0+1, 0+1.
    let (_cluster, mut app, _exec) = testbed(AllocationPolicy::ProcessId);
    for _ in 0..4 {
        app.submit("racon_dev0", &ParamDict::new()).unwrap();
    }

    let allocs = app.recorder().events_named("gyan.allocation.decision");
    let masks: Vec<&str> = allocs
        .iter()
        .map(|e| e.field("cuda_visible_devices").and_then(|v| v.as_str()).unwrap())
        .collect();
    assert_eq!(masks, vec!["0", "1", "0,1", "0,1"]);
    let reasons: Vec<&str> =
        allocs.iter().map(|e| e.field("reason").and_then(|v| v.as_str()).unwrap()).collect();
    assert_eq!(
        reasons,
        vec!["requested_free", "free_fallback", "all_busy_scatter", "all_busy_scatter"]
    );
    // The audit records the device state each decision observed.
    assert_eq!(allocs[0].field("avail_gpus").and_then(|v| v.as_str()), Some("0,1"));
    assert_eq!(allocs[1].field("avail_gpus").and_then(|v| v.as_str()), Some("1"));
    assert_eq!(allocs[2].field("avail_gpus").and_then(|v| v.as_str()), Some(""));
    assert_eq!(allocs[0].field("granted_requested").and_then(|v| v.as_f64()), Some(1.0));
    assert_eq!(allocs[1].field("granted_requested").and_then(|v| v.as_f64()), Some(0.0));

    // Every rule decision saw a GPU tool on a GPU-bearing node.
    let rules = app.recorder().events_named("gyan.rule.decision");
    assert_eq!(rules.len(), 4);
    for e in &rules {
        assert_eq!(e.field("destination").and_then(|v| v.as_str()), Some("local_gpu"));
        assert_eq!(e.field("reason").and_then(|v| v.as_str()), Some("gpu_tool_and_gpu_available"));
        assert_eq!(e.field("device_count").and_then(|v| v.as_f64()), Some(2.0));
    }

    // The hook exported exactly the audited masks into each job env.
    let hooks = app.recorder().events_named("gyan.hook.export");
    let exported: Vec<&str> = hooks
        .iter()
        .map(|e| e.field("cuda_visible_devices").and_then(|v| v.as_str()).unwrap())
        .collect();
    assert_eq!(exported, masks);
}

#[test]
fn memory_allocation_audit_matches_case4_placement() {
    // Paper Fig. 9 Case 4: under the Process Allocated Memory strategy the
    // third job goes to the least-loaded device (GPU 0, racon's 60 MiB)
    // instead of scattering.
    let (_cluster, mut app, _exec) = testbed(AllocationPolicy::MemoryBased);
    let bonito = pinned_tool("bonito_dev1", "bonito basecaller", "1", "case_pacbio");
    app.install_tool_xml(&bonito, &MacroLibrary::new()).unwrap();
    app.submit("racon_dev0", &ParamDict::new()).unwrap();
    app.submit("bonito_dev1", &ParamDict::new()).unwrap();
    app.submit("bonito_dev1", &ParamDict::new()).unwrap();

    let allocs = app.recorder().events_named("gyan.allocation.decision");
    let last = allocs.last().unwrap();
    assert_eq!(last.field("policy").and_then(|v| v.as_str()), Some("memory_based"));
    assert_eq!(last.field("cuda_visible_devices").and_then(|v| v.as_str()), Some("0"));
    assert_eq!(last.field("reason").and_then(|v| v.as_str()), Some("all_busy_least_memory"));
    // Observed inputs: per-device memory at decision time (driver 63 MiB +
    // racon 60 MiB on GPU 0; bonito's 2.7 GB footprint on GPU 1).
    let gpu0 = last.field("gpu0_mem_mib").and_then(|v| v.as_f64()).unwrap();
    let gpu1 = last.field("gpu1_mem_mib").and_then(|v| v.as_f64()).unwrap();
    assert!(gpu0 < gpu1, "GPU 0 ({gpu0} MiB) observed lighter than GPU 1 ({gpu1} MiB)");
}

#[test]
fn cpu_fallback_is_audited_with_its_reason() {
    // A GPU tool on a GPU-less node: the rule must fall back to the CPU
    // destination and the audit must say why.
    let cluster = GpuCluster::cpu_only_node();
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    install_gyan(&mut app, &cluster, GyanConfig::default());
    app.install_tool_xml(
        &pinned_tool("racon_dev0", "racon_gpu", "0", "case_pacbio"),
        &MacroLibrary::new(),
    )
    .unwrap();
    let id = app.submit("racon_dev0", &ParamDict::new()).unwrap();
    assert_eq!(app.job(id).unwrap().destination_id.as_deref(), Some("local_cpu"));

    let rule = &app.recorder().events_named("gyan.rule.decision")[0];
    assert_eq!(rule.field("requires_gpu").and_then(|v| v.as_f64()), Some(1.0));
    assert_eq!(rule.field("device_count").and_then(|v| v.as_f64()), Some(0.0));
    assert_eq!(rule.field("destination").and_then(|v| v.as_str()), Some("local_cpu"));
    assert_eq!(rule.field("reason").and_then(|v| v.as_str()), Some("no_gpus_on_node"));

    // No allocation ran; the hook recorded the job as GPU-disabled.
    assert!(app.recorder().events_named("gyan.allocation.decision").is_empty());
    let hook = &app.recorder().events_named("gyan.hook.export")[0];
    assert_eq!(hook.field("gpu_enabled").and_then(|v| v.as_f64()), Some(0.0));
    assert!(hook.field("cuda_visible_devices").is_none());
}

#[test]
fn prometheus_exposition_parses_and_pool_gauges_drain_to_zero() {
    let (_cluster, mut app, exec) = testbed(AllocationPolicy::ProcessId);
    app.submit("racon_dev0", &ParamDict::new()).unwrap();
    app.submit("count_reads", &ParamDict::new()).unwrap();

    // Run extra plans through a handler pool sharing the app's recorder.
    let pool =
        HandlerPool::with_recorder(exec.clone() as Arc<dyn JobExecutor>, 2, app.recorder().clone());
    for job_id in [101u64, 102, 103] {
        pool.enqueue(ExecutionPlan {
            job_id,
            tool_id: "count_reads".to_string(),
            destination_id: "local_cpu".to_string(),
            command_line: "echo queued".to_string(),
            env: Vec::new(),
            container: None,
            command_parts: vec!["echo".to_string(), "queued".to_string()],
        });
    }
    pool.wait_all();
    pool.shutdown();

    let text = app.recorder().metrics().render_prometheus();
    let samples = parse_prometheus(&text).expect("exposition parses");
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} missing from exposition:\n{text}"))
            .value
    };
    assert_eq!(value(JOBS_SUBMITTED_COUNTER), 2.0);
    assert_eq!(value(JOBS_OK_COUNTER), 2.0);
    assert_eq!(value(JOBS_EXECUTED_COUNTER), 3.0);
    // Once drained, the queue gauges read zero again.
    assert_eq!(value(QUEUE_DEPTH_GAUGE), 0.0);
    assert_eq!(value(WORKERS_BUSY_GAUGE), 0.0);
    assert_eq!(value("galaxy_pool_queue_wait_seconds_count"), 3.0);
}

#[test]
fn merged_chrome_trace_encloses_gpu_work_in_the_job_span() {
    let (cluster, mut app, exec) = testbed(AllocationPolicy::ProcessId);
    let monitor = UsageMonitor::start_with_interval(&cluster, 0.5);
    let gpu_job = app.submit("racon_dev0", &ParamDict::new()).unwrap();
    app.submit("count_reads", &ParamDict::new()).unwrap();
    let samples = monitor.stop();
    assert!(!samples.is_empty(), "virtual-clock advances produced monitor samples");

    let trace = exec.trace_for_job(gpu_job).expect("GPU job left a kernel/DMA trace");
    assert!(!trace.events().is_empty());
    let export = gyan::export_run(app.recorder(), &[(gpu_job, trace)], &samples);

    // The trace document parses and carries every track class.
    let doc = obs::json::parse(&export.chrome_trace).expect("chrome trace parses");
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
    assert!(!events.is_empty());
    for line in export.jsonl.lines() {
        obs::json::parse(line).expect("jsonl line parses");
    }

    let merged = gyan::merged_chrome_trace(
        app.recorder(),
        &[(gpu_job, exec.trace_for_job(gpu_job).unwrap())],
        &samples,
    );
    let job_track = format!("galaxy/job {gpu_job}");
    assert!(merged.tracks().contains(&job_track));
    assert!(merged.tracks().contains(&"gyan/decisions".to_string()));
    assert!(merged.tracks().contains(&"usage".to_string()));

    // Enclosure: every kernel/DMA interval falls inside the job span.
    let completes = merged.complete_events();
    let job = completes
        .iter()
        .find(|e| e.name == "galaxy.job" && e.track == job_track)
        .expect("job span on its own track");
    let gpu_events: Vec<_> = completes.iter().filter(|e| e.track.starts_with("gpu")).collect();
    assert!(!gpu_events.is_empty(), "kernel/DMA intervals present");
    for ev in gpu_events {
        assert!(
            job.start_s <= ev.start_s && ev.start_s + ev.dur_s <= job.start_s + job.dur_s,
            "{} [{}, {}] escapes job span [{}, {}]",
            ev.name,
            ev.start_s,
            ev.start_s + ev.dur_s,
            job.start_s,
            job.start_s + job.dur_s,
        );
    }
}

#[test]
fn telemetry_export_is_deterministic_across_runs() {
    let run = || {
        let (cluster, mut app, exec) = testbed(AllocationPolicy::ProcessId);
        let monitor = UsageMonitor::start_with_interval(&cluster, 0.5);
        let gpu_job = app.submit("racon_dev0", &ParamDict::new()).unwrap();
        app.submit("count_reads", &ParamDict::new()).unwrap();
        let samples = monitor.stop();
        let trace = exec.trace_for_job(gpu_job).unwrap();
        let export = gyan::export_run(app.recorder(), &[(gpu_job, trace)], &samples);
        (export.jsonl, export.prometheus, export.chrome_trace)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.0, b.0, "JSONL log identical under virtual time");
    assert_eq!(a.1, b.1, "Prometheus exposition identical");
    assert_eq!(a.2, b.2, "merged Chrome trace identical");
}
