//! The asynchronous queue engine end to end: handle-based submission,
//! fair-share ordering, admission control, failure resubmission
//! (GPU → CPU, Galaxy's `<resubmit>`), and wave-barrier makespan
//! accounting on the virtual clock.

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::queue::{
    DagStep, DagWorkflow, QueueConfig, QueueEngine, ResubmitPolicy, SubmissionState,
    WaveTimeCharging, QUEUE_REJECTED_COUNTER, QUEUE_RESUBMITTED_COUNTER,
};
use galaxy::tool::macros::MacroLibrary;
use galaxy::{GalaxyApp, GalaxyError, JobState};
use gpusim::{GpuCluster, GpuProcess};
use gyan::setup::{install_gyan, ClusterTime, GyanConfig};
use seqtools::{DatasetSpec, ToolExecutor};
use std::sync::Arc;

const ECHO_TOOL: &str = r#"<tool id="echo" name="Echo">
  <command>echo $text</command>
  <inputs><param name="text" type="text" value="hello"/></inputs>
  <outputs><data name="out" format="txt"/></outputs>
</tool>"#;

/// An app whose dynamic rule routes everything to the plain CPU
/// destination — enough to exercise the queue without GPUs.
fn echo_app() -> GalaxyApp {
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    app.install_tool_xml(ECHO_TOOL, &MacroLibrary::new()).unwrap();
    app.register_rule(
        "gpu_dynamic_destination",
        Box::new(|_tool, _job, _conf| Ok("local_cpu".to_string())),
    );
    app
}

fn echo_executor() -> Arc<ToolExecutor> {
    Arc::new(ToolExecutor::new(&GpuCluster::cpu_only_node()))
}

#[test]
fn async_submission_returns_a_handle_and_runs_on_pump() {
    let mut engine = QueueEngine::new(echo_app(), echo_executor(), QueueConfig::default());
    let mut params = ParamDict::new();
    params.set("text", "queued world");
    let handle = engine.submit_async("alice", "echo", &params).unwrap();

    // Nothing ran yet: the submission is queued, not executed.
    assert_eq!(engine.state(handle), Some(SubmissionState::Queued));
    assert_eq!(engine.app().job(handle.0).unwrap().state(), JobState::New);
    assert_eq!(engine.queue_depth(), 1);

    engine.run_until_idle();
    assert_eq!(engine.state(handle), Some(SubmissionState::Ok));
    let job = engine.app().job(handle.0).unwrap();
    assert_eq!(job.state(), JobState::Ok);
    assert_eq!(job.stdout, "queued world");
    let datasets = engine.app().history().datasets_for_job(handle.0);
    assert_eq!(datasets.len(), 1);
    assert_eq!(datasets[0].content, "queued world");
}

#[test]
fn fair_share_interleaves_users_instead_of_fifo() {
    // One worker → waves of one → the dispatch audit trail is the exact
    // schedule. Alice floods four jobs before Bob's two; fair share must
    // alternate rather than drain Alice first.
    let config = QueueConfig { workers: 1, ..QueueConfig::default() };
    let mut engine = QueueEngine::new(echo_app(), echo_executor(), config);
    for _ in 0..4 {
        engine.submit_async("alice", "echo", &ParamDict::new()).unwrap();
    }
    for _ in 0..2 {
        engine.submit_async("bob", "echo", &ParamDict::new()).unwrap();
    }
    engine.run_until_idle();

    let order: Vec<String> = engine
        .app()
        .recorder()
        .events_named("galaxy.queue.dispatch")
        .iter()
        .map(|e| e.field("user").and_then(|v| v.as_str()).unwrap().to_string())
        .collect();
    assert_eq!(order, vec!["alice", "bob", "alice", "bob", "alice", "alice"]);
    for handle in engine.app().jobs() {
        assert_eq!(handle.state(), JobState::Ok);
    }
}

#[test]
fn priority_reorders_within_a_user() {
    let config = QueueConfig { workers: 1, ..QueueConfig::default() };
    let mut engine = QueueEngine::new(echo_app(), echo_executor(), config);
    let mut low = ParamDict::new();
    low.set("text", "low");
    let mut high = ParamDict::new();
    high.set("text", "high");
    let first = engine.submit_with_priority("u", "echo", &low, 0).unwrap();
    let second = engine.submit_with_priority("u", "echo", &high, 9).unwrap();
    engine.run_until_idle();

    let dispatched: Vec<u64> = engine
        .app()
        .recorder()
        .events_named("galaxy.queue.dispatch")
        .iter()
        .map(|e| e.field("job_id").and_then(|v| v.as_f64()).unwrap() as u64)
        .collect();
    assert_eq!(dispatched, vec![second.0, first.0], "high priority dispatches first");
}

#[test]
fn admission_control_rejects_with_reason_and_no_job_record() {
    let config = QueueConfig { capacity: 2, ..QueueConfig::default() };
    let mut engine = QueueEngine::new(echo_app(), echo_executor(), config);
    engine.submit_async("u", "echo", &ParamDict::new()).unwrap();
    engine.submit_async("u", "echo", &ParamDict::new()).unwrap();
    let err = engine.submit_async("u", "echo", &ParamDict::new()).unwrap_err();
    match &err {
        GalaxyError::QueueRejected(reason) => {
            assert!(reason.contains("queue full"), "{reason}");
        }
        other => panic!("expected QueueRejected, got {other:?}"),
    }
    // The rejected submission left no trace in the job table.
    assert_eq!(engine.app().jobs().len(), 2);
    let rec = engine.app().recorder();
    assert_eq!(rec.metrics().counter_value(QUEUE_REJECTED_COUNTER), 1);
    let rejects = rec.events_named("galaxy.queue.reject");
    assert_eq!(rejects.len(), 1);
    assert!(rejects[0].field("reason").and_then(|v| v.as_str()).unwrap().contains("queue full"));

    engine.run_until_idle();
    assert_eq!(engine.app().jobs().len(), 2);
}

#[test]
fn per_user_limit_rejects_only_the_flooding_user() {
    let config = QueueConfig { per_user_limit: Some(1), ..QueueConfig::default() };
    let mut engine = QueueEngine::new(echo_app(), echo_executor(), config);
    engine.submit_async("hog", "echo", &ParamDict::new()).unwrap();
    let err = engine.submit_async("hog", "echo", &ParamDict::new()).unwrap_err();
    assert!(matches!(err, GalaxyError::QueueRejected(ref r) if r.contains("per-user limit")));
    engine.submit_async("polite", "echo", &ParamDict::new()).unwrap();
    engine.run_until_idle();
    assert_eq!(engine.app().jobs().len(), 2);
}

#[test]
fn both_rejection_reasons_fire_under_one_config() {
    // Capacity and per-user caps armed together: each rejection names the
    // limit that actually tripped.
    let config = QueueConfig { capacity: 3, per_user_limit: Some(2), ..QueueConfig::default() };
    let mut engine = QueueEngine::new(echo_app(), echo_executor(), config);

    engine.submit_async("hog", "echo", &ParamDict::new()).unwrap();
    engine.submit_async("hog", "echo", &ParamDict::new()).unwrap();
    let err = engine.submit_async("hog", "echo", &ParamDict::new()).unwrap_err();
    assert!(
        matches!(err, GalaxyError::QueueRejected(ref r) if r.contains("per-user limit")),
        "{err}"
    );

    // A different user passes the per-user check but hits the full queue.
    engine.submit_async("polite", "echo", &ParamDict::new()).unwrap();
    let err = engine.submit_async("polite", "echo", &ParamDict::new()).unwrap_err();
    assert!(matches!(err, GalaxyError::QueueRejected(ref r) if r.contains("queue full")), "{err}");

    let rec = engine.app().recorder();
    assert_eq!(rec.metrics().counter_value(QUEUE_REJECTED_COUNTER), 2);
    let reasons: Vec<String> = rec
        .events_named("galaxy.queue.reject")
        .iter()
        .map(|e| e.field("reason").and_then(|v| v.as_str()).unwrap().to_string())
        .collect();
    assert_eq!(reasons.len(), 2);
    assert!(reasons[0].contains("per-user limit"), "{reasons:?}");
    assert!(reasons[1].contains("queue full"), "{reasons:?}");

    // Neither rejection left a job record; the admitted three all run.
    assert_eq!(engine.app().jobs().len(), 3);
    engine.run_until_idle();
    for job in engine.app().jobs() {
        assert_eq!(job.state(), JobState::Ok);
    }
}

#[test]
fn resubmit_chain_walks_every_fallback_then_fails_final() {
    // A tool that exits 127 on every destination: the policy's two
    // fallbacks are both consumed before the failure becomes terminal.
    let mut app = echo_app();
    let typo = r#"<tool id="typo"><command>racoon --help</command></tool>"#;
    app.install_tool_xml(typo, &MacroLibrary::new()).unwrap();
    let policy = ResubmitPolicy {
        max_attempts: 3,
        fallbacks: vec!["local_gpu".into(), "local_cpu".into()],
        node_retries: 0,
        footprint_retries: 0,
    };
    let config = QueueConfig { resubmit: policy, ..QueueConfig::default() };
    let mut engine = QueueEngine::new(app, echo_executor(), config);

    let handle = engine.submit_async("alice", "typo", &ParamDict::new()).unwrap();
    engine.run_until_idle();

    assert_eq!(engine.state(handle), Some(SubmissionState::Error));
    let job = engine.app().job(handle.0).unwrap();
    assert_eq!(job.state(), JobState::Error);
    assert_eq!(job.exit_code, Some(127), "still command-not-found on the last attempt");
    assert_eq!(job.destination_id.as_deref(), Some("local_cpu"), "died on the final fallback");

    let rec = engine.app().recorder();
    assert_eq!(rec.metrics().counter_value(QUEUE_RESUBMITTED_COUNTER), 2);

    // Two resubmit hops. `from_destination` always names the job's
    // first destination (where the mapping originally placed it), and
    // the attempt counter walks up.
    let resubmits = rec.events_named("galaxy.queue.resubmit");
    assert_eq!(resubmits.len(), 2);
    for (hop, ev) in resubmits.iter().enumerate() {
        assert_eq!(ev.field("from_destination").and_then(|v| v.as_str()), Some("local_cpu"));
        assert_eq!(ev.field("failed_attempt").and_then(|v| v.as_f64()), Some(hop as f64 + 1.0));
        assert_eq!(ev.field("max_attempts").and_then(|v| v.as_f64()), Some(3.0));
    }
    assert_eq!(resubmits[0].field("to_destination").and_then(|v| v.as_str()), Some("local_gpu"));
    assert_eq!(resubmits[1].field("to_destination").and_then(|v| v.as_str()), Some("local_cpu"));

    // Three dispatches total: the rule's placement, then each fallback in
    // policy order.
    let dispatched: Vec<String> = rec
        .events_named("galaxy.queue.dispatch")
        .iter()
        .map(|e| e.field("destination").and_then(|v| v.as_str()).unwrap().to_string())
        .collect();
    assert_eq!(dispatched, ["local_cpu", "local_gpu", "local_cpu"]);
}

const BONITO_DEV1: &str = r#"<tool id="bonito_dev1">
  <requirements><requirement type="compute" version="1">gpu</requirement></requirements>
  <command>bonito basecaller dna_r9.4.1 queue_fast5 > out</command>
</tool>"#;

/// The tentpole's acceptance scenario: a GPU job fails with an injected
/// out-of-memory error, and the engine resubmits it to the CPU
/// destination within the attempt budget — Galaxy's `<resubmit>` flow.
#[test]
fn injected_gpu_failure_resubmits_to_cpu_within_budget() {
    let cluster = GpuCluster::k80_node();
    // Hog both devices so bonito's GPU workspace cannot fit anywhere.
    let total = cluster.with_device(0, |d| d.fb_total_mib()).unwrap();
    cluster.attach_process(0, GpuProcess::compute(1, "hog0", total - 200)).unwrap();
    cluster.attach_process(1, GpuProcess::compute(2, "hog1", total - 200)).unwrap();

    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    let executor = Arc::new(ToolExecutor::new(&cluster));
    executor.register_dataset(DatasetSpec {
        name: "queue_fast5",
        genome_len: 1_200,
        n_reads: 2,
        read_len: 250,
        ..DatasetSpec::acinetobacter_pittii()
    });
    app.set_executor(Box::new(executor.clone()));
    install_gyan(&mut app, &cluster, GyanConfig::default());
    app.install_tool_xml(BONITO_DEV1, &MacroLibrary::new()).unwrap();

    let config =
        QueueConfig { resubmit: ResubmitPolicy::gpu_to_cpu("local_cpu"), ..QueueConfig::default() };
    let mut engine = QueueEngine::new(app, executor, config);
    let handle = engine.submit_async("alice", "bonito_dev1", &ParamDict::new()).unwrap();
    engine.run_until_idle();

    // The job ends Ok — on the CPU destination, after exactly one
    // resubmission.
    assert_eq!(engine.state(handle), Some(SubmissionState::Ok));
    let job = engine.app().job(handle.0).unwrap();
    assert_eq!(job.state(), JobState::Ok);
    assert_eq!(job.destination_id.as_deref(), Some("local_cpu"));
    assert_eq!(job.env_var("GALAXY_GPU_ENABLED"), Some("false"));

    let rec = engine.app().recorder();
    assert_eq!(rec.metrics().counter_value(QUEUE_RESUBMITTED_COUNTER), 1);
    let resubmits = rec.events_named("galaxy.queue.resubmit");
    assert_eq!(resubmits.len(), 1);
    let ev = &resubmits[0];
    assert_eq!(ev.field("from_destination").and_then(|v| v.as_str()), Some("local_gpu"));
    assert_eq!(ev.field("to_destination").and_then(|v| v.as_str()), Some("local_cpu"));

    // Both attempts dispatched, the first to the GPU destination.
    let dispatches = rec.events_named("galaxy.queue.dispatch");
    assert_eq!(dispatches.len(), 2);
    assert_eq!(dispatches[0].field("destination").and_then(|v| v.as_str()), Some("local_gpu"));
    assert_eq!(dispatches[1].field("destination").and_then(|v| v.as_str()), Some("local_cpu"));

    // The scheduling decisions are visible on their own track of the
    // merged Chrome trace.
    let trace = gyan::telemetry::merged_chrome_trace(rec, &[], &[]);
    assert!(trace.tracks().contains(&"galaxy/queue".to_string()));
    let resubmit_marker = trace
        .complete_events()
        .iter()
        .find(|e| e.name == "galaxy.queue.resubmit")
        .expect("resubmit audit in trace");
    assert_eq!(resubmit_marker.track, "galaxy/queue");
}

#[test]
fn attempt_budget_exhausts_to_terminal_error() {
    // No fallback configured: the first failure is final.
    let cluster = GpuCluster::k80_node();
    let total = cluster.with_device(0, |d| d.fb_total_mib()).unwrap();
    cluster.attach_process(0, GpuProcess::compute(1, "hog0", total - 200)).unwrap();
    cluster.attach_process(1, GpuProcess::compute(2, "hog1", total - 200)).unwrap();

    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    let executor = Arc::new(ToolExecutor::new(&cluster));
    executor.register_dataset(DatasetSpec {
        name: "queue_fast5",
        genome_len: 1_200,
        n_reads: 2,
        read_len: 250,
        ..DatasetSpec::acinetobacter_pittii()
    });
    app.set_executor(Box::new(executor.clone()));
    install_gyan(&mut app, &cluster, GyanConfig::default());
    app.install_tool_xml(BONITO_DEV1, &MacroLibrary::new()).unwrap();

    let mut engine = QueueEngine::new(app, executor, QueueConfig::default());
    let handle = engine.submit_async("alice", "bonito_dev1", &ParamDict::new()).unwrap();
    engine.run_until_idle();

    assert_eq!(engine.state(handle), Some(SubmissionState::Error));
    assert_eq!(engine.app().job(handle.0).unwrap().state(), JobState::Error);
    let rec = engine.app().recorder();
    assert_eq!(rec.metrics().counter_value(QUEUE_RESUBMITTED_COUNTER), 0);
    assert_eq!(rec.events_named("galaxy.queue.dispatch").len(), 1);
}

/// Echo tools don't advance the clock, so a [`WaveTimeCharging`] model is
/// the authoritative cost: parallel waves charge their max, sequential
/// chains their sum.
fn timed_engine(clock: gpusim::VirtualClock) -> QueueEngine {
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    app.register_rule(
        "gpu_dynamic_destination",
        Box::new(|_tool, _job, _conf| Ok("local_cpu".to_string())),
    );
    let lib = MacroLibrary::new();
    for (id, _cost) in STEP_COSTS {
        let xml = format!(
            r#"<tool id="{id}"><command>echo {id}</command>
               <outputs><data name="out" format="txt"/></outputs></tool>"#
        );
        app.install_tool_xml(&xml, &lib).unwrap();
    }
    app.set_time_source(Box::new(ClusterTime::new(clock.clone())));
    let recorder_clock = clock.clone();
    app.recorder().set_clock(move || recorder_clock.now());

    let config = QueueConfig {
        time_charging: Some(WaveTimeCharging {
            clock: Box::new(ClusterTime::new(clock)),
            model: Box::new(|plan: &galaxy::runners::ExecutionPlan| {
                STEP_COSTS
                    .iter()
                    .find(|(id, _)| *id == plan.tool_id)
                    .map(|(_, cost)| *cost)
                    .unwrap_or(0.0)
            }),
        }),
        ..QueueConfig::default()
    };
    QueueEngine::new(app, echo_executor(), config)
}

const STEP_COSTS: &[(&str, f64)] =
    &[("prep", 10.0), ("left", 20.0), ("right", 30.0), ("join", 5.0)];

#[test]
fn dag_makespan_beats_sequential_on_the_virtual_clock() {
    // Diamond: prep → {left, right} → join. The branches overlap, so the
    // DAG charges max(20, 30) for the middle wave.
    let parallel_clock = gpusim::VirtualClock::new();
    let mut engine = timed_engine(parallel_clock.clone());
    let dag = DagWorkflow::new("diamond")
        .step(DagStep::new("prep"))
        .step(DagStep::new("left").after(0))
        .step(DagStep::new("right").after(0))
        .step(DagStep::new("join").after(1).after(2));
    let wf = engine.submit_dag("alice", dag).unwrap();
    engine.run_until_idle();
    let report = engine.workflow_report(wf).unwrap();
    assert!(report.ok(), "all steps complete: {:?}", report.failed_step);
    let parallel_makespan = report.makespan;

    // The same four steps as a strict chain: every duration is on the
    // critical path.
    let sequential_clock = gpusim::VirtualClock::new();
    let mut engine = timed_engine(sequential_clock.clone());
    let chain = DagWorkflow::new("chain")
        .step(DagStep::new("prep"))
        .step(DagStep::new("left").after(0))
        .step(DagStep::new("right").after(1))
        .step(DagStep::new("join").after(2));
    let wf = engine.submit_dag("alice", chain).unwrap();
    engine.run_until_idle();
    let sequential_makespan = engine.workflow_report(wf).unwrap().makespan;

    assert_eq!(parallel_makespan, 45.0, "10 + max(20, 30) + 5");
    assert_eq!(sequential_makespan, 65.0, "10 + 20 + 30 + 5");
    assert!(
        parallel_makespan < sequential_makespan,
        "fan-out must beat the chain: {parallel_makespan} vs {sequential_makespan}"
    );
    assert_eq!(parallel_clock.now(), 45.0);
    assert_eq!(sequential_clock.now(), 65.0);
}

#[test]
fn dag_data_edges_carry_upstream_outputs() {
    let mut engine = QueueEngine::new(echo_app(), echo_executor(), QueueConfig::default());
    let dag = DagWorkflow::new("pipe")
        .step(DagStep::new("echo").with_param("text", "payload"))
        .step(DagStep::new("echo").with_input_from("text", 0));
    let wf = engine.submit_dag("alice", dag).unwrap();
    engine.run_until_idle();
    let report = engine.workflow_report(wf).unwrap();
    assert!(report.ok());
    let downstream = report.job_ids[1].unwrap();
    // Step 1 echoed step 0's output dataset.
    assert_eq!(engine.app().job(downstream).unwrap().stdout, "payload");
}

#[test]
fn failed_step_cancels_dependents_but_not_siblings() {
    let mut engine = QueueEngine::new(echo_app(), echo_executor(), QueueConfig::default());
    // "ghost" is not installed: its step fails at materialization, taking
    // its dependent with it; the independent echo still runs.
    let dag = DagWorkflow::new("partial")
        .step(DagStep::new("ghost"))
        .step(DagStep::new("echo").with_param("text", "survivor"));
    assert!(engine.submit_dag("alice", dag).is_err(), "unknown tool rejected upfront");

    // With the tool known but failing at dispatch, cancellation applies.
    let mut app = echo_app();
    let failing = r#"<tool id="doomed"><command>not_a_command</command></tool>"#;
    app.install_tool_xml(failing, &MacroLibrary::new()).unwrap();
    let mut engine = QueueEngine::new(app, echo_executor(), QueueConfig::default());
    let dag = DagWorkflow::new("partial")
        .step(DagStep::new("doomed"))
        .step(DagStep::new("echo").with_input_from("text", 0))
        .step(DagStep::new("echo").with_param("text", "survivor"));
    let wf = engine.submit_dag("alice", dag).unwrap();
    engine.run_until_idle();
    let report = engine.workflow_report(wf).unwrap();
    assert_eq!(report.failed_step, Some(0));
    assert!(report.job_ids[1].is_none(), "dependent never materialized");
    let survivor = report.job_ids[2].unwrap();
    assert_eq!(engine.app().job(survivor).unwrap().state(), JobState::Ok);
    let cancels = engine.app().recorder().events_named("galaxy.queue.cancel");
    assert_eq!(cancels.len(), 1);
    assert_eq!(cancels[0].field("step").and_then(|v| v.as_f64()), Some(1.0));
}
