//! Singularity end-to-end: GYAN's `--nv` injection and bind-flag
//! stripping through the full app pipeline (paper §IV-B, second half).

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::runners::container_cmd::VolumeBind;
use galaxy::tool::macros::MacroLibrary;
use galaxy::{GalaxyApp, JobState};
use gpusim::GpuCluster;
use gyan::setup::{install_gyan, GyanConfig};
use seqtools::{DatasetSpec, ToolExecutor};
use std::sync::Arc;

const TOOL: &str = r#"<tool id="racon_gpu">
  <requirements>
    <requirement type="compute">gpu</requirement>
    <container type="singularity">library://racon-gpu.sif</container>
  </requirements>
  <command><![CDATA[
#if $__galaxy_gpu_enabled__ == "true"
racon_gpu -t 2 sing_racon > out.fa
#else
racon -t 2 sing_racon > out.fa
#end if
]]></command>
  <outputs><data name="consensus" format="fasta"/></outputs>
</tool>"#;

fn build() -> (GpuCluster, GalaxyApp) {
    let cluster = GpuCluster::k80_node();
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    let registry = galaxy::containers::ImageRegistry::with_paper_images();
    registry.publish(
        "library://racon-gpu.sif",
        galaxy::containers::ImageMeta { size_mb: 800.0, gpu_capable: true },
    );
    app.set_registry(registry);
    app.add_volume(VolumeBind::rw("/galaxy/data"));
    app.add_volume(VolumeBind::ro("/galaxy/refs"));
    let executor = Arc::new(ToolExecutor::new(&cluster));
    executor.register_dataset(DatasetSpec {
        name: "sing_racon",
        genome_len: 1_500,
        n_reads: 12,
        read_len: 1_200,
        ..DatasetSpec::alzheimers_nfl()
    });
    app.set_executor(Box::new(executor));
    // Route GPU jobs to the singularity destination.
    let config =
        GyanConfig { gpu_destination: "singularity_gpu".to_string(), ..GyanConfig::default() };
    install_gyan(&mut app, &cluster, config);
    app.install_tool_xml(TOOL, &MacroLibrary::new()).unwrap();
    (cluster, app)
}

#[test]
fn singularity_launch_gets_nv_and_loses_bind_modes() {
    let (_cluster, mut app) = build();
    let id = app.submit("racon_gpu", &ParamDict::new()).unwrap();
    let job = app.job(id).unwrap();
    assert_eq!(job.state(), JobState::Ok);
    assert_eq!(job.destination_id.as_deref(), Some("singularity_gpu"));

    let launch = app
        .events()
        .iter()
        .find(|e| e.message.contains("singularity exec"))
        .expect("singularity launch logged");
    let cmd = &launch.message;
    assert!(cmd.contains("--nv"), "{cmd}");
    assert!(cmd.contains("SINGULARITYENV_GALAXY_GPU_ENABLED=true"), "{cmd}");
    assert!(cmd.contains("SINGULARITYENV_CUDA_VISIBLE_DEVICES=0,1"), "{cmd}");
    assert!(cmd.contains("library://racon-gpu.sif"), "{cmd}");
    // GYAN strips the rw/ro bind modes Singularity ≥3.1 rejects with --nv.
    assert!(cmd.contains("-B /galaxy/data:/galaxy/data"), "{cmd}");
    assert!(!cmd.contains(":rw"), "{cmd}");
    assert!(!cmd.contains(":ro"), "{cmd}");
}

#[test]
fn cpu_fallback_keeps_singularity_bind_modes() {
    // On a GPU-less node the same tool runs on the CPU destination
    // (bare-metal here), and a CPU-containerized run elsewhere would keep
    // its rw/ro flags — asserted at the mutator level; end-to-end we
    // check the fallback itself.
    let cluster = GpuCluster::cpu_only_node();
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    let executor = Arc::new(ToolExecutor::new(&cluster));
    executor.register_dataset(DatasetSpec {
        name: "sing_racon",
        genome_len: 1_500,
        n_reads: 12,
        read_len: 1_200,
        ..DatasetSpec::alzheimers_nfl()
    });
    app.set_executor(Box::new(executor));
    let config =
        GyanConfig { gpu_destination: "singularity_gpu".to_string(), ..GyanConfig::default() };
    install_gyan(&mut app, &cluster, config);
    app.install_tool_xml(TOOL, &MacroLibrary::new()).unwrap();
    let id = app.submit("racon_gpu", &ParamDict::new()).unwrap();
    assert_eq!(app.job(id).unwrap().destination_id.as_deref(), Some("local_cpu"));
}
