//! Footprint-profile loop, end to end through the real stack: learned
//! right-sizing, footprint-revised resubmission ahead of the GPU→CPU
//! ladder, the success-path env scrub, and the `/api/profiles` surface.

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::queue::{
    QueueConfig, QueueEngine, ResubmitPolicy, SubmissionState, QUEUE_RESUBMITTED_COUNTER,
};
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::{GpuArch, GpuCluster};
use gyan::footprint::{
    FootprintRegistry, GALAXY_INPUT_SIZE_MIB_ENV, GPU_MEMORY_BUDGET_ENV, GPU_OBSERVED_PEAK_ENV,
};
use gyan::setup::{install_gyan_with_footprint, GyanConfig};
use loadgen::{LoadExecutor, FAIL_GPU_ENV};
use obs::serve::Request;
use std::sync::Arc;

const GPU_TOOL: &str = r#"<tool id="load_gpu" name="Load GPU">
  <requirements><requirement type="compute">gpu</requirement></requirements>
  <command>load_kernel</command>
  <outputs><data name="out" format="txt"/></outputs>
</tool>"#;

/// A wired stack: GYAN with footprint learning on one K80 node, the
/// loadgen executor (which OOM-kills GPU attempts whose declared peak
/// exceeds the granted budget), and `footprint_retries` same-destination
/// retries ahead of the GPU→CPU ladder.
fn engine(footprint_retries: u32) -> (QueueEngine, FootprintRegistry) {
    let cluster = GpuCluster::node(GpuArch::tesla_k80(), 2);
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    app.install_tool_xml(GPU_TOOL, &MacroLibrary::new()).unwrap();
    let config = GyanConfig::default().with_learned_hints();
    let (_table, registry) = install_gyan_with_footprint(&mut app, &cluster, config);
    app.set_executor(Box::new(LoadExecutor));
    let config = QueueConfig {
        workers: 1,
        resubmit: ResubmitPolicy::gpu_to_cpu("local_cpu").with_footprint_retries(footprint_retries),
        ..QueueConfig::default()
    };
    (QueueEngine::new(app, Arc::new(LoadExecutor), config), registry)
}

fn labeled(reason: &str) -> String {
    format!("{QUEUE_RESUBMITTED_COUNTER}{{reason=\"{reason}\"}}")
}

/// An oversized job OOMs under the 1024 MiB static hint, earns a
/// footprint-revised retry at double the budget on the *same* GPU
/// destination, succeeds there, feeds the profile — and the surviving
/// job record carries none of the per-attempt retry context.
#[test]
fn oom_earns_a_footprint_retry_and_the_success_path_scrubs_the_env() {
    let (mut engine, registry) = engine(2);
    let handle = engine.submit_async("alice", "load_gpu", &ParamDict::new()).unwrap();
    engine.app_mut().set_job_env(handle.0, GALAXY_INPUT_SIZE_MIB_ENV, "1200");
    engine.app_mut().set_job_env(handle.0, GPU_OBSERVED_PEAK_ENV, "1500");
    engine.run_until_idle();

    assert_eq!(engine.state(handle), Some(SubmissionState::Ok));
    let job = engine.app().job(handle.0).unwrap();
    assert_eq!(job.destination_id.as_deref(), Some("local_gpu"), "no CPU fallback needed");
    // The retry ran under the doubled budget...
    assert_eq!(job.env_var(GPU_MEMORY_BUDGET_ENV), Some("2048"));
    // ...but the success path scrubbed the override and exclusion set
    // (the regression this test pins: a finished job must not carry the
    // retry context of its failed attempts).
    assert_eq!(job.env_var(galaxy::GALAXY_GPU_BUDGET_OVERRIDE_ENV), None);
    assert_eq!(job.env_var(galaxy::GALAXY_EXCLUDED_NODES_ENV), None);

    let metrics = engine.app().recorder().metrics();
    assert_eq!(metrics.counter_value(&labeled("footprint_revised")), 1);
    assert_eq!(metrics.counter_value(&labeled("fallback")), 0);

    // The successful attempt fed the profile with the observed peak.
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.len(), 1);
    assert_eq!(snapshot[0].tool, "load_gpu");
    assert_eq!(snapshot[0].samples, 1);
    assert!(
        (snapshot[0].peak_mib_max - 1500.0).abs() < 1.0,
        "profile max {}",
        snapshot[0].peak_mib_max
    );
}

/// A fault that is *not* an OOM (the declared peak fit the budget) must
/// not consume footprint retries: the advisor declines and the job goes
/// straight down the fallback ladder to CPU.
#[test]
fn non_oom_failures_skip_the_footprint_retry() {
    let (mut engine, _registry) = engine(2);
    let handle = engine.submit_async("bob", "load_gpu", &ParamDict::new()).unwrap();
    engine.app_mut().set_job_env(handle.0, GALAXY_INPUT_SIZE_MIB_ENV, "256");
    engine.app_mut().set_job_env(handle.0, GPU_OBSERVED_PEAK_ENV, "300");
    engine.app_mut().set_job_env(handle.0, FAIL_GPU_ENV, "1");
    engine.run_until_idle();

    assert_eq!(engine.state(handle), Some(SubmissionState::Ok));
    let job = engine.app().job(handle.0).unwrap();
    assert_eq!(job.destination_id.as_deref(), Some("local_cpu"));
    let metrics = engine.app().recorder().metrics();
    assert_eq!(metrics.counter_value(&labeled("footprint_revised")), 0);
    assert_eq!(metrics.counter_value(&labeled("fallback")), 1);
}

/// `/api/profiles` serves the registry as JSON and, with
/// `?format=prometheus`, as metrics text with `# HELP` headers.
#[test]
fn profiles_route_serves_json_and_prometheus() {
    let (mut engine, registry) = engine(2);
    let handle = engine.submit_async("carol", "load_gpu", &ParamDict::new()).unwrap();
    engine.app_mut().set_job_env(handle.0, GALAXY_INPUT_SIZE_MIB_ENV, "512");
    engine.app_mut().set_job_env(handle.0, GPU_OBSERVED_PEAK_ENV, "600");
    engine.run_until_idle();
    assert_eq!(engine.state(handle), Some(SubmissionState::Ok));

    let route = gyan::ops::profiles_route(&registry);
    let json = route(&Request {
        method: "GET".to_string(),
        path: "/api/profiles".to_string(),
        query: String::new(),
    });
    assert_eq!(json.status, 200);
    assert_eq!(json.content_type, "application/json");
    let doc = obs::json::parse(&json.body).expect("profiles JSON parses");
    let profiles = doc.get("profiles").and_then(|v| v.as_array()).expect("profiles array");
    assert_eq!(profiles.len(), 1);
    assert_eq!(profiles[0].get("tool").and_then(|v| v.as_str()), Some("load_gpu"));
    assert_eq!(profiles[0].get("samples").and_then(|v| v.as_f64()), Some(1.0));

    let prom = route(&Request {
        method: "GET".to_string(),
        path: "/api/profiles".to_string(),
        query: "format=prometheus".to_string(),
    });
    assert_eq!(prom.status, 200);
    assert!(prom.body.contains("# HELP gyan_footprint_peak_mib_p95"), "{}", prom.body);
    assert!(prom.body.contains("tool=\"load_gpu\""), "{}", prom.body);
}
