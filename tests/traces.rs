//! Execution-trace integration: a batched GPU Racon job produces a
//! Chrome-format timeline whose copy and compute tracks genuinely
//! overlap (the cudapoa pipelining), retrievable per job from the
//! executor.

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::GpuCluster;
use gyan::setup::{install_gyan, GyanConfig};
use seqtools::{DatasetSpec, ToolExecutor};
use std::sync::Arc;

const RACON: &str = r#"<tool id="racon_gpu">
  <requirements><requirement type="compute">gpu</requirement></requirements>
  <command>racon_gpu -t 2 --cudapoa-batches $batches trace_racon > out</command>
  <inputs><param name="batches" type="integer" value="4"/></inputs>
</tool>"#;

fn run_job(batches: u32) -> (Arc<ToolExecutor>, u64) {
    let cluster = GpuCluster::k80_node();
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    let executor = Arc::new(ToolExecutor::new(&cluster));
    executor.register_dataset(DatasetSpec {
        name: "trace_racon",
        genome_len: 2_500,
        n_reads: 20,
        read_len: 2_000,
        ..DatasetSpec::alzheimers_nfl()
    });
    app.set_executor(Box::new(executor.clone()));
    install_gyan(&mut app, &cluster, GyanConfig::default());
    app.install_tool_xml(RACON, &MacroLibrary::new()).unwrap();
    let mut params = ParamDict::new();
    params.set("batches", batches.to_string());
    let id = app.submit("racon_gpu", &params).unwrap();
    (executor, id)
}

#[test]
fn batched_job_trace_shows_copy_compute_overlap() {
    let (executor, id) = run_job(4);
    let trace = executor.trace_for_job(id).expect("GPU job recorded a trace");
    // One H2D + two kernels + one D2H per batch; requesting 4 batches on
    // a handful of windows yields at least 2 and at most 4 actual batches
    // (windows are chunked evenly).
    let batches = trace.track("gpu0/h2d").len();
    assert!((2..=4).contains(&batches), "batches = {batches}");
    assert_eq!(trace.track("gpu0/compute").len(), 2 * batches);
    assert_eq!(trace.track("gpu0/d2h").len(), batches);
    // Pipelining: a later batch's H2D overlaps an earlier batch's kernel.
    assert!(
        trace.has_cross_track_overlap("gpu0/h2d", "gpu0/compute"),
        "expected copy/compute overlap in\n{}",
        trace.to_chrome_trace()
    );
    // Within each engine, intervals are serial.
    for track in ["gpu0/h2d", "gpu0/compute", "gpu0/d2h"] {
        let events = trace.track(track);
        for pair in events.windows(2) {
            assert!(pair[0].end_s() <= pair[1].start_s + 1e-9, "{track}: {pair:?}");
        }
    }
    // The Chrome export loads as one JSON object.
    let json = trace.to_chrome_trace();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("generatePOAKernel"));
}

#[test]
fn single_batch_trace_is_serial() {
    let (executor, id) = run_job(1);
    let trace = executor.trace_for_job(id).expect("trace recorded");
    assert_eq!(trace.track("gpu0/h2d").len(), 1);
    // One batch: the kernel strictly follows its input copy.
    let h2d = &trace.track("gpu0/h2d")[0].clone();
    let kernel = &trace.track("gpu0/compute")[0].clone();
    assert!(kernel.start_s >= h2d.end_s() - 1e-9);
}
