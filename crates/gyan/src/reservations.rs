//! Device reservations: closing the observe→dispatch TOCTOU window.
//!
//! The paper's allocation scheme polls `nvidia-smi`, then launches the
//! job — a classic time-of-check/time-of-use race. Our substrate
//! reproduces it faithfully: the queue engine prepares **all** plans of a
//! dispatch wave against the pre-wave cluster state, so two same-wave
//! jobs can both observe GPU 1 free, both export
//! `CUDA_VISIBLE_DEVICES=1`, and the paper's Case 1–4 placement
//! guarantees silently break under concurrency.
//!
//! [`LeaseTable`] closes the window. It is a shared table of *leases*
//! keyed by GPU minor ID that the allocator consults **in addition to**
//! live SMI state: a device leased by a not-yet-executing plan is no
//! longer "free" to the next plan in the same wave. The check and the
//! reservation happen atomically under one lock
//! ([`LeaseTable::allocate_and_lease`]), so no interleaving of
//! preparations can double-book a device.
//!
//! Lease lifecycle:
//!
//! * **acquired** at plan-preparation time (the GYAN hook's
//!   `before_dispatch`), carrying the holder job id, acquisition time,
//!   and a declared memory hint;
//! * **released** on job finish, terminal failure, preparation failure,
//!   retryable failure (*before* the resubmitted attempt re-prepares),
//!   and discard shutdown (via [`LeaseTable::discard_listener`]);
//! * re-preparation re-acquires: a holder's stale leases are superseded
//!   when it allocates again.
//!
//! Grants taken from the free path are **exclusive** — at most one
//! exclusive lease may exist per device. Grants taken when nothing is
//! effectively free (the Process-ID scatter and least-memory placements)
//! are **shared**: the paper deliberately oversubscribes busy devices,
//! and the lease table preserves that while still recording who is
//! co-located where. The Process-Allocated-Memory policy counts pending
//! leases' declared memory hints on top of the SMI reading, so a wave of
//! placements spreads by *future* memory load, not just current.
//!
//! Everything is audited: `gyan.reservation.acquire` / `.release` /
//! `.conflict` events (the conflict event records what the allocator
//! *would* have done without leases, and which holders blocked that),
//! plus active-lease gauge and acquire/release/conflict counters.

use crate::allocation::{decide, decide_traced, Allocation, AllocationPolicy, AllocationReason};
use crate::gpu_usage::get_gpu_usage;
use gpusim::GpuCluster;
use obs::{Recorder, Value};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Gauge: leases currently held across all devices.
pub const RESERVATIONS_ACTIVE_GAUGE: &str = "gyan_reservations_active";
/// Counter: leases acquired (one per device per grant).
pub const RESERVATIONS_ACQUIRED_COUNTER: &str = "gyan_reservations_acquired_total";
/// Counter: leases released.
pub const RESERVATIONS_RELEASED_COUNTER: &str = "gyan_reservations_released_total";
/// Counter: allocations redirected because a lease made the unleased
/// choice unavailable.
pub const RESERVATION_CONFLICTS_COUNTER: &str = "gyan_reservation_conflicts_total";

/// One active device reservation.
#[derive(Debug, Clone, PartialEq)]
pub struct Lease {
    /// GPU minor ID the lease covers.
    pub device: u32,
    /// Job id holding the lease.
    pub holder: u64,
    /// Recorder-clock time the lease was acquired.
    pub acquired_at: f64,
    /// Device memory the holder declared it will allocate (MiB); counted
    /// by the Process-Allocated-Memory policy as pending load.
    pub memory_hint_mib: u64,
    /// Exclusive leases come from free-path grants (at most one per
    /// device); shared leases from the all-busy placements.
    pub exclusive: bool,
}

/// Immutable snapshot of the lease state, consumed by the allocator: the
/// leased device set and the pending declared memory per device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReservationView {
    leased: BTreeSet<u32>,
    pending_mem: BTreeMap<u32, u64>,
}

impl ReservationView {
    /// Whether any lease covers `minor`.
    pub fn is_leased(&self, minor: u32) -> bool {
        self.leased.contains(&minor)
    }

    /// Sum of memory hints of leases on `minor` (MiB).
    pub fn pending_mem(&self, minor: u32) -> u64 {
        self.pending_mem.get(&minor).copied().unwrap_or(0)
    }

    /// Sorted minor IDs with at least one lease.
    pub fn leased_devices(&self) -> Vec<u32> {
        self.leased.iter().copied().collect()
    }

    /// True when no lease is active.
    pub fn is_empty(&self) -> bool {
        self.leased.is_empty()
    }
}

#[derive(Default)]
struct Inner {
    leases: BTreeMap<u32, Vec<Lease>>,
}

impl Inner {
    fn view(&self) -> ReservationView {
        let mut view = ReservationView::default();
        for (minor, leases) in &self.leases {
            if leases.is_empty() {
                continue;
            }
            view.leased.insert(*minor);
            view.pending_mem.insert(*minor, leases.iter().map(|l| l.memory_hint_mib).sum());
        }
        view
    }

    fn count(&self) -> usize {
        self.leases.values().map(Vec::len).sum()
    }
}

/// The shared lease table. Clones share state; the table is thread-safe
/// (the queue engine prepares plans on one thread, but the discard
/// listener runs on pool worker threads).
#[derive(Clone, Default)]
pub struct LeaseTable {
    inner: Arc<Mutex<Inner>>,
}

impl LeaseTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically: snapshot SMI state, run the allocation policy with the
    /// current leases folded in, record the decision audit, detect and
    /// audit conflicts (where the lease-blind decision would have
    /// differed), and insert leases for the granted devices — all under
    /// one lock, so concurrent preparations cannot double-book.
    ///
    /// Any stale leases `holder` already held are superseded first
    /// (re-preparation re-acquires). Returns the allocation, or `None` on
    /// a GPU-less node.
    pub fn allocate_and_lease(
        &self,
        cluster: &GpuCluster,
        requested: &[u32],
        policy: AllocationPolicy,
        holder: u64,
        memory_hint_mib: u64,
        recorder: Option<&Recorder>,
    ) -> Option<Allocation> {
        obs::profile_scope!("gyan.allocate");
        let mut inner = self.inner.lock();
        {
            obs::profile_scope!("alloc.supersede");
            release_locked(&mut inner, holder, "superseded", recorder);
        }
        let usage = {
            obs::profile_scope!("alloc.observe");
            get_gpu_usage(cluster)
        };
        let view = inner.view();
        let _place = obs::profile::global().scope("alloc.place");
        let alloc = decide_traced(cluster, &usage, requested, policy, Some(&view), recorder)?;

        // Conflict: the same snapshot without leases would have granted a
        // different device set — record what blocked the baseline choice.
        if !view.is_empty() {
            let baseline = decide(cluster, &usage, requested, policy, None);
            if let Some(baseline) = baseline {
                if baseline.devices != alloc.devices {
                    self.audit_conflict(&inner, holder, requested, &baseline, &alloc, recorder);
                }
            }
        }
        drop(_place);

        obs::profile_scope!("alloc.lease");
        let exclusive = matches!(
            alloc.reason,
            AllocationReason::RequestedFree
                | AllocationReason::FreeFallback
                | AllocationReason::InvalidRequest
        );
        let now = recorder.map_or(0.0, Recorder::now);
        for &device in &alloc.devices {
            debug_assert!(
                !exclusive || inner.leases.get(&device).is_none_or(|l| l.is_empty()),
                "exclusive grant on an already-leased device"
            );
            inner.leases.entry(device).or_default().push(Lease {
                device,
                holder,
                acquired_at: now,
                memory_hint_mib,
                exclusive,
            });
            if let Some(rec) = recorder {
                rec.event(
                    "gyan.reservation.acquire",
                    vec![
                        ("job_id", Value::from(holder)),
                        ("device", Value::from(u64::from(device))),
                        ("exclusive", Value::from(exclusive)),
                        ("memory_hint_mib", Value::from(memory_hint_mib)),
                        ("reason", Value::from(alloc.reason.as_str())),
                    ],
                );
            }
        }
        if let Some(rec) = recorder {
            let m = rec.metrics();
            m.inc_counter(RESERVATIONS_ACQUIRED_COUNTER, alloc.devices.len() as u64);
            m.set_gauge(RESERVATIONS_ACTIVE_GAUGE, inner.count() as f64);
        }
        Some(alloc)
    }

    fn audit_conflict(
        &self,
        inner: &Inner,
        holder: u64,
        requested: &[u32],
        baseline: &Allocation,
        actual: &Allocation,
        recorder: Option<&Recorder>,
    ) {
        let Some(rec) = recorder else { return };
        rec.metrics().inc_counter(RESERVATION_CONFLICTS_COUNTER, 1);
        // Which holders stood in the way of the lease-blind choice.
        let blocked_by: Vec<String> = baseline
            .devices
            .iter()
            .filter(|d| !actual.devices.contains(d))
            .flat_map(|d| {
                inner
                    .leases
                    .get(d)
                    .into_iter()
                    .flatten()
                    .map(|l| format!("{}:job{}", l.device, l.holder))
            })
            .collect();
        let join = |ids: &[u32]| ids.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
        rec.event(
            "gyan.reservation.conflict",
            vec![
                ("job_id", Value::from(holder)),
                ("requested", Value::from(join(requested))),
                (
                    "baseline_devices",
                    Value::from(baseline.devices.iter().fold(String::new(), |mut acc, d| {
                        if !acc.is_empty() {
                            acc.push(',');
                        }
                        acc.push_str(&d.to_string());
                        acc
                    })),
                ),
                ("granted_devices", Value::from(join(&actual.devices))),
                ("baseline_reason", Value::from(baseline.reason.as_str())),
                ("granted_reason", Value::from(actual.reason.as_str())),
                ("blocked_by", Value::from(blocked_by.join(","))),
            ],
        );
    }

    /// Release every lease `holder` holds, auditing each as
    /// `gyan.reservation.release` with `why` (e.g. `ok`,
    /// `failed_retryable`, `discarded`). Returns the number released
    /// (0 when the holder had none — releasing is idempotent).
    pub fn release(&self, holder: u64, why: &str, recorder: Option<&Recorder>) -> usize {
        obs::profile_scope!("alloc.release");
        let mut inner = self.inner.lock();
        release_locked(&mut inner, holder, why, recorder)
    }

    /// Snapshot the current lease state for a lease-aware allocation
    /// outside the table (e.g. the destination rule's observation).
    pub fn view(&self) -> ReservationView {
        self.inner.lock().view()
    }

    /// Total active leases.
    pub fn lease_count(&self) -> usize {
        self.inner.lock().count()
    }

    /// Active leases on `minor`, in acquisition order.
    pub fn leases_on(&self, minor: u32) -> Vec<Lease> {
        self.inner.lock().leases.get(&minor).cloned().unwrap_or_default()
    }

    /// Every active lease across all devices, ordered by device minor
    /// then acquisition — one consistent snapshot for invariant checkers.
    pub fn all_leases(&self) -> Vec<Lease> {
        self.inner.lock().leases.values().flatten().cloned().collect()
    }

    /// The largest number of simultaneous leases on any one device — the
    /// oversubscription degree the SLO alert rules watch (1 is healthy;
    /// above 1 means all-busy shared placements are piling up).
    pub fn max_leases_per_device(&self) -> usize {
        self.inner.lock().leases.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Sorted, deduplicated job ids currently holding at least one lease.
    pub fn holders(&self) -> Vec<u64> {
        let inner = self.inner.lock();
        let set: BTreeSet<u64> = inner.leases.values().flatten().map(|l| l.holder).collect();
        set.into_iter().collect()
    }

    /// A [`galaxy::scheduler::HandlerPool`] discard listener releasing
    /// the leases of plans skipped by a discard shutdown. Runs on pool
    /// worker threads, hence the owned recorder clone.
    pub fn discard_listener(&self, recorder: Option<Recorder>) -> Arc<dyn Fn(u64) + Send + Sync> {
        let table = self.clone();
        Arc::new(move |job_id| {
            table.release(job_id, "discarded", recorder.as_ref());
        })
    }
}

fn release_locked(inner: &mut Inner, holder: u64, why: &str, recorder: Option<&Recorder>) -> usize {
    let now = recorder.map_or(0.0, Recorder::now);
    let mut released = 0usize;
    inner.leases.retain(|_, leases| {
        leases.retain(|lease| {
            if lease.holder != holder {
                return true;
            }
            released += 1;
            if let Some(rec) = recorder {
                rec.event(
                    "gyan.reservation.release",
                    vec![
                        ("job_id", Value::from(holder)),
                        ("device", Value::from(u64::from(lease.device))),
                        ("reason", Value::from(why)),
                        ("held_seconds", Value::from((now - lease.acquired_at).max(0.0))),
                    ],
                );
            }
            false
        });
        !leases.is_empty()
    });
    if released > 0 {
        if let Some(rec) = recorder {
            let m = rec.metrics();
            m.inc_counter(RESERVATIONS_RELEASED_COUNTER, released as u64);
            m.set_gauge(RESERVATIONS_ACTIVE_GAUGE, inner.count() as f64);
        }
    }
    released
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::GpuProcess;

    fn table() -> (GpuCluster, LeaseTable, Recorder) {
        (GpuCluster::k80_node(), LeaseTable::new(), Recorder::new())
    }

    #[test]
    fn leased_device_is_not_free_to_the_next_plan() {
        let (c, t, rec) = table();
        // Job 1 requests device 1 on an idle node: granted, leased.
        let a1 = t.allocate_and_lease(&c, &[1], AllocationPolicy::ProcessId, 1, 100, Some(&rec));
        assert_eq!(a1.unwrap().cuda_visible_devices, "1");
        // Job 2 requests the same device in the same wave (SMI still shows
        // it free): redirected to device 0 — the race the table closes.
        let a2 = t.allocate_and_lease(&c, &[1], AllocationPolicy::ProcessId, 2, 100, Some(&rec));
        let a2 = a2.unwrap();
        assert_eq!(a2.cuda_visible_devices, "0");
        assert!(!a2.granted_requested);
        assert_eq!(t.lease_count(), 2);
        assert_eq!(t.holders(), vec![1, 2]);
    }

    #[test]
    fn conflict_event_records_what_was_blocked_and_by_whom() {
        let (c, t, rec) = table();
        t.allocate_and_lease(&c, &[1], AllocationPolicy::ProcessId, 1, 100, Some(&rec));
        t.allocate_and_lease(&c, &[1], AllocationPolicy::ProcessId, 2, 100, Some(&rec));
        let conflicts = rec.events_named("gyan.reservation.conflict");
        assert_eq!(conflicts.len(), 1);
        let e = &conflicts[0];
        assert_eq!(e.field("job_id").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(e.field("baseline_devices").and_then(|v| v.as_str()), Some("1"));
        assert_eq!(e.field("granted_devices").and_then(|v| v.as_str()), Some("0"));
        assert_eq!(e.field("blocked_by").and_then(|v| v.as_str()), Some("1:job1"));
        assert_eq!(rec.metrics().counter_value(RESERVATION_CONFLICTS_COUNTER), 1);
    }

    #[test]
    fn release_frees_the_device_and_settles_metrics() {
        let (c, t, rec) = table();
        t.allocate_and_lease(&c, &[1], AllocationPolicy::ProcessId, 1, 100, Some(&rec));
        assert_eq!(t.release(1, "ok", Some(&rec)), 1);
        assert_eq!(t.lease_count(), 0);
        // The device is immediately grantable again.
        let a = t.allocate_and_lease(&c, &[1], AllocationPolicy::ProcessId, 2, 100, Some(&rec));
        assert!(a.unwrap().granted_requested);
        let m = rec.metrics();
        assert_eq!(m.counter_value(RESERVATIONS_ACQUIRED_COUNTER), 2);
        assert_eq!(m.counter_value(RESERVATIONS_RELEASED_COUNTER), 1);
        let release = &rec.events_named("gyan.reservation.release")[0];
        assert_eq!(release.field("reason").and_then(|v| v.as_str()), Some("ok"));
        // Releasing again is a no-op.
        assert_eq!(t.release(1, "ok", Some(&rec)), 0);
    }

    #[test]
    fn reacquire_supersedes_stale_leases() {
        let (c, t, rec) = table();
        t.allocate_and_lease(&c, &[0], AllocationPolicy::ProcessId, 7, 100, Some(&rec));
        // The same holder re-prepares (resubmission): old lease replaced,
        // not stacked.
        t.allocate_and_lease(&c, &[1], AllocationPolicy::ProcessId, 7, 100, Some(&rec));
        assert_eq!(t.lease_count(), 1);
        assert_eq!(t.leases_on(1).len(), 1);
        assert!(t.leases_on(0).is_empty());
        let superseded: Vec<_> = rec
            .events_named("gyan.reservation.release")
            .into_iter()
            .filter(|e| e.field("reason").and_then(|v| v.as_str()) == Some("superseded"))
            .collect();
        assert_eq!(superseded.len(), 1);
    }

    #[test]
    fn all_leased_falls_through_to_shared_placement() {
        let (c, t, rec) = table();
        // One holder leases both devices exclusively (no preference on an
        // idle node grants all free GPUs).
        let a1 =
            t.allocate_and_lease(&c, &[], AllocationPolicy::ProcessId, 1, 100, Some(&rec)).unwrap();
        assert_eq!(a1.cuda_visible_devices, "0,1");
        assert!(t.leases_on(0)[0].exclusive);
        // Everything leased: the PID policy scatters (shared lease), as
        // the paper does when everything is busy.
        let a2 =
            t.allocate_and_lease(&c, &[], AllocationPolicy::ProcessId, 2, 100, Some(&rec)).unwrap();
        assert_eq!(a2.reason, AllocationReason::AllBusyScatter);
        assert!(!t.leases_on(0)[1].exclusive);
        assert_eq!(t.lease_count(), 4);
    }

    #[test]
    fn memory_policy_counts_pending_lease_hints() {
        let (c, t, rec) = table();
        // Two leases with very different declared memory; SMI sees both
        // devices idle (nothing is executing yet).
        t.allocate_and_lease(&c, &[0], AllocationPolicy::MemoryBased, 1, 2000, Some(&rec));
        t.allocate_and_lease(&c, &[1], AllocationPolicy::MemoryBased, 2, 100, Some(&rec));
        // Third job: nothing effectively free; least *pending* memory is
        // device 1 (100 MiB hint vs 2000), even though SMI memory ties.
        let a = t
            .allocate_and_lease(&c, &[], AllocationPolicy::MemoryBased, 3, 500, Some(&rec))
            .unwrap();
        assert_eq!(a.reason, AllocationReason::AllBusyLeastMemory);
        assert_eq!(a.devices, vec![1]);
    }

    #[test]
    fn smi_busy_and_leases_compose() {
        let (c, t, rec) = table();
        // Device 0 busy for real; device 1 leased: nothing is free.
        c.attach_process(0, GpuProcess::compute(9, "other", 60)).unwrap();
        t.allocate_and_lease(&c, &[1], AllocationPolicy::ProcessId, 1, 100, Some(&rec));
        let a =
            t.allocate_and_lease(&c, &[], AllocationPolicy::ProcessId, 2, 100, Some(&rec)).unwrap();
        assert_eq!(a.reason, AllocationReason::AllBusyScatter);
    }

    #[test]
    fn view_reports_leased_devices_and_pending_memory() {
        let (c, t, rec) = table();
        t.allocate_and_lease(&c, &[1], AllocationPolicy::ProcessId, 1, 640, Some(&rec));
        let view = t.view();
        assert!(view.is_leased(1));
        assert!(!view.is_leased(0));
        assert_eq!(view.pending_mem(1), 640);
        assert_eq!(view.leased_devices(), vec![1]);
        t.release(1, "ok", Some(&rec));
        assert!(t.view().is_empty());
    }

    #[test]
    fn discard_listener_releases_on_worker_threads() {
        let (c, t, rec) = table();
        t.allocate_and_lease(&c, &[0], AllocationPolicy::ProcessId, 42, 100, Some(&rec));
        let listener = t.discard_listener(Some(rec.clone()));
        std::thread::spawn(move || listener(42)).join().unwrap();
        assert_eq!(t.lease_count(), 0);
        let release = &rec.events_named("gyan.reservation.release")[0];
        assert_eq!(release.field("reason").and_then(|v| v.as_str()), Some("discarded"));
    }

    #[test]
    fn gpuless_node_allocates_nothing_and_leases_nothing() {
        let c = GpuCluster::cpu_only_node();
        let t = LeaseTable::new();
        assert!(t.allocate_and_lease(&c, &[], AllocationPolicy::ProcessId, 1, 0, None).is_none());
        assert_eq!(t.lease_count(), 0);
    }
}
