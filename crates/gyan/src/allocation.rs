//! GPU device allocation strategies — the paper's Pseudocode 2 plus the
//! Process Allocated Memory refinement (§IV-C1 and §IV-C2).
//!
//! Given a tool's requested GPU minor IDs (from the requirement's
//! `version` tag) and the live cluster state, compute the value to export
//! as `CUDA_VISIBLE_DEVICES`.
//!
//! The decision can additionally consult a [`ReservationView`] — a
//! snapshot of the [`crate::reservations::LeaseTable`] — so that devices
//! leased by not-yet-executing plans are treated as busy even though SMI
//! still reports them idle. This is what closes the observe→dispatch
//! TOCTOU window for same-wave placements.

use crate::gpu_usage::{get_gpu_usage, gpu_memory_usage};
use crate::reservations::ReservationView;
use gpusim::GpuCluster;
use obs::{Recorder, Value};
use std::collections::HashSet;

/// Which of GYAN's two device allocation strategies to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocationPolicy {
    /// §IV-C1 *Process ID Approach*: a GPU is free iff it has no executing
    /// processes; when the requested GPU is busy fall back to all free
    /// GPUs, and when none are free expose **all** GPUs (scatter).
    #[default]
    ProcessId,
    /// §IV-C2 *Process Allocated Memory Approach*: when no GPU is free,
    /// place the job on the single GPU with the least allocated device
    /// memory instead of scattering — avoiding multi-GPU overhead for
    /// tools without multi-GPU support.
    MemoryBased,
}

/// Why the allocator exposed the devices it did (the audit trail the
/// telemetry records alongside the observed cluster state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationReason {
    /// Every requested device was free; the request was granted as-is.
    RequestedFree,
    /// The request was busy or leased (or there was no preference); the
    /// job got the currently free GPUs.
    FreeFallback,
    /// The request named at least one GPU minor ID that does not exist on
    /// this node (e.g. `[7]` on a 2-GPU node); the job got the free GPUs,
    /// but the audit records the bad request instead of silently treating
    /// it as "no preference".
    InvalidRequest,
    /// Nothing was free; the Process ID approach scattered the job across
    /// all GPUs.
    AllBusyScatter,
    /// Nothing was free; the Process Allocated Memory approach picked the
    /// GPU with the least allocated memory.
    AllBusyLeastMemory,
}

impl AllocationReason {
    /// Stable snake_case name used in audit events.
    pub fn as_str(self) -> &'static str {
        match self {
            AllocationReason::RequestedFree => "requested_free",
            AllocationReason::FreeFallback => "free_fallback",
            AllocationReason::InvalidRequest => "invalid_request",
            AllocationReason::AllBusyScatter => "all_busy_scatter",
            AllocationReason::AllBusyLeastMemory => "all_busy_least_memory",
        }
    }
}

/// The outcome of an allocation decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Value for `CUDA_VISIBLE_DEVICES` (comma-separated minor IDs).
    pub cuda_visible_devices: String,
    /// The parsed device list, in export order.
    pub devices: Vec<u32>,
    /// True when the requested device was free and granted as-is.
    pub granted_requested: bool,
    /// Why these devices were chosen.
    pub reason: AllocationReason,
}

/// Decide which GPUs to expose to a job.
///
/// `requested` is the tool's GPU minor ID list from the wrapper's
/// `version` tag (empty = no preference). Returns `None` when the node has
/// no GPUs at all.
pub fn select_gpus(
    cluster: &GpuCluster,
    requested: &[u32],
    policy: AllocationPolicy,
) -> Option<Allocation> {
    select_gpus_traced(cluster, requested, policy, None)
}

/// [`select_gpus`] plus a decision audit: when `recorder` is given, emits
/// one `gyan.allocation.decision` event recording the inputs the allocator
/// saw (per-device busy PIDs and allocated memory, the free list, the
/// request) and the reason for its choice.
pub fn select_gpus_traced(
    cluster: &GpuCluster,
    requested: &[u32],
    policy: AllocationPolicy,
    recorder: Option<&Recorder>,
) -> Option<Allocation> {
    let usage = get_gpu_usage(cluster);
    decide_traced(cluster, &usage, requested, policy, None, recorder)
}

/// [`select_gpus_traced`] with active reservations folded in: devices in
/// `reservations` count as busy, and the Process Allocated Memory policy
/// adds each device's pending declared memory to the SMI reading.
///
/// This observes leases without acquiring any — callers who also need to
/// *hold* the grant should go through
/// [`crate::reservations::LeaseTable::allocate_and_lease`], which runs the
/// same decision atomically with lease insertion.
pub fn select_gpus_reserved(
    cluster: &GpuCluster,
    requested: &[u32],
    policy: AllocationPolicy,
    reservations: &ReservationView,
    recorder: Option<&Recorder>,
) -> Option<Allocation> {
    let usage = get_gpu_usage(cluster);
    decide_traced(cluster, &usage, requested, policy, Some(reservations), recorder)
}

/// The decision plus its `gyan.allocation.decision` audit event, computed
/// from an already-taken SMI snapshot (so the lease table can decide and
/// reserve under one lock without re-polling).
pub(crate) fn decide_traced(
    cluster: &GpuCluster,
    usage: &crate::gpu_usage::GpuUsage,
    requested: &[u32],
    policy: AllocationPolicy,
    reservations: Option<&ReservationView>,
    recorder: Option<&Recorder>,
) -> Option<Allocation> {
    let outcome = decide(cluster, usage, requested, policy, reservations);

    if let Some(rec) = recorder {
        let memory = gpu_memory_usage(cluster);
        let mut fields: Vec<(String, Value)> = vec![
            ("policy".into(), policy_name(policy).into()),
            ("requested".into(), join(requested).into()),
            ("all_gpus".into(), join(&usage.all_gpus).into()),
            ("avail_gpus".into(), join(&usage.avail_gpus).into()),
        ];
        let invalid = invalid_requested(usage, requested);
        if !invalid.is_empty() {
            fields.push(("invalid_requested".into(), join(&invalid).into()));
        }
        // The per-device state the decision was based on: busy PIDs and
        // allocated framebuffer memory.
        for (minor, pids) in &usage.proc_gpu_dict {
            fields.push((format!("gpu{minor}_pids"), join(pids).into()));
        }
        for (minor, used) in &memory {
            fields.push((format!("gpu{minor}_mem_mib"), (*used).into()));
        }
        // What the lease table contributed, when one was consulted.
        if let Some(view) = reservations {
            if !view.is_empty() {
                fields.push(("leased_gpus".into(), join(&view.leased_devices()).into()));
                fields.push((
                    "effective_avail".into(),
                    join(&effective_avail(usage, reservations)).into(),
                ));
                for minor in view.leased_devices() {
                    fields
                        .push((format!("gpu{minor}_pending_mib"), view.pending_mem(minor).into()));
                }
            }
        }
        match &outcome {
            Some(alloc) => {
                fields.push((
                    "cuda_visible_devices".into(),
                    alloc.cuda_visible_devices.as_str().into(),
                ));
                fields.push(("granted_requested".into(), alloc.granted_requested.into()));
                fields.push(("reason".into(), alloc.reason.as_str().into()));
            }
            None => fields.push(("reason".into(), "no_gpus_on_node".into())),
        }
        rec.event("gyan.allocation.decision", fields);
    }
    outcome
}

/// Requested minor IDs that do not exist on the node, in request order.
fn invalid_requested(usage: &crate::gpu_usage::GpuUsage, requested: &[u32]) -> Vec<u32> {
    let mut seen = HashSet::with_capacity(requested.len());
    requested
        .iter()
        .copied()
        .filter(|id| seen.insert(*id) && !usage.all_gpus.contains(id))
        .collect()
}

/// SMI-free devices minus leased ones.
fn effective_avail(
    usage: &crate::gpu_usage::GpuUsage,
    reservations: Option<&ReservationView>,
) -> Vec<u32> {
    usage
        .avail_gpus
        .iter()
        .copied()
        .filter(|id| reservations.is_none_or(|view| !view.is_leased(*id)))
        .collect()
}

pub(crate) fn decide(
    cluster: &GpuCluster,
    usage: &crate::gpu_usage::GpuUsage,
    requested: &[u32],
    policy: AllocationPolicy,
    reservations: Option<&ReservationView>,
) -> Option<Allocation> {
    if usage.all_gpus.is_empty() {
        return None;
    }

    // Deduplicate the request preserving order (a wrapper listing "0,0"
    // means device 0). A seen-set keeps this linear; the old
    // `contains`-scan was quadratic in the request length.
    let mut seen = HashSet::with_capacity(requested.len());
    let requested_dedup: Vec<u32> =
        requested.iter().copied().filter(|id| seen.insert(*id)).collect();
    let invalid_request = requested_dedup.iter().any(|id| !usage.all_gpus.contains(id));

    // A device is effectively free when SMI shows no processes *and* no
    // not-yet-executing plan holds a lease on it.
    let avail = effective_avail(usage, reservations);

    // Pseudocode 2: if gpu_id_to_query in avail_gps, grant it (all of the
    // requested ids must be free to grant the multi-GPU request). A
    // request naming a nonexistent device is never granted as-is.
    if !requested_dedup.is_empty() && !invalid_request {
        let all_free = requested_dedup.iter().all(|id| avail.contains(id));
        if all_free {
            return Some(make_allocation(requested_dedup, AllocationReason::RequestedFree));
        }
    }

    // Requested GPU busy/leased, request invalid, or no preference: fall
    // back to the effectively free GPUs. An invalid request is audited as
    // such instead of masquerading as "no preference".
    if !avail.is_empty() {
        let reason = if invalid_request {
            AllocationReason::InvalidRequest
        } else {
            AllocationReason::FreeFallback
        };
        return Some(make_allocation(avail, reason));
    }

    // Nothing effectively free: the two strategies diverge.
    let (devices, reason) = match policy {
        AllocationPolicy::ProcessId => {
            (usage.all_gpus.clone(), AllocationReason::AllBusyScatter) // scatter across all
        }
        AllocationPolicy::MemoryBased => {
            // Least *total* load: SMI-allocated memory plus the memory
            // pending leases declared they will allocate. Without the
            // pending term, a wave of placements would all pick the same
            // "least loaded" device.
            let mem = gpu_memory_usage(cluster);
            let min = mem
                .iter()
                .map(|(minor, used)| {
                    let pending = reservations.map_or(0, |view| view.pending_mem(*minor));
                    (*minor, *used + pending)
                })
                .min_by_key(|(minor, total)| (*total, *minor))
                .map(|(minor, _)| minor)
                .expect("non-empty gpu list");
            (vec![min], AllocationReason::AllBusyLeastMemory)
        }
    };
    Some(make_allocation(devices, reason))
}

fn make_allocation(devices: Vec<u32>, reason: AllocationReason) -> Allocation {
    let cuda_visible_devices = devices.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
    Allocation {
        cuda_visible_devices,
        devices,
        granted_requested: reason == AllocationReason::RequestedFree,
        reason,
    }
}

fn policy_name(policy: AllocationPolicy) -> &'static str {
    match policy {
        AllocationPolicy::ProcessId => "process_id",
        AllocationPolicy::MemoryBased => "memory_based",
    }
}

fn join<T: ToString>(items: &[T]) -> String {
    items.iter().map(T::to_string).collect::<Vec<_>>().join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reservations::LeaseTable;
    use gpusim::GpuProcess;

    fn busy(cluster: &GpuCluster, minor: u32, pid: u32, mib: u64) {
        cluster.attach_process(minor, GpuProcess::compute(pid, "tool", mib)).unwrap();
    }

    /// A view with leases held by the given holders on the given devices.
    fn leased_view(cluster: &GpuCluster, grants: &[(u64, u32, u64)]) -> ReservationView {
        let table = LeaseTable::new();
        for &(holder, device, hint) in grants {
            table.allocate_and_lease(
                cluster,
                &[device],
                AllocationPolicy::ProcessId,
                holder,
                hint,
                None,
            );
        }
        table.view()
    }

    #[test]
    fn requested_free_gpu_granted() {
        let c = GpuCluster::k80_node();
        let a = select_gpus(&c, &[1], AllocationPolicy::ProcessId).unwrap();
        assert_eq!(a.cuda_visible_devices, "1");
        assert!(a.granted_requested);
    }

    #[test]
    fn requested_busy_gpu_redirected_to_free_one() {
        // Paper Case 2: Bonito requests GPU 1 which is busy; it is
        // scheduled on the free GPU 0 instead.
        let c = GpuCluster::k80_node();
        busy(&c, 1, 100, 2700);
        let a = select_gpus(&c, &[1], AllocationPolicy::ProcessId).unwrap();
        assert_eq!(a.cuda_visible_devices, "0");
        assert!(!a.granted_requested);
    }

    #[test]
    fn no_preference_gets_all_free_gpus() {
        let c = GpuCluster::k80_node();
        let a = select_gpus(&c, &[], AllocationPolicy::ProcessId).unwrap();
        assert_eq!(a.cuda_visible_devices, "0,1");
        busy(&c, 0, 1, 10);
        let a = select_gpus(&c, &[], AllocationPolicy::ProcessId).unwrap();
        assert_eq!(a.cuda_visible_devices, "1");
    }

    #[test]
    fn all_busy_pid_policy_scatters() {
        // Paper Case 3: both GPUs busy → upcoming processes scattered to
        // both GPUs.
        let c = GpuCluster::k80_node();
        busy(&c, 0, 39953, 60);
        busy(&c, 1, 40534, 60);
        let a = select_gpus(&c, &[0], AllocationPolicy::ProcessId).unwrap();
        assert_eq!(a.cuda_visible_devices, "0,1");
        assert_eq!(a.devices, vec![0, 1]);
    }

    #[test]
    fn all_busy_memory_policy_picks_least_loaded() {
        // Paper Case 4: Racon (60 MiB) on GPU 0, Bonito (2.7 GB) on GPU 1;
        // a second Bonito goes to GPU 0 — "the GPU with minimum memory
        // usage was GPU 0 (with 60 MiB usage)".
        let c = GpuCluster::k80_node();
        busy(&c, 0, 43244, 60);
        busy(&c, 1, 45751, 2700);
        let a = select_gpus(&c, &[1], AllocationPolicy::MemoryBased).unwrap();
        assert_eq!(a.cuda_visible_devices, "0");
        assert_eq!(a.devices, vec![0]);
    }

    #[test]
    fn memory_policy_ties_break_by_minor_id() {
        let c = GpuCluster::k80_node();
        busy(&c, 0, 1, 100);
        busy(&c, 1, 2, 100);
        let a = select_gpus(&c, &[], AllocationPolicy::MemoryBased).unwrap();
        assert_eq!(a.cuda_visible_devices, "0");
    }

    #[test]
    fn multi_gpu_request_granted_when_all_free() {
        let c = GpuCluster::k80_node();
        let a = select_gpus(&c, &[0, 1], AllocationPolicy::ProcessId).unwrap();
        assert_eq!(a.cuda_visible_devices, "0,1");
        assert!(a.granted_requested);
    }

    #[test]
    fn multi_gpu_request_partially_busy_falls_back() {
        let c = GpuCluster::k80_node();
        busy(&c, 0, 7, 10);
        let a = select_gpus(&c, &[0, 1], AllocationPolicy::ProcessId).unwrap();
        assert!(!a.granted_requested);
        assert_eq!(a.cuda_visible_devices, "1");
    }

    #[test]
    fn duplicate_request_ids_collapse_preserving_order() {
        let c = GpuCluster::k80_node();
        let a = select_gpus(&c, &[1, 0, 1, 0], AllocationPolicy::ProcessId).unwrap();
        assert!(a.granted_requested);
        assert_eq!(a.cuda_visible_devices, "1,0");
    }

    #[test]
    fn nonexistent_requested_id_falls_back_to_free() {
        let c = GpuCluster::k80_node();
        let a = select_gpus(&c, &[7], AllocationPolicy::ProcessId).unwrap();
        assert!(!a.granted_requested);
        assert_eq!(a.cuda_visible_devices, "0,1");
        // The bad request is called out, not treated as "no preference".
        assert_eq!(a.reason, AllocationReason::InvalidRequest);
    }

    #[test]
    fn invalid_request_is_audited_in_the_decision_event() {
        let c = GpuCluster::k80_node();
        let rec = obs::Recorder::new();
        let a = select_gpus_traced(&c, &[7, 0], AllocationPolicy::ProcessId, Some(&rec)).unwrap();
        // A partially-invalid request is never granted as-is.
        assert!(!a.granted_requested);
        assert_eq!(a.reason, AllocationReason::InvalidRequest);
        let e = &rec.events_named("gyan.allocation.decision")[0];
        assert_eq!(e.field("invalid_requested").and_then(|v| v.as_str()), Some("7"));
        assert_eq!(e.field("reason").and_then(|v| v.as_str()), Some("invalid_request"));
    }

    #[test]
    fn gpuless_node_returns_none() {
        let c = GpuCluster::cpu_only_node();
        assert!(select_gpus(&c, &[], AllocationPolicy::ProcessId).is_none());
        assert!(select_gpus(&c, &[0], AllocationPolicy::MemoryBased).is_none());
    }

    #[test]
    fn reason_tracks_decision_path() {
        let c = GpuCluster::k80_node();
        let a = select_gpus(&c, &[1], AllocationPolicy::ProcessId).unwrap();
        assert_eq!(a.reason, AllocationReason::RequestedFree);
        busy(&c, 1, 5, 10);
        let a = select_gpus(&c, &[1], AllocationPolicy::ProcessId).unwrap();
        assert_eq!(a.reason, AllocationReason::FreeFallback);
        busy(&c, 0, 6, 10);
        let a = select_gpus(&c, &[1], AllocationPolicy::ProcessId).unwrap();
        assert_eq!(a.reason, AllocationReason::AllBusyScatter);
        let a = select_gpus(&c, &[1], AllocationPolicy::MemoryBased).unwrap();
        assert_eq!(a.reason, AllocationReason::AllBusyLeastMemory);
    }

    #[test]
    fn leased_device_is_not_granted_even_when_smi_shows_it_free() {
        let c = GpuCluster::k80_node();
        let view = leased_view(&c, &[(1, 1, 100)]);
        // SMI sees both devices idle, but device 1 is leased.
        let a = select_gpus_reserved(&c, &[1], AllocationPolicy::ProcessId, &view, None).unwrap();
        assert!(!a.granted_requested);
        assert_eq!(a.cuda_visible_devices, "0");
        assert_eq!(a.reason, AllocationReason::FreeFallback);
    }

    #[test]
    fn reserved_decision_audits_lease_inputs() {
        let c = GpuCluster::k80_node();
        let view = leased_view(&c, &[(1, 1, 640)]);
        let rec = obs::Recorder::new();
        select_gpus_reserved(&c, &[], AllocationPolicy::ProcessId, &view, Some(&rec)).unwrap();
        let e = &rec.events_named("gyan.allocation.decision")[0];
        assert_eq!(e.field("leased_gpus").and_then(|v| v.as_str()), Some("1"));
        assert_eq!(e.field("effective_avail").and_then(|v| v.as_str()), Some("0"));
        assert_eq!(e.field("gpu1_pending_mib").and_then(|v| v.as_f64()), Some(640.0));
        // SMI still thinks both are available.
        assert_eq!(e.field("avail_gpus").and_then(|v| v.as_str()), Some("0,1"));
    }

    #[test]
    fn memory_policy_counts_pending_lease_memory_when_all_busy() {
        let c = GpuCluster::k80_node();
        // Lease while the device is still free (an exclusive grant), then
        // let both devices go busy: SMI memory ties at 100 MiB, and the
        // 2000 MiB pending lease on device 0 tips the least-memory choice
        // to device 1.
        let view = leased_view(&c, &[(9, 0, 2000)]);
        busy(&c, 0, 1, 100);
        busy(&c, 1, 2, 100);
        let a = select_gpus_reserved(&c, &[], AllocationPolicy::MemoryBased, &view, None).unwrap();
        assert_eq!(a.reason, AllocationReason::AllBusyLeastMemory);
        assert_eq!(a.devices, vec![1]);
    }

    #[test]
    fn traced_selection_records_observed_inputs_and_reason() {
        let c = GpuCluster::k80_node();
        busy(&c, 0, 43244, 60);
        busy(&c, 1, 45751, 2700);
        let rec = obs::Recorder::new();
        let a = select_gpus_traced(&c, &[1], AllocationPolicy::MemoryBased, Some(&rec)).unwrap();
        assert_eq!(a.cuda_visible_devices, "0");

        let events = rec.events_named("gyan.allocation.decision");
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.field("policy").and_then(|v| v.as_str()), Some("memory_based"));
        assert_eq!(e.field("requested").and_then(|v| v.as_str()), Some("1"));
        assert_eq!(e.field("avail_gpus").and_then(|v| v.as_str()), Some(""));
        assert_eq!(e.field("gpu0_pids").and_then(|v| v.as_str()), Some("43244"));
        assert_eq!(e.field("gpu1_pids").and_then(|v| v.as_str()), Some("45751"));
        // Driver reservation (63 MiB) + process memory.
        assert_eq!(e.field("gpu0_mem_mib").and_then(|v| v.as_f64()), Some(123.0));
        assert_eq!(e.field("gpu1_mem_mib").and_then(|v| v.as_f64()), Some(2763.0));
        assert_eq!(e.field("reason").and_then(|v| v.as_str()), Some("all_busy_least_memory"));
        assert_eq!(e.field("cuda_visible_devices").and_then(|v| v.as_str()), Some("0"));
        // No lease table consulted → no lease fields.
        assert!(e.field("leased_gpus").is_none());
    }

    #[test]
    fn traced_selection_on_gpuless_node_records_why() {
        let c = GpuCluster::cpu_only_node();
        let rec = obs::Recorder::new();
        assert!(select_gpus_traced(&c, &[], AllocationPolicy::ProcessId, Some(&rec)).is_none());
        let events = rec.events_named("gyan.allocation.decision");
        assert_eq!(events[0].field("reason").and_then(|v| v.as_str()), Some("no_gpus_on_node"));
    }
}
