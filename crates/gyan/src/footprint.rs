//! Online per-tool GPU footprint profiles — the telemetry→policy loop.
//!
//! The static `gpu_memory_hint_mib` destination parameter is a guess made
//! at deployment time; real tools' peak GPU memory varies with input size
//! by orders of magnitude. This module closes the loop: every concluded
//! GPU attempt feeds its observed peak memory and runtime into a
//! [`FootprintRegistry`] keyed by `(tool, input-size bucket)`, and the
//! dispatch hooks consult the learned p95 instead of the static hint once
//! a profile has enough samples ([`MemoryHint::Learned`]).
//!
//! Profiles aggregate with [`obs::sketch::QuantileSketch`] — bounded
//! memory per profile regardless of job count, and deterministic merges
//! so multi-node registries can be combined without drift. Input sizes
//! are binned into power-of-two buckets ([`obs::sketch::size_bucket`]):
//! coarse enough that profiles converge quickly, fine enough that a
//! 100 MiB and a 100 GiB invocation of the same tool never share an
//! estimate.
//!
//! Consumers:
//!
//! * [`crate::GyanHook`] / the fleet hook resolve each job's memory hint
//!   through [`FootprintRegistry::estimate`] (override env > learned >
//!   destination param > default) and report the decision as a
//!   [`FOOTPRINT_ESTIMATE_EVENT`] audit once the attempt concludes.
//! * The queue engine's footprint-revised resubmission ladder asks
//!   [`FootprintRegistry::revised_budget`] for a bigger budget before
//!   blindly falling back to CPU (`galaxy::FootprintAdvisor`).
//! * Ops surfaces: `gyan_footprint_*` metrics, the `/api/profiles`
//!   endpoint, and a `gyan/footprint` Chrome-trace track.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::monitor::UsageStats;
use obs::sketch::{bucket_label, size_bucket, QuantileSketch};
use obs::{json_escape, Recorder, Value};

/// Environment variable declaring a job's total input size in MiB. Set by
/// the submitter (Galaxy knows dataset sizes at submission); read by the
/// dispatch hooks to select the profile bucket. Jobs without it fall into
/// bucket 0.
pub const GALAXY_INPUT_SIZE_MIB_ENV: &str = "GALAXY_INPUT_SIZE_MIB";

/// Environment variable carrying the GPU memory budget (MiB) the
/// orchestrator granted this attempt. Exported by the GPU hook on every
/// GPU-mapped attempt so the tool process (and the simulation harness's
/// OOM model) can see the ceiling it must fit under.
pub const GPU_MEMORY_BUDGET_ENV: &str = "GALAXY_GPU_MEMORY_BUDGET_MIB";

/// Environment variable declaring the peak GPU memory (MiB) a simulated
/// job will touch. The harness sets it per job; the hook snapshots it at
/// dispatch so the registry can learn from it at conclusion. Real
/// deployments feed [`FootprintRegistry::observe_usage`] from the 1 Hz
/// [`crate::UsageMonitor`] instead.
pub const GPU_OBSERVED_PEAK_ENV: &str = "GALAXY_GPU_OBSERVED_PEAK_MIB";

/// Audit event emitted when a learned-or-static estimate is reconciled
/// against the observed peak at job conclusion.
pub const FOOTPRINT_ESTIMATE_EVENT: &str = "footprint.estimate";

/// Profiles with fewer samples than this fall back to the static hint.
pub const DEFAULT_MIN_SAMPLES: u64 = 8;

/// Relative-error budget of the profile sketches (see
/// [`obs::sketch::QuantileSketch::new`]).
pub const PROFILE_ALPHA: f64 = 0.01;

/// How the dispatch-time memory estimate was chosen, in priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateSource {
    /// `GALAXY_GPU_BUDGET_OVERRIDE_MIB` on the job (footprint-revised
    /// resubmission).
    Override,
    /// Learned p95 from a converged profile.
    Learned,
    /// The destination's `gpu_memory_hint_mib` parameter or the
    /// configured default.
    Static,
}

impl EstimateSource {
    /// Stable snake_case name used in audits and metrics labels.
    pub fn as_str(&self) -> &'static str {
        match self {
            EstimateSource::Override => "override",
            EstimateSource::Learned => "learned",
            EstimateSource::Static => "static",
        }
    }
}

/// Memory-hint resolution mode for the dispatch hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryHint {
    /// Always use the destination parameter / configured default (the
    /// pre-GYAN behaviour; the ablation baseline).
    #[default]
    Static,
    /// Use the learned per-`(tool, bucket)` p95 once a profile holds at
    /// least `min_samples` observations; fall back to static below that.
    Learned {
        /// Sample-count threshold before a profile is trusted.
        min_samples: u64,
    },
}

impl MemoryHint {
    /// Learned mode with the default sample threshold.
    pub fn learned() -> Self {
        MemoryHint::Learned { min_samples: DEFAULT_MIN_SAMPLES }
    }
}

/// One `(tool, input bucket)` profile.
struct Profile {
    peak_mib: QuantileSketch,
    runtime_s: QuantileSketch,
    last_updated: f64,
}

impl Profile {
    fn new() -> Self {
        Profile {
            peak_mib: QuantileSketch::new(PROFILE_ALPHA),
            runtime_s: QuantileSketch::new(PROFILE_ALPHA),
            last_updated: 0.0,
        }
    }
}

/// Dispatch-time context held until the attempt concludes.
struct Pending {
    tool: String,
    bucket: u32,
    estimate_mib: u64,
    static_mib: u64,
    source: EstimateSource,
    declared_peak_mib: Option<u64>,
    dispatched_at: f64,
}

#[derive(Default)]
struct State {
    profiles: BTreeMap<(String, u32), Profile>,
    pending: BTreeMap<u64, Pending>,
}

impl Default for Profile {
    fn default() -> Self {
        Profile::new()
    }
}

/// Read-only snapshot of one profile, for ops surfaces and tests.
#[derive(Debug, Clone)]
pub struct ProfileSnapshot {
    /// Tool id.
    pub tool: String,
    /// Power-of-two input-size bucket (see [`obs::sketch::size_bucket`]).
    pub bucket: u32,
    /// Human-readable bucket range, e.g. `"[2^10,2^11)MiB"`.
    pub bucket_label: String,
    /// Observations folded into this profile.
    pub samples: u64,
    /// Median observed peak GPU memory (MiB).
    pub peak_mib_p50: f64,
    /// 95th-percentile observed peak GPU memory (MiB) — the learned hint.
    pub peak_mib_p95: f64,
    /// Largest observed peak GPU memory (MiB).
    pub peak_mib_max: f64,
    /// Median observed runtime (seconds).
    pub runtime_s_p50: f64,
    /// 95th-percentile observed runtime (seconds).
    pub runtime_s_p95: f64,
    /// Virtual time of the newest observation.
    pub last_updated: f64,
}

/// Shared, thread-safe registry of per-`(tool, input bucket)` footprint
/// profiles. Clones share state.
#[derive(Clone, Default)]
pub struct FootprintRegistry {
    state: Arc<Mutex<State>>,
}

impl FootprintRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        FootprintRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Fold one concluded attempt into the profile for `tool` at
    /// `input_mib`.
    pub fn observe(&self, tool: &str, input_mib: u64, peak_mib: f64, runtime_s: f64, now: f64) {
        let bucket = size_bucket(input_mib);
        let mut state = self.lock();
        let profile = state.profiles.entry((tool.to_string(), bucket)).or_default();
        profile.peak_mib.observe(peak_mib);
        profile.runtime_s.observe(runtime_s.max(0.0));
        profile.last_updated = now;
    }

    /// Fold a [`crate::UsageMonitor`] sample summary into the profile —
    /// the production feed, where peak memory comes from 1 Hz SMI
    /// sampling rather than a harness declaration.
    pub fn observe_usage(
        &self,
        tool: &str,
        input_mib: u64,
        stats: &UsageStats,
        runtime_s: f64,
        now: f64,
    ) {
        self.observe(tool, input_mib, stats.mem_max as f64, runtime_s, now);
    }

    /// Record the dispatch-time decision for `job_id` so the matching
    /// [`FootprintRegistry::conclude`] can reconcile estimate vs.
    /// observation. A re-dispatch (resubmitted attempt) overwrites the
    /// previous attempt's pending entry.
    #[allow(clippy::too_many_arguments)]
    pub fn note_dispatch(
        &self,
        job_id: u64,
        tool: &str,
        input_mib: u64,
        estimate_mib: u64,
        static_mib: u64,
        source: EstimateSource,
        declared_peak_mib: Option<u64>,
        now: f64,
    ) {
        self.lock().pending.insert(
            job_id,
            Pending {
                tool: tool.to_string(),
                bucket: size_bucket(input_mib),
                estimate_mib,
                static_mib,
                source,
                declared_peak_mib,
                dispatched_at: now,
            },
        );
    }

    /// Drop the pending dispatch record for `job_id` without learning
    /// from it (CPU attempts, failed attempts).
    pub fn forget(&self, job_id: u64) {
        self.lock().pending.remove(&job_id);
    }

    /// Conclude the pending attempt for `job_id`. On success with a
    /// declared peak, the observation is folded into the profile, a
    /// [`FOOTPRINT_ESTIMATE_EVENT`] audit reconciling estimate vs. peak
    /// is emitted, and the `gyan_footprint_*` metrics are refreshed.
    /// Failed attempts only clear the pending record — a job killed by an
    /// undersized budget never reached its true peak, so learning from it
    /// would bias the profile low.
    pub fn conclude(&self, job_id: u64, ok: bool, now: f64, recorder: Option<&Recorder>) {
        let pending = match self.lock().pending.remove(&job_id) {
            Some(p) => p,
            None => return,
        };
        if !ok {
            return;
        }
        let peak = match pending.declared_peak_mib {
            Some(p) => p as f64,
            None => return,
        };
        let runtime = (now - pending.dispatched_at).max(0.0);
        let samples;
        {
            let mut state = self.lock();
            let profile = state.profiles.entry((pending.tool.clone(), pending.bucket)).or_default();
            profile.peak_mib.observe(peak);
            profile.runtime_s.observe(runtime);
            profile.last_updated = now;
            samples = profile.peak_mib.count();
        }
        if let Some(rec) = recorder {
            let err_pct =
                if peak > 0.0 { (pending.estimate_mib as f64 - peak) / peak * 100.0 } else { 0.0 };
            rec.event(
                FOOTPRINT_ESTIMATE_EVENT,
                [
                    ("job_id", Value::from(job_id)),
                    ("tool", pending.tool.as_str().into()),
                    ("bucket", bucket_label(pending.bucket).into()),
                    ("estimate_mib", pending.estimate_mib.into()),
                    ("static_mib", pending.static_mib.into()),
                    ("observed_peak_mib", peak.into()),
                    ("err_pct", err_pct.into()),
                    ("source", pending.source.as_str().into()),
                    ("samples", samples.into()),
                ],
            );
            self.export_metrics(rec.metrics());
        }
    }

    /// Learned memory estimate for `tool` at `input_mib`: the ceil'd p95
    /// of the profile's peak sketch once it holds at least `min_samples`
    /// observations, `None` otherwise (caller falls back to static).
    pub fn estimate(&self, tool: &str, input_mib: u64, min_samples: u64) -> Option<u64> {
        let bucket = size_bucket(input_mib);
        let state = self.lock();
        let profile = state.profiles.get(&(tool.to_string(), bucket))?;
        if profile.peak_mib.count() < min_samples.max(1) {
            return None;
        }
        profile.peak_mib.quantile(0.95).map(|v| v.ceil() as u64)
    }

    /// Tool-wide estimate merging every input bucket — used where no job
    /// context exists (destination-rule admission, placement advisors).
    pub fn estimate_tool(&self, tool: &str, min_samples: u64) -> Option<u64> {
        let state = self.lock();
        let mut merged: Option<QuantileSketch> = None;
        for ((t, _), profile) in state.profiles.iter() {
            if t != tool {
                continue;
            }
            match &mut merged {
                Some(m) => m.merge(&profile.peak_mib),
                None => merged = Some(profile.peak_mib.clone()),
            }
        }
        let merged = merged?;
        if merged.count() < min_samples.max(1) {
            return None;
        }
        merged.quantile(0.95).map(|v| v.ceil() as u64)
    }

    /// A revised (larger) budget for a failed attempt that ran under
    /// `prev_mib`: the profile's observed max plus 25% headroom, and at
    /// least double the failed budget — so repeated footprint retries
    /// escalate geometrically even before the profile has seen a peak
    /// this large. `None` when nothing is known and no previous budget
    /// exists to double.
    pub fn revised_budget(&self, tool: &str, input_mib: u64, prev_mib: Option<u64>) -> Option<u64> {
        let bucket = size_bucket(input_mib);
        let profile_max = {
            let state = self.lock();
            state
                .profiles
                .get(&(tool.to_string(), bucket))
                .and_then(|p| p.peak_mib.max())
                .map(|m| (m * 1.25).ceil() as u64)
        };
        let doubled = prev_mib.map(|p| p.saturating_mul(2));
        match (profile_max, doubled) {
            (Some(m), Some(d)) => Some(m.max(d)),
            (Some(m), None) => Some(m),
            (None, Some(d)) => Some(d),
            (None, None) => None,
        }
    }

    /// Snapshots of every profile, ordered by `(tool, bucket)`.
    pub fn snapshot(&self) -> Vec<ProfileSnapshot> {
        let state = self.lock();
        state
            .profiles
            .iter()
            .map(|((tool, bucket), p)| ProfileSnapshot {
                tool: tool.clone(),
                bucket: *bucket,
                bucket_label: bucket_label(*bucket),
                samples: p.peak_mib.count(),
                peak_mib_p50: p.peak_mib.quantile(0.5).unwrap_or(0.0),
                peak_mib_p95: p.peak_mib.quantile(0.95).unwrap_or(0.0),
                peak_mib_max: p.peak_mib.max().unwrap_or(0.0),
                runtime_s_p50: p.runtime_s.quantile(0.5).unwrap_or(0.0),
                runtime_s_p95: p.runtime_s.quantile(0.95).unwrap_or(0.0),
                last_updated: p.last_updated,
            })
            .collect()
    }

    /// Pending dispatch records currently held (attempts in flight).
    pub fn pending_count(&self) -> usize {
        self.lock().pending.len()
    }

    /// Export every profile as `gyan_footprint_*` gauges into `metrics`.
    pub fn export_metrics(&self, metrics: &obs::metrics::Registry) {
        metrics.set_help(
            "gyan_footprint_profiles",
            "Number of learned (tool, input-size bucket) footprint profiles.",
        );
        metrics
            .set_help("gyan_footprint_samples", "Observations folded into the footprint profile.");
        metrics.set_help(
            "gyan_footprint_peak_mib_p95",
            "Learned p95 of observed peak GPU memory (MiB) per tool and input bucket.",
        );
        metrics.set_help(
            "gyan_footprint_peak_mib_max",
            "Largest observed peak GPU memory (MiB) per tool and input bucket.",
        );
        metrics.set_help(
            "gyan_footprint_runtime_s_p50",
            "Median observed runtime (seconds) per tool and input bucket.",
        );
        let snaps = self.snapshot();
        metrics.set_gauge("gyan_footprint_profiles", snaps.len() as f64);
        for s in &snaps {
            let labels = format!("{{tool=\"{}\",bucket=\"{}\"}}", s.tool, s.bucket_label);
            metrics.set_gauge(&format!("gyan_footprint_samples{labels}"), s.samples as f64);
            metrics.set_gauge(&format!("gyan_footprint_peak_mib_p95{labels}"), s.peak_mib_p95);
            metrics.set_gauge(&format!("gyan_footprint_peak_mib_max{labels}"), s.peak_mib_max);
            metrics.set_gauge(&format!("gyan_footprint_runtime_s_p50{labels}"), s.runtime_s_p50);
        }
    }

    /// The `/api/profiles` JSON document.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"profiles\":[");
        for (i, s) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tool\":\"{}\",\"bucket\":{},\"bucket_label\":\"{}\",\"samples\":{},\
                 \"peak_mib\":{{\"p50\":{:.3},\"p95\":{:.3},\"max\":{:.3}}},\
                 \"runtime_s\":{{\"p50\":{:.3},\"p95\":{:.3}}},\"last_updated_s\":{:.3}}}",
                json_escape(&s.tool),
                s.bucket,
                json_escape(&s.bucket_label),
                s.samples,
                s.peak_mib_p50,
                s.peak_mib_p95,
                s.peak_mib_max,
                s.runtime_s_p50,
                s.runtime_s_p95,
                s.last_updated,
            ));
        }
        out.push_str("]}");
        out
    }

    /// The `/api/profiles?format=prometheus` exposition: the
    /// `gyan_footprint_*` family rendered standalone.
    pub fn render_prometheus(&self) -> String {
        let registry = obs::metrics::Registry::new();
        self.export_metrics(&registry);
        registry.render_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_gated_on_min_samples() {
        let reg = FootprintRegistry::new();
        for i in 0..7 {
            reg.observe("racon_gpu", 1500, 900.0 + i as f64, 10.0, i as f64);
        }
        assert_eq!(reg.estimate("racon_gpu", 1500, 8), None, "below threshold");
        reg.observe("racon_gpu", 1500, 907.0, 10.0, 7.0);
        let est = reg.estimate("racon_gpu", 1500, 8).expect("converged");
        // p95 of 900..=907 within the sketch's 2% relative error.
        assert!((880..=930).contains(&est), "estimate {est}");
    }

    #[test]
    fn buckets_keep_sizes_apart() {
        let reg = FootprintRegistry::new();
        for i in 0..10 {
            reg.observe("bonito_gpu", 100, 500.0, 5.0, i as f64);
            reg.observe("bonito_gpu", 100_000, 40_000.0, 600.0, i as f64);
        }
        let small = reg.estimate("bonito_gpu", 100, 8).unwrap();
        let large = reg.estimate("bonito_gpu", 100_000, 8).unwrap();
        assert!(small < 600, "small-input estimate {small}");
        assert!(large > 30_000, "large-input estimate {large}");
        // Same bucket, different probe size: 100 and 120 MiB share [64,128).
        assert_eq!(reg.estimate("bonito_gpu", 120, 8), Some(small));
    }

    #[test]
    fn estimate_tool_merges_buckets() {
        let reg = FootprintRegistry::new();
        for i in 0..5 {
            reg.observe("racon_gpu", 100, 500.0, 5.0, i as f64);
            reg.observe("racon_gpu", 10_000, 4000.0, 60.0, i as f64);
        }
        // Neither bucket alone meets the threshold; merged they do.
        assert_eq!(reg.estimate("racon_gpu", 100, 8), None);
        let merged = reg.estimate_tool("racon_gpu", 8).unwrap();
        assert!(merged > 3000, "merged p95 dominated by the heavy bucket: {merged}");
        assert_eq!(reg.estimate_tool("other_tool", 1), None);
    }

    #[test]
    fn conclude_learns_and_audits_successes_only() {
        let reg = FootprintRegistry::new();
        let rec = Recorder::new();
        reg.note_dispatch(1, "racon_gpu", 1500, 1024, 1024, EstimateSource::Static, Some(900), 0.0);
        reg.conclude(1, true, 12.5, Some(&rec));
        assert_eq!(reg.pending_count(), 0);
        let snaps = reg.snapshot();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].samples, 1);
        assert!((snaps[0].runtime_s_p50 - 12.5).abs() / 12.5 < 0.05);
        let events = rec.events();
        let audit = events.iter().find(|e| e.name == FOOTPRINT_ESTIMATE_EVENT).expect("audit");
        assert_eq!(audit.field("source").and_then(|v| v.as_str()), Some("static"));
        // Failed attempt: pending cleared, nothing learned.
        reg.note_dispatch(
            2,
            "racon_gpu",
            1500,
            1024,
            1024,
            EstimateSource::Static,
            Some(9000),
            13.0,
        );
        reg.conclude(2, false, 14.0, Some(&rec));
        assert_eq!(reg.snapshot()[0].samples, 1, "failure not folded in");
        assert_eq!(reg.pending_count(), 0);
    }

    #[test]
    fn forget_drops_pending_without_learning() {
        let reg = FootprintRegistry::new();
        reg.note_dispatch(7, "t", 10, 100, 100, EstimateSource::Static, Some(50), 0.0);
        reg.forget(7);
        reg.conclude(7, true, 1.0, None);
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn revised_budget_escalates() {
        let reg = FootprintRegistry::new();
        // Nothing known, no previous budget: no advice.
        assert_eq!(reg.revised_budget("t", 1000, None), None);
        // Nothing known yet, but a failed budget exists: double it.
        assert_eq!(reg.revised_budget("t", 1000, Some(1024)), Some(2048));
        // Profile knows a bigger peak: max * 1.25 wins over doubling.
        for i in 0..4 {
            reg.observe("t", 1000, 6000.0, 5.0, i as f64);
        }
        let revised = reg.revised_budget("t", 1000, Some(1024)).unwrap();
        assert!(revised >= 7000, "25% headroom over observed max: {revised}");
    }

    #[test]
    fn observe_usage_feeds_mem_max() {
        let reg = FootprintRegistry::new();
        let stats = UsageStats {
            minor: 0,
            sm_min: 0.0,
            sm_max: 90.0,
            sm_avg: 50.0,
            mem_min: 100,
            mem_max: 2200,
            mem_avg: 1500.0,
            samples: 30,
        };
        for i in 0..8 {
            reg.observe_usage("bonito_gpu", 4000, &stats, 30.0, i as f64);
        }
        let est = reg.estimate("bonito_gpu", 4000, 8).unwrap();
        assert!((2150..=2280).contains(&est), "estimate {est}");
    }

    #[test]
    fn metrics_and_renders_expose_profiles() {
        let reg = FootprintRegistry::new();
        for i in 0..3 {
            reg.observe("racon_gpu", 1500, 1000.0, 10.0, i as f64);
        }
        let metrics = obs::metrics::Registry::new();
        reg.export_metrics(&metrics);
        assert_eq!(metrics.gauge_value("gyan_footprint_profiles"), Some(1.0));
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP gyan_footprint_peak_mib_p95"), "{text}");
        assert!(text.contains("gyan_footprint_samples{tool=\"racon_gpu\""), "{text}");
        let json = reg.render_json();
        assert!(json.contains("\"tool\":\"racon_gpu\""), "{json}");
        assert!(json.contains("\"samples\":3"), "{json}");
        obs::json::parse(&json).expect("valid json");
    }
}
