//! The GYAN pre-dispatch hook: GPU allocation and environment export.
//!
//! Runs after destination mapping and before command rendering (the
//! `__command_line` step of the paper's Pseudocode 2):
//!
//! 1. inspects the tool's requirements for the `compute`/`gpu` type and
//!    its requested device IDs (the `version` tag);
//! 2. if the job landed on a GPU destination and devices are present,
//!    runs the configured allocation strategy ([`crate::allocation`]) and
//!    exports `CUDA_VISIBLE_DEVICES`;
//! 3. sets `GALAXY_GPU_ENABLED` and bridges it into the tool wrapper's
//!    parameter dictionary as `__galaxy_gpu_enabled__` (the
//!    `build_param_dict` insertion described in §IV-A).
//!
//! When built [`GyanHook::with_reservations`], step 2 goes through the
//! [`crate::reservations::LeaseTable`] instead of a bare SMI poll: the
//! granted devices are leased to the job atomically with the decision and
//! released in [`galaxy::runners::JobHook::after_conclude`], so two plans
//! prepared in the same dispatch wave can never be handed the same "free"
//! device.

use crate::allocation::{select_gpus_traced, AllocationPolicy};
use crate::reservations::LeaseTable;
use crate::{CUDA_VISIBLE_DEVICES, GALAXY_GPU_ENABLED, GPU_ENABLED_PARAM};
use galaxy::job::conf::Destination;
use galaxy::job::Job;
use galaxy::runners::{JobConclusion, JobHook};
use galaxy::tool::Tool;
use gpusim::GpuCluster;
use obs::{Recorder, Value};

/// Memory a GPU job is assumed to allocate when neither the destination
/// nor the config declares a hint (MiB). Used by the reservation layer's
/// Process-Allocated-Memory accounting.
pub const DEFAULT_GPU_MEMORY_HINT_MIB: u64 = 1024;

/// Destination parameter overriding the declared per-job GPU memory hint.
pub const GPU_MEMORY_HINT_PARAM: &str = "gpu_memory_hint_mib";

/// The GYAN orchestration hook. Register with
/// [`galaxy::GalaxyApp::add_hook`].
pub struct GyanHook {
    cluster: GpuCluster,
    policy: AllocationPolicy,
    /// Destination ids treated as GPU destinations.
    gpu_destinations: Vec<String>,
    recorder: Option<Recorder>,
    /// When present, allocations go through the lease table: the grant is
    /// reserved atomically with the decision and held until the job
    /// concludes, closing the observe→dispatch race.
    reservations: Option<LeaseTable>,
    default_memory_hint_mib: u64,
}

impl GyanHook {
    /// Create a hook using the given allocation policy. `gpu_destinations`
    /// lists the destination ids on which jobs may use GPUs (e.g.
    /// `["local_gpu", "docker_gpu", "singularity_gpu"]`).
    pub fn new(
        cluster: &GpuCluster,
        policy: AllocationPolicy,
        gpu_destinations: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        GyanHook {
            cluster: cluster.clone(),
            policy,
            gpu_destinations: gpu_destinations.into_iter().map(Into::into).collect(),
            recorder: None,
            reservations: None,
            default_memory_hint_mib: DEFAULT_GPU_MEMORY_HINT_MIB,
        }
    }

    /// Record the allocation decision (and the resulting environment
    /// exports) per dispatched job.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Route allocations through `table`: each grant leases its devices to
    /// the job until [`JobHook::after_conclude`] releases them.
    pub fn with_reservations(mut self, table: LeaseTable) -> Self {
        self.reservations = Some(table);
        self
    }

    /// Override the assumed per-job GPU memory (MiB) used when the
    /// destination does not carry a `gpu_memory_hint_mib` parameter.
    pub fn with_default_memory_hint(mut self, mib: u64) -> Self {
        self.default_memory_hint_mib = mib;
        self
    }

    /// The active allocation policy.
    pub fn policy(&self) -> AllocationPolicy {
        self.policy
    }

    fn is_gpu_destination(&self, destination: &Destination) -> bool {
        self.gpu_destinations.iter().any(|d| d == &destination.id)
    }

    fn memory_hint(&self, destination: &Destination) -> u64 {
        destination
            .params
            .get(GPU_MEMORY_HINT_PARAM)
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.default_memory_hint_mib)
    }
}

impl JobHook for GyanHook {
    fn before_dispatch(&self, job: &mut Job, tool: &Tool, destination: &Destination) {
        let wants_gpu = tool.requires_gpu() && self.is_gpu_destination(destination);
        if wants_gpu {
            let requested = tool.requested_gpu_ids();
            let alloc = match &self.reservations {
                Some(table) => table.allocate_and_lease(
                    &self.cluster,
                    &requested,
                    self.policy,
                    job.id,
                    self.memory_hint(destination),
                    self.recorder.as_ref(),
                ),
                None => select_gpus_traced(
                    &self.cluster,
                    &requested,
                    self.policy,
                    self.recorder.as_ref(),
                ),
            };
            if let Some(alloc) = alloc {
                self.audit(job, destination, true, Some(alloc.cuda_visible_devices.as_str()));
                job.set_env(GALAXY_GPU_ENABLED, "true");
                job.set_env(CUDA_VISIBLE_DEVICES, alloc.cuda_visible_devices);
                job.params.set(GPU_ENABLED_PARAM, "true");
                return;
            }
        }
        self.audit(job, destination, false, None);
        job.set_env(GALAXY_GPU_ENABLED, "false");
        // A resubmitted attempt reaching the CPU branch still carries the
        // failed GPU attempt's exports; a CPU retry must not claim a
        // device mask or a node it never touched.
        job.remove_env(CUDA_VISIBLE_DEVICES);
        job.remove_env(galaxy::GALAXY_NODE_ENV);
        job.params.set(GPU_ENABLED_PARAM, "false");
    }

    fn after_conclude(&self, job_id: u64, conclusion: JobConclusion) {
        // Every conclusion means the prepared plan will not execute again
        // as-is; a retryable failure re-runs `before_dispatch` (which
        // re-acquires) against the fallback destination.
        if let Some(table) = &self.reservations {
            table.release(job_id, conclusion.as_str(), self.recorder.as_ref());
        }
    }
}

impl GyanHook {
    fn audit(&self, job: &Job, destination: &Destination, enabled: bool, mask: Option<&str>) {
        if let Some(rec) = &self.recorder {
            let mut fields: Vec<(&str, Value)> = vec![
                ("job_id", job.id.into()),
                ("destination", destination.id.as_str().into()),
                ("gpu_enabled", enabled.into()),
            ];
            if let Some(mask) = mask {
                fields.push(("cuda_visible_devices", mask.into()));
            }
            rec.event("gyan.hook.export", fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galaxy::params::ParamDict;
    use galaxy::tool::macros::MacroLibrary;
    use galaxy::tool::wrapper::parse_tool;
    use gpusim::GpuProcess;

    fn gpu_tool(pinned: Option<&str>) -> Tool {
        let version = pinned.map(|v| format!(" version=\"{v}\"")).unwrap_or_default();
        parse_tool(
            &format!(
                r#"<tool id="racon_gpu"><requirements>
                     <requirement type="compute"{version}>gpu</requirement>
                   </requirements><command>racon_gpu</command></tool>"#
            ),
            &MacroLibrary::new(),
        )
        .unwrap()
    }

    fn dest(id: &str) -> Destination {
        Destination { id: id.into(), runner: "local".into(), params: ParamDict::new() }
    }

    fn hook(cluster: &GpuCluster, policy: AllocationPolicy) -> GyanHook {
        GyanHook::new(cluster, policy, ["local_gpu", "docker_gpu"])
    }

    #[test]
    fn gpu_job_gets_env_and_param_bridge() {
        let c = GpuCluster::k80_node();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(None), &dest("local_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("true"));
        assert_eq!(job.env_var(CUDA_VISIBLE_DEVICES), Some("0,1"));
        assert_eq!(job.params.get(GPU_ENABLED_PARAM), Some("true"));
    }

    #[test]
    fn pinned_device_honoured_when_free() {
        let c = GpuCluster::k80_node();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(Some("1")), &dest("local_gpu"));
        assert_eq!(job.env_var(CUDA_VISIBLE_DEVICES), Some("1"));
    }

    #[test]
    fn busy_pinned_device_redirected() {
        let c = GpuCluster::k80_node();
        c.attach_process(1, GpuProcess::compute(9, "other", 10)).unwrap();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(Some("1")), &dest("local_gpu"));
        assert_eq!(job.env_var(CUDA_VISIBLE_DEVICES), Some("0"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("true"));
    }

    #[test]
    fn cpu_destination_disables_gpu() {
        let c = GpuCluster::k80_node();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(None), &dest("local_cpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("false"));
        assert_eq!(job.params.get(GPU_ENABLED_PARAM), Some("false"));
        assert!(job.env_var(CUDA_VISIBLE_DEVICES).is_none());
    }

    #[test]
    fn cpu_tool_on_gpu_destination_disabled() {
        let c = GpuCluster::k80_node();
        let tool =
            parse_tool("<tool id=\"sort\"><command>sort</command></tool>", &MacroLibrary::new())
                .unwrap();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "sort", ParamDict::new());
        h.before_dispatch(&mut job, &tool, &dest("local_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("false"));
    }

    #[test]
    fn gpuless_node_disables_gpu() {
        let c = GpuCluster::cpu_only_node();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(None), &dest("local_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("false"));
    }

    #[test]
    fn leases_redirect_the_second_same_wave_job() {
        let c = GpuCluster::k80_node();
        let table = LeaseTable::new();
        let h = hook(&c, AllocationPolicy::ProcessId).with_reservations(table.clone());
        // Both jobs pin device 1; SMI shows it free both times (neither
        // has started executing). Without leases both would get "1".
        let mut first = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut first, &gpu_tool(Some("1")), &dest("local_gpu"));
        let mut second = Job::new(2, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut second, &gpu_tool(Some("1")), &dest("local_gpu"));
        assert_eq!(first.env_var(CUDA_VISIBLE_DEVICES), Some("1"));
        assert_eq!(second.env_var(CUDA_VISIBLE_DEVICES), Some("0"));
        assert_eq!(table.lease_count(), 2);
    }

    #[test]
    fn after_conclude_releases_the_jobs_leases() {
        let c = GpuCluster::k80_node();
        let table = LeaseTable::new();
        let h = hook(&c, AllocationPolicy::ProcessId).with_reservations(table.clone());
        let mut job = Job::new(5, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(Some("0")), &dest("local_gpu"));
        assert_eq!(table.lease_count(), 1);
        h.after_conclude(5, galaxy::runners::JobConclusion::Ok);
        assert_eq!(table.lease_count(), 0);
        // Concluding a job without leases is a no-op.
        h.after_conclude(5, galaxy::runners::JobConclusion::Ok);
    }

    #[test]
    fn destination_param_overrides_the_memory_hint() {
        let c = GpuCluster::k80_node();
        let table = LeaseTable::new();
        let h = hook(&c, AllocationPolicy::MemoryBased)
            .with_reservations(table.clone())
            .with_default_memory_hint(512);
        let mut d = dest("local_gpu");
        d.params.set(GPU_MEMORY_HINT_PARAM, "2048");
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(Some("0")), &d);
        assert_eq!(table.leases_on(0)[0].memory_hint_mib, 2048);
        // Without the param the configured default applies.
        let mut job = Job::new(2, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(Some("1")), &dest("local_gpu"));
        assert_eq!(table.leases_on(1)[0].memory_hint_mib, 512);
    }

    #[test]
    fn memory_policy_used_when_all_busy() {
        let c = GpuCluster::k80_node();
        c.attach_process(0, GpuProcess::compute(1, "racon", 60)).unwrap();
        c.attach_process(1, GpuProcess::compute(2, "bonito", 2700)).unwrap();
        let h = hook(&c, AllocationPolicy::MemoryBased);
        let mut job = Job::new(3, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(Some("1")), &dest("local_gpu"));
        assert_eq!(job.env_var(CUDA_VISIBLE_DEVICES), Some("0"));
    }
}
