//! The GYAN pre-dispatch hook: GPU allocation and environment export.
//!
//! Runs after destination mapping and before command rendering (the
//! `__command_line` step of the paper's Pseudocode 2):
//!
//! 1. inspects the tool's requirements for the `compute`/`gpu` type and
//!    its requested device IDs (the `version` tag);
//! 2. if the job landed on a GPU destination and devices are present,
//!    runs the configured allocation strategy ([`crate::allocation`]) and
//!    exports `CUDA_VISIBLE_DEVICES`;
//! 3. sets `GALAXY_GPU_ENABLED` and bridges it into the tool wrapper's
//!    parameter dictionary as `__galaxy_gpu_enabled__` (the
//!    `build_param_dict` insertion described in §IV-A).

use crate::allocation::{select_gpus_traced, AllocationPolicy};
use crate::{CUDA_VISIBLE_DEVICES, GALAXY_GPU_ENABLED, GPU_ENABLED_PARAM};
use galaxy::job::conf::Destination;
use galaxy::job::Job;
use galaxy::runners::JobHook;
use galaxy::tool::Tool;
use gpusim::GpuCluster;
use obs::{Recorder, Value};

/// The GYAN orchestration hook. Register with
/// [`galaxy::GalaxyApp::add_hook`].
pub struct GyanHook {
    cluster: GpuCluster,
    policy: AllocationPolicy,
    /// Destination ids treated as GPU destinations.
    gpu_destinations: Vec<String>,
    recorder: Option<Recorder>,
}

impl GyanHook {
    /// Create a hook using the given allocation policy. `gpu_destinations`
    /// lists the destination ids on which jobs may use GPUs (e.g.
    /// `["local_gpu", "docker_gpu", "singularity_gpu"]`).
    pub fn new(
        cluster: &GpuCluster,
        policy: AllocationPolicy,
        gpu_destinations: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        GyanHook {
            cluster: cluster.clone(),
            policy,
            gpu_destinations: gpu_destinations.into_iter().map(Into::into).collect(),
            recorder: None,
        }
    }

    /// Record the allocation decision (and the resulting environment
    /// exports) per dispatched job.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The active allocation policy.
    pub fn policy(&self) -> AllocationPolicy {
        self.policy
    }

    fn is_gpu_destination(&self, destination: &Destination) -> bool {
        self.gpu_destinations.iter().any(|d| d == &destination.id)
    }
}

impl JobHook for GyanHook {
    fn before_dispatch(&self, job: &mut Job, tool: &Tool, destination: &Destination) {
        let wants_gpu = tool.requires_gpu() && self.is_gpu_destination(destination);
        if wants_gpu {
            if let Some(alloc) = select_gpus_traced(
                &self.cluster,
                &tool.requested_gpu_ids(),
                self.policy,
                self.recorder.as_ref(),
            ) {
                self.audit(job, destination, true, Some(alloc.cuda_visible_devices.as_str()));
                job.set_env(GALAXY_GPU_ENABLED, "true");
                job.set_env(CUDA_VISIBLE_DEVICES, alloc.cuda_visible_devices);
                job.params.set(GPU_ENABLED_PARAM, "true");
                return;
            }
        }
        self.audit(job, destination, false, None);
        job.set_env(GALAXY_GPU_ENABLED, "false");
        job.params.set(GPU_ENABLED_PARAM, "false");
    }
}

impl GyanHook {
    fn audit(&self, job: &Job, destination: &Destination, enabled: bool, mask: Option<&str>) {
        if let Some(rec) = &self.recorder {
            let mut fields: Vec<(&str, Value)> = vec![
                ("job_id", job.id.into()),
                ("destination", destination.id.as_str().into()),
                ("gpu_enabled", enabled.into()),
            ];
            if let Some(mask) = mask {
                fields.push(("cuda_visible_devices", mask.into()));
            }
            rec.event("gyan.hook.export", fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galaxy::params::ParamDict;
    use galaxy::tool::macros::MacroLibrary;
    use galaxy::tool::wrapper::parse_tool;
    use gpusim::GpuProcess;

    fn gpu_tool(pinned: Option<&str>) -> Tool {
        let version = pinned.map(|v| format!(" version=\"{v}\"")).unwrap_or_default();
        parse_tool(
            &format!(
                r#"<tool id="racon_gpu"><requirements>
                     <requirement type="compute"{version}>gpu</requirement>
                   </requirements><command>racon_gpu</command></tool>"#
            ),
            &MacroLibrary::new(),
        )
        .unwrap()
    }

    fn dest(id: &str) -> Destination {
        Destination { id: id.into(), runner: "local".into(), params: ParamDict::new() }
    }

    fn hook(cluster: &GpuCluster, policy: AllocationPolicy) -> GyanHook {
        GyanHook::new(cluster, policy, ["local_gpu", "docker_gpu"])
    }

    #[test]
    fn gpu_job_gets_env_and_param_bridge() {
        let c = GpuCluster::k80_node();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(None), &dest("local_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("true"));
        assert_eq!(job.env_var(CUDA_VISIBLE_DEVICES), Some("0,1"));
        assert_eq!(job.params.get(GPU_ENABLED_PARAM), Some("true"));
    }

    #[test]
    fn pinned_device_honoured_when_free() {
        let c = GpuCluster::k80_node();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(Some("1")), &dest("local_gpu"));
        assert_eq!(job.env_var(CUDA_VISIBLE_DEVICES), Some("1"));
    }

    #[test]
    fn busy_pinned_device_redirected() {
        let c = GpuCluster::k80_node();
        c.attach_process(1, GpuProcess::compute(9, "other", 10)).unwrap();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(Some("1")), &dest("local_gpu"));
        assert_eq!(job.env_var(CUDA_VISIBLE_DEVICES), Some("0"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("true"));
    }

    #[test]
    fn cpu_destination_disables_gpu() {
        let c = GpuCluster::k80_node();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(None), &dest("local_cpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("false"));
        assert_eq!(job.params.get(GPU_ENABLED_PARAM), Some("false"));
        assert!(job.env_var(CUDA_VISIBLE_DEVICES).is_none());
    }

    #[test]
    fn cpu_tool_on_gpu_destination_disabled() {
        let c = GpuCluster::k80_node();
        let tool =
            parse_tool("<tool id=\"sort\"><command>sort</command></tool>", &MacroLibrary::new())
                .unwrap();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "sort", ParamDict::new());
        h.before_dispatch(&mut job, &tool, &dest("local_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("false"));
    }

    #[test]
    fn gpuless_node_disables_gpu() {
        let c = GpuCluster::cpu_only_node();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(None), &dest("local_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("false"));
    }

    #[test]
    fn memory_policy_used_when_all_busy() {
        let c = GpuCluster::k80_node();
        c.attach_process(0, GpuProcess::compute(1, "racon", 60)).unwrap();
        c.attach_process(1, GpuProcess::compute(2, "bonito", 2700)).unwrap();
        let h = hook(&c, AllocationPolicy::MemoryBased);
        let mut job = Job::new(3, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(Some("1")), &dest("local_gpu"));
        assert_eq!(job.env_var(CUDA_VISIBLE_DEVICES), Some("0"));
    }
}
