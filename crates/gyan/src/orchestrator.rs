//! The GYAN pre-dispatch hook: GPU allocation and environment export.
//!
//! Runs after destination mapping and before command rendering (the
//! `__command_line` step of the paper's Pseudocode 2):
//!
//! 1. inspects the tool's requirements for the `compute`/`gpu` type and
//!    its requested device IDs (the `version` tag);
//! 2. if the job landed on a GPU destination and devices are present,
//!    runs the configured allocation strategy ([`crate::allocation`]) and
//!    exports `CUDA_VISIBLE_DEVICES`;
//! 3. sets `GALAXY_GPU_ENABLED` and bridges it into the tool wrapper's
//!    parameter dictionary as `__galaxy_gpu_enabled__` (the
//!    `build_param_dict` insertion described in §IV-A).
//!
//! When built [`GyanHook::with_reservations`], step 2 goes through the
//! [`crate::reservations::LeaseTable`] instead of a bare SMI poll: the
//! granted devices are leased to the job atomically with the decision and
//! released in [`galaxy::runners::JobHook::after_conclude`], so two plans
//! prepared in the same dispatch wave can never be handed the same "free"
//! device.

use crate::allocation::{select_gpus_traced, AllocationPolicy};
use crate::footprint::{
    EstimateSource, FootprintRegistry, MemoryHint, GALAXY_INPUT_SIZE_MIB_ENV,
    GPU_MEMORY_BUDGET_ENV, GPU_OBSERVED_PEAK_ENV,
};
use crate::reservations::LeaseTable;
use crate::{CUDA_VISIBLE_DEVICES, GALAXY_GPU_ENABLED, GPU_ENABLED_PARAM};
use galaxy::job::conf::Destination;
use galaxy::job::Job;
use galaxy::runners::{JobConclusion, JobHook};
use galaxy::tool::Tool;
use gpusim::GpuCluster;
use obs::{Recorder, Value};

/// Memory a GPU job is assumed to allocate when neither the destination
/// nor the config declares a hint (MiB). Used by the reservation layer's
/// Process-Allocated-Memory accounting.
pub const DEFAULT_GPU_MEMORY_HINT_MIB: u64 = 1024;

/// Destination parameter overriding the declared per-job GPU memory hint.
pub const GPU_MEMORY_HINT_PARAM: &str = "gpu_memory_hint_mib";

/// The GYAN orchestration hook. Register with
/// [`galaxy::GalaxyApp::add_hook`].
pub struct GyanHook {
    cluster: GpuCluster,
    policy: AllocationPolicy,
    /// Destination ids treated as GPU destinations.
    gpu_destinations: Vec<String>,
    recorder: Option<Recorder>,
    /// When present, allocations go through the lease table: the grant is
    /// reserved atomically with the decision and held until the job
    /// concludes, closing the observe→dispatch race.
    reservations: Option<LeaseTable>,
    default_memory_hint_mib: u64,
    /// When present, concluded GPU attempts feed per-tool footprint
    /// profiles and (in [`MemoryHint::Learned`] mode) the learned p95
    /// replaces the static hint.
    footprint: Option<FootprintRegistry>,
    hint_mode: MemoryHint,
}

impl GyanHook {
    /// Create a hook using the given allocation policy. `gpu_destinations`
    /// lists the destination ids on which jobs may use GPUs (e.g.
    /// `["local_gpu", "docker_gpu", "singularity_gpu"]`).
    pub fn new(
        cluster: &GpuCluster,
        policy: AllocationPolicy,
        gpu_destinations: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        GyanHook {
            cluster: cluster.clone(),
            policy,
            gpu_destinations: gpu_destinations.into_iter().map(Into::into).collect(),
            recorder: None,
            reservations: None,
            default_memory_hint_mib: DEFAULT_GPU_MEMORY_HINT_MIB,
            footprint: None,
            hint_mode: MemoryHint::Static,
        }
    }

    /// Record the allocation decision (and the resulting environment
    /// exports) per dispatched job.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Route allocations through `table`: each grant leases its devices to
    /// the job until [`JobHook::after_conclude`] releases them.
    pub fn with_reservations(mut self, table: LeaseTable) -> Self {
        self.reservations = Some(table);
        self
    }

    /// Override the assumed per-job GPU memory (MiB) used when the
    /// destination does not carry a `gpu_memory_hint_mib` parameter.
    pub fn with_default_memory_hint(mut self, mib: u64) -> Self {
        self.default_memory_hint_mib = mib;
        self
    }

    /// Close the telemetry→policy loop: feed concluded GPU attempts into
    /// `registry` and resolve memory hints per `mode` (learned p95 over
    /// the static hint once a profile converges).
    pub fn with_footprint(mut self, registry: FootprintRegistry, mode: MemoryHint) -> Self {
        self.footprint = Some(registry);
        self.hint_mode = mode;
        self
    }

    /// The footprint registry, when installed.
    pub fn footprint(&self) -> Option<&FootprintRegistry> {
        self.footprint.as_ref()
    }

    /// The active allocation policy.
    pub fn policy(&self) -> AllocationPolicy {
        self.policy
    }

    fn is_gpu_destination(&self, destination: &Destination) -> bool {
        self.gpu_destinations.iter().any(|d| d == &destination.id)
    }

    fn memory_hint(&self, destination: &Destination) -> u64 {
        destination
            .params
            .get(GPU_MEMORY_HINT_PARAM)
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.default_memory_hint_mib)
    }

    /// Declared input size for profile bucketing (0 when unset — those
    /// jobs share the smallest bucket).
    fn input_mib(job: &Job) -> u64 {
        job.env_var(GALAXY_INPUT_SIZE_MIB_ENV).and_then(|v| v.parse().ok()).unwrap_or(0)
    }

    /// Resolve the memory hint for this attempt, in priority order:
    /// footprint-revised override env > learned p95 > static
    /// (destination param / default). Returns the chosen hint, its
    /// source, and the static hint it (possibly) replaced.
    fn resolve_memory_hint(
        &self,
        job: &Job,
        destination: &Destination,
    ) -> (u64, u64, EstimateSource) {
        let static_hint = self.memory_hint(destination);
        if let Some(over) =
            job.env_var(galaxy::GALAXY_GPU_BUDGET_OVERRIDE_ENV).and_then(|v| v.parse().ok())
        {
            return (over, static_hint, EstimateSource::Override);
        }
        if let (MemoryHint::Learned { min_samples }, Some(registry)) =
            (self.hint_mode, self.footprint.as_ref())
        {
            if let Some(learned) =
                registry.estimate(&job.tool_id, Self::input_mib(job), min_samples)
            {
                return (learned, static_hint, EstimateSource::Learned);
            }
        }
        (static_hint, static_hint, EstimateSource::Static)
    }
}

impl JobHook for GyanHook {
    fn before_dispatch(&self, job: &mut Job, tool: &Tool, destination: &Destination) {
        let wants_gpu = tool.requires_gpu() && self.is_gpu_destination(destination);
        if wants_gpu {
            let requested = tool.requested_gpu_ids();
            let (hint_mib, static_hint_mib, source) = self.resolve_memory_hint(job, destination);
            let alloc = match &self.reservations {
                Some(table) => table.allocate_and_lease(
                    &self.cluster,
                    &requested,
                    self.policy,
                    job.id,
                    hint_mib,
                    self.recorder.as_ref(),
                ),
                None => select_gpus_traced(
                    &self.cluster,
                    &requested,
                    self.policy,
                    self.recorder.as_ref(),
                ),
            };
            if let Some(alloc) = alloc {
                self.audit(job, destination, true, Some(alloc.cuda_visible_devices.as_str()));
                job.set_env(GALAXY_GPU_ENABLED, "true");
                job.set_env(CUDA_VISIBLE_DEVICES, alloc.cuda_visible_devices);
                job.set_env(GPU_MEMORY_BUDGET_ENV, hint_mib.to_string());
                job.params.set(GPU_ENABLED_PARAM, "true");
                if let Some(registry) = &self.footprint {
                    let now = self.recorder.as_ref().map(|r| r.now()).unwrap_or(0.0);
                    registry.note_dispatch(
                        job.id,
                        &job.tool_id,
                        Self::input_mib(job),
                        hint_mib,
                        static_hint_mib,
                        source,
                        job.env_var(GPU_OBSERVED_PEAK_ENV).and_then(|v| v.parse().ok()),
                        now,
                    );
                }
                return;
            }
        }
        self.audit(job, destination, false, None);
        job.set_env(GALAXY_GPU_ENABLED, "false");
        // A resubmitted attempt reaching the CPU branch still carries the
        // failed GPU attempt's exports; a CPU retry must not claim a
        // device mask, a memory budget, or a node it never touched.
        job.remove_env(CUDA_VISIBLE_DEVICES);
        job.remove_env(GPU_MEMORY_BUDGET_ENV);
        job.remove_env(galaxy::GALAXY_NODE_ENV);
        job.params.set(GPU_ENABLED_PARAM, "false");
        if let Some(registry) = &self.footprint {
            registry.forget(job.id);
        }
    }

    fn after_conclude(&self, job_id: u64, conclusion: JobConclusion) {
        // Every conclusion means the prepared plan will not execute again
        // as-is; a retryable failure re-runs `before_dispatch` (which
        // re-acquires) against the fallback destination.
        if let Some(table) = &self.reservations {
            table.release(job_id, conclusion.as_str(), self.recorder.as_ref());
        }
        if let Some(registry) = &self.footprint {
            let now = self.recorder.as_ref().map(|r| r.now()).unwrap_or(0.0);
            registry.conclude(job_id, conclusion == JobConclusion::Ok, now, self.recorder.as_ref());
        }
    }
}

impl GyanHook {
    fn audit(&self, job: &Job, destination: &Destination, enabled: bool, mask: Option<&str>) {
        if let Some(rec) = &self.recorder {
            let mut fields: Vec<(&str, Value)> = vec![
                ("job_id", job.id.into()),
                ("destination", destination.id.as_str().into()),
                ("gpu_enabled", enabled.into()),
            ];
            if let Some(mask) = mask {
                fields.push(("cuda_visible_devices", mask.into()));
            }
            rec.event("gyan.hook.export", fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galaxy::params::ParamDict;
    use galaxy::tool::macros::MacroLibrary;
    use galaxy::tool::wrapper::parse_tool;
    use gpusim::GpuProcess;

    fn gpu_tool(pinned: Option<&str>) -> Tool {
        let version = pinned.map(|v| format!(" version=\"{v}\"")).unwrap_or_default();
        parse_tool(
            &format!(
                r#"<tool id="racon_gpu"><requirements>
                     <requirement type="compute"{version}>gpu</requirement>
                   </requirements><command>racon_gpu</command></tool>"#
            ),
            &MacroLibrary::new(),
        )
        .unwrap()
    }

    fn dest(id: &str) -> Destination {
        Destination { id: id.into(), runner: "local".into(), params: ParamDict::new() }
    }

    fn hook(cluster: &GpuCluster, policy: AllocationPolicy) -> GyanHook {
        GyanHook::new(cluster, policy, ["local_gpu", "docker_gpu"])
    }

    #[test]
    fn gpu_job_gets_env_and_param_bridge() {
        let c = GpuCluster::k80_node();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(None), &dest("local_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("true"));
        assert_eq!(job.env_var(CUDA_VISIBLE_DEVICES), Some("0,1"));
        assert_eq!(job.params.get(GPU_ENABLED_PARAM), Some("true"));
    }

    #[test]
    fn pinned_device_honoured_when_free() {
        let c = GpuCluster::k80_node();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(Some("1")), &dest("local_gpu"));
        assert_eq!(job.env_var(CUDA_VISIBLE_DEVICES), Some("1"));
    }

    #[test]
    fn busy_pinned_device_redirected() {
        let c = GpuCluster::k80_node();
        c.attach_process(1, GpuProcess::compute(9, "other", 10)).unwrap();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(Some("1")), &dest("local_gpu"));
        assert_eq!(job.env_var(CUDA_VISIBLE_DEVICES), Some("0"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("true"));
    }

    #[test]
    fn cpu_destination_disables_gpu() {
        let c = GpuCluster::k80_node();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(None), &dest("local_cpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("false"));
        assert_eq!(job.params.get(GPU_ENABLED_PARAM), Some("false"));
        assert!(job.env_var(CUDA_VISIBLE_DEVICES).is_none());
    }

    #[test]
    fn cpu_tool_on_gpu_destination_disabled() {
        let c = GpuCluster::k80_node();
        let tool =
            parse_tool("<tool id=\"sort\"><command>sort</command></tool>", &MacroLibrary::new())
                .unwrap();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "sort", ParamDict::new());
        h.before_dispatch(&mut job, &tool, &dest("local_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("false"));
    }

    #[test]
    fn gpuless_node_disables_gpu() {
        let c = GpuCluster::cpu_only_node();
        let h = hook(&c, AllocationPolicy::ProcessId);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(None), &dest("local_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("false"));
    }

    #[test]
    fn leases_redirect_the_second_same_wave_job() {
        let c = GpuCluster::k80_node();
        let table = LeaseTable::new();
        let h = hook(&c, AllocationPolicy::ProcessId).with_reservations(table.clone());
        // Both jobs pin device 1; SMI shows it free both times (neither
        // has started executing). Without leases both would get "1".
        let mut first = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut first, &gpu_tool(Some("1")), &dest("local_gpu"));
        let mut second = Job::new(2, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut second, &gpu_tool(Some("1")), &dest("local_gpu"));
        assert_eq!(first.env_var(CUDA_VISIBLE_DEVICES), Some("1"));
        assert_eq!(second.env_var(CUDA_VISIBLE_DEVICES), Some("0"));
        assert_eq!(table.lease_count(), 2);
    }

    #[test]
    fn after_conclude_releases_the_jobs_leases() {
        let c = GpuCluster::k80_node();
        let table = LeaseTable::new();
        let h = hook(&c, AllocationPolicy::ProcessId).with_reservations(table.clone());
        let mut job = Job::new(5, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(Some("0")), &dest("local_gpu"));
        assert_eq!(table.lease_count(), 1);
        h.after_conclude(5, galaxy::runners::JobConclusion::Ok);
        assert_eq!(table.lease_count(), 0);
        // Concluding a job without leases is a no-op.
        h.after_conclude(5, galaxy::runners::JobConclusion::Ok);
    }

    #[test]
    fn destination_param_overrides_the_memory_hint() {
        let c = GpuCluster::k80_node();
        let table = LeaseTable::new();
        let h = hook(&c, AllocationPolicy::MemoryBased)
            .with_reservations(table.clone())
            .with_default_memory_hint(512);
        let mut d = dest("local_gpu");
        d.params.set(GPU_MEMORY_HINT_PARAM, "2048");
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(Some("0")), &d);
        assert_eq!(table.leases_on(0)[0].memory_hint_mib, 2048);
        // Without the param the configured default applies.
        let mut job = Job::new(2, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(Some("1")), &dest("local_gpu"));
        assert_eq!(table.leases_on(1)[0].memory_hint_mib, 512);
    }

    #[test]
    fn learned_hint_replaces_static_once_profile_converges() {
        let c = GpuCluster::k80_node();
        let table = LeaseTable::new();
        let registry = FootprintRegistry::new();
        let h = hook(&c, AllocationPolicy::MemoryBased)
            .with_reservations(table.clone())
            .with_footprint(registry.clone(), MemoryHint::Learned { min_samples: 4 })
            .with_default_memory_hint(1024);
        // Cold registry: static hint applies.
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        job.set_env(GALAXY_INPUT_SIZE_MIB_ENV, "1500");
        h.before_dispatch(&mut job, &gpu_tool(Some("0")), &dest("local_gpu"));
        assert_eq!(table.leases_on(0)[0].memory_hint_mib, 1024);
        assert_eq!(job.env_var(GPU_MEMORY_BUDGET_ENV), Some("1024"));
        h.after_conclude(1, JobConclusion::Ok);
        // Converge the profile well above the static hint.
        for i in 0..4 {
            registry.observe("racon_gpu", 1500, 3000.0, 10.0, i as f64);
        }
        let mut job = Job::new(2, "racon_gpu", ParamDict::new());
        job.set_env(GALAXY_INPUT_SIZE_MIB_ENV, "1500");
        h.before_dispatch(&mut job, &gpu_tool(Some("1")), &dest("local_gpu"));
        let leased = table.leases_on(1)[0].memory_hint_mib;
        assert!((2900..=3100).contains(&leased), "learned p95 leased: {leased}");
        assert_eq!(job.env_var(GPU_MEMORY_BUDGET_ENV), Some(leased.to_string().as_str()));
    }

    #[test]
    fn override_env_outranks_learned_and_static() {
        let c = GpuCluster::k80_node();
        let table = LeaseTable::new();
        let registry = FootprintRegistry::new();
        for i in 0..8 {
            registry.observe("racon_gpu", 1500, 3000.0, 10.0, i as f64);
        }
        let h = hook(&c, AllocationPolicy::MemoryBased)
            .with_reservations(table.clone())
            .with_footprint(registry, MemoryHint::learned());
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        job.set_env(GALAXY_INPUT_SIZE_MIB_ENV, "1500");
        job.set_env(galaxy::GALAXY_GPU_BUDGET_OVERRIDE_ENV, "7777");
        h.before_dispatch(&mut job, &gpu_tool(Some("0")), &dest("local_gpu"));
        assert_eq!(table.leases_on(0)[0].memory_hint_mib, 7777);
    }

    #[test]
    fn concluded_gpu_attempt_feeds_the_profile() {
        let c = GpuCluster::k80_node();
        let table = LeaseTable::new();
        let registry = FootprintRegistry::new();
        let rec = obs::Recorder::new();
        let h = hook(&c, AllocationPolicy::MemoryBased)
            .with_reservations(table)
            .with_recorder(rec.clone())
            .with_footprint(registry.clone(), MemoryHint::learned());
        let mut job = Job::new(9, "racon_gpu", ParamDict::new());
        job.set_env(GALAXY_INPUT_SIZE_MIB_ENV, "1500");
        job.set_env(crate::footprint::GPU_OBSERVED_PEAK_ENV, "1800");
        h.before_dispatch(&mut job, &gpu_tool(Some("0")), &dest("local_gpu"));
        assert_eq!(registry.pending_count(), 1);
        h.after_conclude(9, JobConclusion::Ok);
        let snaps = registry.snapshot();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].samples, 1);
        assert!((snaps[0].peak_mib_max - 1800.0).abs() / 1800.0 < 0.03);
        let events = rec.events();
        assert!(
            events.iter().any(|e| e.name == crate::footprint::FOOTPRINT_ESTIMATE_EVENT),
            "estimate audit emitted"
        );
        // A CPU attempt forgets its pending record instead of learning.
        let mut job = Job::new(10, "racon_gpu", ParamDict::new());
        job.set_env(crate::footprint::GPU_OBSERVED_PEAK_ENV, "9999");
        h.before_dispatch(&mut job, &gpu_tool(None), &dest("local_cpu"));
        assert_eq!(registry.pending_count(), 0);
        assert!(job.env_var(GPU_MEMORY_BUDGET_ENV).is_none());
        h.after_conclude(10, JobConclusion::Ok);
        assert_eq!(registry.snapshot()[0].samples, 1);
    }

    #[test]
    fn memory_policy_used_when_all_busy() {
        let c = GpuCluster::k80_node();
        c.attach_process(0, GpuProcess::compute(1, "racon", 60)).unwrap();
        c.attach_process(1, GpuProcess::compute(2, "bonito", 2700)).unwrap();
        let h = hook(&c, AllocationPolicy::MemoryBased);
        let mut job = Job::new(3, "racon_gpu", ParamDict::new());
        h.before_dispatch(&mut job, &gpu_tool(Some("1")), &dest("local_gpu"));
        assert_eq!(job.env_var(CUDA_VISIBLE_DEVICES), Some("0"));
    }
}
