//! Merged observability export: one Chrome trace combining the Galaxy job
//! spans, the simulator's GPU kernel/DMA timeline, and the hardware usage
//! monitor's samples — all on the cluster's virtual time base, so the
//! output is byte-for-byte deterministic for a given run.
//!
//! Layout of the merged trace:
//!
//! * each Galaxy job span and its phase children share one
//!   `galaxy/job N` track, so phases nest visually inside the job;
//! * GYAN's decision audit events appear as zero-duration markers on
//!   `gyan/decisions`; queue-engine scheduling audits (`galaxy.queue.*`:
//!   enqueue, fair-share picks, dispatches, resubmissions) get their own
//!   `galaxy/queue` track so scheduler activity reads separately from
//!   allocation decisions; reservation lifecycle audits
//!   (`gyan.reservation.*`: acquire, release, conflict) get a
//!   `gyan/reservations` track;
//! * kernel/DMA intervals keep their engine tracks (`gpu0/compute`,
//!   `gpu0/h2d`, …) and are tagged with the owning job id, which places
//!   them — in time — inside the job's span;
//! * monitor samples become counter series on the `usage` track.

use crate::monitor::Sample;
use gpusim::Trace;
use obs::chrome::TraceBuilder;
use obs::{Recorder, Value};
use std::collections::HashMap;

/// The three artifacts one instrumented run exports.
#[derive(Debug, Clone)]
pub struct TelemetryExport {
    /// Span/event log, one JSON object per line.
    pub jsonl: String,
    /// Prometheus text exposition of the metrics registry.
    pub prometheus: String,
    /// The merged Chrome trace document.
    pub chrome_trace: String,
}

/// Export everything a run recorded: the JSONL log, the Prometheus text,
/// and the merged Chrome trace.
pub fn export_run(
    recorder: &Recorder,
    gpu_traces: &[(u64, Trace)],
    samples: &[Sample],
) -> TelemetryExport {
    TelemetryExport {
        jsonl: recorder.to_jsonl(),
        prometheus: recorder.metrics().render_prometheus(),
        chrome_trace: merged_chrome_trace(recorder, gpu_traces, samples).to_json(),
    }
}

/// Merge job spans, audit events, per-job GPU traces, and monitor samples
/// into one [`TraceBuilder`]. `gpu_traces` pairs each job id with the
/// kernel/DMA trace its tool execution produced (e.g. from
/// `ToolExecutor::trace_for_job`).
pub fn merged_chrome_trace(
    recorder: &Recorder,
    gpu_traces: &[(u64, Trace)],
    samples: &[Sample],
) -> TraceBuilder {
    let mut builder = TraceBuilder::new();

    // Job spans and their phases, one track per job. A child span inherits
    // its parent's track (spans() returns open order, so parents precede
    // children).
    let mut track_of: HashMap<u64, String> = HashMap::new();
    for span in recorder.spans() {
        let track = match span.parent.and_then(|p| track_of.get(&p).cloned()) {
            Some(parent_track) => parent_track,
            None => match span.field("job_id").and_then(|v| v.as_f64()) {
                Some(id) => format!("galaxy/job {}", id as u64),
                None => "galaxy".to_string(),
            },
        };
        track_of.insert(span.id, track.clone());
        let dur = span.end.unwrap_or(span.start) - span.start;
        builder.add_complete(span.name, "galaxy", track, span.start, dur, span.fields);
    }

    // Decision audits as zero-duration markers. Queue-engine scheduling
    // events and reservation lifecycle events land on their own tracks so
    // a trace of a DAG run shows the scheduler's picks and the lease
    // acquire/release/conflict churn as separate lanes.
    for event in recorder.events() {
        let track = if event.name.starts_with("galaxy.queue") {
            "galaxy/queue"
        } else if event.name.starts_with("gyan.reservation") {
            "gyan/reservations"
        } else if event.name.starts_with("obs.alert") {
            "obs/alerts"
        } else if event.name.starts_with("footprint.") {
            "gyan/footprint"
        } else {
            "gyan/decisions"
        };
        builder.add_complete(event.name, "audit", track, event.t, 0.0, event.fields);
    }

    // Kernel/DMA intervals on their engine tracks, tagged with the job.
    for (job_id, trace) in gpu_traces {
        for ev in trace.events() {
            let args: Vec<(String, Value)> = vec![("job_id".to_string(), (*job_id).into())];
            builder.add_complete(
                ev.name.clone(),
                ev.category,
                ev.track.clone(),
                ev.start_s,
                ev.dur_s,
                args,
            );
        }
    }

    // Monitor samples as counters.
    for sample in samples {
        for dev in &sample.devices {
            builder.add_counter(
                format!("gpu{} sm_util", dev.minor),
                "usage",
                sample.t,
                vec![("percent".to_string(), dev.sm_util)],
            );
            builder.add_counter(
                format!("gpu{} fb_used_mib", dev.minor),
                "usage",
                sample.t,
                vec![("mib".to_string(), dev.fb_used_mib as f64)],
            );
        }
    }

    builder
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::DeviceSample;

    fn sample(t: f64, sm: f64, mib: u64) -> Sample {
        Sample {
            t,
            devices: vec![DeviceSample {
                minor: 0,
                sm_util: sm,
                mem_util: sm / 2.0,
                fb_used_mib: mib,
                pcie_gen: 3,
            }],
        }
    }

    fn recorder_with_job() -> Recorder {
        let rec = Recorder::new();
        let t = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let tc = t.clone();
        rec.set_clock(move || tc.load(std::sync::atomic::Ordering::SeqCst) as f64);
        let job = rec.span("galaxy.job");
        job.field("job_id", 1u64);
        let phase = job.child("galaxy.dispatch");
        rec.event("gyan.allocation.decision", [("reason", "requested_free")]);
        t.store(5, std::sync::atomic::Ordering::SeqCst);
        phase.end();
        job.end();
        rec
    }

    #[test]
    fn phases_share_the_job_track_and_kernels_keep_theirs() {
        let rec = recorder_with_job();
        let mut trace = Trace::new();
        trace.record("poa_kernel", "kernel", "gpu0/compute", 1.0, 2.0);

        let merged = merged_chrome_trace(&rec, &[(1, trace)], &[sample(1.0, 80.0, 500)]);
        let tracks = merged.tracks();
        assert!(tracks.contains(&"galaxy/job 1".to_string()));
        assert!(tracks.contains(&"gyan/decisions".to_string()));
        assert!(tracks.contains(&"gpu0/compute".to_string()));
        assert!(tracks.contains(&"usage".to_string()));

        let on_job_track: Vec<&str> = merged
            .complete_events()
            .iter()
            .filter(|e| e.track == "galaxy/job 1")
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(on_job_track, vec!["galaxy.job", "galaxy.dispatch"]);

        // The kernel interval falls inside the job span (enclosure).
        let job = merged.complete_events().iter().find(|e| e.name == "galaxy.job").unwrap();
        let kernel = merged.complete_events().iter().find(|e| e.name == "poa_kernel").unwrap();
        assert!(job.start_s <= kernel.start_s);
        assert!(kernel.start_s + kernel.dur_s <= job.start_s + job.dur_s);
    }

    #[test]
    fn queue_events_route_to_their_own_track() {
        let rec = Recorder::new();
        rec.event("gyan.allocation.decision", [("reason", "requested_free")]);
        rec.event("galaxy.queue.dispatch", [("job_id", 1u64)]);
        rec.event("galaxy.queue.resubmit", [("job_id", 1u64)]);
        rec.event("gyan.reservation.acquire", [("job_id", 1u64)]);
        rec.event("gyan.reservation.conflict", [("job_id", 2u64)]);
        rec.event("obs.alert.transition", [("rule", "gpu-conflict-rate")]);
        rec.event("footprint.estimate", [("job_id", 1u64)]);

        let merged = merged_chrome_trace(&rec, &[], &[]);
        let track_for = |name: &str| {
            merged
                .complete_events()
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.track.clone())
                .unwrap()
        };
        assert_eq!(track_for("gyan.allocation.decision"), "gyan/decisions");
        assert_eq!(track_for("galaxy.queue.dispatch"), "galaxy/queue");
        assert_eq!(track_for("galaxy.queue.resubmit"), "galaxy/queue");
        assert_eq!(track_for("gyan.reservation.acquire"), "gyan/reservations");
        assert_eq!(track_for("gyan.reservation.conflict"), "gyan/reservations");
        assert_eq!(track_for("obs.alert.transition"), "obs/alerts");
        assert_eq!(track_for("footprint.estimate"), "gyan/footprint");
    }

    #[test]
    fn export_is_deterministic() {
        let make = || {
            let rec = recorder_with_job();
            let mut trace = Trace::new();
            trace.record("dma", "h2d", "gpu0/h2d", 0.5, 0.25);
            let export = export_run(&rec, &[(1, trace)], &[sample(1.0, 50.0, 100)]);
            (export.jsonl, export.prometheus, export.chrome_trace)
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn chrome_document_parses() {
        let rec = recorder_with_job();
        let export = export_run(&rec, &[], &[sample(2.0, 10.0, 63)]);
        let doc = obs::json::parse(&export.chrome_trace).expect("chrome trace parses");
        assert!(doc.get("traceEvents").and_then(|v| v.as_array()).is_some());
        for line in export.jsonl.lines() {
            obs::json::parse(line).expect("jsonl line parses");
        }
    }
}
