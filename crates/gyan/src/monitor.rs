//! The GPU hardware usage script (paper §V-C).
//!
//! "This script obtains the GPU utilization, GPU memory utilization, and
//! PCIe link generation information for every second, including minima,
//! maxima, and average. It is executed when a job is submitted and stopped
//! when a job is either killed or stops. Whenever it stops, a
//! post-processing function is executed, and it generates .csv files and
//! other log and statistic files."
//!
//! The monitor registers itself as an observer on the cluster's virtual
//! clock and takes one sample per elapsed virtual second, so tools that
//! advance virtual time automatically generate a chronological usage
//! trace.

use gpusim::{GpuCluster, ObserverId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One per-device observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSample {
    /// Device minor number.
    pub minor: u32,
    /// SM utilization %.
    pub sm_util: f64,
    /// Memory controller utilization %.
    pub mem_util: f64,
    /// Framebuffer MiB in use.
    pub fb_used_mib: u64,
    /// Current PCIe link generation.
    pub pcie_gen: u8,
}

/// One timestamped sample covering every device.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Virtual time of the sample.
    pub t: f64,
    /// Per-device observations.
    pub devices: Vec<DeviceSample>,
}

/// Post-processed statistics for one device over a monitoring run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageStats {
    /// Device minor number.
    pub minor: u32,
    /// Minimum SM utilization %.
    pub sm_min: f64,
    /// Maximum SM utilization %.
    pub sm_max: f64,
    /// Average SM utilization %.
    pub sm_avg: f64,
    /// Minimum framebuffer MiB used.
    pub mem_min: u64,
    /// Maximum framebuffer MiB used.
    pub mem_max: u64,
    /// Average framebuffer MiB used.
    pub mem_avg: f64,
    /// Samples observed.
    pub samples: usize,
}

struct MonitorState {
    samples: Vec<Sample>,
    last_sample_t: f64,
}

/// The hardware usage monitor. Create with [`UsageMonitor::start`]; samples
/// accumulate automatically as virtual time advances; call
/// [`UsageMonitor::stop`] to cease sampling and post-process.
pub struct UsageMonitor {
    cluster: GpuCluster,
    state: Arc<Mutex<MonitorState>>,
    active: Arc<AtomicBool>,
    interval: f64,
    observer: Mutex<Option<ObserverId>>,
}

impl UsageMonitor {
    /// Start monitoring `cluster` at 1 Hz virtual time.
    pub fn start(cluster: &GpuCluster) -> Self {
        Self::start_with_interval(cluster, 1.0)
    }

    /// Start monitoring with a custom sampling interval (seconds).
    pub fn start_with_interval(cluster: &GpuCluster, interval: f64) -> Self {
        assert!(interval > 0.0, "sampling interval must be positive");
        let start_t = cluster.clock().now();
        let state =
            Arc::new(Mutex::new(MonitorState { samples: Vec::new(), last_sample_t: start_t }));
        let active = Arc::new(AtomicBool::new(true));

        let observer_cluster = cluster.clone();
        let observer_state = state.clone();
        let observer_active = active.clone();
        let observer = cluster.clock().on_advance(Box::new(move |now| {
            if !observer_active.load(Ordering::Relaxed) {
                return;
            }
            let mut st = observer_state.lock();
            // Take one sample per elapsed interval, stamped at the
            // interval boundaries (the script's chronological 1 Hz log).
            while st.last_sample_t + interval <= now {
                st.last_sample_t += interval;
                let t = st.last_sample_t;
                let devices = snapshot_devices(&observer_cluster);
                st.samples.push(Sample { t, devices });
            }
        }));
        UsageMonitor {
            cluster: cluster.clone(),
            state,
            active,
            interval,
            observer: Mutex::new(Some(observer)),
        }
    }

    /// Take an immediate sample regardless of the interval.
    pub fn sample_now(&self) {
        let t = self.cluster.clock().now();
        let devices = snapshot_devices(&self.cluster);
        self.state.lock().samples.push(Sample { t, devices });
    }

    /// Stop sampling (the job ended). Deregisters the clock observer, so
    /// a stopped monitor costs the clock nothing. Returns the collected
    /// samples.
    pub fn stop(&self) -> Vec<Sample> {
        self.active.store(false, Ordering::Relaxed);
        if let Some(id) = self.observer.lock().take() {
            self.cluster.clock().remove_observer(id);
        }
        self.state.lock().samples.clone()
    }

    /// The sampling interval in virtual seconds.
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// All samples collected so far.
    pub fn samples(&self) -> Vec<Sample> {
        self.state.lock().samples.clone()
    }

    /// Post-process into per-device min/max/avg statistics.
    pub fn stats(&self) -> Vec<UsageStats> {
        let samples = self.state.lock();
        let mut out: Vec<UsageStats> = Vec::new();
        for sample in &samples.samples {
            for dev in &sample.devices {
                let slot = match out.iter_mut().find(|s| s.minor == dev.minor) {
                    Some(s) => s,
                    None => {
                        out.push(UsageStats {
                            minor: dev.minor,
                            sm_min: f64::INFINITY,
                            sm_max: f64::NEG_INFINITY,
                            sm_avg: 0.0,
                            mem_min: u64::MAX,
                            mem_max: 0,
                            mem_avg: 0.0,
                            samples: 0,
                        });
                        out.last_mut().expect("just pushed")
                    }
                };
                slot.sm_min = slot.sm_min.min(dev.sm_util);
                slot.sm_max = slot.sm_max.max(dev.sm_util);
                slot.sm_avg += dev.sm_util;
                slot.mem_min = slot.mem_min.min(dev.fb_used_mib);
                slot.mem_max = slot.mem_max.max(dev.fb_used_mib);
                slot.mem_avg += dev.fb_used_mib as f64;
                slot.samples += 1;
            }
        }
        for s in &mut out {
            if s.samples > 0 {
                s.sm_avg /= s.samples as f64;
                s.mem_avg /= s.samples as f64;
            }
        }
        out.sort_by_key(|s| s.minor);
        out
    }

    /// Render the aggregated statistics report (the "other log and
    /// statistic files" of §V-C) as plain text.
    pub fn render_report(&self) -> String {
        let mut out = String::from(
            "GPU hardware usage report
=========================
",
        );
        let samples = self.state.lock().samples.len();
        out.push_str(&format!(
            "samples: {samples} (interval {:.1}s)

",
            self.interval
        ));
        for s in self.stats() {
            out.push_str(&format!(
                "GPU {}:
  SM utilization   min {:>5.1}%  max {:>5.1}%  avg {:>5.1}%
  FB memory (MiB)  min {:>6}  max {:>6}  avg {:>8.1}
",
                s.minor, s.sm_min, s.sm_max, s.sm_avg, s.mem_min, s.mem_max, s.mem_avg
            ));
        }
        out
    }

    /// Render the chronological trace as CSV
    /// (`t,gpu,sm_util,mem_util,fb_used_mib,pcie_gen`).
    pub fn to_csv(&self) -> String {
        let mut csv = String::from("t,gpu,sm_util,mem_util,fb_used_mib,pcie_gen\n");
        for sample in self.state.lock().samples.iter() {
            for dev in &sample.devices {
                csv.push_str(&format!(
                    "{:.3},{},{:.1},{:.1},{},{}\n",
                    sample.t, dev.minor, dev.sm_util, dev.mem_util, dev.fb_used_mib, dev.pcie_gen
                ));
            }
        }
        csv
    }
}

impl Drop for UsageMonitor {
    // A monitor that is merely dropped (job killed, panic unwind) must not
    // leave its observer behind on the long-lived cluster clock.
    fn drop(&mut self) {
        if let Some(id) = self.observer.lock().take() {
            self.cluster.clock().remove_observer(id);
        }
    }
}

fn snapshot_devices(cluster: &GpuCluster) -> Vec<DeviceSample> {
    cluster
        .snapshot()
        .iter()
        .map(|d| DeviceSample {
            minor: d.minor_number,
            sm_util: d.sm_utilization,
            mem_util: d.mem_utilization,
            fb_used_mib: d.fb_used_mib(),
            pcie_gen: d.pcie_link_gen,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::GpuProcess;

    #[test]
    fn samples_once_per_virtual_second() {
        let c = GpuCluster::k80_node();
        let mon = UsageMonitor::start(&c);
        c.clock().advance(0.4); // below interval: no sample
        assert!(mon.samples().is_empty());
        c.clock().advance(0.7); // crosses 1.0
        assert_eq!(mon.samples().len(), 1);
        c.clock().advance(3.0); // crosses 2, 3, 4
        assert_eq!(mon.samples().len(), 4);
        let ts: Vec<f64> = mon.samples().iter().map(|s| s.t).collect();
        assert_eq!(ts, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn stop_freezes_sampling() {
        let c = GpuCluster::k80_node();
        let mon = UsageMonitor::start(&c);
        c.clock().advance(2.0);
        let collected = mon.stop();
        assert_eq!(collected.len(), 2);
        c.clock().advance(5.0);
        assert_eq!(mon.samples().len(), 2);
    }

    #[test]
    fn stats_track_memory_growth() {
        let c = GpuCluster::k80_node();
        let mon = UsageMonitor::start(&c);
        c.clock().advance(1.0); // idle sample: 63 MiB
        c.attach_process(0, GpuProcess::compute(1, "racon", 500)).unwrap();
        c.with_device_mut(0, |d| d.set_utilization(90.0, 40.0)).unwrap();
        c.clock().advance(1.0); // busy sample: 563 MiB
        let stats = mon.stats();
        let gpu0 = stats.iter().find(|s| s.minor == 0).unwrap();
        assert_eq!(gpu0.mem_min, 63);
        assert_eq!(gpu0.mem_max, 563);
        assert_eq!(gpu0.sm_max, 90.0);
        assert_eq!(gpu0.sm_min, 0.0);
        assert_eq!(gpu0.samples, 2);
        assert!((gpu0.sm_avg - 45.0).abs() < 1e-9);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let c = GpuCluster::k80_node();
        let mon = UsageMonitor::start(&c);
        c.clock().advance(1.0);
        let csv = mon.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,gpu,sm_util,mem_util,fb_used_mib,pcie_gen");
        assert_eq!(lines.len(), 3); // header + 2 devices
        assert!(lines[1].starts_with("1.000,0,"));
    }

    #[test]
    fn custom_interval() {
        let c = GpuCluster::k80_node();
        let mon = UsageMonitor::start_with_interval(&c, 0.5);
        c.clock().advance(2.0);
        assert_eq!(mon.samples().len(), 4);
    }

    #[test]
    fn report_renders_stats() {
        let c = GpuCluster::k80_node();
        let mon = UsageMonitor::start(&c);
        c.with_device_mut(0, |d| d.set_utilization(80.0, 30.0)).unwrap();
        c.clock().advance(2.0);
        let report = mon.render_report();
        assert!(report.contains("samples: 2"));
        assert!(report.contains("GPU 0:"));
        assert!(report.contains("GPU 1:"));
        assert!(report.contains("max  80.0%"));
    }

    #[test]
    fn sample_now_is_immediate() {
        let c = GpuCluster::k80_node();
        let mon = UsageMonitor::start(&c);
        mon.sample_now();
        assert_eq!(mon.samples().len(), 1);
        assert_eq!(mon.samples()[0].t, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let c = GpuCluster::k80_node();
        let _ = UsageMonitor::start_with_interval(&c, 0.0);
    }

    #[test]
    fn stop_deregisters_clock_observer() {
        let c = GpuCluster::k80_node();
        let baseline = c.clock().observer_count();
        let mon = UsageMonitor::start(&c);
        assert_eq!(c.clock().observer_count(), baseline + 1);
        mon.stop();
        assert_eq!(c.clock().observer_count(), baseline);
        // Stopping again (or dropping) must not underflow / double-remove.
        mon.stop();
        drop(mon);
        assert_eq!(c.clock().observer_count(), baseline);
    }

    #[test]
    fn drop_deregisters_clock_observer() {
        let c = GpuCluster::k80_node();
        let baseline = c.clock().observer_count();
        // Repeated start/drop cycles — the pattern that used to leak one
        // observer per monitored job — leave the clock unchanged.
        for _ in 0..10 {
            let mon = UsageMonitor::start(&c);
            c.clock().advance(1.0);
            drop(mon);
        }
        assert_eq!(c.clock().observer_count(), baseline);
    }
}
