//! The dynamic destination rule — the paper's Challenge-II solution.
//!
//! GYAN adds a *job rule* that "obtains the system GPU availability and
//! the number of GPUs using the pynvml Python library. If the tool's
//! wrapper file has the compute requirement of type 'gpu' and if there is
//! at least one GPU available, then the destination is configured to be
//! 'local GPU'" — otherwise the job is switched to a CPU destination in a
//! user-agnostic fashion.

use crate::reservations::LeaseTable;
use galaxy::app::DynamicRule;
use galaxy::job::conf::JobConfig;
use galaxy::job::Job;
use galaxy::tool::Tool;
use galaxy::GalaxyError;
use gpusim::nvml::Nvml;
use gpusim::GpuCluster;
use obs::{Recorder, Value};

/// Factory for the `gpu_dynamic_destination` rule.
#[derive(Clone)]
pub struct GpuDestinationRule {
    cluster: GpuCluster,
    /// Destination id for GPU execution (e.g. `local_gpu` or `docker_gpu`).
    pub gpu_destination: String,
    /// Destination id for the CPU fallback.
    pub cpu_destination: String,
    /// When true, a GPU destination is chosen only if at least one GPU is
    /// currently *free*; when false (the default, matching the paper's
    /// multi-GPU cases where busy GPUs still accept jobs), presence of any
    /// GPU suffices and the allocation policy decides placement.
    pub require_free_gpu: bool,
    recorder: Option<Recorder>,
    /// When present, devices leased to not-yet-executing plans count as
    /// busy in the free-GPU observation (relevant with
    /// [`GpuDestinationRule::require_free`]).
    reservations: Option<LeaseTable>,
}

/// What the rule saw when it queried the cluster through pynvml.
struct GpuObservation {
    device_count: u32,
    free_gpus: Vec<u32>,
}

impl GpuDestinationRule {
    /// Create a rule bound to a cluster with the given GPU/CPU
    /// destination ids.
    pub fn new(
        cluster: &GpuCluster,
        gpu_destination: impl Into<String>,
        cpu_destination: impl Into<String>,
    ) -> Self {
        GpuDestinationRule {
            cluster: cluster.clone(),
            gpu_destination: gpu_destination.into(),
            cpu_destination: cpu_destination.into(),
            require_free_gpu: false,
            recorder: None,
            reservations: None,
        }
    }

    /// Require a currently-free GPU for GPU mapping.
    pub fn require_free(mut self) -> Self {
        self.require_free_gpu = true;
        self
    }

    /// Count leased devices as busy when observing GPU availability, so a
    /// strict (`require_free`) rule does not route a job to the GPU
    /// destination on the strength of a device another same-wave plan
    /// already holds.
    pub fn with_reservations(mut self, table: LeaseTable) -> Self {
        self.reservations = Some(table);
        self
    }

    /// Emit a `gyan.rule.decision` audit event per evaluation, recording
    /// the device availability the rule observed and why it chose the
    /// destination it did.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Evaluate the rule for one job.
    pub fn decide(
        &self,
        tool: &Tool,
        job: &Job,
        config: &JobConfig,
    ) -> Result<String, GalaxyError> {
        let seen = self.observe();
        let gpu_ok =
            seen.device_count > 0 && (!self.require_free_gpu || !seen.free_gpus.is_empty());
        let requires_gpu = tool.requires_gpu();
        let (chosen, reason) = if gpu_ok && requires_gpu {
            (&self.gpu_destination, "gpu_tool_and_gpu_available")
        } else if !requires_gpu {
            (&self.cpu_destination, "tool_has_no_gpu_requirement")
        } else if seen.device_count == 0 {
            (&self.cpu_destination, "no_gpus_on_node")
        } else {
            (&self.cpu_destination, "no_free_gpu")
        };

        if let Some(rec) = &self.recorder {
            let free: Vec<String> = seen.free_gpus.iter().map(u32::to_string).collect();
            let fields: Vec<(&str, Value)> = vec![
                ("tool", tool.id.as_str().into()),
                ("job_id", job.id.into()),
                ("requires_gpu", requires_gpu.into()),
                ("device_count", seen.device_count.into()),
                ("free_gpus", free.join(",").into()),
                ("require_free_gpu", self.require_free_gpu.into()),
                ("destination", chosen.as_str().into()),
                ("reason", reason.into()),
            ];
            rec.event("gyan.rule.decision", fields);
        }

        if config.destination(chosen).is_none() {
            return Err(GalaxyError::UnknownDestination(chosen.clone()));
        }
        Ok(chosen.clone())
    }

    fn observe(&self) -> GpuObservation {
        let nvml = Nvml::init(&self.cluster);
        let device_count = nvml.device_count();
        let leased = self.reservations.as_ref().map(LeaseTable::view);
        let free_gpus = (0..device_count)
            .filter(|i| nvml.compute_running_processes(*i).map(|p| p.is_empty()).unwrap_or(false))
            .filter(|i| leased.as_ref().is_none_or(|view| !view.is_leased(*i)))
            .collect();
        GpuObservation { device_count, free_gpus }
    }

    /// Box the rule for registration with
    /// [`galaxy::GalaxyApp::register_rule`].
    pub fn into_rule(self) -> DynamicRule {
        Box::new(move |tool, job, config| self.decide(tool, job, config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galaxy::job::conf::GYAN_JOB_CONF;
    use galaxy::params::ParamDict;
    use galaxy::tool::macros::MacroLibrary;
    use galaxy::tool::wrapper::parse_tool;
    use gpusim::GpuProcess;

    fn gpu_tool() -> Tool {
        parse_tool(
            r#"<tool id="racon_gpu"><requirements>
                 <requirement type="compute">gpu</requirement>
               </requirements><command>racon_gpu</command></tool>"#,
            &MacroLibrary::new(),
        )
        .unwrap()
    }

    fn cpu_tool() -> Tool {
        parse_tool(r#"<tool id="sort"><command>sort</command></tool>"#, &MacroLibrary::new())
            .unwrap()
    }

    fn config() -> JobConfig {
        JobConfig::from_xml(GYAN_JOB_CONF).unwrap()
    }

    fn job() -> Job {
        Job::new(1, "t", ParamDict::new())
    }

    #[test]
    fn gpu_tool_on_gpu_node_goes_to_gpu_destination() {
        let c = GpuCluster::k80_node();
        let rule = GpuDestinationRule::new(&c, "local_gpu", "local_cpu");
        assert_eq!(rule.decide(&gpu_tool(), &job(), &config()).unwrap(), "local_gpu");
    }

    #[test]
    fn cpu_tool_always_goes_to_cpu_destination() {
        let c = GpuCluster::k80_node();
        let rule = GpuDestinationRule::new(&c, "local_gpu", "local_cpu");
        assert_eq!(rule.decide(&cpu_tool(), &job(), &config()).unwrap(), "local_cpu");
    }

    #[test]
    fn gpu_tool_on_gpuless_node_falls_back_to_cpu() {
        // "if GPUs are unavailable, the runner needs to switch jobs to CPU
        // nodes in a user-agnostic fashion".
        let c = GpuCluster::cpu_only_node();
        let rule = GpuDestinationRule::new(&c, "local_gpu", "local_cpu");
        assert_eq!(rule.decide(&gpu_tool(), &job(), &config()).unwrap(), "local_cpu");
    }

    #[test]
    fn require_free_gpu_falls_back_when_all_busy() {
        let c = GpuCluster::k80_node();
        c.attach_process(0, GpuProcess::compute(1, "a", 1)).unwrap();
        c.attach_process(1, GpuProcess::compute(2, "b", 1)).unwrap();
        let strict = GpuDestinationRule::new(&c, "local_gpu", "local_cpu").require_free();
        assert_eq!(strict.decide(&gpu_tool(), &job(), &config()).unwrap(), "local_cpu");
        // Default (non-strict): busy GPUs still take jobs; the allocation
        // policy will place them (paper Cases 3/4).
        let lax = GpuDestinationRule::new(&c, "local_gpu", "local_cpu");
        assert_eq!(lax.decide(&gpu_tool(), &job(), &config()).unwrap(), "local_gpu");
    }

    #[test]
    fn leased_devices_are_not_free_to_a_strict_rule() {
        use crate::allocation::AllocationPolicy;
        let c = GpuCluster::k80_node();
        let table = LeaseTable::new();
        // Both devices SMI-idle but leased by pending plans.
        table.allocate_and_lease(&c, &[], AllocationPolicy::ProcessId, 1, 100, None);
        let strict = GpuDestinationRule::new(&c, "local_gpu", "local_cpu")
            .require_free()
            .with_reservations(table.clone());
        assert_eq!(strict.decide(&gpu_tool(), &job(), &config()).unwrap(), "local_cpu");
        // Releasing the leases makes the devices free again.
        table.release(1, "ok", None);
        assert_eq!(strict.decide(&gpu_tool(), &job(), &config()).unwrap(), "local_gpu");
    }

    #[test]
    fn unknown_destination_is_error() {
        let c = GpuCluster::k80_node();
        let rule = GpuDestinationRule::new(&c, "ghost_gpu", "local_cpu");
        assert!(matches!(
            rule.decide(&gpu_tool(), &job(), &config()),
            Err(GalaxyError::UnknownDestination(_))
        ));
    }

    #[test]
    fn decision_audit_records_observed_state_and_reason() {
        let c = GpuCluster::k80_node();
        c.attach_process(0, GpuProcess::compute(7, "racon", 60)).unwrap();
        let rec = obs::Recorder::new();
        let rule = GpuDestinationRule::new(&c, "local_gpu", "local_cpu").with_recorder(rec.clone());

        rule.decide(&gpu_tool(), &job(), &config()).unwrap();
        rule.decide(&cpu_tool(), &job(), &config()).unwrap();

        let events = rec.events_named("gyan.rule.decision");
        assert_eq!(events.len(), 2);
        let gpu = &events[0];
        assert_eq!(gpu.field("tool").and_then(|v| v.as_str()), Some("racon_gpu"));
        assert_eq!(gpu.field("device_count").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(gpu.field("free_gpus").and_then(|v| v.as_str()), Some("1"));
        assert_eq!(gpu.field("destination").and_then(|v| v.as_str()), Some("local_gpu"));
        assert_eq!(
            gpu.field("reason").and_then(|v| v.as_str()),
            Some("gpu_tool_and_gpu_available")
        );
        let cpu = &events[1];
        assert_eq!(cpu.field("destination").and_then(|v| v.as_str()), Some("local_cpu"));
        assert_eq!(
            cpu.field("reason").and_then(|v| v.as_str()),
            Some("tool_has_no_gpu_requirement")
        );
    }

    #[test]
    fn audit_explains_strict_fallback() {
        let c = GpuCluster::k80_node();
        c.attach_process(0, GpuProcess::compute(1, "a", 1)).unwrap();
        c.attach_process(1, GpuProcess::compute(2, "b", 1)).unwrap();
        let rec = obs::Recorder::new();
        let rule = GpuDestinationRule::new(&c, "local_gpu", "local_cpu")
            .require_free()
            .with_recorder(rec.clone());
        assert_eq!(rule.decide(&gpu_tool(), &job(), &config()).unwrap(), "local_cpu");
        let e = &rec.events_named("gyan.rule.decision")[0];
        assert_eq!(e.field("reason").and_then(|v| v.as_str()), Some("no_free_gpu"));
        assert_eq!(e.field("free_gpus").and_then(|v| v.as_str()), Some(""));
    }

    #[test]
    fn boxed_rule_is_usable() {
        let c = GpuCluster::k80_node();
        let rule = GpuDestinationRule::new(&c, "local_gpu", "local_cpu").into_rule();
        assert_eq!(rule(&gpu_tool(), &job(), &config()).unwrap(), "local_gpu");
    }
}
