//! The dynamic destination rule — the paper's Challenge-II solution.
//!
//! GYAN adds a *job rule* that "obtains the system GPU availability and
//! the number of GPUs using the pynvml Python library. If the tool's
//! wrapper file has the compute requirement of type 'gpu' and if there is
//! at least one GPU available, then the destination is configured to be
//! 'local GPU'" — otherwise the job is switched to a CPU destination in a
//! user-agnostic fashion.

use galaxy::app::DynamicRule;
use galaxy::job::conf::JobConfig;
use galaxy::job::Job;
use galaxy::tool::Tool;
use galaxy::GalaxyError;
use gpusim::nvml::Nvml;
use gpusim::GpuCluster;

/// Factory for the `gpu_dynamic_destination` rule.
#[derive(Clone)]
pub struct GpuDestinationRule {
    cluster: GpuCluster,
    /// Destination id for GPU execution (e.g. `local_gpu` or `docker_gpu`).
    pub gpu_destination: String,
    /// Destination id for the CPU fallback.
    pub cpu_destination: String,
    /// When true, a GPU destination is chosen only if at least one GPU is
    /// currently *free*; when false (the default, matching the paper's
    /// multi-GPU cases where busy GPUs still accept jobs), presence of any
    /// GPU suffices and the allocation policy decides placement.
    pub require_free_gpu: bool,
}

impl GpuDestinationRule {
    /// Create a rule bound to a cluster with the given GPU/CPU
    /// destination ids.
    pub fn new(
        cluster: &GpuCluster,
        gpu_destination: impl Into<String>,
        cpu_destination: impl Into<String>,
    ) -> Self {
        GpuDestinationRule {
            cluster: cluster.clone(),
            gpu_destination: gpu_destination.into(),
            cpu_destination: cpu_destination.into(),
            require_free_gpu: false,
        }
    }

    /// Require a currently-free GPU for GPU mapping.
    pub fn require_free(mut self) -> Self {
        self.require_free_gpu = true;
        self
    }

    /// Evaluate the rule for one job.
    pub fn decide(&self, tool: &Tool, _job: &Job, config: &JobConfig) -> Result<String, GalaxyError> {
        let chosen = if self.gpu_available() && tool.requires_gpu() {
            &self.gpu_destination
        } else {
            &self.cpu_destination
        };
        if config.destination(chosen).is_none() {
            return Err(GalaxyError::UnknownDestination(chosen.clone()));
        }
        Ok(chosen.clone())
    }

    fn gpu_available(&self) -> bool {
        let nvml = Nvml::init(&self.cluster);
        let count = nvml.device_count();
        if count == 0 {
            return false;
        }
        if !self.require_free_gpu {
            return true;
        }
        (0..count).any(|i| {
            nvml.compute_running_processes(i).map(|p| p.is_empty()).unwrap_or(false)
        })
    }

    /// Box the rule for registration with
    /// [`galaxy::GalaxyApp::register_rule`].
    pub fn into_rule(self) -> DynamicRule {
        Box::new(move |tool, job, config| self.decide(tool, job, config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galaxy::job::conf::GYAN_JOB_CONF;
    use galaxy::params::ParamDict;
    use galaxy::tool::macros::MacroLibrary;
    use galaxy::tool::wrapper::parse_tool;
    use gpusim::GpuProcess;

    fn gpu_tool() -> Tool {
        parse_tool(
            r#"<tool id="racon_gpu"><requirements>
                 <requirement type="compute">gpu</requirement>
               </requirements><command>racon_gpu</command></tool>"#,
            &MacroLibrary::new(),
        )
        .unwrap()
    }

    fn cpu_tool() -> Tool {
        parse_tool(
            r#"<tool id="sort"><command>sort</command></tool>"#,
            &MacroLibrary::new(),
        )
        .unwrap()
    }

    fn config() -> JobConfig {
        JobConfig::from_xml(GYAN_JOB_CONF).unwrap()
    }

    fn job() -> Job {
        Job::new(1, "t", ParamDict::new())
    }

    #[test]
    fn gpu_tool_on_gpu_node_goes_to_gpu_destination() {
        let c = GpuCluster::k80_node();
        let rule = GpuDestinationRule::new(&c, "local_gpu", "local_cpu");
        assert_eq!(rule.decide(&gpu_tool(), &job(), &config()).unwrap(), "local_gpu");
    }

    #[test]
    fn cpu_tool_always_goes_to_cpu_destination() {
        let c = GpuCluster::k80_node();
        let rule = GpuDestinationRule::new(&c, "local_gpu", "local_cpu");
        assert_eq!(rule.decide(&cpu_tool(), &job(), &config()).unwrap(), "local_cpu");
    }

    #[test]
    fn gpu_tool_on_gpuless_node_falls_back_to_cpu() {
        // "if GPUs are unavailable, the runner needs to switch jobs to CPU
        // nodes in a user-agnostic fashion".
        let c = GpuCluster::cpu_only_node();
        let rule = GpuDestinationRule::new(&c, "local_gpu", "local_cpu");
        assert_eq!(rule.decide(&gpu_tool(), &job(), &config()).unwrap(), "local_cpu");
    }

    #[test]
    fn require_free_gpu_falls_back_when_all_busy() {
        let c = GpuCluster::k80_node();
        c.attach_process(0, GpuProcess::compute(1, "a", 1)).unwrap();
        c.attach_process(1, GpuProcess::compute(2, "b", 1)).unwrap();
        let strict = GpuDestinationRule::new(&c, "local_gpu", "local_cpu").require_free();
        assert_eq!(strict.decide(&gpu_tool(), &job(), &config()).unwrap(), "local_cpu");
        // Default (non-strict): busy GPUs still take jobs; the allocation
        // policy will place them (paper Cases 3/4).
        let lax = GpuDestinationRule::new(&c, "local_gpu", "local_cpu");
        assert_eq!(lax.decide(&gpu_tool(), &job(), &config()).unwrap(), "local_gpu");
    }

    #[test]
    fn unknown_destination_is_error() {
        let c = GpuCluster::k80_node();
        let rule = GpuDestinationRule::new(&c, "ghost_gpu", "local_cpu");
        assert!(matches!(
            rule.decide(&gpu_tool(), &job(), &config()),
            Err(GalaxyError::UnknownDestination(_))
        ));
    }

    #[test]
    fn boxed_rule_is_usable() {
        let c = GpuCluster::k80_node();
        let rule = GpuDestinationRule::new(&c, "local_gpu", "local_cpu").into_rule();
        assert_eq!(rule(&gpu_tool(), &job(), &config()).unwrap(), "local_gpu");
    }
}
