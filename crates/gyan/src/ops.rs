//! The live operations plane: wiring GYAN's runtime state into the
//! embedded introspection server (`obs::serve`).
//!
//! One call to [`ops_server`] produces an [`obs::serve::OpsServer`] whose
//! routes expose the whole observe→map→dispatch stack:
//!
//! | endpoint           | content                                          |
//! |--------------------|--------------------------------------------------|
//! | `/metrics`         | Prometheus scrape of the recorder's registry     |
//! | `/healthz`         | liveness + HTTP pool + handler pool saturation   |
//! | `/api/gpus`        | merged SMI device state + active leases          |
//! | `/api/jobs`        | job lifecycle snapshots from the queue ledger    |
//! | `/api/jobs/<id>`   | one job, with the leases it currently holds      |
//! | `/api/alerts`      | SLO alert-rule states from the [`AlertEngine`]   |
//! | `/api/flightrec`   | flight-recorder JSONL dump (503 when disabled)   |
//! | `/api/profile`     | hot-path profiler aggregation (`?format=collapsed` for flamegraph text, `?reset=1` to clear) |
//! | `/api/bench`       | last recorded perf trajectory (`BENCH_scheduler.json`) |
//! | `/api/profiles`    | learned per-tool footprint profiles (`?format=prometheus` for a standalone exposition) |
//!
//! [`default_alert_rules`] builds the stock SLO rule set the paper's
//! operators would watch: queue-wait p99, GPU allocation-conflict rate,
//! failure/resubmission burn rates, and lease-table oversubscription.
//!
//! [`AlertEngine`]: obs::slo::AlertEngine

use crate::footprint::FootprintRegistry;
use crate::reservations::{Lease, LeaseTable};
use galaxy::queue::{JobSnapshot, JobsLedger};
use galaxy::scheduler::{WORKERS_BUSY_GAUGE, WORKERS_TOTAL_GAUGE};
use gpusim::GpuCluster;
use obs::json_escape;
use obs::serve::{Handler, OpsServer, Response};
use obs::slo::{AlertEngine, AlertExpr, AlertRule, Compare};
use obs::Recorder;
use std::path::PathBuf;
use std::sync::Arc;

/// Flight-recorder ring capacity `install_gyan` enables by default.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 512;

/// Node label a single-node deployment reports when none is configured.
/// Multi-node fleets name each shard (`k80-000`, `a100-017`, ...) so the
/// GPU/job views and metrics never collapse into one anonymous list.
pub const DEFAULT_NODE_NAME: &str = "node-000";

/// Info-style gauge (value always 1) carrying the serving node's label,
/// exported as `gyan_node_info{node="<name>"}` by [`ops_server_named`].
pub const NODE_INFO_GAUGE: &str = "gyan_node_info";

/// Render an `f64` for JSON output (`null` when non-finite, which the
/// operations-plane values never are in practice).
fn num(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

fn lease_json(lease: &Lease) -> String {
    format!(
        "{{\"device\":{},\"holder\":{},\"exclusive\":{},\"memory_hint_mib\":{},\"acquired_at\":{}}}",
        lease.device,
        lease.holder,
        lease.exclusive,
        lease.memory_hint_mib,
        num(lease.acquired_at)
    )
}

/// Per-device JSON objects for one node's `/api/gpus` entries, each
/// carrying the `node` label. Exposed so a fleet-level ops server can
/// concatenate the shards' device lists into one labeled view.
pub fn gpu_objects(cluster: &GpuCluster, table: &LeaseTable, node: &str) -> Vec<String> {
    cluster
        .snapshot()
        .iter()
        .map(|dev| {
            let processes: Vec<String> = dev
                .processes()
                .iter()
                .map(|p| {
                    format!(
                        "{{\"pid\":{},\"name\":\"{}\",\"used_mib\":{}}}",
                        p.pid,
                        json_escape(&p.name),
                        p.used_mib
                    )
                })
                .collect();
            let leases: Vec<String> =
                table.leases_on(dev.minor_number).iter().map(lease_json).collect();
            format!(
                "{{\"node\":\"{}\",\"minor\":{},\"arch\":\"{}\",\"uuid\":\"{}\",\
                 \"fb_total_mib\":{},\
                 \"fb_used_mib\":{},\"fb_free_mib\":{},\"sm_utilization\":{},\
                 \"mem_utilization\":{},\"pcie_link_gen\":{},\"available\":{},\
                 \"processes\":[{}],\"leases\":[{}]}}",
                json_escape(node),
                dev.minor_number,
                json_escape(dev.arch.name),
                json_escape(&dev.uuid),
                dev.fb_total_mib(),
                dev.fb_used_mib(),
                dev.fb_free_mib(),
                num(dev.sm_utilization),
                num(dev.mem_utilization),
                dev.pcie_link_gen,
                dev.is_available(),
                processes.join(","),
                leases.join(","),
            )
        })
        .collect()
}

/// JSON document for `/api/gpus`: every device's SMI view merged with the
/// leases the reservation layer holds on it — the two sources whose
/// divergence is exactly the observe→dispatch race the lease table closes.
/// Each device carries the serving `node` label.
pub fn gpus_json(cluster: &GpuCluster, table: &LeaseTable, node: &str) -> String {
    format!("{{\"gpus\":[{}]}}", gpu_objects(cluster, table, node).join(","))
}

/// One job's `/api/jobs` JSON object: lifecycle snapshot plus the leases
/// it currently holds. Public so the fleet ops plane can reuse the exact
/// schema while joining leases across shards.
pub fn job_object(snap: &JobSnapshot, leases: &[Lease]) -> String {
    let held: Vec<String> =
        leases.iter().filter(|l| l.holder == snap.job_id).map(lease_json).collect();
    format!(
        "{{\"id\":{},\"user\":\"{}\",\"tool\":\"{}\",\"state\":\"{}\",\"attempts\":{},\
         \"destination\":{},\"node\":{},\"priority\":{},\"submitted_at\":{},\"finished_at\":{},\
         \"leases\":[{}]}}",
        snap.job_id,
        json_escape(&snap.user),
        json_escape(&snap.tool),
        snap.state.as_str(),
        snap.attempts,
        snap.destination
            .as_deref()
            .map_or("null".to_string(), |d| format!("\"{}\"", json_escape(d))),
        snap.node.as_deref().map_or("null".to_string(), |n| format!("\"{}\"", json_escape(n))),
        snap.priority,
        num(snap.submitted_at),
        snap.finished_at.map_or("null".to_string(), num),
        held.join(","),
    )
}

/// JSON document for `/api/jobs`: every job the queue engine has seen, in
/// id order, each with its lifecycle state, attempt count, destination,
/// and any leases it still holds.
pub fn jobs_json(ledger: &JobsLedger, table: &LeaseTable) -> String {
    let leases = table.all_leases();
    let jobs: Vec<String> = ledger.all().iter().map(|s| job_object(s, &leases)).collect();
    format!("{{\"jobs\":[{}]}}", jobs.join(","))
}

/// JSON document for `/api/jobs/<id>`, or `None` when the ledger has
/// never seen that job id.
pub fn job_json(ledger: &JobsLedger, table: &LeaseTable, job_id: u64) -> Option<String> {
    ledger.get(job_id).map(|snap| job_object(&snap, &table.all_leases()))
}

/// The stock SLO rule set for a GYAN deployment. Thresholds are tuned for
/// the simulated workloads in this repo; operators tune them per site.
///
/// * `queue-wait-p99` — tail scheduling latency from the queue-wait
///   histogram (p99 > 30 virtual seconds, held 5 s before firing);
/// * `gpu-conflict-rate` — lease-redirected allocations per second over a
///   10 s window (sustained conflicts mean the wave size outruns the
///   cluster);
/// * `job-failure-burn` / `resubmission-burn` — terminal failures and
///   retries per second over 30 s;
/// * `lease-oversubscription` — more than one lease on a single device
///   (shared placements are legal, but a persistent pile-up is the
///   paper's Case-4 contention signature), firing immediately.
pub fn default_alert_rules(table: &LeaseTable) -> Vec<AlertRule> {
    let t = table.clone();
    vec![
        AlertRule::new(
            "queue-wait-p99",
            AlertExpr::HistogramQuantile {
                name: galaxy::queue::QUEUE_WAIT_HISTOGRAM.to_string(),
                q: 0.99,
            },
            Compare::Gt,
            30.0,
        )
        .hold_for(5.0),
        AlertRule::new(
            "gpu-conflict-rate",
            AlertExpr::CounterRate {
                name: crate::reservations::RESERVATION_CONFLICTS_COUNTER.to_string(),
                window_s: 10.0,
            },
            Compare::Gt,
            0.5,
        )
        .hold_for(2.0),
        AlertRule::new(
            "job-failure-burn",
            AlertExpr::CounterRate {
                name: galaxy::scheduler::JOBS_FAILED_COUNTER.to_string(),
                window_s: 30.0,
            },
            Compare::Gt,
            0.2,
        )
        .hold_for(5.0),
        AlertRule::new(
            "resubmission-burn",
            AlertExpr::CounterRate {
                name: galaxy::queue::QUEUE_RESUBMITTED_COUNTER.to_string(),
                window_s: 30.0,
            },
            Compare::Gt,
            0.5,
        )
        .hold_for(5.0),
        AlertRule::new(
            "lease-oversubscription",
            AlertExpr::Custom(Arc::new(move || Some(t.max_leases_per_device() as f64))),
            Compare::Gt,
            1.0,
        ),
    ]
}

/// Handler for `/api/profile`: the global hot-path profiler's current
/// aggregation. `?format=collapsed` serves inferno-ready collapsed-stack
/// text instead of the JSON summary; `?reset=1` clears the aggregation
/// (after rendering the response, so a reset scrape still shows what it
/// cleared).
pub fn profile_route() -> Handler {
    Arc::new(|req| {
        let profiler = obs::profile::global();
        let response = if req.query_param("format") == Some("collapsed") {
            Response::text(profiler.collapsed())
        } else {
            Response::json(profiler.summary_json())
        };
        if req.query_param("reset") == Some("1") {
            profiler.reset();
        }
        response
    })
}

/// Handler for `/api/bench`: the last recorded perf trajectory, read from
/// `path` (normally `BENCH_scheduler.json` at the repo root, written by
/// the `perf_gate` bench). 404 with a hint when no trajectory exists yet.
pub fn bench_route(path: impl Into<PathBuf>) -> Handler {
    let path = path.into();
    Arc::new(move |_req| match std::fs::read_to_string(&path) {
        Ok(body) => Response::json(body),
        Err(_) => Response::not_found(&format!(
            "perf trajectory {} (run the perf_gate bench to record one)",
            path.display()
        )),
    })
}

/// Handler for `/api/profiles`: the learned `(tool, input-size bucket)`
/// footprint profiles. `?format=prometheus` serves the
/// `gyan_footprint_*` family as a standalone exposition instead of JSON.
pub fn profiles_route(registry: &FootprintRegistry) -> Handler {
    let registry = registry.clone();
    Arc::new(move |req| {
        if req.query_param("format") == Some("prometheus") {
            Response::ok("text/plain; version=0.0.4", registry.render_prometheus())
        } else {
            Response::json(registry.render_json())
        }
    })
}

/// Build the operations-plane HTTP server over a running GYAN stack.
///
/// The returned [`OpsServer`] is not yet listening — call
/// `.start("127.0.0.1:0")` to bind (port 0 picks an ephemeral port; the
/// handle reports the real one). All state is shared by handle clones, so
/// the server observes the live system, not a snapshot.
pub fn ops_server(
    recorder: &Recorder,
    cluster: &GpuCluster,
    table: &LeaseTable,
    ledger: &JobsLedger,
    alerts: &AlertEngine,
) -> OpsServer {
    ops_server_named(recorder, cluster, table, ledger, alerts, DEFAULT_NODE_NAME)
}

/// [`ops_server`] with an explicit node label: the `/api/gpus` devices
/// carry `"node":"<name>"` and the metrics registry gains the
/// `gyan_node_info{node="<name>"}` info gauge, so scrapes from several
/// nodes stay distinguishable after aggregation.
pub fn ops_server_named(
    recorder: &Recorder,
    cluster: &GpuCluster,
    table: &LeaseTable,
    ledger: &JobsLedger,
    alerts: &AlertEngine,
    node: &str,
) -> OpsServer {
    // Metric keys store label values raw; the registry escapes on render.
    recorder.metrics().set_gauge(&format!("{NODE_INFO_GAUGE}{{node=\"{node}\"}}"), 1.0);
    let gpus = (cluster.clone(), table.clone(), node.to_string());
    let jobs = (ledger.clone(), table.clone());
    let alerts_handle = alerts.clone();
    let flight = recorder.clone();
    let health = recorder.clone();
    OpsServer::new()
        .serve_metrics(recorder.metrics())
        .route(
            "/api/gpus",
            Arc::new(move |_req| Response::json(gpus_json(&gpus.0, &gpus.1, &gpus.2))),
        )
        .route(
            "/api/jobs",
            Arc::new(move |req| match req.path.strip_prefix("/api/jobs/") {
                None => Response::json(jobs_json(&jobs.0, &jobs.1)),
                Some(rest) => match rest.parse::<u64>().ok() {
                    Some(id) => match job_json(&jobs.0, &jobs.1, id) {
                        Some(body) => Response::json(body),
                        None => Response::not_found(&format!("job {id}")),
                    },
                    None => Response::not_found("job id"),
                },
            }),
        )
        .route("/api/alerts", Arc::new(move |_req| Response::json(alerts_handle.to_json())))
        .route(
            "/api/flightrec",
            Arc::new(move |_req| match flight.flight_snapshot() {
                Some(snapshot) => Response::ok("application/jsonl", snapshot.to_jsonl()),
                None => Response::unavailable("flight recorder disabled"),
            }),
        )
        .route("/api/profile", profile_route())
        .route("/api/bench", bench_route("BENCH_scheduler.json"))
        .healthz_extra(move || {
            let m = health.metrics();
            let busy = m.gauge_value(WORKERS_BUSY_GAUGE).unwrap_or(0.0);
            let total = m.gauge_value(WORKERS_TOTAL_GAUGE).unwrap_or(0.0);
            format!(
                "\"galaxy_pool\":{{\"workers\":{},\"busy\":{},\"saturated\":{}}}",
                num(total),
                num(busy),
                total > 0.0 && busy >= total
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::serve::http_get;

    fn stack() -> (Recorder, GpuCluster, LeaseTable, JobsLedger, AlertEngine) {
        let recorder = Recorder::new();
        let cluster = GpuCluster::k80_node();
        let table = LeaseTable::new();
        let ledger = JobsLedger::new();
        let alerts = AlertEngine::new(&recorder);
        (recorder, cluster, table, ledger, alerts)
    }

    #[test]
    fn gpus_json_merges_smi_state_with_leases() {
        let (_recorder, cluster, table, _ledger, _alerts) = stack();
        table.allocate_and_lease(&cluster, &[0], crate::AllocationPolicy::ProcessId, 7, 100, None);

        let doc =
            obs::json::parse(&gpus_json(&cluster, &table, "k80-007")).expect("gpus json parses");
        let gpus = doc.get("gpus").and_then(|v| v.as_array()).expect("gpus array");
        assert_eq!(gpus.len(), 2);
        let dev0 = &gpus[0];
        assert_eq!(dev0.get("node").and_then(|v| v.as_str()), Some("k80-007"));
        assert_eq!(gpus[1].get("node").and_then(|v| v.as_str()), Some("k80-007"));
        assert_eq!(dev0.get("minor").and_then(|v| v.as_f64()), Some(0.0));
        assert!(dev0.get("fb_total_mib").and_then(|v| v.as_f64()).unwrap() > 0.0);
        let leases = dev0.get("leases").and_then(|v| v.as_array()).expect("leases array");
        assert_eq!(leases.len(), 1);
        assert_eq!(leases[0].get("holder").and_then(|v| v.as_f64()), Some(7.0));
        assert_eq!(leases[0].get("exclusive").and_then(|v| v.as_bool()), Some(true));
        // Device 1 carries no lease.
        let dev1_leases = gpus[1].get("leases").and_then(|v| v.as_array()).unwrap();
        assert!(dev1_leases.is_empty());
    }

    #[test]
    fn jobs_json_lists_ledger_snapshots_with_their_leases() {
        let (_recorder, cluster, table, ledger, _alerts) = stack();
        ledger.upsert(JobSnapshot {
            job_id: 7,
            user: "ada".to_string(),
            tool: "racon_gpu".to_string(),
            state: galaxy::queue::SubmissionState::Queued,
            attempts: 1,
            destination: Some("local_gpu".to_string()),
            node: Some("k80-000".to_string()),
            priority: 1,
            submitted_at: 0.5,
            finished_at: None,
        });
        table.allocate_and_lease(&cluster, &[0], crate::AllocationPolicy::ProcessId, 7, 64, None);

        let doc = obs::json::parse(&jobs_json(&ledger, &table)).expect("jobs json parses");
        let jobs = doc.get("jobs").and_then(|v| v.as_array()).expect("jobs array");
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].get("state").and_then(|v| v.as_str()), Some("queued"));
        assert_eq!(jobs[0].get("destination").and_then(|v| v.as_str()), Some("local_gpu"));
        assert_eq!(jobs[0].get("node").and_then(|v| v.as_str()), Some("k80-000"));
        assert!(jobs[0].get("finished_at").map(|v| v.is_null()).unwrap_or(false));
        let leases = jobs[0].get("leases").and_then(|v| v.as_array()).unwrap();
        assert_eq!(leases.len(), 1);
        assert_eq!(leases[0].get("device").and_then(|v| v.as_f64()), Some(0.0));

        assert!(job_json(&ledger, &table, 7).is_some());
        assert!(job_json(&ledger, &table, 99).is_none());
    }

    #[test]
    fn default_rules_cover_the_slo_surface() {
        let (recorder, _cluster, table, _ledger, _alerts) = stack();
        let alerts = AlertEngine::new(&recorder);
        for rule in default_alert_rules(&table) {
            alerts.add_rule(rule);
        }
        alerts.evaluate();
        let names: Vec<String> = alerts.statuses().into_iter().map(|s| s.rule.name).collect();
        assert_eq!(
            names,
            vec![
                "queue-wait-p99",
                "gpu-conflict-rate",
                "job-failure-burn",
                "resubmission-burn",
                "lease-oversubscription"
            ]
        );
        assert!(alerts.firing().is_empty());
    }

    #[test]
    fn ops_server_serves_every_endpoint() {
        let (recorder, cluster, table, ledger, alerts) = stack();
        recorder.enable_flight(DEFAULT_FLIGHT_CAPACITY);
        recorder.metrics().inc_counter("demo_total", 3);
        alerts.add_rule(AlertRule::new(
            "demo",
            AlertExpr::Gauge("missing".to_string()),
            Compare::Gt,
            1.0,
        ));
        let server = ops_server(&recorder, &cluster, &table, &ledger, &alerts);
        let handle = server.start("127.0.0.1:0").expect("bind");
        let addr = handle.addr();

        let (status, body) = http_get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("demo_total 3"));
        assert!(
            body.contains("gyan_node_info{node=\"node-000\"} 1"),
            "metrics must carry the node label: {body}"
        );

        let (status, body) = http_get(addr, "/api/gpus").unwrap();
        assert_eq!(status, 200);
        assert!(obs::json::parse(&body).is_ok());
        assert!(body.contains("\"node\":\"node-000\""), "{body}");

        let (status, body) = http_get(addr, "/api/jobs").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"jobs\":[]"));
        let (status, _) = http_get(addr, "/api/jobs/42").unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_get(addr, "/api/jobs/not-a-number").unwrap();
        assert_eq!(status, 404);

        let (status, body) = http_get(addr, "/api/alerts").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"rule\":\"demo\""));

        let (status, body) = http_get(addr, "/api/flightrec").unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"type\":\"flightrec\""));

        let (status, body) = http_get(addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"galaxy_pool\""));

        handle.shutdown();
    }

    #[test]
    fn profile_route_serves_scopes_collapsed_text_and_reset() {
        let (recorder, cluster, table, ledger, alerts) = stack();
        let handle = ops_server(&recorder, &cluster, &table, &ledger, &alerts)
            .start("127.0.0.1:0")
            .expect("bind");
        let addr = handle.addr();

        let profiler = obs::profile::global();
        profiler.enable();
        {
            let _outer = profiler.scope("ops.test.outer");
            let _inner = profiler.scope("ops.test.inner");
        }

        let (status, body) = http_get(addr, "/api/profile").unwrap();
        assert_eq!(status, 200);
        let doc = obs::json::parse(&body).expect("profile json parses");
        let paths: Vec<&str> = doc
            .get("scopes")
            .and_then(|v| v.as_array())
            .unwrap()
            .iter()
            .filter_map(|s| s.get("path").and_then(|p| p.as_str()))
            .collect();
        assert!(paths.contains(&"ops.test.outer"), "{paths:?}");
        assert!(paths.contains(&"ops.test.outer;ops.test.inner"), "{paths:?}");

        let (status, body) = http_get(addr, "/api/profile?format=collapsed").unwrap();
        assert_eq!(status, 200);
        assert!(body.lines().any(|l| l.starts_with("ops.test.outer;ops.test.inner ")), "{body}");

        // Reset clears the aggregation; the resetting scrape itself still
        // reports the pre-reset view.
        let (status, body) = http_get(addr, "/api/profile?reset=1").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("ops.test.outer"));
        let (_, body) = http_get(addr, "/api/profile").unwrap();
        assert!(!body.contains("ops.test.outer"), "{body}");

        profiler.disable();
        handle.shutdown();
    }

    #[test]
    fn bench_route_serves_the_trajectory_file_or_404() {
        let dir = std::env::temp_dir().join(format!("gyan-bench-route-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_scheduler.json");
        let server = OpsServer::new().route("/api/bench", bench_route(&path));
        let handle = server.start("127.0.0.1:0").expect("bind");

        let (status, body) = http_get(handle.addr(), "/api/bench").unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("perf trajectory"), "{body}");

        std::fs::write(&path, "{\"schema\":\"gyan.bench.scheduler/v1\"}").unwrap();
        let (status, body) = http_get(handle.addr(), "/api/bench").unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            obs::json::parse(&body).unwrap().get("schema").and_then(|v| v.as_str()),
            Some("gyan.bench.scheduler/v1")
        );

        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flightrec_is_503_when_the_recorder_has_no_ring() {
        let (recorder, cluster, table, ledger, alerts) = stack();
        let handle = ops_server(&recorder, &cluster, &table, &ledger, &alerts)
            .start("127.0.0.1:0")
            .expect("bind");
        let (status, _) = http_get(handle.addr(), "/api/flightrec").unwrap();
        assert_eq!(status, 503);
        handle.shutdown();
    }
}
