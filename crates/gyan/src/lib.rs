//! # gyan
//!
//! GYAN — *GPU-aware computation mapping and orchestration for Galaxy* —
//! the contribution of the paper, reimplemented over the `galaxy` framework
//! substrate and the `gpusim` GPU cluster simulator.
//!
//! The paper's four challenges map onto these modules:
//!
//! * **Challenge-I** (a GPU compute requirement in tool XML): parsing lives
//!   in `galaxy::tool` (`Requirement::is_gpu`, `Tool::requested_gpu_ids`);
//!   this crate consumes it everywhere.
//! * **Challenge-II** (exposing GPU availability to the runner):
//!   [`rules`] implements the `gpu_dynamic_destination` job rule that maps
//!   jobs to GPU or CPU destinations from live `pynvml` queries, and
//!   [`orchestrator`] exports `GALAXY_GPU_ENABLED` and bridges
//!   `__galaxy_gpu_enabled__` into the tool's parameter dictionary.
//! * **Challenge-III** (GPU support for containerized tools):
//!   [`container_gpu`] injects `--gpus all` into Docker launches and
//!   `--nv` into Singularity launches (stripping the `rw`/`ro` bind flags
//!   Singularity ≥3.1 rejects).
//! * **Challenge-IV** (multi-GPU computation mapping): [`gpu_usage`] is
//!   the paper's Pseudocode 1 (`get_gpu_usage` over `nvidia-smi -q -x`
//!   XML), and [`allocation`] implements Pseudocode 2 with both device
//!   allocation strategies — the *Process ID* approach and the *Process
//!   Allocated Memory* approach — producing the `CUDA_VISIBLE_DEVICES`
//!   export.
//!
//! Beyond the paper: [`reservations`] closes the observe→dispatch TOCTOU
//! window of the SMI-polling allocator with a lease table — a device
//! granted to a not-yet-executing plan is no longer "free" to the next
//! plan prepared in the same dispatch wave.
//!
//! [`monitor`] is the paper's §V-C GPU hardware usage script (1 Hz
//! utilization/memory/PCIe sampling with post-processed statistics and CSV
//! output), [`telemetry`] merges job spans, decision audits, kernel/DMA
//! timelines, and monitor samples into one Chrome trace, [`ops`] exposes
//! the running stack over an embedded HTTP introspection server with SLO
//! alert rules and a flight recorder, and [`setup`] wires everything into
//! a `GalaxyApp` in one call.

pub mod allocation;
pub mod container_gpu;
pub mod footprint;
pub mod gpu_usage;
pub mod monitor;
pub mod ops;
pub mod orchestrator;
pub mod reservations;
pub mod rules;
pub mod setup;
pub mod telemetry;

pub use allocation::{
    select_gpus, select_gpus_reserved, select_gpus_traced, AllocationPolicy, AllocationReason,
};
pub use footprint::{EstimateSource, FootprintRegistry, MemoryHint, ProfileSnapshot};
pub use gpu_usage::{get_gpu_usage, gpu_memory_usage, try_get_gpu_usage, try_gpu_memory_usage};
pub use monitor::UsageMonitor;
pub use ops::{default_alert_rules, ops_server, profiles_route, DEFAULT_FLIGHT_CAPACITY};
pub use orchestrator::GyanHook;
pub use reservations::{Lease, LeaseTable, ReservationView};
pub use rules::GpuDestinationRule;
pub use setup::{footprint_advisor, install_gyan, install_gyan_with_footprint};
pub use telemetry::{export_run, merged_chrome_trace, TelemetryExport};

/// The boolean environment variable GYAN introduces to Galaxy: `"true"`
/// when the job was mapped to a GPU destination.
pub const GALAXY_GPU_ENABLED: &str = "GALAXY_GPU_ENABLED";

/// The CUDA device mask GYAN exports to constrain the tool process.
pub const CUDA_VISIBLE_DEVICES: &str = "CUDA_VISIBLE_DEVICES";

/// The parameter-dictionary key exposed to tool wrappers (paper Code 3:
/// `$__galaxy_gpu_enabled__`).
pub const GPU_ENABLED_PARAM: &str = "__galaxy_gpu_enabled__";
