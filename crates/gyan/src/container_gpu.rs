//! GPU support for containerized tools — the paper's Challenge-III.
//!
//! GYAN modifies Galaxy's container launch script so that, when
//! `GALAXY_GPU_ENABLED` is `"true"`:
//!
//! * Docker launches gain `--gpus all`
//!   (`command_part.append("--gpus all")`). The paper notes the targeted
//!   `--gpus "device=x"` form "did not work as intended", so GYAN instead
//!   exports `CUDA_VISIBLE_DEVICES` and passes `--gpus all`;
//! * Singularity launches gain `--nv`
//!   (`command_part.append("--nv")`) — and the `rw`/`ro` bind-mount flags
//!   are stripped, because Singularity ≥3.1 rejects them when `--nv` is
//!   present.
//!
//! The `CUDA_VISIBLE_DEVICES` value itself must also be forwarded *into*
//! the container environment, which these mutators do by copying the job's
//! export into a `-e`/`SINGULARITYENV_` assignment.

use crate::{CUDA_VISIBLE_DEVICES, GALAXY_GPU_ENABLED};
use galaxy::job::conf::Destination;
use galaxy::job::Job;
use galaxy::runners::CommandMutator;

/// Injects `--gpus all` into `docker run` commands for GPU-enabled jobs.
#[derive(Debug, Default, Clone, Copy)]
pub struct DockerGpuMutator;

impl CommandMutator for DockerGpuMutator {
    fn mutate(&self, parts: &mut Vec<String>, job: &Job, _destination: &Destination) {
        if job.env_var(GALAXY_GPU_ENABLED) != Some("true") {
            return;
        }
        // Only applies to docker launches.
        let Some(run_idx) = position_pair(parts, "docker", "run") else {
            return;
        };
        // command_part.append("--gpus all") — inserted right after `run`.
        parts.insert(run_idx + 1, "--gpus".to_string());
        parts.insert(run_idx + 2, "all".to_string());
        // Forward the device mask into the container.
        if let Some(mask) = job.env_var(CUDA_VISIBLE_DEVICES) {
            let assignment = format!("{CUDA_VISIBLE_DEVICES}={mask}");
            if !parts.contains(&assignment) {
                parts.insert(run_idx + 3, "-e".to_string());
                parts.insert(run_idx + 4, assignment);
            }
        }
    }
}

/// Injects `--nv` into `singularity exec` commands for GPU-enabled jobs
/// and strips the `rw`/`ro` bind flags Singularity ≥3.1 rejects.
#[derive(Debug, Default, Clone, Copy)]
pub struct SingularityGpuMutator;

impl CommandMutator for SingularityGpuMutator {
    fn mutate(&self, parts: &mut Vec<String>, job: &Job, _destination: &Destination) {
        if job.env_var(GALAXY_GPU_ENABLED) != Some("true") {
            return;
        }
        let Some(exec_idx) = position_pair(parts, "singularity", "exec") else {
            return;
        };
        // command_part.append("--nv")
        parts.insert(exec_idx + 1, "--nv".to_string());
        // Strip :rw / :ro suffixes from every -B bind.
        let mut i = 0;
        while i + 1 < parts.len() {
            if parts[i] == "-B" {
                let bind = &parts[i + 1];
                if let Some(stripped) =
                    bind.strip_suffix(":rw").or_else(|| bind.strip_suffix(":ro"))
                {
                    parts[i + 1] = stripped.to_string();
                }
            }
            i += 1;
        }
        // Forward the device mask via SINGULARITYENV_.
        if let Some(mask) = job.env_var(CUDA_VISIBLE_DEVICES) {
            let assignment = format!("SINGULARITYENV_{CUDA_VISIBLE_DEVICES}={mask}");
            if !parts.contains(&assignment) {
                let sing_idx = exec_idx - 1;
                parts.insert(sing_idx, assignment);
            }
        }
    }
}

/// Index of `second` when it immediately follows `first` in `parts`.
fn position_pair(parts: &[String], first: &str, second: &str) -> Option<usize> {
    parts.windows(2).position(|w| w[0] == first && w[1] == second).map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use galaxy::params::ParamDict;
    use galaxy::runners::container_cmd::{docker_command, singularity_command, VolumeBind};

    fn dest() -> Destination {
        Destination { id: "docker_gpu".into(), runner: "local".into(), params: ParamDict::new() }
    }

    fn gpu_job() -> Job {
        let mut j = Job::new(1, "racon_gpu", ParamDict::new());
        j.set_env(GALAXY_GPU_ENABLED, "true");
        j.set_env(CUDA_VISIBLE_DEVICES, "0,1");
        j
    }

    fn cpu_job() -> Job {
        let mut j = Job::new(1, "racon", ParamDict::new());
        j.set_env(GALAXY_GPU_ENABLED, "false");
        j
    }

    #[test]
    fn docker_gains_gpus_all_after_run() {
        let mut parts = docker_command("img", "racon_gpu", &[], &[VolumeBind::rw("/d")], "/w");
        DockerGpuMutator.mutate(&mut parts, &gpu_job(), &dest());
        let run = parts.iter().position(|p| p == "run").unwrap();
        assert_eq!(parts[run + 1], "--gpus");
        assert_eq!(parts[run + 2], "all");
        assert!(parts.contains(&"CUDA_VISIBLE_DEVICES=0,1".to_string()));
    }

    #[test]
    fn docker_untouched_when_gpu_disabled() {
        let mut parts = docker_command("img", "racon", &[], &[], "/w");
        let before = parts.clone();
        DockerGpuMutator.mutate(&mut parts, &cpu_job(), &dest());
        assert_eq!(parts, before);
    }

    #[test]
    fn docker_mutator_ignores_bare_metal_commands() {
        let mut parts = vec!["/bin/bash".to_string(), "-c".to_string(), "racon_gpu".to_string()];
        let before = parts.clone();
        DockerGpuMutator.mutate(&mut parts, &gpu_job(), &dest());
        assert_eq!(parts, before);
    }

    #[test]
    fn singularity_gains_nv_and_loses_bind_flags() {
        let mut parts = singularity_command(
            "img.sif",
            "racon_gpu",
            &[],
            &[VolumeBind::rw("/data"), VolumeBind::ro("/refs")],
            "/w",
        );
        SingularityGpuMutator.mutate(&mut parts, &gpu_job(), &dest());
        let exec = parts.iter().position(|p| p == "exec").unwrap();
        assert_eq!(parts[exec + 1], "--nv");
        // rw/ro suffixes stripped (Singularity 3.1 + --nv incompatibility).
        assert!(parts.contains(&"/data:/data".to_string()));
        assert!(parts.contains(&"/refs:/refs".to_string()));
        assert!(!parts.iter().any(|p| p.ends_with(":rw") || p.ends_with(":ro")));
        assert!(parts.contains(&"SINGULARITYENV_CUDA_VISIBLE_DEVICES=0,1".to_string()));
    }

    #[test]
    fn singularity_untouched_when_gpu_disabled() {
        let mut parts =
            singularity_command("img.sif", "racon", &[], &[VolumeBind::rw("/data")], "/w");
        let before = parts.clone();
        SingularityGpuMutator.mutate(&mut parts, &cpu_job(), &dest());
        assert_eq!(parts, before);
        // CPU containers keep their rw flags.
        assert!(parts.iter().any(|p| p.ends_with(":rw")));
    }

    #[test]
    fn mutators_are_idempotent_on_missing_mask() {
        let mut j = Job::new(1, "t", ParamDict::new());
        j.set_env(GALAXY_GPU_ENABLED, "true"); // no CUDA_VISIBLE_DEVICES
        let mut parts = docker_command("img", "t", &[], &[], "/w");
        DockerGpuMutator.mutate(&mut parts, &j, &dest());
        assert!(parts.contains(&"--gpus".to_string()));
        assert!(!parts.iter().any(|p| p.starts_with("CUDA_VISIBLE_DEVICES=")));
    }
}
