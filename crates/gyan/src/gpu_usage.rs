//! `get_gpu_usage` — the paper's Pseudocode 1.
//!
//! Runs the `nvidia-smi -q -x` query (against the simulated cluster),
//! parses the XML with the BeautifulSoup-style DOM API, builds the
//! `proc_gpu_dict` mapping GPU minor IDs to the PIDs executing on them,
//! and returns the available-GPU and all-GPU lists.

use gpusim::{smi, GpuCluster};
use xmlparse::parse;

/// Result of one GPU usage query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuUsage {
    /// Minor IDs of GPUs with no executing processes (`avail_gpus`).
    pub avail_gpus: Vec<u32>,
    /// All minor IDs on the host (`all_gpus`).
    pub all_gpus: Vec<u32>,
    /// The full dictionary: minor ID → PIDs of executing processes.
    pub proc_gpu_dict: Vec<(u32, Vec<u32>)>,
}

/// Query GPU usage by generating and parsing `nvidia-smi -q -x` output —
/// a direct port of the paper's Pseudocode 1.
///
/// If an SMI query fault is armed on the cluster, this degrades the way
/// the Python original does when the subprocess dies: no parseable
/// output, so every list comes back empty and downstream mapping falls
/// through to the CPU path.
pub fn get_gpu_usage(cluster: &GpuCluster) -> GpuUsage {
    try_get_gpu_usage(cluster).unwrap_or(GpuUsage {
        avail_gpus: Vec::new(),
        all_gpus: Vec::new(),
        proc_gpu_dict: Vec::new(),
    })
}

/// Fallible [`get_gpu_usage`]: surfaces an injected SMI query failure
/// instead of degrading to an empty view.
pub fn try_get_gpu_usage(cluster: &GpuCluster) -> Result<GpuUsage, smi::SmiError> {
    obs::profile_scope!("smi.query");
    // bash_cmd = "/bin/bash -c 'nvidia-smi -query -x'"
    let xml = smi::try_query_xml(cluster)?;
    // soup = bs(out, "lxml")
    let doc = {
        obs::profile_scope!("smi.parse_xml");
        parse(&xml).expect("nvidia-smi emitted malformed XML")
    };
    let log = doc.root();

    // gpu_find = soup.find("nvidia_smi_log").find_all("gpu")
    let mut proc_gpu_dict: Vec<(u32, Vec<u32>)> = Vec::new();
    for gpu in log.find_all("gpu") {
        let minor_id: u32 = gpu
            .find_text("minor_number")
            .and_then(|t| t.parse().ok())
            .expect("gpu element without minor_number");
        // process_find = p.find("processes").find_all("process_info")
        let mut pids = Vec::new();
        if let Some(processes) = gpu.find("processes") {
            for proc_info in processes.find_all("process_info") {
                if let Some(pid) = proc_info.find_text("pid").and_then(|t| t.parse().ok()) {
                    pids.push(pid);
                }
            }
        }
        proc_gpu_dict.push((minor_id, pids));
    }

    // for (x, y) in proc_gpu_dict: all.append(x); if y empty: avail.append(x)
    let mut avail_gpus = Vec::new();
    let mut all_gpus = Vec::new();
    for (minor, pids) in &proc_gpu_dict {
        all_gpus.push(*minor);
        if pids.is_empty() {
            avail_gpus.push(*minor);
        }
    }

    Ok(GpuUsage { avail_gpus, all_gpus, proc_gpu_dict })
}

/// Per-GPU framebuffer usage in MiB, parsed from the same query — the
/// input to the *Process Allocated Memory* approach (paper §IV-C2, which
/// reads `fb_memory_usage.used` instead of the PID list).
pub fn gpu_memory_usage(cluster: &GpuCluster) -> Vec<(u32, u64)> {
    try_gpu_memory_usage(cluster).unwrap_or_default()
}

/// Fallible [`gpu_memory_usage`]: surfaces an injected SMI query failure
/// instead of degrading to an empty list.
pub fn try_gpu_memory_usage(cluster: &GpuCluster) -> Result<Vec<(u32, u64)>, smi::SmiError> {
    obs::profile_scope!("smi.query_mem");
    let xml = smi::try_query_xml(cluster)?;
    let doc = {
        obs::profile_scope!("smi.parse_xml");
        parse(&xml).expect("nvidia-smi emitted malformed XML")
    };
    let mut out = Vec::new();
    for gpu in doc.root().find_all("gpu") {
        let minor: u32 = gpu
            .find_text("minor_number")
            .and_then(|t| t.parse().ok())
            .expect("gpu element without minor_number");
        let used = gpu
            .find("fb_memory_usage")
            .and_then(|fb| fb.find_text("used"))
            .and_then(|t| t.trim_end_matches(" MiB").parse().ok())
            .unwrap_or(0);
        out.push((minor, used));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::GpuProcess;

    #[test]
    fn idle_cluster_all_available() {
        let c = GpuCluster::k80_node();
        let usage = get_gpu_usage(&c);
        assert_eq!(usage.all_gpus, vec![0, 1]);
        assert_eq!(usage.avail_gpus, vec![0, 1]);
        assert_eq!(usage.proc_gpu_dict, vec![(0, vec![]), (1, vec![])]);
    }

    #[test]
    fn busy_gpu_excluded_from_available() {
        let c = GpuCluster::k80_node();
        c.attach_process(1, GpuProcess::compute(40534, "/usr/bin/racon_gpu", 60)).unwrap();
        let usage = get_gpu_usage(&c);
        assert_eq!(usage.all_gpus, vec![0, 1]);
        assert_eq!(usage.avail_gpus, vec![0]);
        assert_eq!(usage.proc_gpu_dict[1], (1, vec![40534]));
    }

    #[test]
    fn multiple_pids_collected_per_gpu() {
        let c = GpuCluster::k80_node();
        for pid in [39953, 41105, 41872] {
            c.attach_process(0, GpuProcess::compute(pid, "/usr/bin/racon_gpu", 60)).unwrap();
        }
        let usage = get_gpu_usage(&c);
        assert_eq!(usage.proc_gpu_dict[0].1, vec![39953, 41105, 41872]);
        assert_eq!(usage.avail_gpus, vec![1]);
    }

    #[test]
    fn memory_usage_reflects_allocations() {
        let c = GpuCluster::k80_node();
        c.attach_process(0, GpuProcess::compute(1, "racon", 60)).unwrap();
        c.attach_process(1, GpuProcess::compute(2, "bonito", 2734 - 63)).unwrap();
        let mem = gpu_memory_usage(&c);
        // Driver reservation (63 MiB) + process memory.
        assert_eq!(mem, vec![(0, 123), (1, 2734)]);
    }

    #[test]
    fn no_gpu_node_yields_empty_lists() {
        let c = GpuCluster::cpu_only_node();
        let usage = get_gpu_usage(&c);
        assert!(usage.all_gpus.is_empty());
        assert!(usage.avail_gpus.is_empty());
        assert!(gpu_memory_usage(&c).is_empty());
    }

    #[test]
    fn injected_smi_failure_degrades_to_empty_usage() {
        let c = GpuCluster::k80_node();
        c.inject_smi_query_failures(2);
        assert!(try_get_gpu_usage(&c).is_err());
        // The infallible entry point swallows the fault and reports no
        // GPUs — the same shape as a CPU-only node.
        assert_eq!(
            get_gpu_usage(&c),
            GpuUsage { avail_gpus: vec![], all_gpus: vec![], proc_gpu_dict: vec![] }
        );
        // Budget spent: the next query sees the real devices again.
        assert_eq!(get_gpu_usage(&c).all_gpus, vec![0, 1]);
    }

    #[test]
    fn frozen_snapshot_reports_stale_availability() {
        let c = GpuCluster::k80_node();
        c.freeze_smi_snapshot();
        c.attach_process(0, GpuProcess::compute(9, "sneaky", 100)).unwrap();
        assert_eq!(get_gpu_usage(&c).avail_gpus, vec![0, 1], "stale view misses the attach");
        c.thaw_smi_snapshot();
        assert_eq!(get_gpu_usage(&c).avail_gpus, vec![1]);
    }
}
