//! One-call installation of GYAN into a Galaxy application.

use crate::allocation::AllocationPolicy;
use crate::container_gpu::{DockerGpuMutator, SingularityGpuMutator};
use crate::footprint::{FootprintRegistry, MemoryHint, GALAXY_INPUT_SIZE_MIB_ENV};
use crate::orchestrator::{GyanHook, DEFAULT_GPU_MEMORY_HINT_MIB};
use crate::reservations::LeaseTable;
use crate::rules::GpuDestinationRule;
use galaxy::app::TimeSource;
use galaxy::queue::AdvanceableClock;
use galaxy::GalaxyApp;
use gpusim::{GpuCluster, VirtualClock};

/// Adapter exposing the simulator's virtual clock as Galaxy's time source
/// — and, for the queue engine's wave-barrier time charging, as an
/// advanceable clock.
pub struct ClusterTime(VirtualClock);

impl ClusterTime {
    /// Wrap a (shared) virtual clock handle.
    pub fn new(clock: VirtualClock) -> Self {
        ClusterTime(clock)
    }
}

impl TimeSource for ClusterTime {
    fn now(&self) -> f64 {
        self.0.now()
    }
}

impl AdvanceableClock for ClusterTime {
    fn now(&self) -> f64 {
        self.0.now()
    }

    fn advance_to(&self, t: f64) {
        self.0.advance_to(t);
    }
}

/// Options for [`install_gyan`].
#[derive(Debug, Clone)]
pub struct GyanConfig {
    /// Multi-GPU device allocation strategy.
    pub policy: AllocationPolicy,
    /// Destination id the dynamic rule picks for GPU jobs.
    pub gpu_destination: String,
    /// Destination id for CPU fallback.
    pub cpu_destination: String,
    /// All destination ids the hook should treat as GPU destinations.
    pub gpu_destinations: Vec<String>,
    /// Name under which the dynamic rule is registered (must match the
    /// `function` param of the dynamic destination in `job_conf.xml`).
    pub rule_name: String,
    /// Memory (MiB) a GPU job is assumed to allocate when its destination
    /// carries no `gpu_memory_hint_mib` param — the pending-load term the
    /// reservation layer feeds the Process Allocated Memory policy.
    pub gpu_memory_hint_mib: u64,
    /// Memory-hint resolution mode: [`MemoryHint::Static`] reproduces the
    /// paper's fixed-hint behaviour; [`MemoryHint::Learned`] right-sizes
    /// from the footprint registry once profiles converge.
    pub memory_hint: MemoryHint,
}

impl Default for GyanConfig {
    fn default() -> Self {
        GyanConfig {
            policy: AllocationPolicy::ProcessId,
            gpu_destination: "local_gpu".to_string(),
            cpu_destination: "local_cpu".to_string(),
            gpu_destinations: vec![
                "local_gpu".to_string(),
                "docker_gpu".to_string(),
                "singularity_gpu".to_string(),
            ],
            rule_name: "gpu_dynamic_destination".to_string(),
            gpu_memory_hint_mib: DEFAULT_GPU_MEMORY_HINT_MIB,
            memory_hint: MemoryHint::Static,
        }
    }
}

impl GyanConfig {
    /// Default configuration but routing GPU jobs to the Docker
    /// destination (the paper's containerized experiments).
    pub fn containerized() -> Self {
        GyanConfig {
            gpu_destination: "docker_gpu".to_string(),
            cpu_destination: "docker_cpu".to_string(),
            ..Self::default()
        }
    }

    /// Use the Process Allocated Memory strategy.
    pub fn with_memory_policy(mut self) -> Self {
        self.policy = AllocationPolicy::MemoryBased;
        self
    }

    /// Resolve memory hints from learned footprint profiles (default
    /// sample threshold) instead of the static destination hint.
    pub fn with_learned_hints(mut self) -> Self {
        self.memory_hint = MemoryHint::learned();
        self
    }

    /// Derive the configuration from `job_conf.xml` itself, the way a
    /// Galaxy administrator configures GYAN: the *dynamic* destination's
    /// `<param>`s may name the rule function (`function`), the GPU/CPU
    /// destinations (`gpu_destination`, `cpu_destination`), and the
    /// allocation policy (`allocation_policy` = `pid` | `memory`).
    /// Unspecified entries keep their defaults.
    pub fn from_job_conf(config: &galaxy::job::conf::JobConfig) -> Self {
        let mut out = Self::default();
        let dynamic = config.destinations.iter().find(|d| d.is_dynamic());
        let Some(dest) = dynamic else { return out };
        if let Some(f) = dest.rule_function() {
            out.rule_name = f.to_string();
        }
        if let Some(gpu) = dest.params.get("gpu_destination") {
            out.gpu_destination = gpu.to_string();
            if !out.gpu_destinations.contains(&out.gpu_destination) {
                out.gpu_destinations.push(out.gpu_destination.clone());
            }
        }
        if let Some(cpu) = dest.params.get("cpu_destination") {
            out.cpu_destination = cpu.to_string();
        }
        match dest.params.get("allocation_policy") {
            Some("memory") => out.policy = AllocationPolicy::MemoryBased,
            Some("pid") | None => {}
            Some(other) => {
                // Unknown value: keep the default (PID), as Galaxy does
                // for unrecognized destination params.
                let _ = other;
            }
        }
        if let Some(hint) = dest.params.get("gpu_memory_hint_mib").and_then(|v| v.parse().ok()) {
            out.gpu_memory_hint_mib = hint;
        }
        if dest.params.get("memory_hint_mode") == Some("learned") {
            out.memory_hint = MemoryHint::learned();
        }
        out
    }
}

/// Install GYAN into `app`: registers the dynamic destination rule, the
/// orchestration hook (routed through a fresh [`LeaseTable`]), both
/// container GPU mutators, and switches the app's time source to the
/// cluster's virtual clock.
///
/// Telemetry is wired end to end: the app's [`obs::Recorder`] is shared
/// with the rule, the hook, and the lease table (so their decision and
/// reservation audit events land in the same log as the job spans), and
/// its clock is driven by the cluster's virtual clock, making every
/// exported timestamp deterministic. The recorder's flight-recorder ring
/// is enabled (capacity [`crate::ops::DEFAULT_FLIGHT_CAPACITY`]) so the
/// operations plane can dump recent history on demand or on alert.
///
/// Returns the lease table so callers can inspect reservations, or hand
/// [`LeaseTable::discard_listener`] to a
/// [`galaxy::scheduler::HandlerPool`] / `QueueEngine` so leases of plans
/// skipped by a discard shutdown are released too.
pub fn install_gyan(app: &mut GalaxyApp, cluster: &GpuCluster, config: GyanConfig) -> LeaseTable {
    install_gyan_with_footprint(app, cluster, config).0
}

/// [`install_gyan`] also returning the [`FootprintRegistry`] the hook
/// feeds, for ops surfaces (`/api/profiles`) and benches. In
/// [`MemoryHint::Learned`] mode the registry additionally backs a
/// [`galaxy::FootprintAdvisor`] on the app, so the queue engine's
/// footprint-revised resubmission ladder can ask for a bigger budget
/// before falling back to CPU.
pub fn install_gyan_with_footprint(
    app: &mut GalaxyApp,
    cluster: &GpuCluster,
    config: GyanConfig,
) -> (LeaseTable, FootprintRegistry) {
    let recorder = app.recorder().clone();
    let recorder_clock = cluster.clock().clone();
    recorder.set_clock(move || recorder_clock.now());
    recorder.enable_flight(crate::ops::DEFAULT_FLIGHT_CAPACITY);

    let reservations = LeaseTable::new();
    let footprint = FootprintRegistry::new();
    app.register_rule(
        config.rule_name.clone(),
        GpuDestinationRule::new(cluster, &config.gpu_destination, &config.cpu_destination)
            .with_recorder(recorder.clone())
            .with_reservations(reservations.clone())
            .into_rule(),
    );
    app.add_hook(Box::new(
        GyanHook::new(cluster, config.policy, config.gpu_destinations.clone())
            .with_recorder(recorder)
            .with_reservations(reservations.clone())
            .with_default_memory_hint(config.gpu_memory_hint_mib)
            .with_footprint(footprint.clone(), config.memory_hint),
    ));
    if config.memory_hint != MemoryHint::Static {
        app.set_footprint_advisor(Box::new(footprint_advisor(footprint.clone())));
    }
    app.add_mutator(Box::new(DockerGpuMutator));
    app.add_mutator(Box::new(SingularityGpuMutator));
    app.set_time_source(Box::new(ClusterTime(cluster.clock().clone())));
    (reservations, footprint)
}

/// The revised-budget advisor the queue engine consults before a
/// footprint-revised resubmission: profile max plus headroom, at least
/// double the budget the failed attempt ran under (read back from the
/// job's `GALAXY_GPU_MEMORY_BUDGET_MIB` / override exports).
///
/// Declines (returns `None`) when the job declares an observed peak
/// that *fit* the failed attempt's budget — the failure wasn't an OOM,
/// so a bigger budget can't fix it and a footprint retry would only
/// delay the fallback ladder.
pub fn footprint_advisor(
    registry: FootprintRegistry,
) -> impl Fn(&galaxy::Job) -> Option<u64> + Send + Sync + 'static {
    move |job: &galaxy::Job| {
        let input =
            job.env_var(GALAXY_INPUT_SIZE_MIB_ENV).and_then(|v| v.parse().ok()).unwrap_or(0);
        let prev: Option<u64> = job
            .env_var(galaxy::GALAXY_GPU_BUDGET_OVERRIDE_ENV)
            .or_else(|| job.env_var(crate::footprint::GPU_MEMORY_BUDGET_ENV))
            .and_then(|v| v.parse().ok());
        let peak: Option<u64> =
            job.env_var(crate::footprint::GPU_OBSERVED_PEAK_ENV).and_then(|v| v.parse().ok());
        if let (Some(peak), Some(prev)) = (peak, prev) {
            if peak <= prev {
                return None;
            }
        }
        registry.revised_budget(&job.tool_id, input, prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
    use galaxy::params::ParamDict;
    use galaxy::tool::macros::MacroLibrary;

    const GPU_TOOL: &str = r#"<tool id="racon_gpu" name="Racon">
      <requirements><requirement type="compute">gpu</requirement></requirements>
      <command>#if $__galaxy_gpu_enabled__ == "true"
racon_gpu $input
#else
racon $input
#end if
</command>
      <inputs><param name="input" type="data" value="reads.fq"/></inputs>
      <outputs><data name="out" format="fasta"/></outputs>
    </tool>"#;

    #[test]
    fn end_to_end_gpu_mapping_through_app() {
        let cluster = GpuCluster::k80_node();
        let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
        app.install_tool_xml(GPU_TOOL, &MacroLibrary::new()).unwrap();
        install_gyan(&mut app, &cluster, GyanConfig::default());

        let id = app.submit("racon_gpu", &ParamDict::new()).unwrap();
        let job = app.job(id).unwrap();
        assert_eq!(job.destination_id.as_deref(), Some("local_gpu"));
        assert_eq!(job.env_var(crate::GALAXY_GPU_ENABLED), Some("true"));
        assert_eq!(job.env_var(crate::CUDA_VISIBLE_DEVICES), Some("0,1"));
        // The wrapper's #if took the GPU branch.
        assert_eq!(job.command_line.as_deref(), Some("racon_gpu reads.fq"));
    }

    #[test]
    fn end_to_end_cpu_fallback_without_gpus() {
        let cluster = GpuCluster::cpu_only_node();
        let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
        app.install_tool_xml(GPU_TOOL, &MacroLibrary::new()).unwrap();
        install_gyan(&mut app, &cluster, GyanConfig::default());

        let id = app.submit("racon_gpu", &ParamDict::new()).unwrap();
        let job = app.job(id).unwrap();
        assert_eq!(job.destination_id.as_deref(), Some("local_cpu"));
        assert_eq!(job.env_var(crate::GALAXY_GPU_ENABLED), Some("false"));
        assert_eq!(job.command_line.as_deref(), Some("racon reads.fq"));
    }

    #[test]
    fn virtual_clock_drives_job_timestamps() {
        let cluster = GpuCluster::k80_node();
        cluster.clock().advance(42.0);
        let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
        app.install_tool_xml(GPU_TOOL, &MacroLibrary::new()).unwrap();
        install_gyan(&mut app, &cluster, GyanConfig::default());
        let id = app.submit("racon_gpu", &ParamDict::new()).unwrap();
        assert_eq!(app.job(id).unwrap().submit_time, Some(42.0));
    }
}

#[cfg(test)]
mod from_conf_tests {
    use super::*;
    use galaxy::job::conf::JobConfig;

    #[test]
    fn config_read_from_job_conf_params() {
        let conf = JobConfig::from_xml(
            r#"<job_conf>
              <plugins><plugin id="local" type="runner" load="x"/></plugins>
              <destinations default="dyn">
                <destination id="dyn" runner="dynamic">
                  <param id="function">my_gpu_rule</param>
                  <param id="gpu_destination">cluster_gpu</param>
                  <param id="cpu_destination">cluster_cpu</param>
                  <param id="allocation_policy">memory</param>
                </destination>
                <destination id="cluster_gpu" runner="local"/>
                <destination id="cluster_cpu" runner="local"/>
              </destinations>
            </job_conf>"#,
        )
        .unwrap();
        let config = GyanConfig::from_job_conf(&conf);
        assert_eq!(config.rule_name, "my_gpu_rule");
        assert_eq!(config.gpu_destination, "cluster_gpu");
        assert_eq!(config.cpu_destination, "cluster_cpu");
        assert_eq!(config.policy, AllocationPolicy::MemoryBased);
        assert!(config.gpu_destinations.contains(&"cluster_gpu".to_string()));
    }

    #[test]
    fn missing_params_keep_defaults() {
        let conf = JobConfig::from_xml(galaxy::job::conf::GYAN_JOB_CONF).unwrap();
        let config = GyanConfig::from_job_conf(&conf);
        assert_eq!(config.rule_name, "gpu_dynamic_destination");
        assert_eq!(config.gpu_destination, "local_gpu");
        assert_eq!(config.policy, AllocationPolicy::ProcessId);
    }

    #[test]
    fn no_dynamic_destination_is_fine() {
        let conf = JobConfig::from_xml(
            r#"<job_conf>
              <plugins><plugin id="local" type="runner" load="x"/></plugins>
              <destinations default="a"><destination id="a" runner="local"/></destinations>
            </job_conf>"#,
        )
        .unwrap();
        let config = GyanConfig::from_job_conf(&conf);
        assert_eq!(config.gpu_destination, "local_gpu");
    }

    #[test]
    fn bogus_policy_value_keeps_default() {
        let conf = JobConfig::from_xml(
            r#"<job_conf>
              <plugins><plugin id="local" type="runner" load="x"/></plugins>
              <destinations default="dyn">
                <destination id="dyn" runner="dynamic">
                  <param id="allocation_policy">round_robin</param>
                </destination>
              </destinations>
            </job_conf>"#,
        )
        .unwrap();
        assert_eq!(GyanConfig::from_job_conf(&conf).policy, AllocationPolicy::ProcessId);
    }

    #[test]
    fn advisor_declines_when_the_peak_fit_the_budget() {
        use crate::footprint::{
            FootprintRegistry, GALAXY_INPUT_SIZE_MIB_ENV, GPU_MEMORY_BUDGET_ENV,
            GPU_OBSERVED_PEAK_ENV,
        };
        let registry = FootprintRegistry::new();
        let advisor = footprint_advisor(registry);

        let mut job = galaxy::Job::new(1, "racon_gpu", galaxy::params::ParamDict::new());
        job.set_env(GALAXY_INPUT_SIZE_MIB_ENV, "512");
        job.set_env(GPU_MEMORY_BUDGET_ENV, "1024");

        // An OOM (peak above the granted budget) earns a doubled budget
        // even before any profile exists.
        job.set_env(GPU_OBSERVED_PEAK_ENV, "1500");
        assert_eq!(advisor(&job), Some(2048));

        // A failure whose peak *fit* the budget wasn't memory-caused:
        // no revised budget, straight to the fallback ladder.
        job.set_env(GPU_OBSERVED_PEAK_ENV, "700");
        assert_eq!(advisor(&job), None);
    }
}
