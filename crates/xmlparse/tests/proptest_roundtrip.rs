//! Property-based tests: any DOM tree we can generate serializes to text
//! that parses back to the identical tree, and escaping round-trips.

use proptest::prelude::*;
use xmlparse::{parse, write_document, write_element, Document, Element, WriteOptions};

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_.-]{0,8}"
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Arbitrary printable text including XML-special characters; avoid
    // whitespace-only strings (the parser intentionally drops those between
    // elements) and leading/trailing whitespace (writer/parser normalize).
    "[ -~]{1,20}"
        .prop_map(|s| s.trim().to_string())
        .prop_filter("non-empty after trim", |s| !s.is_empty())
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (name_strategy(), prop::option::of(text_strategy()), attrs_strategy()).prop_map(
        |(name, text, attrs)| {
            let mut e = Element::new(name);
            for (k, v) in attrs {
                e.set_attr(k, v);
            }
            if let Some(t) = text {
                e.push(xmlparse::Node::Text(t));
            }
            e
        },
    );
    leaf.prop_recursive(3, 24, 4, |inner| {
        (name_strategy(), attrs_strategy(), prop::collection::vec(inner, 0..4)).prop_map(
            |(name, attrs, kids)| {
                let mut e = Element::new(name);
                for (k, v) in attrs {
                    e.set_attr(k, v);
                }
                for kid in kids {
                    e.push_element(kid);
                }
                e
            },
        )
    })
}

fn attrs_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec((name_strategy(), "[ -~]{0,12}"), 0..3).prop_map(|pairs| {
        // Deduplicate keys: duplicate attributes are a parse error by design.
        let mut seen = std::collections::HashSet::new();
        pairs.into_iter().filter(|(k, _)| seen.insert(k.clone())).collect()
    })
}

proptest! {
    #[test]
    fn write_then_parse_is_identity(root in element_strategy()) {
        let doc = Document::new(root);
        for opts in [WriteOptions::compact(), WriteOptions::pretty()] {
            let text = write_document(&doc, &opts);
            let reparsed = parse(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
            prop_assert_eq!(doc.root(), reparsed.root());
        }
    }

    #[test]
    fn escape_text_roundtrip(s in "[ -~]{0,40}") {
        let escaped = xmlparse::escape_text(&s);
        prop_assert_eq!(xmlparse::unescape(&escaped, 0, "").unwrap(), s);
    }

    #[test]
    fn escape_attr_roundtrip(s in "[ -~]{0,40}") {
        let escaped = xmlparse::escape_attr(&s);
        prop_assert_eq!(xmlparse::unescape(&escaped, 0, "").unwrap(), s);
    }

    #[test]
    fn parser_never_panics_on_garbage(s in "[ -~<>&\"'/=!\\[\\]]{0,120}") {
        let _ = parse(&s); // must not panic; error is fine
    }

    #[test]
    fn find_all_count_matches_descendants(root in element_strategy()) {
        // Sum of find_all over all distinct names equals descendant count.
        let mut names = std::collections::HashSet::new();
        collect_names(&root, &mut names);
        let total: usize = names.iter().map(|n| root.find_all(n).len()).sum();
        prop_assert_eq!(total, root.descendant_count());
    }
}

fn collect_names(e: &Element, out: &mut std::collections::HashSet<String>) {
    for c in e.child_elements() {
        out.insert(c.name().to_string());
        collect_names(c, out);
    }
}

#[test]
fn write_element_matches_document_root() {
    let doc = parse("<a><b>t</b></a>").unwrap();
    let via_doc = write_document(&doc, &WriteOptions::compact());
    let via_elem = write_element(doc.root(), &WriteOptions::compact());
    assert_eq!(via_doc, via_elem);
}
