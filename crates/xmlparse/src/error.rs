//! Error types for XML lexing and parsing.

use std::fmt;

/// The category of failure encountered while lexing or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended in the middle of a construct (tag, comment, CDATA, ...).
    UnexpectedEof,
    /// A character that cannot start or continue the current construct.
    UnexpectedChar(char),
    /// `</b>` closed an element opened as `<a>`.
    MismatchedTag { open: String, close: String },
    /// A close tag appeared with no matching open tag.
    UnmatchedClose(String),
    /// The document contained no root element.
    NoRootElement,
    /// Content found after the root element closed.
    TrailingContent,
    /// More than one top-level element.
    MultipleRoots,
    /// An attribute appeared twice on the same element.
    DuplicateAttribute(String),
    /// An entity reference (`&...;`) that is malformed or unknown.
    BadEntity(String),
    /// An element or attribute name that is empty or starts illegally.
    BadName(String),
    /// Element nesting exceeded the parser's depth limit.
    TooDeep(usize),
}

/// An error produced while parsing XML, with a byte offset and 1-based
/// line/column coordinates into the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in characters).
    pub column: usize,
}

impl ParseError {
    pub(crate) fn new(kind: ParseErrorKind, offset: usize, src: &str) -> Self {
        let mut line = 1usize;
        let mut column = 1usize;
        for (i, ch) in src.char_indices() {
            if i >= offset {
                break;
            }
            if ch == '\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        ParseError { kind, offset, line, column }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at line {} column {}: ", self.line, self.column)?;
        match &self.kind {
            ParseErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ParseErrorKind::MismatchedTag { open, close } => {
                write!(f, "close tag </{close}> does not match open tag <{open}>")
            }
            ParseErrorKind::UnmatchedClose(name) => {
                write!(f, "close tag </{name}> has no matching open tag")
            }
            ParseErrorKind::NoRootElement => write!(f, "document has no root element"),
            ParseErrorKind::TrailingContent => write!(f, "content after root element"),
            ParseErrorKind::MultipleRoots => write!(f, "more than one root element"),
            ParseErrorKind::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute {name:?}")
            }
            ParseErrorKind::BadEntity(e) => write!(f, "bad entity reference {e:?}"),
            ParseErrorKind::BadName(n) => write!(f, "illegal name {n:?}"),
            ParseErrorKind::TooDeep(limit) => {
                write!(f, "element nesting exceeds the depth limit of {limit}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_column_from_offset() {
        let src = "ab\ncd\nef";
        let e = ParseError::new(ParseErrorKind::UnexpectedEof, 4, src);
        assert_eq!(e.line, 2);
        assert_eq!(e.column, 2);
    }

    #[test]
    fn display_mismatched() {
        let e = ParseError::new(
            ParseErrorKind::MismatchedTag { open: "a".into(), close: "b".into() },
            0,
            "",
        );
        let s = e.to_string();
        assert!(s.contains("</b>"));
        assert!(s.contains("<a>"));
    }
}
