//! Serialize a DOM tree back to XML text.

use crate::dom::{Document, Element, Node};
use crate::escape::{escape_attr, escape_text};

/// Formatting options for the writer.
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// Indentation unit; empty string means no pretty-printing.
    pub indent: String,
    /// Emit `<empty/>` for childless elements instead of `<empty></empty>`.
    pub self_close_empty: bool,
}

impl WriteOptions {
    /// Two-space pretty printing (the Galaxy convention).
    pub fn pretty() -> Self {
        WriteOptions { indent: "  ".to_string(), self_close_empty: true }
    }

    /// No whitespace beyond what the tree contains.
    pub fn compact() -> Self {
        WriteOptions { indent: String::new(), self_close_empty: true }
    }
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions::pretty()
    }
}

/// Serialize a whole document, including its prolog.
pub fn write_document(doc: &Document, opts: &WriteOptions) -> String {
    let mut out = String::new();
    for pi in &doc.prolog {
        out.push_str("<?");
        out.push_str(pi);
        out.push_str("?>");
        if !opts.indent.is_empty() {
            out.push('\n');
        }
    }
    write_into(doc.root(), opts, 0, &mut out);
    out
}

/// Serialize a single element subtree.
pub fn write_element(element: &Element, opts: &WriteOptions) -> String {
    let mut out = String::new();
    write_into(element, opts, 0, &mut out);
    out
}

fn write_into(element: &Element, opts: &WriteOptions, depth: usize, out: &mut String) {
    let pretty = !opts.indent.is_empty();
    let pad = |out: &mut String, depth: usize| {
        for _ in 0..depth {
            out.push_str(&opts.indent);
        }
    };

    pad(out, depth);
    out.push('<');
    out.push_str(element.name());
    for (k, v) in element.attrs() {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }

    if element.children().is_empty() {
        if opts.self_close_empty {
            out.push_str("/>");
        } else {
            out.push('>');
            out.push_str("</");
            out.push_str(element.name());
            out.push('>');
        }
        if pretty {
            out.push('\n');
        }
        return;
    }

    out.push('>');

    // Elements whose children are only text/CDATA are written inline; mixed
    // or element content is written with one child per line when pretty.
    let only_text = element
        .children()
        .iter()
        .all(|n| matches!(n, Node::Text(_) | Node::CData(_) | Node::Comment(_)));

    if only_text || !pretty {
        for node in element.children() {
            write_node_inline(node, out);
        }
        out.push_str("</");
        out.push_str(element.name());
        out.push('>');
        if pretty {
            out.push('\n');
        }
        return;
    }

    out.push('\n');
    for node in element.children() {
        match node {
            Node::Element(child) => write_into(child, opts, depth + 1, out),
            other => {
                pad(out, depth + 1);
                write_node_inline(other, out);
                out.push('\n');
            }
        }
    }
    pad(out, depth);
    out.push_str("</");
    out.push_str(element.name());
    out.push('>');
    out.push('\n');
}

fn write_node_inline(node: &Node, out: &mut String) {
    match node {
        Node::Text(t) => out.push_str(&escape_text(t)),
        Node::CData(t) => {
            out.push_str("<![CDATA[");
            out.push_str(t);
            out.push_str("]]>");
        }
        Node::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        Node::Element(e) => {
            let mut nested = String::new();
            write_into(e, &WriteOptions::compact(), 0, &mut nested);
            out.push_str(&nested);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_roundtrip_preserves_structure() {
        let src = r#"<a x="1 &amp; 2"><b>hi &lt; lo</b><c/><![CDATA[raw <stuff>]]></a>"#;
        let doc = parse(src).unwrap();
        let out = write_document(&doc, &WriteOptions::compact());
        let doc2 = parse(&out).unwrap();
        assert_eq!(doc.root(), doc2.root());
    }

    #[test]
    fn pretty_output_indents_children() {
        let doc = parse("<a><b><c/></b></a>").unwrap();
        let out = write_document(&doc, &WriteOptions::pretty());
        assert!(out.contains("\n  <b>"));
        assert!(out.contains("\n    <c/>"));
    }

    #[test]
    fn text_only_element_written_inline() {
        let doc = parse("<a><b>text</b></a>").unwrap();
        let out = write_document(&doc, &WriteOptions::pretty());
        assert!(out.contains("<b>text</b>"));
    }

    #[test]
    fn prolog_reemitted() {
        let doc = parse("<?xml version=\"1.0\"?><a/>").unwrap();
        let out = write_document(&doc, &WriteOptions::compact());
        assert!(out.starts_with("<?xml version=\"1.0\"?>"));
    }

    #[test]
    fn non_self_closing_option() {
        let doc = parse("<a/>").unwrap();
        let opts = WriteOptions { indent: String::new(), self_close_empty: false };
        assert_eq!(write_document(&doc, &opts), "<a></a>");
    }
}
