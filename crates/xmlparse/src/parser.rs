//! Recursive-descent parser assembling the token stream into a [`Document`].

use crate::dom::{Document, Element, Node};
use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::{Lexer, Token};

/// Maximum element nesting depth. The post-parse passes (and many
/// consumers) walk the tree recursively; the limit keeps adversarial
/// inputs from overflowing the stack. Galaxy documents nest ~6 deep.
pub const MAX_DEPTH: usize = 256;

/// Parse a complete XML document from `src`.
///
/// Whitespace-only text between elements is dropped (Galaxy wrappers are
/// pretty-printed; the insignificant indentation would otherwise pollute the
/// tree), but text inside elements that also contain non-whitespace text is
/// kept verbatim.
pub fn parse(src: &str) -> Result<Document, ParseError> {
    let mut lexer = Lexer::new(src);
    let mut prolog = Vec::new();
    let mut root: Option<Element> = None;
    // Stack of open elements.
    let mut stack: Vec<Element> = Vec::new();

    while let Some(token) = lexer.next_token()? {
        let offset = lexer.offset();
        match token {
            Token::ProcessingInstruction(pi) => {
                if stack.is_empty() && root.is_none() {
                    prolog.push(pi);
                }
                // PIs inside the tree are ignored: nothing in Galaxy or
                // nvidia-smi output uses them.
            }
            Token::Doctype(_) => {}
            Token::Comment(c) => {
                if let Some(top) = stack.last_mut() {
                    top.push(Node::Comment(c));
                }
            }
            Token::CData(c) => match stack.last_mut() {
                Some(top) => top.push(Node::CData(c)),
                None => {
                    if !c.trim().is_empty() {
                        return Err(err_at(src, offset, top_level_kind(&root)));
                    }
                }
            },
            Token::Text(t) => match stack.last_mut() {
                Some(top) => {
                    if !t.is_empty() {
                        top.push(Node::Text(t));
                    }
                }
                None => {
                    if !t.trim().is_empty() {
                        return Err(err_at(src, offset, top_level_kind(&root)));
                    }
                }
            },
            Token::OpenTag { name, attributes, self_closing } => {
                let mut element = Element::new(name);
                for (k, v) in attributes {
                    element.set_attr(k, v);
                }
                if self_closing {
                    place(element, &mut stack, &mut root, src, offset)?;
                } else {
                    if stack.len() >= MAX_DEPTH {
                        return Err(err_at(src, offset, ParseErrorKind::TooDeep(MAX_DEPTH)));
                    }
                    stack.push(element);
                }
            }
            Token::CloseTag { name } => {
                let element = stack.pop().ok_or_else(|| {
                    err_at(src, offset, ParseErrorKind::UnmatchedClose(name.clone()))
                })?;
                if element.name() != name {
                    return Err(err_at(
                        src,
                        offset,
                        ParseErrorKind::MismatchedTag {
                            open: element.name().to_string(),
                            close: name,
                        },
                    ));
                }
                place(element, &mut stack, &mut root, src, offset)?;
            }
        }
    }

    if let Some(unclosed) = stack.last() {
        return Err(err_at(
            src,
            src.len(),
            ParseErrorKind::MismatchedTag {
                open: unclosed.name().to_string(),
                close: String::new(),
            },
        ));
    }

    match root {
        Some(root) => {
            let mut doc = Document::new(normalize(root));
            doc.prolog = prolog;
            Ok(doc)
        }
        None => Err(err_at(src, src.len(), ParseErrorKind::NoRootElement)),
    }
}

/// Attach a completed element to its parent, or install it as the root.
fn place(
    element: Element,
    stack: &mut [Element],
    root: &mut Option<Element>,
    src: &str,
    offset: usize,
) -> Result<(), ParseError> {
    match stack.last_mut() {
        Some(parent) => {
            parent.push_element(element);
            Ok(())
        }
        None => {
            if root.is_some() {
                Err(err_at(src, offset, ParseErrorKind::MultipleRoots))
            } else {
                *root = Some(element);
                Ok(())
            }
        }
    }
}

fn top_level_kind(root: &Option<Element>) -> ParseErrorKind {
    if root.is_some() {
        ParseErrorKind::TrailingContent
    } else {
        ParseErrorKind::NoRootElement
    }
}

fn err_at(src: &str, offset: usize, kind: ParseErrorKind) -> ParseError {
    ParseError::new(kind, offset, src)
}

/// Drop whitespace-only text nodes from elements that have element children
/// and no substantive text ("element content" in XML terms).
fn normalize(mut element: Element) -> Element {
    let has_elements = element.children().iter().any(|n| matches!(n, Node::Element(_)));
    let has_real_text = element
        .children()
        .iter()
        .any(|n| matches!(n, Node::Text(t) | Node::CData(t) if !t.trim().is_empty()));
    let kids = std::mem::take(element.children_mut());
    for node in kids {
        match node {
            Node::Element(child) => element.push(Node::Element(normalize(child))),
            Node::Text(t) => {
                if has_real_text || !has_elements || !t.trim().is_empty() {
                    element.push(Node::Text(t));
                }
            }
            other => element.push(other),
        }
    }
    element
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = parse(
            r#"<?xml version="1.0"?>
            <tool id="racon_gpu" name="Racon">
              <requirements>
                <requirement type="package" version="1.4.3">racon</requirement>
                <requirement type="compute">gpu</requirement>
              </requirements>
              <command><![CDATA[racon $input > $output]]></command>
            </tool>"#,
        )
        .unwrap();
        assert_eq!(doc.prolog.len(), 1);
        let reqs = doc.root().find_all("requirement");
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[1].attr("type"), Some("compute"));
        assert_eq!(reqs[1].text(), "gpu");
        assert_eq!(doc.root().find_text("command").unwrap(), "racon $input > $output");
    }

    #[test]
    fn whitespace_between_elements_dropped() {
        let doc = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(doc.root().children().len(), 2);
    }

    #[test]
    fn mixed_content_preserved() {
        let doc = parse("<a>one <b>two</b> three</a>").unwrap();
        assert_eq!(doc.root().text(), "one two three");
        assert_eq!(doc.root().children().len(), 3);
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn unclosed_root_rejected() {
        let err = parse("<a><b></b>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn unmatched_close_rejected() {
        let err = parse("</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnmatchedClose(_)));
    }

    #[test]
    fn multiple_roots_rejected() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MultipleRoots));
    }

    #[test]
    fn empty_input_rejected() {
        let err = parse("   ").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::NoRootElement));
    }

    #[test]
    fn text_outside_root_rejected() {
        assert!(parse("<a/>junk").is_err());
        assert!(parse("junk<a/>").is_err());
    }

    #[test]
    fn pathological_nesting_rejected_without_overflow() {
        let mut src = String::new();
        for _ in 0..100_000 {
            src.push_str("<a>");
        }
        let err = parse(&src).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::TooDeep(_)));
        // A document at a realistic depth still parses.
        let mut deep = String::new();
        for _ in 0..100 {
            deep.push_str("<a>");
        }
        deep.push('x');
        for _ in 0..100 {
            deep.push_str("</a>");
        }
        assert!(parse(&deep).is_ok());
    }

    #[test]
    fn doctype_ignored() {
        let doc = parse("<!DOCTYPE nvidia_smi_log SYSTEM \"nvsmi.dtd\"><log/>").unwrap();
        assert_eq!(doc.root().name(), "log");
    }
}
