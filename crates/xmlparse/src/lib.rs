//! # xmlparse
//!
//! A minimal, dependency-free XML library providing a lexer, a recursive
//! descent parser producing a DOM tree, BeautifulSoup-style query helpers
//! (`find` / `find_all`), and a writer that serializes the DOM back to text.
//!
//! This crate is one of the substrates of the GYAN reproduction: the Galaxy
//! framework stores tool wrappers and job configuration as XML, and GYAN's
//! multi-GPU allocation logic parses the XML output of `nvidia-smi -q -x`
//! (the paper uses `lxml`/`BeautifulSoup` for the same purpose).
//!
//! The supported XML subset covers everything those documents need:
//! elements, attributes (single or double quoted), text, comments, CDATA
//! sections, processing instructions / XML declarations, and the five
//! predefined entities plus decimal/hex character references.
//!
//! ```
//! use xmlparse::{parse, Element};
//!
//! let doc = parse(r#"<tool id="racon" name="Racon">
//!     <requirements>
//!         <requirement type="compute" version="0,1">gpu</requirement>
//!     </requirements>
//! </tool>"#).unwrap();
//! let root = doc.root();
//! assert_eq!(root.name(), "tool");
//! assert_eq!(root.attr("id"), Some("racon"));
//! let req = root.find("requirement").unwrap();
//! assert_eq!(req.text(), "gpu");
//! assert_eq!(req.attr("version"), Some("0,1"));
//! ```

mod dom;
mod error;
mod escape;
mod lexer;
mod parser;
mod writer;

pub use dom::{Document, Element, Node};
pub use error::{ParseError, ParseErrorKind};
pub use escape::{escape_attr, escape_text, unescape};
pub use lexer::{Lexer, Token};
pub use parser::parse;
pub use writer::{write_document, write_element, WriteOptions};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example_roundtrip() {
        let src = r#"<a x="1"><b>hi</b><!--c--></a>"#;
        let doc = parse(src).unwrap();
        let out = write_document(&doc, &WriteOptions::compact());
        let doc2 = parse(&out).unwrap();
        assert_eq!(doc.root().name(), doc2.root().name());
        assert_eq!(doc.root().find("b").unwrap().text(), "hi");
    }
}
