//! A pull-based XML lexer producing a flat stream of [`Token`]s.
//!
//! The lexer handles tag boundaries, attribute lists, text runs, comments,
//! CDATA sections, and processing instructions / XML declarations. Entity
//! resolution is done here for text and attribute values so the parser only
//! ever sees decoded strings.

use crate::error::{ParseError, ParseErrorKind};
use crate::escape::unescape;

/// A single lexical event in an XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr="v" ...>` — `self_closing` is true for `<name/>`.
    OpenTag { name: String, attributes: Vec<(String, String)>, self_closing: bool },
    /// `</name>`
    CloseTag { name: String },
    /// A run of character data with entities resolved.
    Text(String),
    /// `<!-- ... -->` (content without the delimiters).
    Comment(String),
    /// `<![CDATA[ ... ]]>` (content without the delimiters).
    CData(String),
    /// `<?target content?>` — includes the XML declaration.
    ProcessingInstruction(String),
    /// `<!DOCTYPE ...>` — content is kept verbatim and otherwise ignored.
    Doctype(String),
}

/// Streaming tokenizer over an XML source string.
pub struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    /// Current byte offset into the source.
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn err(&self, kind: ParseErrorKind, at: usize) -> ParseError {
        ParseError::new(kind, at, self.src)
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.peek()?;
        self.pos += ch.len_utf8();
        Some(ch)
    }

    fn eat(&mut self, prefix: &str) -> bool {
        if self.rest().starts_with(prefix) {
            self.pos += prefix.len();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    /// Produce the next token, or `None` at end of input.
    pub fn next_token(&mut self) -> Result<Option<Token>, ParseError> {
        if self.pos >= self.src.len() {
            return Ok(None);
        }
        if self.rest().starts_with('<') {
            self.lex_markup().map(Some)
        } else {
            self.lex_text().map(Some)
        }
    }

    fn lex_text(&mut self) -> Result<Token, ParseError> {
        let start = self.pos;
        let end = self.rest().find('<').map(|p| self.pos + p).unwrap_or(self.src.len());
        let raw = &self.src[start..end];
        self.pos = end;
        let text = unescape(raw, start, self.src)?;
        Ok(Token::Text(text))
    }

    fn lex_markup(&mut self) -> Result<Token, ParseError> {
        let start = self.pos;
        let consumed = self.eat("<");
        debug_assert!(consumed);
        if self.eat("!--") {
            return self.lex_comment(start);
        }
        if self.eat("![CDATA[") {
            return self.lex_cdata(start);
        }
        if self.eat("!DOCTYPE") || self.eat("!doctype") {
            return self.lex_doctype(start);
        }
        if self.eat("?") {
            return self.lex_pi(start);
        }
        if self.eat("/") {
            let name = self.lex_name(start)?;
            self.skip_ws();
            if !self.eat(">") {
                return Err(self.err(
                    match self.peek() {
                        Some(c) => ParseErrorKind::UnexpectedChar(c),
                        None => ParseErrorKind::UnexpectedEof,
                    },
                    self.pos,
                ));
            }
            return Ok(Token::CloseTag { name });
        }
        // Open tag.
        let name = self.lex_name(start)?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.err(ParseErrorKind::UnexpectedEof, self.pos)),
                Some('>') => {
                    self.bump();
                    return Ok(Token::OpenTag { name, attributes, self_closing: false });
                }
                Some('/') => {
                    self.bump();
                    if !self.eat(">") {
                        return Err(self.err(ParseErrorKind::UnexpectedChar('/'), self.pos - 1));
                    }
                    return Ok(Token::OpenTag { name, attributes, self_closing: true });
                }
                Some(_) => {
                    let (k, v) = self.lex_attribute()?;
                    if attributes.iter().any(|(ek, _)| ek == &k) {
                        return Err(self.err(ParseErrorKind::DuplicateAttribute(k), self.pos));
                    }
                    attributes.push((k, v));
                }
            }
        }
    }

    fn lex_name(&mut self, err_at: usize) -> Result<String, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        let name = &self.src[start..self.pos];
        if name.is_empty() || name.starts_with(|c: char| c.is_ascii_digit() || c == '-' || c == '.')
        {
            return Err(self.err(ParseErrorKind::BadName(name.to_string()), err_at));
        }
        Ok(name.to_string())
    }

    fn lex_attribute(&mut self) -> Result<(String, String), ParseError> {
        let key = self.lex_name(self.pos)?;
        self.skip_ws();
        if !self.eat("=") {
            // Attribute without a value, e.g. HTML-style boolean — not valid
            // XML, reject with a helpful position.
            return Err(self.err(
                match self.peek() {
                    Some(c) => ParseErrorKind::UnexpectedChar(c),
                    None => ParseErrorKind::UnexpectedEof,
                },
                self.pos,
            ));
        }
        self.skip_ws();
        let quote = match self.bump() {
            Some(q @ ('"' | '\'')) => q,
            Some(c) => return Err(self.err(ParseErrorKind::UnexpectedChar(c), self.pos - 1)),
            None => return Err(self.err(ParseErrorKind::UnexpectedEof, self.pos)),
        };
        let vstart = self.pos;
        let vend = self
            .rest()
            .find(quote)
            .map(|p| self.pos + p)
            .ok_or_else(|| self.err(ParseErrorKind::UnexpectedEof, self.src.len()))?;
        let raw = &self.src[vstart..vend];
        self.pos = vend + 1;
        let value = unescape(raw, vstart, self.src)?;
        Ok((key, value))
    }

    fn lex_comment(&mut self, start: usize) -> Result<Token, ParseError> {
        let end = self
            .rest()
            .find("-->")
            .map(|p| self.pos + p)
            .ok_or_else(|| self.err(ParseErrorKind::UnexpectedEof, start))?;
        let content = self.src[self.pos..end].to_string();
        self.pos = end + 3;
        Ok(Token::Comment(content))
    }

    fn lex_cdata(&mut self, start: usize) -> Result<Token, ParseError> {
        let end = self
            .rest()
            .find("]]>")
            .map(|p| self.pos + p)
            .ok_or_else(|| self.err(ParseErrorKind::UnexpectedEof, start))?;
        let content = self.src[self.pos..end].to_string();
        self.pos = end + 3;
        Ok(Token::CData(content))
    }

    fn lex_doctype(&mut self, start: usize) -> Result<Token, ParseError> {
        // Doctype may contain a bracketed internal subset; track nesting of
        // '[' ']' before the closing '>'.
        let mut depth = 0usize;
        let content_start = self.pos;
        loop {
            match self.bump() {
                None => return Err(self.err(ParseErrorKind::UnexpectedEof, start)),
                Some('[') => depth += 1,
                Some(']') => depth = depth.saturating_sub(1),
                Some('>') if depth == 0 => {
                    let content = self.src[content_start..self.pos - 1].trim().to_string();
                    return Ok(Token::Doctype(content));
                }
                Some(_) => {}
            }
        }
    }

    fn lex_pi(&mut self, start: usize) -> Result<Token, ParseError> {
        let end = self
            .rest()
            .find("?>")
            .map(|p| self.pos + p)
            .ok_or_else(|| self.err(ParseErrorKind::UnexpectedEof, start))?;
        let content = self.src[self.pos..end].to_string();
        self.pos = end + 2;
        Ok(Token::ProcessingInstruction(content))
    }
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_tokens(src: &str) -> Vec<Token> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        while let Some(t) = lx.next_token().unwrap() {
            out.push(t);
        }
        out
    }

    #[test]
    fn open_close_and_text() {
        let toks = all_tokens("<a>hi</a>");
        assert_eq!(
            toks,
            vec![
                Token::OpenTag { name: "a".into(), attributes: vec![], self_closing: false },
                Token::Text("hi".into()),
                Token::CloseTag { name: "a".into() },
            ]
        );
    }

    #[test]
    fn self_closing_with_attrs() {
        let toks = all_tokens(r#"<param name="threads" value='4'/>"#);
        assert_eq!(
            toks,
            vec![Token::OpenTag {
                name: "param".into(),
                attributes: vec![("name".into(), "threads".into()), ("value".into(), "4".into())],
                self_closing: true,
            }]
        );
    }

    #[test]
    fn comment_cdata_pi_doctype() {
        let toks = all_tokens(
            "<?xml version=\"1.0\"?><!DOCTYPE nvidia_smi_log><!--note--><r><![CDATA[a<b]]></r>",
        );
        assert!(matches!(&toks[0], Token::ProcessingInstruction(p) if p.contains("version")));
        assert!(matches!(&toks[1], Token::Doctype(d) if d == "nvidia_smi_log"));
        assert_eq!(toks[2], Token::Comment("note".into()));
        assert_eq!(toks[4], Token::CData("a<b".into()));
    }

    #[test]
    fn entity_in_text_and_attr() {
        let toks = all_tokens(r#"<a v="x &amp; y">1 &lt; 2</a>"#);
        match &toks[0] {
            Token::OpenTag { attributes, .. } => {
                assert_eq!(attributes[0].1, "x & y");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(toks[1], Token::Text("1 < 2".into()));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut lx = Lexer::new(r#"<a x="1" x="2"/>"#);
        assert!(matches!(lx.next_token().unwrap_err().kind, ParseErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn unterminated_comment_is_eof() {
        let mut lx = Lexer::new("<!-- never ends");
        assert!(matches!(lx.next_token().unwrap_err().kind, ParseErrorKind::UnexpectedEof));
    }

    #[test]
    fn bad_name_rejected() {
        let mut lx = Lexer::new("<1bad/>");
        assert!(matches!(lx.next_token().unwrap_err().kind, ParseErrorKind::BadName(_)));
    }
}
