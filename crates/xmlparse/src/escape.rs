//! Entity escaping and unescaping for XML text and attribute values.

use crate::error::{ParseError, ParseErrorKind};

/// Escape a string for use as XML element text (`&`, `<`, `>`).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a string for use as a double-quoted XML attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

/// Resolve the five predefined entities and decimal/hex character
/// references in `s`. `offset` is the byte position of `s` in the original
/// document, used only for error coordinates.
pub fn unescape(s: &str, offset: usize, src: &str) -> Result<String, ParseError> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Advance over one UTF-8 character.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&s[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        let semi = s[i..].find(';').map(|p| i + p);
        let semi = match semi {
            Some(p) if p - i <= 10 => p,
            _ => {
                return Err(ParseError::new(
                    ParseErrorKind::BadEntity(truncate(&s[i..], 12)),
                    offset + i,
                    src,
                ))
            }
        };
        let ent = &s[i + 1..semi];
        match ent {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let code = u32::from_str_radix(&ent[2..], 16).ok();
                push_code(&mut out, code, ent, offset + i, src)?;
            }
            _ if ent.starts_with('#') => {
                let code = ent[1..].parse::<u32>().ok();
                push_code(&mut out, code, ent, offset + i, src)?;
            }
            _ => {
                return Err(ParseError::new(
                    ParseErrorKind::BadEntity(ent.to_string()),
                    offset + i,
                    src,
                ))
            }
        }
        i = semi + 1;
    }
    Ok(out)
}

fn push_code(
    out: &mut String,
    code: Option<u32>,
    ent: &str,
    offset: usize,
    src: &str,
) -> Result<(), ParseError> {
    match code.and_then(char::from_u32) {
        Some(c) => {
            out.push(c);
            Ok(())
        }
        None => Err(ParseError::new(ParseErrorKind::BadEntity(ent.to_string()), offset, src)),
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn truncate(s: &str, n: usize) -> String {
    s.chars().take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_then_unescape_text() {
        let orig = "a < b && c > \"d\"";
        let escaped = escape_text(orig);
        assert_eq!(unescape(&escaped, 0, "").unwrap(), orig);
    }

    #[test]
    fn escape_attr_quotes() {
        assert_eq!(escape_attr("a\"b'c"), "a&quot;b&apos;c");
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("&#65;&#x42;", 0, "").unwrap(), "AB");
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(unescape("héllo&amp;é", 0, "").unwrap(), "héllo&é");
    }

    #[test]
    fn bad_entity_rejected() {
        assert!(unescape("&bogus;", 0, "&bogus;").is_err());
        assert!(unescape("&noending", 0, "&noending").is_err());
        assert!(unescape("&#x110000;", 0, "").is_err());
    }
}
