//! The DOM tree: [`Document`], [`Element`] and [`Node`], plus
//! BeautifulSoup-style query helpers (`find`, `find_all`).

/// A parsed XML document: an optional XML declaration/PIs plus one root
/// element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Processing instructions (including the XML declaration) that appeared
    /// before the root element, verbatim.
    pub prolog: Vec<String>,
    root: Element,
}

impl Document {
    /// Build a document from a root element.
    pub fn new(root: Element) -> Self {
        Document { prolog: Vec::new(), root }
    }

    /// The root element.
    pub fn root(&self) -> &Element {
        &self.root
    }

    /// Mutable access to the root element.
    pub fn root_mut(&mut self) -> &mut Element {
        &mut self.root
    }

    /// Consume the document, returning the root element.
    pub fn into_root(self) -> Element {
        self.root
    }

    /// Find the first descendant element (including the root itself) with
    /// the given tag name, depth-first.
    pub fn find(&self, name: &str) -> Option<&Element> {
        if self.root.name() == name {
            Some(&self.root)
        } else {
            self.root.find(name)
        }
    }
}

/// A child of an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data (entities already resolved).
    Text(String),
    /// A comment (without the `<!--` / `-->` delimiters).
    Comment(String),
    /// A CDATA section, kept distinct so writers can re-emit it verbatim.
    CData(String),
}

impl Node {
    /// The contained element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// The textual content of a `Text` or `CData` node.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) | Node::CData(t) => Some(t),
            _ => None,
        }
    }
}

/// An XML element: a tag name, ordered attributes, and ordered children.
///
/// Attribute order is preserved because Galaxy tool wrappers and
/// `nvidia-smi` output are written and compared textually.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    name: String,
    attributes: Vec<(String, String)>,
    children: Vec<Node>,
}

impl Element {
    /// Create an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element { name: name.into(), attributes: Vec::new(), children: Vec::new() }
    }

    /// Builder-style: add an attribute.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(key, value);
        self
    }

    /// Builder-style: add a text child.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Builder-style: add a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Tag name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the element.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Attribute value by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attributes.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Set (or replace) an attribute.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.attributes.push((key, value));
        }
    }

    /// Remove an attribute, returning its previous value.
    pub fn remove_attr(&mut self, key: &str) -> Option<String> {
        let idx = self.attributes.iter().position(|(k, _)| k == key)?;
        Some(self.attributes.remove(idx).1)
    }

    /// All attributes in document order.
    pub fn attrs(&self) -> &[(String, String)] {
        &self.attributes
    }

    /// All child nodes in document order.
    pub fn children(&self) -> &[Node] {
        &self.children
    }

    /// Mutable child nodes.
    pub fn children_mut(&mut self) -> &mut Vec<Node> {
        &mut self.children
    }

    /// Append a child node.
    pub fn push(&mut self, node: Node) {
        self.children.push(node);
    }

    /// Append a child element.
    pub fn push_element(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Iterator over direct child elements.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Direct child elements with a given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// First direct child element with the given tag name (non-recursive).
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// First *descendant* element with the given tag name (depth-first,
    /// excluding `self`). Mirrors BeautifulSoup's `find`.
    pub fn find(&self, name: &str) -> Option<&Element> {
        for child in self.child_elements() {
            if child.name == name {
                return Some(child);
            }
            if let Some(found) = child.find(name) {
                return Some(found);
            }
        }
        None
    }

    /// All descendant elements with the given tag name in document order
    /// (excluding `self`). Mirrors BeautifulSoup's `find_all`.
    pub fn find_all<'a>(&'a self, name: &str) -> Vec<&'a Element> {
        let mut out = Vec::new();
        self.collect_named(name, &mut out);
        out
    }

    fn collect_named<'a>(&'a self, name: &str, out: &mut Vec<&'a Element>) {
        for child in self.child_elements() {
            if child.name == name {
                out.push(child);
            }
            child.collect_named(name, out);
        }
    }

    /// Concatenated text of all descendant text/CDATA nodes, trimmed.
    pub fn text(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out.trim().to_string()
    }

    fn collect_text(&self, out: &mut String) {
        for node in &self.children {
            match node {
                Node::Text(t) | Node::CData(t) => out.push_str(t),
                Node::Element(e) => e.collect_text(out),
                Node::Comment(_) => {}
            }
        }
    }

    /// Convenience: the trimmed text of the first descendant with `name`.
    pub fn find_text(&self, name: &str) -> Option<String> {
        self.find(name).map(|e| e.text())
    }

    /// Number of descendant elements (excluding `self`).
    pub fn descendant_count(&self) -> usize {
        self.child_elements().map(|c| 1 + c.descendant_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("gpu")
            .with_attr("id", "0")
            .with_child(Element::new("minor_number").with_text("0"))
            .with_child(
                Element::new("processes")
                    .with_child(
                        Element::new("process_info")
                            .with_child(Element::new("pid").with_text("39953")),
                    )
                    .with_child(
                        Element::new("process_info")
                            .with_child(Element::new("pid").with_text("41105")),
                    ),
            )
    }

    #[test]
    fn find_is_depth_first() {
        let e = sample();
        assert_eq!(e.find("pid").unwrap().text(), "39953");
    }

    #[test]
    fn find_all_collects_in_order() {
        let e = sample();
        let pids: Vec<String> = e.find_all("pid").iter().map(|p| p.text()).collect();
        assert_eq!(pids, vec!["39953", "41105"]);
    }

    #[test]
    fn child_is_non_recursive() {
        let e = sample();
        assert!(e.child("pid").is_none());
        assert!(e.child("processes").is_some());
    }

    #[test]
    fn attr_set_replace_remove() {
        let mut e = Element::new("a");
        e.set_attr("k", "1");
        e.set_attr("k", "2");
        assert_eq!(e.attr("k"), Some("2"));
        assert_eq!(e.attrs().len(), 1);
        assert_eq!(e.remove_attr("k"), Some("2".into()));
        assert_eq!(e.attr("k"), None);
    }

    #[test]
    fn text_concatenates_and_trims() {
        let e = Element::new("a")
            .with_text("  hello ")
            .with_child(Element::new("b").with_text("world"))
            .with_text("  ");
        assert_eq!(e.text(), "hello world");
    }

    #[test]
    fn descendant_count() {
        assert_eq!(sample().descendant_count(), 6);
    }
}
