//! Named dataset descriptors with paper-scale work factors.
//!
//! The paper's experiments run on multi-GB downloads we cannot ship:
//! the 17 GB Alzheimer IsoSeq NFL dataset (Racon), and the 1.5 GB
//! Acinetobacter_pittii / 5.2 GB Klebsiella_pneumoniae_KSB2 raw fast5 sets
//! (Bonito). Each descriptor pairs a laptop-scale synthetic instance with
//! a `work_scale` factor: the tools compute real results on the synthetic
//! instance and multiply their work accounting by `work_scale` so
//! virtual-time runtimes land at paper scale.

use serde::{Deserialize, Serialize};

/// Which tool a dataset feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// PacBio reads + draft assembly (Racon input).
    PacbioIsoseq,
    /// Nanopore raw signal (Bonito input).
    NanoporeFast5,
}

/// A named dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name as the paper cites it.
    pub name: &'static str,
    /// What the data is.
    pub kind: DatasetKind,
    /// Size of the real dataset in bytes (as reported by the paper).
    pub paper_bytes: f64,
    /// Synthetic reference genome length for the laptop-scale instance.
    pub genome_len: usize,
    /// Number of synthetic reads.
    pub n_reads: usize,
    /// Mean synthetic read length.
    pub read_len: usize,
    /// RNG seed for generation.
    pub seed: u64,
}

impl DatasetSpec {
    /// The 17 GB Alzheimer IsoSeq NFL dataset used for all Racon
    /// experiments (paper §VI-A).
    pub const fn alzheimers_nfl() -> Self {
        DatasetSpec {
            name: "Alzheimers_NFL_IsoSeq",
            kind: DatasetKind::PacbioIsoseq,
            paper_bytes: 17e9,
            genome_len: 30_000,
            n_reads: 240,
            read_len: 2_000,
            seed: 0x5eed_a15e,
        }
    }

    /// The 1.5 GB Acinetobacter_pittii fast5 dataset (Bonito, Fig. 5).
    pub const fn acinetobacter_pittii() -> Self {
        DatasetSpec {
            name: "Acinetobacter_pittii",
            kind: DatasetKind::NanoporeFast5,
            paper_bytes: 1.5e9,
            genome_len: 12_000,
            n_reads: 24,
            read_len: 1_500,
            seed: 0xacbb_0001,
        }
    }

    /// The 5.2 GB Klebsiella_pneumoniae_KSB2 fast5 dataset (Bonito,
    /// Fig. 5).
    pub const fn klebsiella_ksb2() -> Self {
        DatasetSpec {
            name: "Klebsiella_pneumoniae_KSB2",
            kind: DatasetKind::NanoporeFast5,
            paper_bytes: 5.2e9,
            genome_len: 12_000,
            n_reads: 83, // ≈ 5.2/1.5 × the Acinetobacter read count
            read_len: 1_500,
            seed: 0x6b5b_0002,
        }
    }

    /// Approximate bytes of the laptop-scale synthetic instance.
    pub fn synthetic_bytes(&self) -> f64 {
        match self.kind {
            DatasetKind::PacbioIsoseq => (self.n_reads * self.read_len) as f64 * 2.0,
            // Raw signal: ~10 samples/base × 4 bytes (f32) plus overhead.
            DatasetKind::NanoporeFast5 => (self.n_reads * self.read_len) as f64 * 10.0 * 4.0 * 1.4,
        }
    }

    /// Factor by which to scale work accounting to reach paper scale.
    pub fn work_scale(&self) -> f64 {
        self.paper_bytes / self.synthetic_bytes()
    }

    /// All paper datasets.
    pub fn all() -> Vec<DatasetSpec> {
        vec![Self::alzheimers_nfl(), Self::acinetobacter_pittii(), Self::klebsiella_ksb2()]
    }

    /// Look up a dataset by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<DatasetSpec> {
        Self::all().into_iter().find(|d| d.name.eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_scales_are_large_and_ordered() {
        let alz = DatasetSpec::alzheimers_nfl();
        let aci = DatasetSpec::acinetobacter_pittii();
        let kleb = DatasetSpec::klebsiella_ksb2();
        assert!(alz.work_scale() > 1_000.0);
        // Klebsiella is ~3.5× Acinetobacter in paper bytes and carries
        // proportionally more reads, so per-read scale is comparable.
        let ratio = kleb.paper_bytes / aci.paper_bytes;
        assert!((ratio - 3.466).abs() < 0.01);
        let per_read_aci = aci.work_scale();
        let per_read_kleb = kleb.work_scale();
        assert!(
            (per_read_kleb / per_read_aci - 1.0).abs() < 0.05,
            "{per_read_kleb} vs {per_read_aci}"
        );
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(
            DatasetSpec::by_name("alzheimers_nfl_isoseq").unwrap().name,
            "Alzheimers_NFL_IsoSeq"
        );
        assert!(DatasetSpec::by_name("nope").is_none());
    }

    #[test]
    fn all_have_distinct_seeds_and_names() {
        let all = DatasetSpec::all();
        let mut names: Vec<&str> = all.iter().map(|d| d.name).collect();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
