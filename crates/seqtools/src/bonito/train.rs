//! `bonito train` — model fine-tuning.
//!
//! The paper lists training among Bonito's functionalities and notes it
//! "has automatic mixed-precision support for accelerating the training
//! tool". This module implements a faithful, small-scale version: the
//! convolutional feature stack is frozen and the 5-class head layer is
//! fine-tuned by real stochastic gradient descent on framewise
//! cross-entropy against (uniformly stretched) target sequences — the
//! standard frame-labeling surrogate for CTC. Loss genuinely decreases;
//! the AMP flag switches the *cost model* between FP32 and FP16 GEMM
//! kernels (tensor cores where the architecture has them).

use crate::bonito::commands::TrainingChunk;
use crate::bonito::costs;
use crate::bonito::model::BonitoModel;
use crate::nn::{Matrix, BASES, BLANK};
use gpusim::kernel::Precision;
use gpusim::{CudaContext, GpuCluster, KernelSpec, TransferSpec};

/// DRAM bytes per FLOP of the batched training GEMMs. Training batches
/// are large, so the GEMMs sit compute-bound (~50 FLOP/byte) — which is
/// exactly why tensor cores (and not just halved traffic) are what makes
/// AMP pay off.
const TRAIN_GEMM_BYTES_PER_FLOP: f64 = 0.02;

/// Training options.
#[derive(Debug, Clone, Copy)]
pub struct TrainOpts {
    /// Gradient descent step size.
    pub learning_rate: f32,
    /// Passes over the chunk set.
    pub epochs: usize,
    /// Use automatic mixed precision for the modeled GPU time.
    pub amp: bool,
}

impl Default for TrainOpts {
    fn default() -> Self {
        TrainOpts { learning_rate: 0.05, epochs: 4, amp: false }
    }
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean framewise cross-entropy per epoch.
    pub epoch_losses: Vec<f64>,
    /// Virtual seconds spent (GPU path only; 0 for pure-CPU training).
    pub gpu_seconds: f64,
    /// Real FLOPs executed for the head updates.
    pub flops: f64,
}

/// Class index (blank + ACGT) for a base character.
fn class_of(base: u8) -> usize {
    match base {
        b'A' => 1,
        b'C' => 2,
        b'G' => 3,
        b'T' => 4,
        _ => BLANK,
    }
}

/// Frame-level targets: stretch the target sequence uniformly over the
/// model's output timesteps.
fn frame_targets(target: &str, t_out: usize) -> Vec<usize> {
    let bytes = target.as_bytes();
    (0..t_out)
        .map(
            |t| {
                if bytes.is_empty() {
                    BLANK
                } else {
                    class_of(bytes[t * bytes.len() / t_out.max(1)])
                }
            },
        )
        .collect()
}

fn softmax_column(logits: &Matrix, col: usize) -> [f64; 5] {
    let mut vals = [0f64; 5];
    let mut max = f64::NEG_INFINITY;
    for (c, slot) in vals.iter_mut().enumerate() {
        *slot = logits.get(c, col) as f64;
        max = max.max(*slot);
    }
    let mut sum = 0.0;
    for v in vals.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in vals.iter_mut() {
        *v /= sum;
    }
    vals
}

/// Fine-tune `model`'s head on `chunks`. Returns per-epoch loss; when
/// `ctx` is given, charges the training GEMMs (forward + backward) to the
/// device at FP32 or, with `opts.amp`, FP16.
pub fn train_head(
    model: &mut BonitoModel,
    chunks: &[TrainingChunk],
    opts: &TrainOpts,
    mut gpu: Option<(&GpuCluster, &mut CudaContext)>,
) -> TrainReport {
    assert!(!chunks.is_empty(), "no training chunks");
    let mut epoch_losses = Vec::with_capacity(opts.epochs);
    let mut flops = 0.0;
    let gpu_t0 = gpu.as_ref().map(|(cluster, _)| cluster.clock().now());

    for _epoch in 0..opts.epochs {
        let mut loss_sum = 0.0;
        let mut frames = 0usize;
        for chunk in chunks {
            // Frozen feature stack: everything up to the head.
            let features = model.features(&chunk.signal);
            let t_out = features.cols();
            if t_out == 0 {
                continue;
            }
            let targets = frame_targets(&chunk.target, t_out);
            let logits = model.head_forward(&features);

            // Gradient of cross-entropy wrt head weights:
            // dW = (softmax − onehot) · featuresᵀ / T.
            let c_in = features.rows();
            let mut grad_w = Matrix::zeros(5, c_in);
            let mut grad_b = vec![0f32; 5];
            for t in 0..t_out {
                let probs = softmax_column(&logits, t);
                loss_sum += -probs[targets[t]].max(1e-12).ln();
                frames += 1;
                for c in 0..5 {
                    let delta =
                        (probs[c] - if c == targets[t] { 1.0 } else { 0.0 }) as f32 / t_out as f32;
                    grad_b[c] += delta;
                    for k in 0..c_in {
                        let g = grad_w.get(c, k) + delta * features.get(k, t);
                        grad_w.set(c, k, g);
                    }
                }
            }
            model.head_apply_gradient(&grad_w, &grad_b, opts.learning_rate);

            // Work accounting: forward + backward ≈ 3× the forward GEMMs.
            let step_flops = 3.0 * model.flops(chunk.signal.len());
            flops += step_flops;
            if let Some((_cluster, ctx)) = gpu.as_mut() {
                let precision = if opts.amp { Precision::Fp16 } else { Precision::Fp32 };
                ctx.memcpy_async(TransferSpec::h2d(chunk.signal.len() as f64 * 4.0).pinned())
                    .expect("transfer");
                ctx.launch(&KernelSpec {
                    name: if opts.amp {
                        "volta_fp16_gemm_train".into()
                    } else {
                        "sgemm_train".into()
                    },
                    grid_blocks: 2048,
                    block_threads: costs::GEMM_BLOCK_THREADS,
                    flops: step_flops * costs::MODEL_SCALE,
                    dram_bytes: step_flops * costs::MODEL_SCALE * TRAIN_GEMM_BYTES_PER_FLOP,
                    precision,
                })
                .expect("launch");
            }
        }
        if let Some((_, ctx)) = gpu.as_mut() {
            ctx.synchronize().expect("sync");
        }
        epoch_losses.push(if frames == 0 { 0.0 } else { loss_sum / frames as f64 });
    }

    let gpu_seconds = match (&gpu, gpu_t0) {
        (Some((cluster, _)), Some(t0)) => cluster.clock().now() - t0,
        _ => 0.0,
    };
    let _ = BASES; // (documents the class order used by `class_of`)
    TrainReport { epoch_losses, gpu_seconds, flops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bonito::commands::convert_training_data;
    use crate::sim::genome::random_genome;
    use crate::sim::squiggle::{simulate_squiggle, PoreModel};
    use gpusim::GpuArch;

    fn training_set() -> Vec<TrainingChunk> {
        let genome = random_genome(1_200, 7);
        let pore = PoreModel::default();
        let signals: Vec<Vec<f32>> =
            (0..3).map(|i| simulate_squiggle(&genome, &pore, 100 + i)).collect();
        let targets = vec![genome.clone(), genome.clone(), genome];
        convert_training_data(&signals, &targets, 500, 10)
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let mut model = BonitoModel::tiny(3);
        let chunks = training_set();
        let report = train_head(
            &mut model,
            &chunks,
            &TrainOpts { learning_rate: 0.1, epochs: 5, amp: false },
            None,
        );
        assert_eq!(report.epoch_losses.len(), 5);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < first * 0.98, "loss must decrease: {first:.4} -> {last:.4}");
        assert!(report.flops > 0.0);
    }

    #[test]
    fn training_is_deterministic() {
        let chunks = training_set();
        let run = || {
            let mut model = BonitoModel::tiny(3);
            train_head(&mut model, &chunks, &TrainOpts::default(), None).epoch_losses
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn amp_speeds_up_training_on_tensor_core_parts() {
        let chunks = training_set();
        let time_with = |arch: GpuArch, amp: bool| -> f64 {
            let cluster = GpuCluster::node(arch, 1);
            let mut ctx = CudaContext::new(&cluster, None, 1, "bonito_train").unwrap();
            let mut model = BonitoModel::tiny(3);
            let report = train_head(
                &mut model,
                &chunks,
                &TrainOpts { epochs: 1, amp, ..TrainOpts::default() },
                Some((&cluster, &mut ctx)),
            );
            ctx.destroy();
            report.gpu_seconds
        };
        // V100: AMP uses tensor cores → big win.
        let v100_fp32 = time_with(GpuArch::tesla_v100(), false);
        let v100_amp = time_with(GpuArch::tesla_v100(), true);
        assert!(v100_amp < v100_fp32 * 0.55, "{v100_amp} vs {v100_fp32}");
        // K80: no tensor cores and compute-bound GEMMs → AMP is a wash
        // (the paper's evaluation device cannot exploit it).
        let k80_fp32 = time_with(GpuArch::tesla_k80(), false);
        let k80_amp = time_with(GpuArch::tesla_k80(), true);
        assert!(k80_amp <= k80_fp32);
        assert!(k80_amp > k80_fp32 * 0.9, "{k80_amp} vs {k80_fp32}");
    }

    #[test]
    fn frame_targets_stretch_uniformly() {
        let targets = frame_targets("ACGT", 8);
        assert_eq!(targets, vec![1, 1, 2, 2, 3, 3, 4, 4]);
        assert_eq!(frame_targets("", 3), vec![BLANK; 3]);
    }

    #[test]
    #[should_panic(expected = "no training chunks")]
    fn empty_chunk_set_rejected() {
        let mut model = BonitoModel::tiny(1);
        train_head(&mut model, &[], &TrainOpts::default(), None);
    }
}
