//! The `bonito basecaller` pipeline: chunk → network → CTC → FASTA.

use crate::bonito::costs;
use crate::bonito::model::BonitoModel;
use crate::datasets::DatasetSpec;
use crate::fasta::{write_fasta, FastaRecord};
use crate::nn::ctc_greedy_decode;
use crate::sim::genome::random_genome;
use crate::sim::reads::{sample_reads, ErrorModel};
use crate::sim::squiggle::{simulate_squiggle, PoreModel};
use gpusim::{CudaContext, GpuCluster, HostSpec, KernelSpec, TransferSpec, VirtualClock};
use rayon::prelude::*;

/// Basecaller options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BonitoOpts {
    /// Samples per network chunk.
    pub chunk: usize,
    /// Chunks per GPU batch.
    pub batch: usize,
    /// CPU threads (CPU path).
    pub threads: u32,
}

impl Default for BonitoOpts {
    fn default() -> Self {
        BonitoOpts { chunk: 2_000, batch: 32, threads: 48 }
    }
}

/// A prepared basecalling problem: one raw signal per read.
#[derive(Debug, Clone)]
pub struct BonitoInput {
    /// Raw signals (simulated fast5 contents).
    pub signals: Vec<Vec<f32>>,
    /// Virtual-work multiplier to paper scale.
    pub work_scale: f64,
    /// True sequences the signals were simulated from.
    pub truth: Vec<String>,
}

impl BonitoInput {
    /// Generate the laptop-scale instance of a fast5 dataset.
    pub fn from_dataset(spec: &DatasetSpec) -> Self {
        let genome = random_genome(spec.genome_len, spec.seed);
        let reads = sample_reads(
            &genome,
            spec.n_reads,
            spec.read_len,
            &ErrorModel::perfect(),
            spec.seed ^ 0xf457,
        );
        let pore = PoreModel::default();
        let signals: Vec<Vec<f32>> = reads
            .iter()
            .enumerate()
            .map(|(i, r)| simulate_squiggle(&r.seq, &pore, spec.seed ^ (i as u64)))
            .collect();
        let truth = reads.into_iter().map(|r| r.seq).collect();
        // Scale from the actual simulated signal bytes.
        let synthetic: f64 = signals.iter().map(|s| s.len() as f64 * 4.0).sum();
        let work_scale = spec.paper_bytes / synthetic;
        BonitoInput { signals, work_scale, truth }
    }

    /// Total raw samples.
    pub fn total_samples(&self) -> usize {
        self.signals.iter().map(Vec::len).sum()
    }

    /// Bytes of the laptop-scale signal data.
    pub fn synthetic_bytes(&self) -> f64 {
        self.total_samples() as f64 * 4.0
    }
}

/// Result of one basecalling run.
#[derive(Debug, Clone)]
pub struct BonitoReport {
    /// FASTA output of the basecalled reads.
    pub fasta: String,
    /// The individual basecalls.
    pub calls: Vec<String>,
    /// Virtual seconds total.
    pub total_s: f64,
    /// Of which network inference.
    pub nn_s: f64,
    /// Of which I/O + decode.
    pub io_s: f64,
    /// Real FLOPs executed (unscaled).
    pub flops: f64,
    /// Total bases emitted.
    pub bases: usize,
}

/// Split a signal into fixed-size chunks (last chunk may be short).
fn chunk_signal(signal: &[f32], chunk: usize) -> Vec<&[f32]> {
    signal.chunks(chunk.max(1)).filter(|c| c.len() >= 16).collect()
}

/// Run the real network over every chunk and decode. Returns
/// (per-read basecalls, real flops).
fn infer_all(input: &BonitoInput, model: &BonitoModel, opts: &BonitoOpts) -> (Vec<String>, f64) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(opts.threads.max(1) as usize)
        .build()
        .expect("rayon pool");
    let calls: Vec<(String, f64)> = pool.install(|| {
        input
            .signals
            .par_iter()
            .map(|signal| {
                let mut seq = String::new();
                let mut flops = 0.0;
                for chunk in chunk_signal(signal, opts.chunk) {
                    let logits = model.forward(chunk);
                    seq.push_str(&ctc_greedy_decode(&logits));
                    flops += model.flops(chunk.len());
                }
                (seq, flops)
            })
            .collect()
    });
    let flops: f64 = calls.iter().map(|(_, f)| f).sum();
    (calls.into_iter().map(|(s, _)| s).collect(), flops)
}

fn to_fasta(calls: &[String]) -> String {
    let records: Vec<FastaRecord> = calls
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .map(|(i, s)| FastaRecord::new(format!("basecall_{i}"), s.clone()))
        .collect();
    write_fasta(&records, 80)
}

/// CPU path (`bonito basecaller --device cpu`).
pub fn basecall_cpu(
    input: &BonitoInput,
    model: &BonitoModel,
    opts: &BonitoOpts,
    host: &HostSpec,
    clock: &VirtualClock,
) -> BonitoReport {
    let (calls, flops) = infer_all(input, model, opts);
    let scaled_flops = flops * input.work_scale * costs::MODEL_SCALE * costs::CPU_OVERHEAD;
    let nn_s = host.time_for(scaled_flops, costs::CPU_PARALLEL_FRAC, opts.threads);
    let io_s = host.stream_time(input.synthetic_bytes() * input.work_scale);
    clock.advance(nn_s + io_s);
    let bases = calls.iter().map(String::len).sum();
    BonitoReport { fasta: to_fasta(&calls), calls, total_s: nn_s + io_s, nn_s, io_s, flops, bases }
}

/// GPU path (`bonito basecaller --device cuda`): the same real compute,
/// with inference time modeled as batched GEMM kernels on the device.
pub fn basecall_gpu(
    input: &BonitoInput,
    model: &BonitoModel,
    opts: &BonitoOpts,
    cluster: &GpuCluster,
    ctx: &mut CudaContext,
) -> Result<BonitoReport, gpusim::GpuError> {
    // Model weights + activation workspace, allocated at startup: the
    // process is resident on the device throughout the run.
    let t_alloc = cluster.clock().now();
    ctx.malloc(512 << 20)?;
    let alloc_s = cluster.clock().now() - t_alloc;

    let (calls, flops) = infer_all(input, model, opts);
    let host = cluster.host();

    // I/O and CTC decode remain host-side.
    let io_s = host.stream_time(input.synthetic_bytes() * input.work_scale);
    cluster.clock().advance(io_s);

    let t0 = cluster.clock().now() - alloc_s;

    // Chunks are grouped into batches; each batch is one H2D copy plus a
    // GEMM kernel per layer (what NVProf shows as the GEMM hotspots).
    let total_chunks: usize = input.signals.iter().map(|s| chunk_signal(s, opts.chunk).len()).sum();
    let batches = total_chunks.div_ceil(opts.batch.max(1)).max(1);
    let scale = input.work_scale * costs::MODEL_SCALE;
    let flops_per_batch = flops * scale / batches as f64;
    let bytes_per_batch = input.synthetic_bytes() * input.work_scale / batches as f64;
    let shapes = model.gemm_shapes(opts.chunk);
    let layer_flops_total: f64 = model.flops(opts.chunk);
    for _ in 0..batches {
        ctx.memcpy(TransferSpec::h2d(bytes_per_batch).pinned())?;
        for (li, &(m, k, n)) in shapes.iter().enumerate() {
            let frac = crate::nn::Matrix::matmul_flops(m, k, n) / layer_flops_total.max(1.0);
            let kf = flops_per_batch * frac;
            // Production-scale GEMMs tile the whole device; the grid is
            // sized for the paper-scale model, not the surrogate.
            ctx.launch(&KernelSpec::fp32(
                format!("sgemm_{m}x{k}"),
                4096,
                costs::GEMM_BLOCK_THREADS,
                kf,
                kf * costs::GEMM_BYTES_PER_FLOP,
            ))?;
            let _ = li;
        }
        ctx.synchronize()?;
        ctx.memcpy(TransferSpec::d2h(bytes_per_batch * 0.02).pinned())?;
    }
    ctx.free(512 << 20)?;
    let nn_s = cluster.clock().now() - t0;

    let bases = calls.iter().map(String::len).sum();
    Ok(BonitoReport {
        fasta: to_fasta(&calls),
        calls,
        total_s: io_s + nn_s,
        nn_s,
        io_s,
        flops,
        bases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_input() -> BonitoInput {
        let spec = DatasetSpec {
            name: "tiny-fast5",
            genome_len: 2_000,
            n_reads: 3,
            read_len: 400,
            ..DatasetSpec::acinetobacter_pittii()
        };
        BonitoInput::from_dataset(&spec)
    }

    fn tiny_opts() -> BonitoOpts {
        BonitoOpts { chunk: 500, batch: 4, threads: 4 }
    }

    #[test]
    fn basecalls_are_deterministic_and_plausible() {
        let input = tiny_input();
        let model = BonitoModel::tiny(3);
        let a = basecall_cpu(
            &input,
            &model,
            &tiny_opts(),
            &HostSpec::xeon_e5_2670(),
            &VirtualClock::new(),
        );
        let b = basecall_cpu(
            &input,
            &model,
            &tiny_opts(),
            &HostSpec::xeon_e5_2670(),
            &VirtualClock::new(),
        );
        assert_eq!(a.fasta, b.fasta);
        assert!(a.flops > 0.0);
        // Output length should be within an order of magnitude of the
        // input bases (untrained network, but CTC output scales with
        // timesteps).
        assert!(a.bases > 0, "no bases called");
        let in_bases: usize = input.truth.iter().map(String::len).sum();
        assert!(a.bases < in_bases * 4, "{} vs {in_bases}", a.bases);
    }

    #[test]
    fn gpu_and_cpu_calls_match() {
        let input = tiny_input();
        let model = BonitoModel::tiny(3);
        let cpu = basecall_cpu(
            &input,
            &model,
            &tiny_opts(),
            &HostSpec::xeon_e5_2670(),
            &VirtualClock::new(),
        );
        let cluster = GpuCluster::k80_node();
        let mut ctx = CudaContext::new(&cluster, None, 9, "bonito").unwrap();
        let gpu = basecall_gpu(&input, &model, &tiny_opts(), &cluster, &mut ctx).unwrap();
        ctx.destroy();
        assert_eq!(cpu.calls, gpu.calls);
    }

    #[test]
    fn gpu_is_dramatically_faster() {
        let input = tiny_input();
        let model = BonitoModel::tiny(3);
        let cpu = basecall_cpu(
            &input,
            &model,
            &tiny_opts(),
            &HostSpec::xeon_e5_2670(),
            &VirtualClock::new(),
        );
        let cluster = GpuCluster::k80_node();
        let mut ctx = CudaContext::new(&cluster, None, 9, "bonito").unwrap();
        let gpu = basecall_gpu(&input, &model, &tiny_opts(), &cluster, &mut ctx).unwrap();
        ctx.destroy();
        let speedup = cpu.nn_s / gpu.nn_s;
        assert!(speedup > 20.0, "nn speedup only {speedup:.1}×");
    }

    #[test]
    fn gpu_profiler_shows_gemm_hotspots() {
        let input = tiny_input();
        let model = BonitoModel::tiny(3);
        let cluster = GpuCluster::k80_node();
        let mut ctx = CudaContext::new(&cluster, None, 9, "bonito").unwrap();
        basecall_gpu(&input, &model, &tiny_opts(), &cluster, &mut ctx).unwrap();
        let prof = ctx.destroy();
        let gpu_report = prof.gpu_report();
        assert!(
            gpu_report.iter().any(|(name, _)| name.starts_with("sgemm_")),
            "no GEMM kernels in {gpu_report:?}"
        );
        assert!(prof.api_entry("cudaLaunchKernel").is_some());
        assert!(prof.api_entry("cudaStreamSynchronize").is_some());
    }

    #[test]
    fn fasta_output_parses() {
        let input = tiny_input();
        let model = BonitoModel::tiny(3);
        let report = basecall_cpu(
            &input,
            &model,
            &tiny_opts(),
            &HostSpec::xeon_e5_2670(),
            &VirtualClock::new(),
        );
        let records = crate::fasta::parse_fasta(&report.fasta).unwrap();
        assert_eq!(records.len(), report.calls.iter().filter(|c| !c.is_empty()).count());
    }

    #[test]
    fn chunking_drops_only_tiny_tails() {
        let signal = vec![0.0f32; 1050];
        let chunks = chunk_signal(&signal, 500);
        assert_eq!(chunks.len(), 3); // 500 + 500 + 50
        let tiny = vec![0.0f32; 10];
        assert!(chunk_signal(&tiny, 500).is_empty());
    }
}
