//! The basecalling network definition.

use crate::nn::{Activation, Conv1d, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A stack of 1-D convolutions followed by a linear 5-class (blank + ACGT)
/// head. The head is kept separate so `bonito train` can fine-tune it
/// while the feature stack stays frozen.
#[derive(Debug, Clone)]
pub struct BonitoModel {
    convs: Vec<Conv1d>,
    /// Head weights, `(5) × (c_features)`.
    head_w: Matrix,
    /// Head bias, one per class.
    head_b: Vec<f32>,
}

fn head_init(c_in: usize, seed: u64) -> (Matrix, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let scale = (2.0 / c_in as f32).sqrt();
    let w = Matrix::from_fn(5, c_in, |_, _| rng.gen_range(-scale..scale));
    let b = (0..5).map(|_| rng.gen_range(-0.05..0.05)).collect();
    (w, b)
}

impl BonitoModel {
    /// The default model: 1→16 (k5 s1), 16→32 (k5 s2), 32→64 (k5 s2)
    /// convolutions plus a 64→5 head. Weights are deterministic for a
    /// seed.
    ///
    /// The paper only measures runtime (the authors use a downloaded
    /// pre-trained model); weights here are random-but-fixed, which
    /// exercises the identical compute path.
    pub fn pretrained(seed: u64) -> Self {
        let convs = vec![
            Conv1d::new_seeded(1, 16, 5, 1, Activation::Swish, seed ^ 0x01),
            Conv1d::new_seeded(16, 32, 5, 2, Activation::Swish, seed ^ 0x02),
            Conv1d::new_seeded(32, 64, 5, 2, Activation::Swish, seed ^ 0x03),
        ];
        let (head_w, head_b) = head_init(64, seed ^ 0x04);
        BonitoModel { convs, head_w, head_b }
    }

    /// A tiny model for fast tests.
    pub fn tiny(seed: u64) -> Self {
        let convs = vec![
            Conv1d::new_seeded(1, 4, 5, 2, Activation::Swish, seed ^ 0x11),
            Conv1d::new_seeded(4, 6, 3, 2, Activation::Swish, seed ^ 0x12),
        ];
        let (head_w, head_b) = head_init(6, seed ^ 0x13);
        BonitoModel { convs, head_w, head_b }
    }

    /// The convolutional feature stack.
    pub fn layers(&self) -> &[Conv1d] {
        &self.convs
    }

    /// Total downsampling factor (signal samples per output timestep).
    pub fn downsample(&self) -> usize {
        self.convs.iter().map(|l| l.stride).product()
    }

    /// Channel count the head consumes.
    pub fn feature_channels(&self) -> usize {
        self.head_w.cols()
    }

    /// FLOPs for a forward pass over `t` input samples (convs + head).
    pub fn flops(&self, t: usize) -> f64 {
        let mut total = 0.0;
        let mut len = t;
        for layer in &self.convs {
            total += layer.flops(len);
            len = layer.out_len(len);
        }
        total + Matrix::matmul_flops(5, self.head_w.cols(), len)
    }

    /// Run the frozen feature stack: raw signal → `(c_features) × t_out`.
    pub fn features(&self, signal: &[f32]) -> Matrix {
        let mut x = Matrix::from_vec(1, signal.len(), signal.to_vec());
        for layer in &self.convs {
            x = layer.forward(&x);
        }
        x
    }

    /// Apply the head: features → `(5) × t_out` logits.
    pub fn head_forward(&self, features: &Matrix) -> Matrix {
        let mut logits = self.head_w.matmul(features);
        logits.add_row_bias(&self.head_b);
        logits
    }

    /// One SGD step on the head: `W -= lr · dW`, `b -= lr · db`.
    pub fn head_apply_gradient(&mut self, grad_w: &Matrix, grad_b: &[f32], lr: f32) {
        assert_eq!(grad_w.rows(), 5);
        assert_eq!(grad_w.cols(), self.head_w.cols(), "gradient shape mismatch");
        assert_eq!(grad_b.len(), 5);
        let cols = self.head_w.cols();
        for (r, &gb) in grad_b.iter().enumerate() {
            for c in 0..cols {
                let w = self.head_w.get(r, c) - lr * grad_w.get(r, c);
                self.head_w.set(r, c, w);
            }
            self.head_b[r] -= lr * gb;
        }
    }

    /// Forward pass: raw signal chunk → `(5) × t_out` logits.
    pub fn forward(&self, signal: &[f32]) -> Matrix {
        self.head_forward(&self.features(signal))
    }

    /// Per-layer GEMM shapes `(m, k, n)` for a chunk of `t` samples —
    /// what the GPU path launches as kernels (convs then head).
    pub fn gemm_shapes(&self, t: usize) -> Vec<(usize, usize, usize)> {
        let mut shapes = Vec::with_capacity(self.convs.len() + 1);
        let mut len = t;
        for layer in &self.convs {
            let out = layer.out_len(len);
            shapes.push((layer.c_out, layer.c_in * layer.kernel, out));
            len = out;
        }
        shapes.push((5, self.head_w.cols(), len));
        shapes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let m = BonitoModel::pretrained(7);
        let signal = vec![0.1f32; 400];
        let logits = m.forward(&signal);
        assert_eq!(logits.rows(), 5);
        assert_eq!(logits.cols(), 100); // two stride-2 layers
        assert_eq!(m.downsample(), 4);
        assert_eq!(m.feature_channels(), 64);
    }

    #[test]
    fn deterministic_forward() {
        let a = BonitoModel::pretrained(9).forward(&[0.5; 64]);
        let b = BonitoModel::pretrained(9).forward(&[0.5; 64]);
        assert_eq!(a, b);
    }

    #[test]
    fn flops_positive_and_scaling() {
        let m = BonitoModel::pretrained(1);
        let f1 = m.flops(1_000);
        let f2 = m.flops(2_000);
        assert!(f1 > 0.0);
        let ratio = f2 / f1;
        assert!(ratio > 1.9 && ratio < 2.1, "{ratio}");
    }

    #[test]
    fn gemm_shapes_cover_convs_and_head() {
        let m = BonitoModel::pretrained(1);
        let shapes = m.gemm_shapes(1_000);
        assert_eq!(shapes.len(), m.layers().len() + 1);
        assert_eq!(shapes[0], (16, 5, 1_000));
        assert_eq!(shapes[1], (32, 80, 500));
        assert_eq!(*shapes.last().unwrap(), (5, 64, 250));
        let flops_from_shapes: f64 =
            shapes.iter().map(|&(a, b, c)| Matrix::matmul_flops(a, b, c)).sum();
        assert!((flops_from_shapes - m.flops(1_000)).abs() < 1.0);
    }

    #[test]
    fn tiny_model_is_small() {
        let tiny = BonitoModel::tiny(1);
        let full = BonitoModel::pretrained(1);
        assert!(tiny.flops(1_000) < full.flops(1_000) / 10.0);
    }

    #[test]
    fn head_gradient_step_changes_output() {
        let mut m = BonitoModel::tiny(5);
        let before = m.forward(&[0.2; 100]);
        let grad = Matrix::from_fn(5, m.feature_channels(), |_, _| 1.0);
        m.head_apply_gradient(&grad, &[1.0; 5], 0.1);
        let after = m.forward(&[0.2; 100]);
        assert_ne!(before, after);
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn gradient_shape_checked() {
        let mut m = BonitoModel::tiny(5);
        let grad = Matrix::zeros(5, 3);
        m.head_apply_gradient(&grad, &[0.0; 5], 0.1);
    }
}
