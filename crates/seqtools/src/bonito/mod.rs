//! A Bonito-style basecaller.
//!
//! Bonito (Oxford Nanopore's PyTorch basecaller, "inspired by the usage of
//! convolutional neural networks in speech recognition") converts raw pore
//! current into nucleotide sequence. This module reproduces its
//! `bonito basecaller` pipeline: chunk the signal, run a stack of 1-D
//! convolutions, CTC-decode, and emit FASTA. The CPU path runs real
//! rayon-parallel GEMMs; the GPU path issues the equivalent GEMM kernels
//! to the simulated device (the paper's Fig. 6 hotspots: kernel launcher,
//! kernel sync, and "GEneral Matrix to Matrix Multiplication (GEMM)
//! functions").

pub mod basecall;
pub mod commands;
pub mod model;
pub mod train;

pub use basecall::{basecall_cpu, basecall_gpu, BonitoInput, BonitoOpts, BonitoReport};
pub use commands::{convert_training_data, download_model, evaluate, Evaluation};
pub use model::BonitoModel;
pub use train::{train_head, TrainOpts, TrainReport};

/// Cost-model constants for the Bonito reproduction, calibrated against
/// the paper's Fig. 5 (CPU >210 h on the 1.5 GB Acinetobacter dataset,
/// >50× GPU speedup).
pub mod costs {
    /// Ratio of the real Bonito network's per-sample FLOPs to our
    /// surrogate's. Production Bonito (QuartzNet-style CTC model) runs
    /// ~4 orders of magnitude more arithmetic per sample than the small
    /// stack we execute for real; the cost model scales accordingly.
    pub const MODEL_SCALE: f64 = 15_000.0;

    /// Parallel fraction PyTorch CPU inference achieves across the host's
    /// 48 logical CPUs (intra-op parallelism is far from perfect).
    pub const CPU_PARALLEL_FRAC: f64 = 0.85;

    /// Framework overhead multiplier for CPU inference (dispatch,
    /// memory traffic, Python glue).
    pub const CPU_OVERHEAD: f64 = 1.0;

    /// Threads per block of the GEMM kernels.
    pub const GEMM_BLOCK_THREADS: u32 = 256;

    /// DRAM bytes per FLOP for the GEMM kernels (well-blocked GEMM is
    /// compute-bound; this keeps intensity ~8 FLOP/byte).
    pub const GEMM_BYTES_PER_FLOP: f64 = 0.125;
}
