//! The remaining `bonito` subcommands the paper lists (§V-A): model
//! download, training-data conversion, and model evaluation.
//!
//! "It has several functionalities, like training a bonito model (bonito
//! train), converting an hdf5 training file into a bonito format (bonito
//! convert), evaluating a model performance (bonito evaluate),
//! downloading pre-trained models and training datasets (bonito
//! download), and basecaller ..."

use crate::align::identity;
use crate::bonito::basecall::{BonitoInput, BonitoOpts};
use crate::bonito::model::BonitoModel;
use crate::nn::ctc_greedy_decode;

/// The pre-trained models the `bonito download` registry serves.
pub const AVAILABLE_MODELS: [&str; 3] = ["dna_r9.4.1", "dna_r9.4.1@v2", "dna_r10.3"];

/// `bonito download --models`: resolve a model name to a deterministic
/// weight seed (stands in for fetching the weight archive).
pub fn download_model(name: &str) -> Option<BonitoModel> {
    let idx = AVAILABLE_MODELS.iter().position(|m| *m == name)?;
    Some(BonitoModel::pretrained(0xb0_17_00 + idx as u64))
}

/// One chunk of training data in "bonito format": a signal window and
/// its target sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingChunk {
    /// Raw signal samples.
    pub signal: Vec<f32>,
    /// Target nucleotide sequence.
    pub target: String,
}

/// `bonito convert`: slice an (hdf5-like) set of reads — raw signal plus
/// ground-truth sequence — into fixed-length training chunks, dropping
/// chunks whose signal or target is degenerate.
pub fn convert_training_data(
    signals: &[Vec<f32>],
    targets: &[String],
    chunk_samples: usize,
    samples_per_base: usize,
) -> Vec<TrainingChunk> {
    assert_eq!(signals.len(), targets.len(), "one target per signal");
    assert!(chunk_samples > 0 && samples_per_base > 0);
    let mut chunks = Vec::new();
    for (signal, target) in signals.iter().zip(targets) {
        let bases_per_chunk = chunk_samples / samples_per_base;
        for (i, window) in signal.chunks(chunk_samples).enumerate() {
            if window.len() < chunk_samples {
                continue; // drop ragged tail
            }
            let t_lo = (i * bases_per_chunk).min(target.len());
            let t_hi = ((i + 1) * bases_per_chunk).min(target.len());
            if t_hi <= t_lo {
                continue;
            }
            chunks.push(TrainingChunk {
                signal: window.to_vec(),
                target: target[t_lo..t_hi].to_string(),
            });
        }
    }
    chunks
}

/// `bonito evaluate` output: per-read and aggregate accuracy of a model
/// against ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Per-read identity of basecall vs truth.
    pub per_read_identity: Vec<f64>,
    /// Mean identity.
    pub mean_identity: f64,
    /// Total bases called.
    pub bases_called: usize,
    /// Total true bases.
    pub bases_true: usize,
}

/// `bonito evaluate`: basecall the input with `model` and score each read
/// against its known true sequence.
pub fn evaluate(input: &BonitoInput, model: &BonitoModel, opts: &BonitoOpts) -> Evaluation {
    let mut per_read_identity = Vec::with_capacity(input.signals.len());
    let mut bases_called = 0;
    let mut bases_true = 0;
    for (signal, truth) in input.signals.iter().zip(&input.truth) {
        let mut call = String::new();
        for chunk in signal.chunks(opts.chunk.max(1)).filter(|c| c.len() >= 16) {
            let logits = model.forward(chunk);
            call.push_str(&ctc_greedy_decode(&logits));
        }
        bases_called += call.len();
        bases_true += truth.len();
        per_read_identity.push(identity(&call, truth));
    }
    let mean_identity = if per_read_identity.is_empty() {
        0.0
    } else {
        per_read_identity.iter().sum::<f64>() / per_read_identity.len() as f64
    };
    Evaluation { per_read_identity, mean_identity, bases_called, bases_true }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;

    #[test]
    fn download_known_models() {
        for name in AVAILABLE_MODELS {
            assert!(download_model(name).is_some(), "{name}");
        }
        assert!(download_model("dna_r999").is_none());
        // Deterministic weights: two downloads agree.
        let a = download_model("dna_r9.4.1").unwrap().forward(&[0.1; 64]);
        let b = download_model("dna_r9.4.1").unwrap().forward(&[0.1; 64]);
        assert_eq!(a, b);
        // Different models differ.
        let c = download_model("dna_r10.3").unwrap().forward(&[0.1; 64]);
        assert_ne!(a, c);
    }

    #[test]
    fn convert_chunks_align_signal_and_target() {
        let signals = vec![vec![0.0f32; 1000], vec![0.0f32; 250]];
        let targets = vec!["A".repeat(100), "C".repeat(25)];
        let chunks = convert_training_data(&signals, &targets, 250, 10);
        // Read 1: four full chunks; read 2: one.
        assert_eq!(chunks.len(), 5);
        for c in &chunks {
            assert_eq!(c.signal.len(), 250);
            assert_eq!(c.target.len(), 25);
        }
    }

    #[test]
    fn convert_drops_ragged_tails() {
        let signals = vec![vec![0.0f32; 990]];
        let targets = vec!["A".repeat(99)];
        let chunks = convert_training_data(&signals, &targets, 250, 10);
        assert_eq!(chunks.len(), 3); // 990 / 250 = 3 full windows
    }

    #[test]
    #[should_panic(expected = "one target per signal")]
    fn convert_validates_lengths() {
        convert_training_data(&[vec![0.0; 10]], &[], 10, 1);
    }

    #[test]
    fn evaluate_reports_shapes() {
        let spec = DatasetSpec {
            name: "eval_tiny",
            genome_len: 1_200,
            n_reads: 3,
            read_len: 250,
            ..DatasetSpec::acinetobacter_pittii()
        };
        let input = BonitoInput::from_dataset(&spec);
        let model = BonitoModel::tiny(5);
        let eval = evaluate(&input, &model, &BonitoOpts { chunk: 400, batch: 4, threads: 2 });
        assert_eq!(eval.per_read_identity.len(), 3);
        assert!(eval.bases_true > 0);
        assert!(eval.mean_identity >= 0.0 && eval.mean_identity <= 1.0);
        // The untrained surrogate model is not accurate — the paper only
        // measures runtime — but evaluation must be deterministic.
        let again = evaluate(&input, &model, &BonitoOpts { chunk: 400, batch: 4, threads: 2 });
        assert_eq!(eval, again);
    }
}
