//! # seqtools
//!
//! The bioinformatics tools the GYAN paper evaluates, rebuilt as real
//! algorithms with two execution paths each:
//!
//! * **Racon** ([`racon`]) — consensus polishing: minimizer-based read
//!   mapping ([`mapper`]), windowing, partial-order-alignment graphs
//!   ([`poa`]), and heaviest-path consensus. The CPU path parallelizes
//!   windows with rayon; the GPU path batches windows through the
//!   simulated CUDA runtime (`generatePOAKernel` /
//!   `generateConsensusKernel`, the ClaraGenomics kernels the paper's
//!   Fig. 4 profiles).
//! * **Bonito** ([`bonito`]) — basecalling: a 1-D convolutional network
//!   ([`nn`]) over simulated nanopore squiggles ([`sim::squiggle`]) with
//!   greedy CTC decoding. The CPU path uses blocked, rayon-parallel GEMM;
//!   the GPU path issues GEMM kernels to the simulator (Fig. 6's
//!   hotspots).
//!
//! Supporting substrates: FASTA/FASTQ I/O ([`fasta`], [`fastq`]),
//! synthetic genomes and error-modelled long reads ([`sim`]), banded edit
//! distance for identity evaluation ([`align`]), named dataset descriptors
//! with paper-scale work factors ([`datasets`]), and a
//! [`galaxy::runners::JobExecutor`] implementation ([`executor`]) that
//! lets these tools run as Galaxy jobs end-to-end.
//!
//! ## Timing model
//!
//! Every tool *actually computes* its result (consensus sequences,
//! basecalls) on real data at laptop scale. Reported runtimes are
//! **virtual seconds**: work counts (DP cells, FLOPs, bytes) are fed
//! through `gpusim`'s host/kernel/transfer cost models, scaled by the
//! dataset descriptor's `work_scale` so paper-scale numbers can be
//! regenerated deterministically.

pub mod align;
pub mod bonito;
pub mod datasets;
pub mod executor;
pub mod fasta;
pub mod fastq;
pub mod mapper;
pub mod nn;
pub mod paf;
pub mod poa;
pub mod racon;
pub mod sim;

pub use datasets::DatasetSpec;
pub use executor::ToolExecutor;
