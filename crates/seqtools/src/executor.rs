//! A [`JobExecutor`] that runs the simulated tools for Galaxy jobs.
//!
//! The executor is the "process spawn" end of the pipeline: it receives
//! the fully assembled [`ExecutionPlan`] (command line, environment,
//! container wrapping), interprets the executable name, and runs the
//! corresponding tool simulation — honouring `CUDA_VISIBLE_DEVICES`
//! exactly as a real CUDA process would, charging container overhead, and
//! registering a process on the simulated GPUs so concurrent `nvidia-smi`
//! queries observe it.
//!
//! **Linger mode** keeps each GPU job's process resident on its devices
//! after the job returns, emulating long-running concurrent jobs; the
//! paper's multi-GPU Cases 1–4 snapshot `nvidia-smi` while several tools
//! occupy the GPUs simultaneously.

use crate::bonito::{basecall_cpu, basecall_gpu, BonitoInput, BonitoModel, BonitoOpts};
use crate::datasets::DatasetSpec;
use crate::racon::{polish_cpu, polish_gpu, RaconInput, RaconOpts};
use galaxy::runners::{ExecutionPlan, ExecutionResult, JobExecutor};
use gpusim::{CudaContext, GpuCluster, GpuProcess, Profiler, Trace};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Device memory (MiB) a lingering Racon process holds (paper Fig. 11
/// shows 60 MiB per racon_gpu process).
const RACON_LINGER_MIB: u64 = 60;
/// Device memory (MiB) a lingering Bonito process holds (Fig. 10 shows a
/// busy device at 2734 MiB ≈ 63 driver + 2671 process).
const BONITO_LINGER_MIB: u64 = 2671;

/// One lingering process record.
#[derive(Debug, Clone)]
pub struct LingeringProcess {
    /// Host pid.
    pub pid: u32,
    /// Devices the process occupies.
    pub minors: Vec<u32>,
    /// Process name.
    pub name: String,
}

/// The tool execution backend.
pub struct ToolExecutor {
    cluster: GpuCluster,
    linger: bool,
    lingering: Arc<Mutex<Vec<LingeringProcess>>>,
    datasets: Mutex<HashMap<String, DatasetSpec>>,
    racon_cache: Mutex<HashMap<String, Arc<RaconInput>>>,
    bonito_cache: Mutex<HashMap<String, Arc<BonitoInput>>>,
    profilers: Mutex<Vec<(u64, Profiler)>>,
    traces: Mutex<Vec<(u64, Trace)>>,
}

impl ToolExecutor {
    /// Create an executor over `cluster`.
    pub fn new(cluster: &GpuCluster) -> Self {
        let mut datasets = HashMap::new();
        for spec in DatasetSpec::all() {
            datasets.insert(spec.name.to_ascii_lowercase(), spec);
        }
        ToolExecutor {
            cluster: cluster.clone(),
            linger: false,
            lingering: Arc::new(Mutex::new(Vec::new())),
            datasets: Mutex::new(datasets),
            racon_cache: Mutex::new(HashMap::new()),
            bonito_cache: Mutex::new(HashMap::new()),
            profilers: Mutex::new(Vec::new()),
            traces: Mutex::new(Vec::new()),
        }
    }

    /// Keep GPU processes resident after jobs finish (multi-GPU cases).
    pub fn with_linger(mut self) -> Self {
        self.linger = true;
        self
    }

    /// Register (or override) a dataset, addressable from command lines.
    pub fn register_dataset(&self, spec: DatasetSpec) {
        self.datasets.lock().insert(spec.name.to_ascii_lowercase(), spec);
    }

    /// Processes currently lingering on GPUs.
    pub fn lingering(&self) -> Vec<LingeringProcess> {
        self.lingering.lock().clone()
    }

    /// Release one lingering process (the job's owner killed it).
    pub fn release(&self, pid: u32) {
        let mut lingering = self.lingering.lock();
        if let Some(idx) = lingering.iter().position(|p| p.pid == pid) {
            let proc = lingering.remove(idx);
            for minor in proc.minors {
                let _ = self.cluster.detach_process(minor, proc.pid);
            }
        }
    }

    /// Release every lingering process.
    pub fn release_all(&self) {
        let pids: Vec<u32> = self.lingering.lock().iter().map(|p| p.pid).collect();
        for pid in pids {
            self.release(pid);
        }
    }

    /// NVProf-style profiler for a finished job, when it used the GPU.
    pub fn profiler_for_job(&self, job_id: u64) -> Option<Profiler> {
        self.profilers.lock().iter().find(|(id, _)| *id == job_id).map(|(_, p)| p.clone())
    }

    /// Chrome-format execution timeline for a finished GPU job.
    pub fn trace_for_job(&self, job_id: u64) -> Option<Trace> {
        self.traces.lock().iter().find(|(id, _)| *id == job_id).map(|(_, t)| t.clone())
    }

    fn dataset_from_command(&self, tokens: &[&str], default: &str) -> DatasetSpec {
        let datasets = self.datasets.lock();
        for token in tokens {
            let key = token.to_ascii_lowercase();
            if let Some(spec) = datasets.get(&key) {
                return spec.clone();
            }
        }
        datasets
            .get(&default.to_ascii_lowercase())
            .cloned()
            .unwrap_or_else(DatasetSpec::alzheimers_nfl)
    }

    fn racon_input(&self, spec: &DatasetSpec) -> Arc<RaconInput> {
        let mut cache = self.racon_cache.lock();
        cache
            .entry(spec.name.to_string())
            .or_insert_with(|| Arc::new(RaconInput::from_dataset(spec)))
            .clone()
    }

    fn bonito_input(&self, spec: &DatasetSpec) -> Arc<BonitoInput> {
        let mut cache = self.bonito_cache.lock();
        cache
            .entry(spec.name.to_string())
            .or_insert_with(|| Arc::new(BonitoInput::from_dataset(spec)))
            .clone()
    }

    fn flag_value<T: std::str::FromStr>(tokens: &[&str], flag: &str) -> Option<T> {
        tokens
            .iter()
            .position(|t| *t == flag)
            .and_then(|i| tokens.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    fn run_racon(&self, plan: &ExecutionPlan, tokens: &[&str], gpu: bool) -> ExecutionResult {
        let opts = RaconOpts {
            threads: Self::flag_value(tokens, "-t").unwrap_or(4),
            batches: Self::flag_value(tokens, "--cudapoa-batches").unwrap_or(1),
            banded: tokens.contains(&"--cudapoa-banded"),
            window_len: Self::flag_value(tokens, "-w").unwrap_or(500),
        };
        let spec = self.dataset_from_command(tokens, DatasetSpec::alzheimers_nfl().name);
        let input = self.racon_input(&spec);
        let pid = self.cluster.spawn_pid();

        if gpu {
            let mask = plan.env_var("CUDA_VISIBLE_DEVICES");
            let mut ctx = match CudaContext::new(&self.cluster, mask, pid, "/usr/bin/racon_gpu") {
                Ok(ctx) => ctx,
                Err(e) => return ExecutionResult::fail(2, e.to_string()),
            };
            match polish_gpu(&input, &opts, &self.cluster, &mut ctx) {
                Ok(report) => {
                    let minors = ctx.visible_minors().to_vec();
                    self.traces.lock().push((plan.job_id, ctx.trace.clone()));
                    let profiler = ctx.destroy();
                    self.profilers.lock().push((plan.job_id, profiler));
                    self.maybe_linger(pid, &minors, "/usr/bin/racon_gpu", RACON_LINGER_MIB);
                    ExecutionResult::ok(consensus_fasta(&report.consensus)).with_pid(pid)
                }
                Err(e) => {
                    ctx.destroy();
                    ExecutionResult::fail(1, e.to_string())
                }
            }
        } else {
            let report = polish_cpu(&input, &opts, self.cluster.host(), self.cluster.clock());
            ExecutionResult::ok(consensus_fasta(&report.consensus)).with_pid(pid)
        }
    }

    fn run_bonito(&self, plan: &ExecutionPlan, tokens: &[&str]) -> ExecutionResult {
        let opts = BonitoOpts {
            chunk: Self::flag_value(tokens, "--chunksize").unwrap_or(2_000),
            batch: Self::flag_value(tokens, "--batchsize").unwrap_or(32),
            threads: Self::flag_value(tokens, "-t").unwrap_or(48),
        };
        let spec = self.dataset_from_command(tokens, DatasetSpec::acinetobacter_pittii().name);
        let input = self.bonito_input(&spec);
        let model = BonitoModel::pretrained(spec.seed);
        let pid = self.cluster.spawn_pid();
        let use_gpu =
            plan.env_var("GALAXY_GPU_ENABLED") == Some("true") && !tokens.contains(&"--device=cpu");

        if use_gpu {
            let mask = plan.env_var("CUDA_VISIBLE_DEVICES");
            let mut ctx = match CudaContext::new(&self.cluster, mask, pid, "bonito") {
                Ok(ctx) => ctx,
                Err(e) => return ExecutionResult::fail(2, e.to_string()),
            };
            match basecall_gpu(&input, &model, &opts, &self.cluster, &mut ctx) {
                Ok(report) => {
                    let minors = ctx.visible_minors().to_vec();
                    self.traces.lock().push((plan.job_id, ctx.trace.clone()));
                    let profiler = ctx.destroy();
                    self.profilers.lock().push((plan.job_id, profiler));
                    self.maybe_linger(pid, &minors, "bonito", BONITO_LINGER_MIB);
                    ExecutionResult::ok(report.fasta).with_pid(pid)
                }
                Err(e) => {
                    ctx.destroy();
                    ExecutionResult::fail(1, e.to_string())
                }
            }
        } else {
            let report =
                basecall_cpu(&input, &model, &opts, self.cluster.host(), self.cluster.clock());
            ExecutionResult::ok(report.fasta).with_pid(pid)
        }
    }

    fn maybe_linger(&self, pid: u32, minors: &[u32], name: &str, mib: u64) {
        if !self.linger {
            return;
        }
        let mut attached = Vec::new();
        for &minor in minors {
            if self.cluster.attach_process(minor, GpuProcess::compute(pid, name, mib)).is_ok() {
                attached.push(minor);
            }
        }
        self.lingering.lock().push(LingeringProcess {
            pid,
            minors: attached,
            name: name.to_string(),
        });
    }
}

fn consensus_fasta(consensus: &str) -> String {
    format!(">consensus\n{consensus}\n")
}

impl JobExecutor for ToolExecutor {
    fn execute(&self, plan: &ExecutionPlan) -> ExecutionResult {
        // Charge container pull + cold-start overhead before the tool runs.
        if let Some(container) = &plan.container {
            self.cluster.clock().advance(container.overhead_s);
        }
        let tokens: Vec<&str> = plan.command_line.split_whitespace().collect();
        match tokens.first() {
            Some(&"racon_gpu") => self.run_racon(plan, &tokens, true),
            Some(&"racon") => self.run_racon(plan, &tokens, false),
            Some(&"bonito") => self.run_bonito(plan, &tokens),
            Some(&"echo") => ExecutionResult::ok(tokens[1..].join(" ")),
            Some(other) => ExecutionResult::fail(127, format!("{other}: command not found")),
            None => ExecutionResult::fail(127, "empty command"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galaxy::runners::ExecutionPlan;

    fn tiny_racon_spec() -> DatasetSpec {
        DatasetSpec {
            name: "tiny_racon",
            genome_len: 2_000,
            n_reads: 24,
            read_len: 600,
            ..DatasetSpec::alzheimers_nfl()
        }
    }

    fn plan(cmd: &str, env: &[(&str, &str)]) -> ExecutionPlan {
        ExecutionPlan {
            job_id: 1,
            tool_id: "t".into(),
            destination_id: "d".into(),
            command_line: cmd.to_string(),
            env: env.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            container: None,
            command_parts: vec![],
        }
    }

    #[test]
    fn racon_gpu_runs_and_releases_devices() {
        let cluster = GpuCluster::k80_node();
        let exec = ToolExecutor::new(&cluster);
        exec.register_dataset(tiny_racon_spec());
        let result = exec.execute(&plan(
            "racon_gpu -t 4 tiny_racon",
            &[("GALAXY_GPU_ENABLED", "true"), ("CUDA_VISIBLE_DEVICES", "0")],
        ));
        assert_eq!(result.exit_code, 0, "{}", result.stderr);
        assert!(result.stdout.starts_with(">consensus"));
        assert!(result.pid.is_some());
        // Without linger, devices are free afterwards.
        assert_eq!(cluster.available_devices(), vec![0, 1]);
        assert!(exec.profiler_for_job(1).is_some());
    }

    #[test]
    fn linger_keeps_process_on_masked_device() {
        let cluster = GpuCluster::k80_node();
        let exec = ToolExecutor::new(&cluster).with_linger();
        exec.register_dataset(tiny_racon_spec());
        let result = exec.execute(&plan(
            "racon_gpu -t 2 tiny_racon",
            &[("GALAXY_GPU_ENABLED", "true"), ("CUDA_VISIBLE_DEVICES", "1")],
        ));
        assert_eq!(result.exit_code, 0);
        assert_eq!(cluster.available_devices(), vec![0]);
        let lingering = exec.lingering();
        assert_eq!(lingering.len(), 1);
        assert_eq!(lingering[0].minors, vec![1]);
        exec.release(result.pid.unwrap());
        assert_eq!(cluster.available_devices(), vec![0, 1]);
    }

    #[test]
    fn racon_cpu_does_not_touch_gpus() {
        let cluster = GpuCluster::k80_node();
        let exec = ToolExecutor::new(&cluster);
        exec.register_dataset(tiny_racon_spec());
        let result =
            exec.execute(&plan("racon -t 4 tiny_racon", &[("GALAXY_GPU_ENABLED", "false")]));
        assert_eq!(result.exit_code, 0);
        assert_eq!(cluster.available_devices(), vec![0, 1]);
        assert!(cluster.clock().now() > 0.0, "CPU run must consume virtual time");
    }

    #[test]
    fn empty_device_mask_fails_like_real_cuda() {
        let cluster = GpuCluster::k80_node();
        let exec = ToolExecutor::new(&cluster);
        exec.register_dataset(tiny_racon_spec());
        let result = exec.execute(&plan(
            "racon_gpu tiny_racon",
            &[("GALAXY_GPU_ENABLED", "true"), ("CUDA_VISIBLE_DEVICES", "")],
        ));
        assert_eq!(result.exit_code, 2);
        assert!(result.stderr.contains("no CUDA-capable"));
    }

    #[test]
    fn unknown_command_fails_127() {
        let cluster = GpuCluster::k80_node();
        let exec = ToolExecutor::new(&cluster);
        let result = exec.execute(&plan("nonexistent_tool --flag", &[]));
        assert_eq!(result.exit_code, 127);
    }

    #[test]
    fn container_overhead_charged() {
        use galaxy::runners::{ContainerEngine, ContainerInvocation};
        let cluster = GpuCluster::k80_node();
        let exec = ToolExecutor::new(&cluster);
        let mut p = plan("echo hi", &[]);
        p.container = Some(ContainerInvocation {
            engine: ContainerEngine::Docker,
            image: "img".into(),
            command_parts: vec![],
            overhead_s: 0.6,
        });
        exec.execute(&p);
        assert!((cluster.clock().now() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn dataset_selected_from_command_token() {
        let cluster = GpuCluster::k80_node();
        let exec = ToolExecutor::new(&cluster);
        let tiny = tiny_racon_spec();
        exec.register_dataset(tiny.clone());
        let spec = exec.dataset_from_command(&["racon", "-t", "4", "TINY_RACON"], "x");
        assert_eq!(spec.name, "tiny_racon");
    }
}
