//! Edit distance, optionally banded — the "banding approximation" the
//! paper's Racon experiments toggle, in its simplest form, plus the
//! identity metric used to evaluate consensus quality.

/// Full dynamic-programming edit distance (Levenshtein), O(n·m) time,
/// O(min(n, m)) space.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let (short, long) = if a.len() <= b.len() {
        (a.as_bytes(), b.as_bytes())
    } else {
        (b.as_bytes(), a.as_bytes())
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr = vec![0usize; short.len() + 1];
    for (i, &lb) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sb) in short.iter().enumerate() {
            let cost = usize::from(lb != sb);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Banded edit distance: only cells within `band` of the diagonal are
/// computed. Returns `None` when the true alignment may leave the band
/// (result would only be an upper bound); in particular when the length
/// difference exceeds the band.
pub fn banded_edit_distance(a: &str, b: &str, band: usize) -> Option<usize> {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    if a.len().abs_diff(b.len()) > band {
        return None;
    }
    let inf = usize::MAX / 2;
    let mut prev = vec![inf; b.len() + 1];
    let mut curr = vec![inf; b.len() + 1];
    for (j, slot) in prev.iter_mut().enumerate().take(band.min(b.len()) + 1) {
        *slot = j;
    }
    for i in 1..=a.len() {
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(b.len());
        curr.fill(inf);
        if lo == 0 {
            curr[0] = i;
        }
        for j in lo.max(1)..=hi {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            curr[j] = (prev[j - 1] + cost).min(prev[j] + 1).min(curr[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let d = prev[b.len()];
    if d >= inf {
        None
    } else {
        // The banded result equals the true distance only when it stays
        // within the band; d <= band guarantees that.
        if d <= band {
            Some(d)
        } else {
            None
        }
    }
}

/// Sequence identity in [0, 1]: `1 − edit/max_len`.
pub fn identity(a: &str, b: &str) -> f64 {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - edit_distance(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("ACGT", "ACGT"), 0);
        assert_eq!(edit_distance("ACGT", "AGGT"), 1);
        assert_eq!(edit_distance("ACGT", "AC"), 2);
    }

    #[test]
    fn symmetric() {
        assert_eq!(edit_distance("ACCGT", "AGT"), edit_distance("AGT", "ACCGT"));
    }

    #[test]
    fn banded_matches_full_when_band_suffices() {
        let a = "ACGTACGTACGTAA";
        let b = "ACGTACCTACGTA";
        let full = edit_distance(a, b);
        assert_eq!(banded_edit_distance(a, b, 5), Some(full));
    }

    #[test]
    fn banded_rejects_out_of_band() {
        assert_eq!(banded_edit_distance("AAAAAAAAAA", "A", 3), None);
        // Distance 4 with band 2 → cannot certify.
        assert_eq!(banded_edit_distance("AAAA", "TTTT", 2), None);
    }

    #[test]
    fn identity_metric() {
        assert_eq!(identity("", ""), 1.0);
        assert_eq!(identity("ACGT", "ACGT"), 1.0);
        assert!((identity("ACGT", "ACGA") - 0.75).abs() < 1e-12);
        assert_eq!(identity("ACGT", ""), 0.0);
    }

    #[test]
    fn banded_equals_full_on_random_similar_strings() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let a: String =
                (0..100).map(|_| ['A', 'C', 'G', 'T'][rng.gen_range(0..4usize)]).collect();
            // Mutate a few positions.
            let mut b: Vec<char> = a.chars().collect();
            for _ in 0..4 {
                let i = rng.gen_range(0..b.len());
                b[i] = ['A', 'C', 'G', 'T'][rng.gen_range(0..4usize)];
            }
            let b: String = b.into_iter().collect();
            let full = edit_distance(&a, &b);
            assert_eq!(banded_edit_distance(&a, &b, 10), Some(full));
        }
    }
}
