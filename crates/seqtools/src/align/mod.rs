//! Pairwise alignment utilities.

pub mod banded;

pub use banded::{banded_edit_distance, edit_distance, identity};
