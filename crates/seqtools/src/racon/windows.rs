//! Window construction: split the draft and assign read fragments.

use crate::mapper::Overlap;

/// One polishing window: a backbone slice of the draft plus the read
/// fragments mapped onto it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowTask {
    /// Window start on the draft.
    pub start: usize,
    /// Window end (exclusive).
    pub end: usize,
    /// The draft slice (the POA backbone).
    pub backbone: String,
    /// Read fragments covering this window.
    pub fragments: Vec<String>,
}

impl WindowTask {
    /// Total bases across backbone and fragments (work sizing).
    pub fn bases(&self) -> usize {
        self.backbone.len() + self.fragments.iter().map(String::len).sum::<usize>()
    }
}

/// Split `draft` into `window_len` windows and distribute each overlap's
/// read across the windows it spans. Read coordinates inside a window are
/// estimated by linear interpolation over the overlap (racon does the same
/// with its alignment breakpoints).
pub fn build_windows(
    draft: &str,
    reads: &[String],
    overlaps: &[Overlap],
    window_len: usize,
) -> Vec<WindowTask> {
    assert!(window_len > 0, "window length must be positive");
    let mut windows: Vec<WindowTask> = draft
        .as_bytes()
        .chunks(window_len)
        .enumerate()
        .map(|(i, chunk)| WindowTask {
            start: i * window_len,
            end: i * window_len + chunk.len(),
            backbone: String::from_utf8(chunk.to_vec()).expect("ASCII draft"),
            fragments: Vec::new(),
        })
        .collect();
    if windows.is_empty() {
        return windows;
    }

    for ovl in overlaps {
        let read = match reads.get(ovl.read_idx) {
            Some(r) => r,
            None => continue,
        };
        if ovl.target_end <= ovl.target_start || ovl.read_end <= ovl.read_start {
            continue;
        }
        let t_span = (ovl.target_end - ovl.target_start) as f64;
        let r_span = (ovl.read_end - ovl.read_start) as f64;
        let first_w = ovl.target_start / window_len;
        let last_w = (ovl.target_end - 1) / window_len;
        for w in first_w..=last_w.min(windows.len() - 1) {
            let win = &windows[w];
            let t_lo = win.start.max(ovl.target_start);
            let t_hi = win.end.min(ovl.target_end);
            if t_hi <= t_lo {
                continue;
            }
            // Linear interpolation target→read, with slack: interpolated
            // breakpoints drift by tens of bases on indel-rich long reads,
            // so fragments carry a margin that the POA fit alignment trims.
            const SLACK: usize = 25;
            let to_read = |t: usize| -> usize {
                let frac = (t - ovl.target_start) as f64 / t_span;
                (ovl.read_start as f64 + frac * r_span).round() as usize
            };
            let core_lo = to_read(t_lo).min(read.len());
            let core_hi = to_read(t_hi).min(read.len());
            // Tiny cores add noise, not signal (racon's windows likewise
            // drop fragments below a quality/length floor). The filter
            // looks at the slack-free core so margins cannot rescue a
            // 2-base sliver.
            let core_len = core_hi.saturating_sub(core_lo);
            if core_len < 20 && core_len * 2 < win.backbone.len() {
                continue;
            }
            let r_lo = core_lo.saturating_sub(SLACK);
            let r_hi = (core_hi + SLACK).min(read.len());
            if r_hi <= r_lo {
                continue;
            }
            windows[w].fragments.push(read[r_lo..r_hi].to_string());
        }
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{MapperConfig, TargetIndex};
    use crate::sim::genome::random_genome;

    fn ovl(read_idx: usize, rs: usize, re: usize, ts: usize, te: usize) -> Overlap {
        Overlap {
            read_idx,
            read_start: rs,
            read_end: re,
            target_start: ts,
            target_end: te,
            hits: 10,
        }
    }

    #[test]
    fn windows_tile_the_draft() {
        let draft = random_genome(1_234, 1);
        let w = build_windows(&draft, &[], &[], 500);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].backbone.len(), 500);
        assert_eq!(w[2].backbone.len(), 234);
        assert_eq!(w.iter().map(|x| x.backbone.len()).sum::<usize>(), 1_234);
        assert_eq!(w[1].start, 500);
        assert_eq!(w[1].end, 1_000);
    }

    #[test]
    fn overlap_spanning_windows_is_split() {
        let draft = random_genome(1_000, 2);
        let read = draft[300..800].to_string();
        let w = build_windows(&draft, &[read], &[ovl(0, 0, 500, 300, 800)], 500);
        // Covers [300,500) of window 0 and [500,800) of window 1, each
        // fragment padded by the ±25-base slack (clamped at read ends).
        assert_eq!(w[0].fragments.len(), 1);
        assert_eq!(w[1].fragments.len(), 1);
        assert_eq!(w[0].fragments[0].len(), 225); // 200 + trailing slack
        assert_eq!(w[1].fragments[0].len(), 325); // 300 + leading slack
                                                  // Perfect read: fragment cores match the draft slices.
        assert_eq!(&w[0].fragments[0][..200], &draft[300..500]);
        assert_eq!(&w[1].fragments[0][25..], &draft[500..800]);
    }

    #[test]
    fn tiny_fragments_dropped() {
        let draft = random_genome(1_000, 3);
        let read = draft[498..600].to_string();
        // 2 bases (+ slack) land in window 0 → dropped; the rest lands in
        // window 1 → kept.
        let w = build_windows(&draft, &[read], &[ovl(0, 0, 102, 498, 600)], 500);
        assert!(w[0].fragments.is_empty());
        assert_eq!(w[1].fragments.len(), 1);
    }

    #[test]
    fn bogus_overlaps_ignored() {
        let draft = random_genome(600, 4);
        let w = build_windows(
            &draft,
            &["ACGT".to_string()],
            &[
                ovl(5, 0, 4, 0, 4),     // read index out of range
                ovl(0, 4, 4, 100, 100), // empty spans
            ],
            500,
        );
        assert!(w.iter().all(|x| x.fragments.is_empty()));
    }

    #[test]
    fn end_to_end_with_mapper() {
        let draft = random_genome(5_000, 9);
        let reads: Vec<String> =
            (0..10).map(|i| draft[i * 400..i * 400 + 1_000].to_string()).collect();
        let index = TargetIndex::build(&draft, MapperConfig::default());
        let overlaps = index.map_all(&reads);
        assert_eq!(overlaps.len(), 10);
        let w = build_windows(&draft, &reads, &overlaps, 500);
        let covered = w.iter().filter(|x| !x.fragments.is_empty()).count();
        assert!(covered >= 8, "only {covered}/10 windows covered");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        build_windows("ACGT", &[], &[], 0);
    }
}
