//! A Racon-style consensus polisher.
//!
//! Pipeline (mirroring Vaser et al. and the racon-gpu port the paper
//! runs):
//!
//! 1. **Load** — draft assembly + reads (+ overlaps; computed with the
//!    minimizer mapper when absent).
//! 2. **Window** — the draft is split into fixed-length windows; mapped
//!    read fragments are assigned to the windows they cover.
//! 3. **Polish** — each window seeds a POA graph with its backbone and
//!    aligns its fragments in; the window consensus is the heaviest path.
//!    * CPU path: windows in parallel via rayon (`-t` threads).
//!    * GPU path: windows grouped into `--cudapoa-batches` batches; each
//!      batch is a H2D copy + `generatePOAKernel` +
//!      `generateConsensusKernel` + D2H copy on the simulated device.
//! 4. **Concatenate** window consensuses into the polished assembly.
//!
//! Both paths run the *same* real POA computation (results are
//! byte-identical); they differ in the virtual-time cost model applied.

pub mod model;
pub mod pipeline;
pub mod windows;

pub use pipeline::{polish_cpu, polish_gpu, RaconInput, RaconOpts, RaconReport};
pub use windows::{build_windows, WindowTask};
