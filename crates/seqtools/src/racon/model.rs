//! Cost-model calibration constants for the Racon reproduction.
//!
//! These convert *real, measured work counts* (DP cells, bytes) into
//! virtual seconds through `gpusim`'s host and device models. They were
//! calibrated once against the paper's §VI-A headline numbers for the
//! 17 GB Alzheimers NFL dataset on the Xeon E5-2670 + Tesla K80 testbed:
//! polishing 117 s (CPU, 4 threads) → 15 s (GPU: ~2 s allocation + ~13 s
//! kernels); end-to-end ~410 s → ~200 s; ~40 s of CUDA API overhead;
//! ~70% memory-dependency stalls.

/// Host-model "operations" per POA DP cell on the CPU path. Racon's CPU
/// POA is SIMD-vectorized (16-lane), so the per-cell cost in scalar
/// flop-equivalents is well below 1.
pub const CPU_OPS_PER_CELL: f64 = 0.107;

/// Fraction of CPU polishing work that parallelizes across `-t` threads.
pub const POLISH_PARALLEL_FRAC: f64 = 0.97;

/// Host-model operations per input byte for the non-polish phases
/// (parsing, overlap computation, windowing, serialization).
pub const OTHER_OPS_PER_BYTE: f64 = 108.0;

/// Parallel fraction of the non-polish phases in the CPU build.
pub const OTHER_PARALLEL_FRAC_CPU: f64 = 0.50;

/// Parallel fraction of the non-polish phases in the racon-gpu build,
/// which overlaps chunked I/O with device compute.
pub const OTHER_PARALLEL_FRAC_GPU: f64 = 0.71;

/// Device FLOPs per POA DP cell in `generatePOAKernel` (the GPU pays
/// padding and divergence overheads the SIMD CPU code does not).
pub const GPU_OPS_PER_CELL: f64 = 1.6;

/// DRAM bytes per POA DP cell (most DP traffic stays in shared
/// memory/registers; DRAM carries sequences, graph topology spills and
/// results). Chosen so the kernels sit memory-bound, matching the paper's
/// ~70% memory-dependency stall measurement.
pub const GPU_BYTES_PER_CELL: f64 = 0.162;

/// FLOPs per graph node in `generateConsensusKernel` (topological sweep +
/// traceback).
pub const GPU_CONSENSUS_OPS_PER_NODE: f64 = 40.0;

/// Device working-set fraction of the (scaled) input bytes resident on
/// the GPU at once.
pub const DEVICE_WORKING_SET_FRAC: f64 = 0.45;

/// H2D padding factor: cudapoa pads every window to the batch maximum.
pub const H2D_PAD_FACTOR: f64 = 2.5;

/// Fraction of input bytes returned as results (D2H).
pub const D2H_FRAC: f64 = 0.12;

/// Banding cuts computed cells roughly by this factor at racon's default
/// band (observed from the real banded DP; used only in docs/tests).
pub const EXPECTED_BAND_SPEEDUP_MIN: f64 = 1.5;

/// Threads per block of `generatePOAKernel` (one block per window, as in
/// ClaraGenomics cudapoa).
pub const POA_BLOCK_THREADS: u32 = 128;

/// Host-side per-batch setup cost of cudapoa (stream + memory-pool
/// initialization), seconds. Together with copy/compute overlap this
/// creates the batch-count sweet spot of the paper's Fig. 7.
pub const BATCH_SETUP_S: f64 = 0.25;

/// Host-thread contention factor on the GPU path: CPU worker threads
/// beyond 2 compete with the driver's polling threads, inflating the
/// non-polish phases slightly (the paper's Fig. 7 finds 2 threads best).
pub const GPU_THREAD_CONTENTION: f64 = 0.03;

/// Extra I/O helper threads the racon-gpu build runs alongside `-t`.
pub const GPU_IO_EXTRA_THREADS: u32 = 6;

/// Band half-width of the banded POA DP. Sized to absorb fragment slack
/// (±25) plus interpolation drift while still cutting computed cells by
/// >2× on 500-base windows.
pub const BAND_WIDTH: usize = 100;
