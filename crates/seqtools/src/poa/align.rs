//! Sequence-to-graph alignment and graph extension.
//!
//! Overlap-style alignment: the fragment may land anywhere inside the
//! graph (free graph skips at both ends) and the fragment's *own* leading
//! and trailing bases may be skipped for free (racon likewise trims
//! fragment ends at its alignment breakpoints). Interior bases must align
//! or pay gap costs. Skipped ends are not woven into the graph, so sloppy
//! fragment breakpoints cannot inject garbage nodes.
//!
//! Supports the banding approximation the paper's experiments toggle
//! (`--cudapoa-banded`): each node's DP columns are restricted to a band
//! around its backbone-coordinate diagonal, trading long-indel accuracy
//! for a large cut in computed cells; a banded pass that aligns less than
//! half the fragment is re-run unbanded.

use crate::poa::graph::PoaGraph;

const MATCH: i32 = 2;
const MISMATCH: i32 = -3;
const GAP: i32 = -2;
const NEG: i32 = i32::MIN / 4;

/// Outcome of aligning and adding one sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignStats {
    /// DP cells actually computed (the work-accounting unit for the
    /// virtual-time cost model).
    pub cells: u64,
    /// Alignment score.
    pub score: i32,
    /// Whether the banded pass had to be redone unbanded.
    pub band_fallback: bool,
    /// Fragment bases actually woven into the graph (ends may be
    /// trimmed).
    pub aligned_bases: usize,
}

/// Per-position alignment outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Al {
    /// Aligned to (matched or mismatched against) a graph node.
    Node(usize),
    /// Interior insertion: kept, becomes a new node.
    Ins,
    /// Leading/trailing skip: trimmed, never enters the graph.
    Skip,
}

// Traceback codes.
const TB_NONE: u8 = 0;
const TB_DIAG: u8 = 1; // consume node + char
const TB_UP: u8 = 2; // consume node (gap in sequence)
const TB_LEFT: u8 = 3; // consume char (gap in graph)

impl PoaGraph {
    /// Align `seq` to the graph and weave it in. `band` of `None` runs the
    /// full DP; `Some(b)` restricts each node's column range to ±`b`
    /// around its backbone-coordinate diagonal, falling back to the full
    /// DP when the banded alignment covers less than half the fragment.
    pub fn add_sequence(&mut self, seq: &[u8], band: Option<usize>) -> AlignStats {
        if seq.is_empty() {
            return AlignStats { cells: 0, score: 0, band_fallback: false, aligned_bases: 0 };
        }
        if self.node_count() == 0 {
            self.add_unaligned(seq);
            return AlignStats {
                cells: 0,
                score: 0,
                band_fallback: false,
                aligned_bases: seq.len(),
            };
        }

        let (mut stats, mut aligned) = self.align(seq, band);
        if band.is_some() && aligned_span(&aligned) * 2 < seq.len() {
            // Band missed the fragment's true diagonal: redo unbanded.
            let (s2, a2) = self.align(seq, None);
            stats = AlignStats { cells: stats.cells + s2.cells, band_fallback: true, ..s2 };
            aligned = a2;
        }

        // Weave the aligned interior into the graph: matched nodes are
        // reused; mismatches and interior insertions create new nodes;
        // skipped ends are dropped.
        let mut prev: Option<usize> = None;
        let mut first: Option<usize> = None;
        let mut woven = 0usize;
        for (j, al) in aligned.iter().enumerate() {
            let ch = seq[j];
            let use_node = match al {
                Al::Skip => continue,
                Al::Node(v) if self.nodes[*v].base == ch => *v,
                Al::Node(v) => {
                    let pos = self.nodes[*v].pos;
                    self.add_node(ch, pos)
                }
                Al::Ins => {
                    let pos = prev.map(|p| self.nodes[p].pos + 1).unwrap_or(0);
                    self.add_node(ch, pos)
                }
            };
            woven += 1;
            if let Some(p) = prev {
                if p != use_node {
                    self.add_edge(p, use_node, 1);
                }
            }
            if first.is_none() {
                first = Some(use_node);
            }
            prev = Some(use_node);
        }
        self.note_sequence_added(first);
        stats.aligned_bases = woven;
        stats
    }

    /// Core DP. Returns stats plus the per-position outcome.
    fn align(&self, seq: &[u8], band: Option<usize>) -> (AlignStats, Vec<Al>) {
        let order = self.topological_order();
        let n = order.len();
        let m = seq.len();
        // rank[node] = row index (1-based; row 0 is the virtual start).
        let mut rank = vec![0usize; n];
        for (r, &v) in order.iter().enumerate() {
            rank[v] = r + 1;
        }

        let width = m + 1;
        let mut h = vec![NEG; (n + 1) * width];
        let mut tb = vec![TB_NONE; (n + 1) * width];
        let mut tb_pred = vec![0u32; (n + 1) * width];

        // Column range per row: banded rows are centered on the node's
        // backbone coordinate scaled into fragment space (stays accurate
        // as branch nodes accrete, since `pos` mirrors the backbone
        // position they attach to).
        let backbone = self.backbone_len.max(1);
        let col_center = |node: usize| -> usize { (self.nodes[node].pos as usize * m) / backbone };
        let col_range = |center: usize| -> (usize, usize) {
            match band {
                None => (0, m),
                Some(b) => (center.saturating_sub(b), (center + b).min(m)),
            }
        };

        // Row 0 (virtual start): leading fragment bases are free skips, so
        // the whole row is 0 (and costs no DP cells).
        for slot in h.iter_mut().take(width) {
            *slot = 0;
        }

        // Best cell anywhere — trailing fragment bases after it are free
        // skips.
        let mut best_r = 0usize;
        let mut best_j = 0usize;
        let mut best_score = 0i32;

        let mut cells: u64 = 0;
        for (r0, &v) in order.iter().enumerate() {
            let r = r0 + 1;
            let (lo, hi) = col_range(col_center(v));
            let row = r * width;
            if lo == 0 {
                // Free leading graph skip.
                h[row] = 0;
                tb[row] = TB_NONE;
            }
            let preds: &[(usize, u32)] = &self.nodes[v].in_edges;
            for j in lo.max(1)..=hi {
                cells += 1;
                let ch = seq[j - 1];
                let sub = if self.nodes[v].base == ch { MATCH } else { MISMATCH };
                let mut best = NEG;
                let mut best_tb = TB_NONE;
                let mut best_pred = 0u32;

                if preds.is_empty() {
                    let diag = h[j - 1].saturating_add(sub);
                    if diag > best {
                        best = diag;
                        best_tb = TB_DIAG;
                        best_pred = 0;
                    }
                    let up = h[j].saturating_add(GAP);
                    if up > best {
                        best = up;
                        best_tb = TB_UP;
                        best_pred = 0;
                    }
                } else {
                    for &(p, _) in preds {
                        let pr = rank[p];
                        let prow = pr * width;
                        let diag = h[prow + j - 1].saturating_add(sub);
                        if diag > best {
                            best = diag;
                            best_tb = TB_DIAG;
                            best_pred = pr as u32;
                        }
                        let up = h[prow + j].saturating_add(GAP);
                        if up > best {
                            best = up;
                            best_tb = TB_UP;
                            best_pred = pr as u32;
                        }
                    }
                }
                let left = h[row + j - 1].saturating_add(GAP);
                if left > best {
                    best = left;
                    best_tb = TB_LEFT;
                    best_pred = r as u32;
                }
                h[row + j] = best;
                tb[row + j] = best_tb;
                tb_pred[row + j] = best_pred;
                if best > best_score {
                    best_score = best;
                    best_r = r;
                    best_j = j;
                }
            }
        }

        let mut aligned = vec![Al::Skip; m];
        if best_score <= 0 {
            // Nothing aligned: the fragment does not belong to this graph
            // (or the band missed entirely — the caller's span check
            // triggers the fallback).
            return (
                AlignStats { cells, score: best_score, band_fallback: false, aligned_bases: 0 },
                aligned,
            );
        }

        // Traceback from the best cell; chars after `best_j` stay Skip.
        let mut r = best_r;
        let mut j = best_j;
        while j > 0 && r > 0 {
            let idx = r * width + j;
            match tb[idx] {
                TB_DIAG => {
                    aligned[j - 1] = Al::Node(order[r - 1]);
                    r = tb_pred[idx] as usize;
                    j -= 1;
                }
                TB_LEFT => {
                    aligned[j - 1] = Al::Ins;
                    j -= 1;
                }
                TB_UP => {
                    r = tb_pred[idx] as usize;
                }
                _ => break, // free-start cell: leading chars stay Skip
            }
        }
        (AlignStats { cells, score: best_score, band_fallback: false, aligned_bases: 0 }, aligned)
    }
}

fn aligned_span(aligned: &[Al]) -> usize {
    aligned.iter().filter(|a| !matches!(a, Al::Skip)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::genome::random_genome;
    use crate::sim::reads::{mutate_sequence, ErrorModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_sequence_reuses_all_nodes() {
        let mut g = PoaGraph::from_sequence(b"ACGTACGTAC");
        let before = g.node_count();
        let stats = g.add_sequence(b"ACGTACGTAC", None);
        assert_eq!(g.node_count(), before, "no new nodes for a perfect match");
        assert_eq!(stats.score, 10 * MATCH);
        assert_eq!(stats.aligned_bases, 10);
        assert_eq!(g.consensus(), "ACGTACGTAC");
    }

    #[test]
    fn substring_aligns_in_place() {
        let mut g = PoaGraph::from_sequence(b"AAAACGTACGTTTT");
        let before = g.node_count();
        g.add_sequence(b"ACGTACG", None);
        assert_eq!(g.node_count(), before);
        assert_eq!(g.consensus(), "AAAACGTACGTTTT");
    }

    #[test]
    fn overhanging_ends_are_trimmed_not_woven() {
        // The fragment extends 6 bases past each end of the backbone;
        // those bases must be skipped, not added as dangling nodes.
        let g_backbone = b"ACGTACGTACGTACGTACGT";
        let mut g = PoaGraph::from_sequence(g_backbone);
        let before = g.node_count();
        let frag = b"TTTTTTACGTACGTACGTACGTACGTGGGGGG";
        let stats = g.add_sequence(frag, None);
        assert!(stats.aligned_bases <= g_backbone.len() + 8);
        assert!(g.node_count() <= before + 8, "{} vs {}", g.node_count(), before);
        assert_eq!(g.consensus_anchored(), "ACGTACGTACGTACGTACGT");
    }

    #[test]
    fn unrelated_sequence_not_woven() {
        let mut g = PoaGraph::from_sequence(b"AAAAAAAAAAAAAAAAAAAA");
        let before = g.node_count();
        let stats = g.add_sequence(b"CCCCCCCCCCCCCCCCCCCC", None);
        assert_eq!(stats.aligned_bases, 0);
        assert_eq!(g.node_count(), before);
    }

    #[test]
    fn consensus_corrects_draft_errors() {
        // Draft has one wrong base; three accurate reads out-vote it.
        let truth = b"ACGTACGTACGTACGTACGT";
        let mut draft = truth.to_vec();
        draft[10] = b'T'; // truth has C at 10
        assert_ne!(draft[10], truth[10]);
        let mut g = PoaGraph::from_sequence(&draft);
        for _ in 0..3 {
            g.add_sequence(truth, None);
        }
        assert_eq!(g.consensus_anchored().as_bytes(), truth);
    }

    #[test]
    fn consensus_fixes_deletion_in_draft() {
        let truth = b"ACGTACGTACGTACGTACGT";
        let mut draft = truth.to_vec();
        draft.remove(8);
        let mut g = PoaGraph::from_sequence(&draft);
        for _ in 0..3 {
            g.add_sequence(truth, None);
        }
        assert_eq!(g.consensus_anchored().as_bytes(), truth);
    }

    #[test]
    fn noisy_reads_still_converge_to_truth() {
        let truth = random_genome(300, 77);
        let draft = {
            let mut rng = StdRng::seed_from_u64(1);
            mutate_sequence(&truth, &ErrorModel::pacbio().scaled(2.0), &mut rng)
        };
        let mut g = PoaGraph::from_sequence(draft.as_bytes());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..12 {
            let read = mutate_sequence(&truth, &ErrorModel::pacbio(), &mut rng);
            g.add_sequence(read.as_bytes(), None);
        }
        let consensus = g.consensus_anchored();
        let before = crate::align::identity(&draft, &truth);
        let after = crate::align::identity(&consensus, &truth);
        assert!(
            after > before && after > 0.97,
            "consensus identity {after:.4} (draft was {before:.4})"
        );
    }

    #[test]
    fn banded_alignment_computes_fewer_cells() {
        let truth = random_genome(400, 5);
        let mut g_full = PoaGraph::from_sequence(truth.as_bytes());
        let mut g_band = PoaGraph::from_sequence(truth.as_bytes());
        let mut rng = StdRng::seed_from_u64(3);
        let read = mutate_sequence(&truth, &ErrorModel::pacbio(), &mut rng);
        let full = g_full.add_sequence(read.as_bytes(), None);
        let banded = g_band.add_sequence(read.as_bytes(), Some(50));
        assert!(!banded.band_fallback);
        assert!(banded.cells < full.cells / 2, "{} vs {}", banded.cells, full.cells);
        // The banded weave still aligned essentially the whole read.
        assert!(banded.aligned_bases * 10 >= read.len() * 9);
    }

    #[test]
    fn misplaced_band_falls_back_to_full_dp() {
        // The fragment matches the END of the backbone; a band centered
        // on proportional coordinates looks at the wrong columns and
        // aligns almost nothing, so the aligner redoes the work unbanded.
        let backbone = random_genome(600, 11);
        let frag = backbone[500..600].to_string();
        let mut g = PoaGraph::from_sequence(backbone.as_bytes());
        let stats = g.add_sequence(frag.as_bytes(), Some(8));
        assert!(stats.band_fallback);
        assert!(stats.aligned_bases >= 95, "{}", stats.aligned_bases);
        // No duplicate nodes: the fragment matched existing ones.
        assert_eq!(g.node_count(), 600);
    }

    #[test]
    fn empty_sequence_is_noop() {
        let mut g = PoaGraph::from_sequence(b"ACGT");
        let stats = g.add_sequence(b"", None);
        assert_eq!(stats.cells, 0);
        assert_eq!(g.sequence_count(), 1);
    }

    #[test]
    fn add_to_empty_graph_seeds_backbone() {
        let mut g = PoaGraph::new();
        g.add_sequence(b"ACGT", None);
        assert_eq!(g.consensus(), "ACGT");
    }

    #[test]
    fn cells_scale_with_problem_size() {
        let a = random_genome(100, 1);
        let b = random_genome(200, 2);
        let mut g1 = PoaGraph::from_sequence(a.as_bytes());
        let s1 = g1.add_sequence(a.as_bytes(), None);
        let mut g2 = PoaGraph::from_sequence(b.as_bytes());
        let s2 = g2.add_sequence(b.as_bytes(), None);
        assert!(s2.cells > 3 * s1.cells);
    }
}
