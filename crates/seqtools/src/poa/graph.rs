//! The POA graph structure and heaviest-path consensus.

/// One node of the POA graph: a base plus weighted in/out edges.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// The nucleotide this node represents.
    pub base: u8,
    /// Approximate backbone coordinate of this node (used to center the
    /// banded DP); backbone nodes carry their exact position, inserted
    /// nodes inherit a neighbour's.
    pub pos: u32,
    /// Incoming edges as `(from_node, weight)`.
    pub in_edges: Vec<(usize, u32)>,
    /// Outgoing edges as `(to_node, weight)`.
    pub out_edges: Vec<(usize, u32)>,
}

/// A partial-order alignment graph.
///
/// Nodes are created as sequences are added; edges accumulate weight for
/// every sequence that traverses them. The graph is a DAG by construction
/// (edges always point from earlier to later sequence positions).
#[derive(Debug, Clone, Default)]
pub struct PoaGraph {
    pub(crate) nodes: Vec<Node>,
    /// Entry nodes of each added sequence (used to seed consensus).
    pub(crate) starts: Vec<usize>,
    /// Length of the first (backbone) sequence.
    pub(crate) backbone_len: usize,
    /// Number of sequences added.
    sequences: usize,
}

impl PoaGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// A graph initialized with a backbone sequence (Racon seeds each
    /// window's graph with the draft window itself).
    pub fn from_sequence(seq: &[u8]) -> Self {
        let mut g = PoaGraph::new();
        g.add_unaligned(seq);
        g
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of sequences added so far.
    pub fn sequence_count(&self) -> usize {
        self.sequences
    }

    pub(crate) fn add_node(&mut self, base: u8, pos: u32) -> usize {
        self.nodes.push(Node { base, pos, in_edges: Vec::new(), out_edges: Vec::new() });
        self.nodes.len() - 1
    }

    pub(crate) fn add_edge(&mut self, from: usize, to: usize, weight: u32) {
        debug_assert_ne!(from, to, "self edge would create a cycle");
        if let Some(e) = self.nodes[from].out_edges.iter_mut().find(|(t, _)| *t == to) {
            e.1 += weight;
        } else {
            self.nodes[from].out_edges.push((to, weight));
        }
        if let Some(e) = self.nodes[to].in_edges.iter_mut().find(|(f, _)| *f == from) {
            e.1 += weight;
        } else {
            self.nodes[to].in_edges.push((from, weight));
        }
    }

    /// Add a sequence as a fresh chain without aligning (used for the
    /// first/backbone sequence).
    pub(crate) fn add_unaligned(&mut self, seq: &[u8]) {
        if seq.is_empty() {
            return;
        }
        let mut prev: Option<usize> = None;
        let mut first = None;
        for (i, &b) in seq.iter().enumerate() {
            let node = self.add_node(b, i as u32);
            if first.is_none() {
                first = Some(node);
            }
            if let Some(p) = prev {
                self.add_edge(p, node, 1);
            }
            prev = Some(node);
        }
        if let Some(f) = first {
            self.starts.push(f);
        }
        if self.sequences == 0 {
            self.backbone_len = seq.len();
        }
        self.sequences += 1;
    }

    pub(crate) fn note_sequence_added(&mut self, start: Option<usize>) {
        if let Some(s) = start {
            self.starts.push(s);
        }
        self.sequences += 1;
    }

    /// Topological order of the node indices (Kahn's algorithm).
    pub(crate) fn topological_order(&self) -> Vec<usize> {
        let mut in_deg: Vec<usize> = self.nodes.iter().map(|n| n.in_edges.len()).collect();
        let mut queue: Vec<usize> = (0..self.nodes.len()).filter(|&i| in_deg[i] == 0).collect();
        // Stable processing order for determinism.
        queue.sort_unstable();
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut head = 0;
        while head < queue.len() {
            let n = queue[head];
            head += 1;
            order.push(n);
            for &(to, _) in &self.nodes[n].out_edges {
                in_deg[to] -= 1;
                if in_deg[to] == 0 {
                    queue.push(to);
                }
            }
        }
        debug_assert_eq!(order.len(), self.nodes.len(), "POA graph has a cycle");
        order
    }

    /// Heaviest-path consensus: the path maximizing the sum of traversed
    /// edge weights, which is the sequence most supported by the aligned
    /// reads.
    pub fn consensus(&self) -> String {
        if self.nodes.is_empty() {
            return String::new();
        }
        let order = self.topological_order();
        let mut score = vec![0i64; self.nodes.len()];
        let mut back: Vec<Option<usize>> = vec![None; self.nodes.len()];
        for &n in &order {
            for &(from, w) in &self.nodes[n].in_edges {
                let cand = score[from] + i64::from(w);
                if cand > score[n] || (cand == score[n] && back[n].is_none_or(|b| from < b)) {
                    score[n] = cand;
                    back[n] = Some(from);
                }
            }
        }
        // Best end node: maximum accumulated weight; ties broken by index
        // for determinism.
        let end = (0..self.nodes.len())
            .max_by(|&a, &b| score[a].cmp(&score[b]).then(b.cmp(&a)))
            .expect("non-empty graph");
        let mut path = Vec::new();
        let mut cur = Some(end);
        while let Some(n) = cur {
            path.push(self.nodes[n].base);
            cur = back[n];
        }
        path.reverse();
        String::from_utf8(path).expect("bases are ASCII")
    }

    /// Heaviest path constrained to start at the backbone's first node
    /// and end at its last node. Racon uses this form: interpolated
    /// fragment breakpoints make the free-ended heaviest path chew window
    /// edges, while the backbone anchors are trustworthy.
    pub fn consensus_anchored(&self) -> String {
        if self.backbone_len == 0 || self.nodes.is_empty() {
            return self.consensus();
        }
        let start = 0usize;
        let end = self.backbone_len - 1;
        let order = self.topological_order();
        const NEG: i64 = i64::MIN / 4;
        let mut score = vec![NEG; self.nodes.len()];
        let mut back: Vec<Option<usize>> = vec![None; self.nodes.len()];
        score[start] = 0;
        for &n in &order {
            if score[n] == NEG {
                continue;
            }
            for &(to, w) in &self.nodes[n].out_edges {
                let cand = score[n] + i64::from(w);
                if cand > score[to] || (cand == score[to] && back[to].is_none_or(|b| n < b)) {
                    score[to] = cand;
                    back[to] = Some(n);
                }
            }
        }
        if score[end] == NEG {
            return self.consensus(); // backbone chain broken (cannot happen)
        }
        let mut path = Vec::new();
        let mut cur = Some(end);
        while let Some(n) = cur {
            path.push(self.nodes[n].base);
            if n == start {
                break;
            }
            cur = back[n];
        }
        path.reverse();
        String::from_utf8(path).expect("bases are ASCII")
    }

    /// Total edge weight in the graph (diagnostic).
    pub fn total_edge_weight(&self) -> u64 {
        self.nodes.iter().flat_map(|n| n.out_edges.iter()).map(|&(_, w)| u64::from(w)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sequence_consensus_is_identity() {
        let g = PoaGraph::from_sequence(b"ACGTACGT");
        assert_eq!(g.consensus(), "ACGTACGT");
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.sequence_count(), 1);
    }

    #[test]
    fn empty_graph_consensus_is_empty() {
        assert_eq!(PoaGraph::new().consensus(), "");
    }

    #[test]
    fn edge_weights_accumulate() {
        let mut g = PoaGraph::new();
        let a = g.add_node(b'A', 0);
        let c = g.add_node(b'C', 1);
        g.add_edge(a, c, 1);
        g.add_edge(a, c, 1);
        assert_eq!(g.nodes[a].out_edges, vec![(c, 2)]);
        assert_eq!(g.total_edge_weight(), 2);
    }

    #[test]
    fn heaviest_branch_wins() {
        // A -> C -> T  (weight 3)
        // A -> G -> T  (weight 1)
        let mut g = PoaGraph::new();
        let a = g.add_node(b'A', 0);
        let c = g.add_node(b'C', 1);
        let gg = g.add_node(b'G', 1);
        let t = g.add_node(b'T', 2);
        g.add_edge(a, c, 3);
        g.add_edge(c, t, 3);
        g.add_edge(a, gg, 1);
        g.add_edge(gg, t, 1);
        assert_eq!(g.consensus(), "ACT");
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = PoaGraph::from_sequence(b"ACGT");
        let order = g.topological_order();
        assert_eq!(order.len(), 4);
        let rank: Vec<usize> = {
            let mut r = vec![0; 4];
            for (i, &n) in order.iter().enumerate() {
                r[n] = i;
            }
            r
        };
        for (i, node) in g.nodes.iter().enumerate() {
            for &(to, _) in &node.out_edges {
                assert!(rank[i] < rank[to]);
            }
        }
    }
}
