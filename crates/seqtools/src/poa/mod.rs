//! Partial-order alignment (POA) graphs and consensus calling.
//!
//! Racon's core algorithm: reads covering a window are aligned one by one
//! into a DAG whose edge weights count how many sequences traverse each
//! transition; the consensus is the heaviest path. This is the computation
//! the ClaraGenomics CUDA kernels (`generatePOAKernel`,
//! `generateConsensusKernel`) implement on the GPU; here the same
//! algorithm runs in Rust for both the CPU and (virtually timed) GPU
//! paths.

pub mod align;
pub mod graph;

pub use align::AlignStats;
pub use graph::PoaGraph;
