//! Synthetic data generation: genomes, error-modelled long reads, and
//! nanopore squiggle signals.
//!
//! Stands in for the paper's datasets (Alzheimer IsoSeq from PacBio for
//! Racon; Acinetobacter/Klebsiella raw fast5 from Oxford Nanopore for
//! Bonito), which are multi-GB downloads we cannot ship. Everything is
//! seeded and deterministic.

pub mod genome;
pub mod reads;
pub mod squiggle;

pub use genome::random_genome;
pub use reads::{mutate_sequence, sample_reads, ErrorModel};
pub use squiggle::{simulate_squiggle, PoreModel};
