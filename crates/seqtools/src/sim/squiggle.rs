//! Nanopore squiggle (raw current signal) simulation — the `.fast5` input
//! of the Bonito basecaller.
//!
//! A pore model maps each k-mer in the pore to an expected current level;
//! the strand translocates at a variable dwell time per base, and the
//! measured signal is the level plus Gaussian noise. This reproduces the
//! structure of real basecaller input well enough to drive the network.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic k-mer → current-level pore model.
#[derive(Debug, Clone)]
pub struct PoreModel {
    /// k-mer length in the pore (R9-style models use 6).
    pub k: usize,
    /// Mean samples per base (translocation speed / sample rate).
    pub dwell_mean: f64,
    /// Standard deviation of the measurement noise, in normalized pA.
    pub noise_sd: f64,
}

impl Default for PoreModel {
    fn default() -> Self {
        PoreModel { k: 6, dwell_mean: 10.0, noise_sd: 0.08 }
    }
}

impl PoreModel {
    /// Expected (noise-free) current level for a k-mer, in [-1, 1].
    ///
    /// Uses a splitmix-style hash of the k-mer's 2-bit encoding so the
    /// mapping is fixed, smooth-ish in distribution, and dependency-free.
    pub fn level(&self, kmer: &[u8]) -> f32 {
        debug_assert_eq!(kmer.len(), self.k);
        let mut code: u64 = 0;
        for &b in kmer {
            code = (code << 2)
                | match b {
                    b'A' => 0,
                    b'C' => 1,
                    b'G' => 2,
                    b'T' => 3,
                    _ => 0, // N behaves like A
                };
        }
        let mut z = code.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        // Map to [-1, 1].
        (z as f64 / u64::MAX as f64 * 2.0 - 1.0) as f32
    }
}

/// Simulate the raw signal for `sequence`. Returns one `f32` sample per
/// measurement; the expected number of samples is
/// `sequence.len() × dwell_mean`.
pub fn simulate_squiggle(sequence: &str, model: &PoreModel, seed: u64) -> Vec<f32> {
    let bytes = sequence.as_bytes();
    if bytes.len() < model.k {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut signal = Vec::with_capacity((bytes.len() as f64 * model.dwell_mean) as usize);
    for window in bytes.windows(model.k) {
        let level = model.level(window);
        // Dwell varies 50%–150% of the mean, minimum 1 sample.
        let dwell = (model.dwell_mean * rng.gen_range(0.5f64..1.5)).max(1.0) as usize;
        for _ in 0..dwell {
            // Box–Muller Gaussian noise.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen();
            let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            signal.push(level + (gauss * model.noise_sd) as f32);
        }
    }
    signal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let m = PoreModel::default();
        let a = simulate_squiggle("ACGTACGTACGTACGT", &m, 7);
        let b = simulate_squiggle("ACGTACGTACGTACGT", &m, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn sample_count_tracks_dwell() {
        let m = PoreModel::default();
        let seq: String = std::iter::repeat_n("ACGT", 500).collect::<String>();
        let sig = simulate_squiggle(&seq, &m, 1);
        let expected = (seq.len() - m.k + 1) as f64 * m.dwell_mean;
        let ratio = sig.len() as f64 / expected;
        assert!(ratio > 0.9 && ratio < 1.1, "{ratio}");
    }

    #[test]
    fn levels_are_fixed_per_kmer() {
        let m = PoreModel::default();
        assert_eq!(m.level(b"ACGTAC"), m.level(b"ACGTAC"));
        assert_ne!(m.level(b"ACGTAC"), m.level(b"ACGTAG"));
    }

    #[test]
    fn levels_bounded() {
        let m = PoreModel::default();
        for kmer in [b"AAAAAA", b"TTTTTT", b"GCGCGC", b"ACGTAC"] {
            let l = m.level(kmer);
            assert!((-1.0..=1.0).contains(&l), "{l}");
        }
    }

    #[test]
    fn different_sequences_give_different_signals() {
        let m = PoreModel::default();
        let a = simulate_squiggle("ACGTACGTACGTACGTACGT", &m, 3);
        let b = simulate_squiggle("TGCATGCATGCATGCATGCA", &m, 3);
        assert_ne!(a, b);
    }

    #[test]
    fn too_short_sequence_is_empty() {
        let m = PoreModel::default();
        assert!(simulate_squiggle("ACG", &m, 1).is_empty());
    }

    #[test]
    fn noise_present_but_bounded() {
        let m = PoreModel { noise_sd: 0.05, ..PoreModel::default() };
        let seq: String = std::iter::repeat_n('A', 100).collect();
        let sig = simulate_squiggle(&seq, &m, 9);
        // Single k-mer level; samples scatter around it.
        let level = m.level(b"AAAAAA");
        let mean: f32 = sig.iter().sum::<f32>() / sig.len() as f32;
        assert!((mean - level).abs() < 0.05);
        assert!(sig.iter().any(|&s| (s - level).abs() > 1e-6));
    }
}
