//! Random reference genome generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BASES: [char; 4] = ['A', 'C', 'G', 'T'];

/// Generate a random genome of `len` bases with a mild GC skew, seeded for
/// reproducibility.
pub fn random_genome(len: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut genome = String::with_capacity(len);
    for _ in 0..len {
        // 42% GC content, typical for the bacterial genomes the Bonito
        // datasets cover.
        let roll: f64 = rng.gen();
        let base = if roll < 0.29 {
            'A'
        } else if roll < 0.58 {
            'T'
        } else if roll < 0.79 {
            'G'
        } else {
            'C'
        };
        genome.push(base);
    }
    genome
}

/// Uniform random base.
pub fn random_base(rng: &mut StdRng) -> char {
    BASES[rng.gen_range(0..4usize)]
}

/// A random base different from `not`.
pub fn random_other_base(rng: &mut StdRng, not: char) -> char {
    loop {
        let b = random_base(rng);
        if b != not {
            return b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(random_genome(500, 7), random_genome(500, 7));
        assert_ne!(random_genome(500, 7), random_genome(500, 8));
    }

    #[test]
    fn length_and_alphabet() {
        let g = random_genome(1000, 1);
        assert_eq!(g.len(), 1000);
        assert!(g.chars().all(|c| matches!(c, 'A' | 'C' | 'G' | 'T')));
    }

    #[test]
    fn gc_content_in_expected_band() {
        let g = random_genome(50_000, 3);
        let gc = g.chars().filter(|c| matches!(c, 'G' | 'C')).count() as f64 / g.len() as f64;
        assert!(gc > 0.38 && gc < 0.46, "gc = {gc}");
    }

    #[test]
    fn other_base_differs() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let not = random_base(&mut rng);
            assert_ne!(random_other_base(&mut rng, not), not);
        }
    }
}
