//! Long-read simulation with platform error models.

use crate::fastq::FastqRecord;
use crate::sim::genome::{random_base, random_other_base};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-base error rates of a sequencing platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Substitution probability per base.
    pub mismatch: f64,
    /// Insertion probability per base.
    pub insertion: f64,
    /// Deletion probability per base.
    pub deletion: f64,
}

impl ErrorModel {
    /// PacBio CLR-like error profile (~11% total, indel-heavy) — the
    /// Racon/IsoSeq data of the paper.
    pub const fn pacbio() -> Self {
        ErrorModel { mismatch: 0.015, insertion: 0.055, deletion: 0.04 }
    }

    /// Oxford Nanopore R9-like error profile (~9% total) — the Bonito
    /// fast5 data of the paper.
    pub const fn nanopore() -> Self {
        ErrorModel { mismatch: 0.03, insertion: 0.025, deletion: 0.035 }
    }

    /// An error-free model (for oracle tests).
    pub const fn perfect() -> Self {
        ErrorModel { mismatch: 0.0, insertion: 0.0, deletion: 0.0 }
    }

    /// Total per-base error probability.
    pub fn total(&self) -> f64 {
        self.mismatch + self.insertion + self.deletion
    }

    /// Uniformly scale all error rates.
    pub fn scaled(&self, factor: f64) -> Self {
        ErrorModel {
            mismatch: self.mismatch * factor,
            insertion: self.insertion * factor,
            deletion: self.deletion * factor,
        }
    }
}

/// Apply the error model to a template sequence.
pub fn mutate_sequence(template: &str, model: &ErrorModel, rng: &mut StdRng) -> String {
    let mut out = String::with_capacity(template.len() + template.len() / 8);
    for base in template.chars() {
        let roll: f64 = rng.gen();
        if roll < model.deletion {
            continue; // base dropped
        }
        if roll < model.deletion + model.insertion {
            out.push(random_base(rng)); // spurious insertion before base
        }
        if roll < model.deletion + model.insertion + model.mismatch {
            out.push(random_other_base(rng, base));
        } else {
            out.push(base);
        }
    }
    out
}

/// Sample `count` reads of roughly `mean_len` bases from `reference`,
/// applying `model` errors. Read positions are uniform; lengths vary ±25%.
pub fn sample_reads(
    reference: &str,
    count: usize,
    mean_len: usize,
    model: &ErrorModel,
    seed: u64,
) -> Vec<FastqRecord> {
    assert!(!reference.is_empty(), "empty reference");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reads = Vec::with_capacity(count);
    for i in 0..count {
        let len = (mean_len as f64 * rng.gen_range(0.75..1.25)) as usize;
        let len = len.clamp(1, reference.len());
        let start = rng.gen_range(0..=reference.len() - len);
        let template = &reference[start..start + len];
        let seq = mutate_sequence(template, model, &mut rng);
        // Quality proportional to the platform accuracy.
        let q = (-10.0 * model.total().max(1e-4).log10()) as u8;
        let qual: String = std::iter::repeat_n(char::from(33 + q.min(60)), seq.len()).collect();
        reads.push(FastqRecord { id: format!("read_{i}/{start}_{}", start + len), seq, qual });
    }
    reads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::genome::random_genome;

    #[test]
    fn perfect_model_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = random_genome(2000, 5);
        assert_eq!(mutate_sequence(&t, &ErrorModel::perfect(), &mut rng), t);
    }

    #[test]
    fn error_rate_roughly_matches_model() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = random_genome(200_000, 9);
        let model = ErrorModel::pacbio();
        let mutated = mutate_sequence(&t, &model, &mut rng);
        // Length shifts by insertion − deletion rate.
        let expected_len = t.len() as f64 * (1.0 + model.insertion - model.deletion);
        let delta = (mutated.len() as f64 - expected_len).abs() / t.len() as f64;
        assert!(delta < 0.01, "length off by {delta}");
    }

    #[test]
    fn reads_are_deterministic_and_sized() {
        let reference = random_genome(10_000, 11);
        let a = sample_reads(&reference, 50, 1000, &ErrorModel::nanopore(), 42);
        let b = sample_reads(&reference, 50, 1000, &ErrorModel::nanopore(), 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        for read in &a {
            assert!(read.len() > 500 && read.len() < 1500, "{}", read.len());
            assert_eq!(read.seq.len(), read.qual.len());
        }
    }

    #[test]
    fn read_ids_encode_position() {
        let reference = random_genome(5_000, 1);
        let reads = sample_reads(&reference, 3, 800, &ErrorModel::perfect(), 7);
        for read in &reads {
            let coords = read.id.split('/').nth(1).unwrap();
            let (s, e) = coords.split_once('_').unwrap();
            let (s, e): (usize, usize) = (s.parse().unwrap(), e.parse().unwrap());
            assert_eq!(&reference[s..e], read.seq); // perfect model
        }
    }

    #[test]
    fn scaled_model() {
        let m = ErrorModel::pacbio().scaled(0.5);
        assert!((m.total() - ErrorModel::pacbio().total() * 0.5).abs() < 1e-12);
    }

    #[test]
    fn short_reference_clamps_length() {
        let reads = sample_reads("ACGTACGT", 5, 100, &ErrorModel::perfect(), 3);
        for r in reads {
            assert!(r.len() <= 8);
        }
    }
}
