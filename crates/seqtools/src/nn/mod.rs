//! A small neural-network substrate: matrices with blocked parallel GEMM,
//! 1-D convolution layers, activations, and CTC greedy decoding — enough
//! to run a Bonito-style basecalling network for real.

pub mod ctc;
pub mod layers;
pub mod tensor;

pub use ctc::{ctc_greedy_decode, BASES, BLANK};
pub use layers::{Activation, Conv1d};
pub use tensor::Matrix;
