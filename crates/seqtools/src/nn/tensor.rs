//! Row-major `f32` matrices with a blocked, rayon-parallel GEMM.

use rayon::prelude::*;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Cache-blocking tile edge for GEMM.
const TILE: usize = 64;

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Build with a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// FLOPs of `a.matmul(b)`: `2·m·n·k`.
    pub fn matmul_flops(m: usize, k: usize, n: usize) -> f64 {
        2.0 * m as f64 * k as f64 * n as f64
    }

    /// Blocked parallel GEMM: `self (m×k) × other (k×n)`.
    ///
    /// Parallelizes over row tiles with rayon and walks `other` row-wise
    /// inside the kernel so all accesses are sequential.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];

        out.par_chunks_mut(TILE * n).enumerate().for_each(|(tile_idx, out_tile)| {
            let r0 = tile_idx * TILE;
            let r1 = (r0 + TILE).min(m);
            for kk0 in (0..k).step_by(TILE) {
                let kk1 = (kk0 + TILE).min(k);
                for r in r0..r1 {
                    let a_row = &self.data[r * k..(r + 1) * k];
                    let o_row = &mut out_tile[(r - r0) * n..(r - r0 + 1) * n];
                    for (kk, &a) in a_row.iter().enumerate().take(kk1).skip(kk0) {
                        if a == 0.0 {
                            continue;
                        }
                        let b_row = &other.data[kk * n..(kk + 1) * n];
                        for (o, &b) in o_row.iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                }
            }
        });
        Matrix { rows: m, cols: n, data: out }
    }

    /// Naive reference GEMM (for correctness tests and ablation benches).
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows);
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for r in 0..m {
            for c in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += self.get(r, kk) * other.get(kk, c);
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    /// Element-wise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        self.data.par_iter_mut().for_each(|v| *v = f(*v));
    }

    /// Add a per-row bias vector in place.
    pub fn add_row_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.rows, "one bias per row");
        for (r, &b) in bias.iter().enumerate() {
            for v in &mut self.data[r * self.cols..(r + 1) * self.cols] {
                *v += b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn blocked_matches_naive() {
        for (m, k, n) in [(3, 4, 5), (64, 64, 64), (65, 130, 17), (1, 100, 1)] {
            let a = random_matrix(m, k, 1);
            let b = random_matrix(k, n, 2);
            let fast = a.matmul(&b);
            let slow = a.matmul_naive(&b);
            for i in 0..m * n {
                assert!(
                    (fast.as_slice()[i] - slow.as_slice()[i]).abs() < 1e-3,
                    "({m},{k},{n}) idx {i}"
                );
            }
        }
    }

    #[test]
    fn identity_multiplication() {
        let a = random_matrix(10, 10, 3);
        let eye = Matrix::from_fn(10, 10, |r, c| if r == c { 1.0 } else { 0.0 });
        let prod = a.matmul(&eye);
        for i in 0..100 {
            assert!((prod.as_slice()[i] - a.as_slice()[i]).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn bias_and_map() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_bias(&[1.0, -1.0]);
        assert_eq!(m.row(0), &[1.0, 1.0, 1.0]);
        assert_eq!(m.row(1), &[-1.0, -1.0, -1.0]);
        m.map_inplace(|v| v * 2.0);
        assert_eq!(m.row(1), &[-2.0, -2.0, -2.0]);
    }

    #[test]
    fn flops_formula() {
        assert_eq!(Matrix::matmul_flops(2, 3, 4), 48.0);
    }

    #[test]
    fn accessors() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 0, 5.0);
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
    }
}
