//! 1-D convolution layers (im2col + GEMM) and activations.

use crate::nn::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    None,
    /// `x·sigmoid(x)` — Bonito's convolution activation.
    Swish,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear.
    Relu,
}

impl Activation {
    /// Apply to one value.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Swish => x / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
        }
    }
}

/// A 1-D convolution: `c_in` input channels → `c_out` output channels,
/// kernel width `k`, stride `s`, zero ("same"-style) padding of `k/2`.
#[derive(Debug, Clone)]
pub struct Conv1d {
    /// Weights laid out as a `(c_out) × (c_in·k)` matrix (GEMM-ready).
    pub weight: Matrix,
    /// Per-output-channel bias.
    pub bias: Vec<f32>,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Kernel width.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Activation applied after the bias.
    pub activation: Activation,
}

impl Conv1d {
    /// Initialize with deterministic Xavier-style random weights.
    pub fn new_seeded(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        activation: Activation,
        seed: u64,
    ) -> Self {
        assert!(kernel % 2 == 1, "odd kernels only (symmetric padding)");
        assert!(stride >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = (2.0 / (c_in * kernel) as f32).sqrt();
        let weight = Matrix::from_fn(c_out, c_in * kernel, |_, _| rng.gen_range(-scale..scale));
        let bias = (0..c_out).map(|_| rng.gen_range(-0.05..0.05)).collect();
        Conv1d { weight, bias, c_in, c_out, kernel, stride, activation }
    }

    /// Output length for an input of `t` samples.
    pub fn out_len(&self, t: usize) -> usize {
        if t == 0 {
            0
        } else {
            (t - 1) / self.stride + 1
        }
    }

    /// FLOPs for an input of `t` samples.
    pub fn flops(&self, t: usize) -> f64 {
        Matrix::matmul_flops(self.c_out, self.c_in * self.kernel, self.out_len(t))
    }

    /// Forward pass. `input` is `(c_in) × t`; output is
    /// `(c_out) × out_len(t)`.
    pub fn forward(&self, input: &Matrix) -> Matrix {
        assert_eq!(input.rows(), self.c_in, "channel mismatch");
        let t = input.cols();
        let t_out = self.out_len(t);
        let pad = self.kernel / 2;

        // im2col: columns of the unrolled input, shape (c_in·k) × t_out.
        let mut col = Matrix::zeros(self.c_in * self.kernel, t_out);
        for c in 0..self.c_in {
            let row = input.row(c);
            for kk in 0..self.kernel {
                for o in 0..t_out {
                    let pos = o * self.stride + kk;
                    if pos < pad || pos - pad >= t {
                        continue; // zero padding
                    }
                    col.set(c * self.kernel + kk, o, row[pos - pad]);
                }
            }
        }

        let mut out = self.weight.matmul(&col);
        out.add_row_bias(&self.bias);
        let act = self.activation;
        out.map_inplace(move |v| act.apply(v));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_and_stride() {
        let conv = Conv1d::new_seeded(1, 4, 5, 1, Activation::None, 1);
        let input = Matrix::zeros(1, 100);
        let out = conv.forward(&input);
        assert_eq!(out.rows(), 4);
        assert_eq!(out.cols(), 100);

        let strided = Conv1d::new_seeded(1, 4, 5, 2, Activation::None, 1);
        assert_eq!(strided.forward(&input).cols(), 50);
        assert_eq!(strided.out_len(101), 51);
        assert_eq!(strided.out_len(0), 0);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // Hand-build a kernel-3 conv whose center tap is 1.
        let mut conv = Conv1d::new_seeded(1, 1, 3, 1, Activation::None, 1);
        conv.weight = Matrix::from_vec(1, 3, vec![0.0, 1.0, 0.0]);
        conv.bias = vec![0.0];
        let input = Matrix::from_vec(1, 5, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let out = conv.forward(&input);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn padding_zeroes_edges() {
        let mut conv = Conv1d::new_seeded(1, 1, 3, 1, Activation::None, 1);
        conv.weight = Matrix::from_vec(1, 3, vec![1.0, 0.0, 0.0]); // left tap
        conv.bias = vec![0.0];
        let input = Matrix::from_vec(1, 3, vec![7.0, 8.0, 9.0]);
        let out = conv.forward(&input);
        // First output sees the zero pad.
        assert_eq!(out.row(0), &[0.0, 7.0, 8.0]);
    }

    #[test]
    fn activations() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert!((Activation::Swish.apply(0.0)).abs() < 1e-9);
        assert!(Activation::Tanh.apply(100.0) <= 1.0);
        assert_eq!(Activation::None.apply(1.5), 1.5);
    }

    #[test]
    fn deterministic_init() {
        let a = Conv1d::new_seeded(2, 3, 5, 1, Activation::Swish, 42);
        let b = Conv1d::new_seeded(2, 3, 5, 1, Activation::Swish, 42);
        assert_eq!(a.weight, b.weight);
        assert_eq!(a.bias, b.bias);
    }

    #[test]
    fn flops_counts_match_shapes() {
        let conv = Conv1d::new_seeded(16, 32, 5, 2, Activation::Swish, 1);
        let t = 1000;
        assert_eq!(conv.flops(t), 2.0 * 32.0 * (16.0 * 5.0) * 500.0);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_channels_panics() {
        let conv = Conv1d::new_seeded(2, 3, 5, 1, Activation::None, 1);
        let _ = conv.forward(&Matrix::zeros(3, 10));
    }
}
