//! CTC greedy decoding.

/// Class index of the CTC blank.
pub const BLANK: usize = 0;

/// Base alphabet for classes 1..=4.
pub const BASES: [char; 4] = ['A', 'C', 'G', 'T'];

/// Greedy CTC decode: per-timestep argmax, collapse consecutive repeats,
/// drop blanks. `logits` is `(classes) × t` with class 0 = blank and
/// classes 1–4 = A/C/G/T.
pub fn ctc_greedy_decode(logits: &crate::nn::tensor::Matrix) -> String {
    assert_eq!(logits.rows(), 5, "expected 5 classes (blank + ACGT)");
    let t = logits.cols();
    let mut out = String::new();
    let mut prev_class = BLANK;
    for step in 0..t {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for class in 0..5 {
            let v = logits.get(class, step);
            if v > best_v {
                best_v = v;
                best = class;
            }
        }
        if best != BLANK && best != prev_class {
            out.push(BASES[best - 1]);
        }
        prev_class = best;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::tensor::Matrix;

    /// Build logits that argmax to the given class sequence.
    fn logits_for(classes: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(5, classes.len());
        for (t, &c) in classes.iter().enumerate() {
            m.set(c, t, 10.0);
        }
        m
    }

    #[test]
    fn collapses_repeats() {
        // A A A C C blank G → "ACG"
        let m = logits_for(&[1, 1, 1, 2, 2, 0, 3]);
        assert_eq!(ctc_greedy_decode(&m), "ACG");
    }

    #[test]
    fn blank_separates_repeats() {
        // A blank A → "AA"
        let m = logits_for(&[1, 0, 1]);
        assert_eq!(ctc_greedy_decode(&m), "AA");
    }

    #[test]
    fn all_blank_is_empty() {
        let m = logits_for(&[0, 0, 0, 0]);
        assert_eq!(ctc_greedy_decode(&m), "");
    }

    #[test]
    fn empty_input() {
        let m = Matrix::zeros(5, 0);
        assert_eq!(ctc_greedy_decode(&m), "");
    }

    #[test]
    fn full_alphabet() {
        let m = logits_for(&[1, 2, 3, 4]);
        assert_eq!(ctc_greedy_decode(&m), "ACGT");
    }

    #[test]
    #[should_panic(expected = "5 classes")]
    fn wrong_class_count_panics() {
        let m = Matrix::zeros(4, 3);
        let _ = ctc_greedy_decode(&m);
    }
}
