//! PAF — the Pairwise mApping Format.
//!
//! Real Racon consumes read→assembly overlaps as PAF (minimap2's output
//! format): 12 mandatory tab-separated columns. This module converts the
//! mapper's [`Overlap`]s to and from PAF text, so the pipeline's
//! intermediate data has the same shape as the paper's.

use crate::mapper::Overlap;
use std::fmt;

/// One PAF line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PafRecord {
    /// Query (read) name.
    pub query_name: String,
    /// Query length.
    pub query_len: usize,
    /// Query start (0-based).
    pub query_start: usize,
    /// Query end (exclusive).
    pub query_end: usize,
    /// `+` or `-`.
    pub strand: char,
    /// Target name.
    pub target_name: String,
    /// Target length.
    pub target_len: usize,
    /// Target start.
    pub target_start: usize,
    /// Target end (exclusive).
    pub target_end: usize,
    /// Number of matching bases (we report minimizer hits × k).
    pub matches: usize,
    /// Alignment block length.
    pub block_len: usize,
    /// Mapping quality (0–255).
    pub mapq: u8,
}

/// Error from PAF parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PafError(pub String);

impl fmt::Display for PafError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PAF error: {}", self.0)
    }
}

impl std::error::Error for PafError {}

impl PafRecord {
    /// Build a record from a mapper overlap.
    pub fn from_overlap(
        ovl: &Overlap,
        query_name: impl Into<String>,
        query_len: usize,
        target_name: impl Into<String>,
        target_len: usize,
        k: usize,
    ) -> Self {
        let block_len = (ovl.read_end - ovl.read_start).max(ovl.target_end - ovl.target_start);
        PafRecord {
            query_name: query_name.into(),
            query_len,
            query_start: ovl.read_start,
            query_end: ovl.read_end,
            strand: '+',
            target_name: target_name.into(),
            target_len,
            target_start: ovl.target_start,
            target_end: ovl.target_end,
            matches: ovl.hits * k,
            block_len,
            mapq: 60,
        }
    }

    /// Back to a mapper overlap (`read_idx` supplied by the caller).
    pub fn to_overlap(&self, read_idx: usize) -> Overlap {
        Overlap {
            read_idx,
            read_start: self.query_start,
            read_end: self.query_end,
            target_start: self.target_start,
            target_end: self.target_end,
            hits: self.matches.max(1),
        }
    }

    /// Serialize as one PAF line (no trailing newline).
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.query_name,
            self.query_len,
            self.query_start,
            self.query_end,
            self.strand,
            self.target_name,
            self.target_len,
            self.target_start,
            self.target_end,
            self.matches,
            self.block_len,
            self.mapq
        )
    }

    /// Parse one PAF line (extra optional columns are ignored).
    pub fn parse_line(line: &str) -> Result<PafRecord, PafError> {
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 12 {
            return Err(PafError(format!("expected 12 columns, found {}", cols.len())));
        }
        let num = |i: usize| -> Result<usize, PafError> {
            cols[i].parse().map_err(|_| PafError(format!("bad number in column {}", i + 1)))
        };
        let strand = match cols[4] {
            "+" => '+',
            "-" => '-',
            other => return Err(PafError(format!("bad strand {other:?}"))),
        };
        let record = PafRecord {
            query_name: cols[0].to_string(),
            query_len: num(1)?,
            query_start: num(2)?,
            query_end: num(3)?,
            strand,
            target_name: cols[5].to_string(),
            target_len: num(6)?,
            target_start: num(7)?,
            target_end: num(8)?,
            matches: num(9)?,
            block_len: num(10)?,
            mapq: num(11)?.min(255) as u8,
        };
        if record.query_start > record.query_end
            || record.query_end > record.query_len
            || record.target_start > record.target_end
            || record.target_end > record.target_len
        {
            return Err(PafError("inconsistent coordinates".to_string()));
        }
        Ok(record)
    }
}

/// Serialize many records.
pub fn write_paf(records: &[PafRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_line());
        out.push('\n');
    }
    out
}

/// Parse a PAF document (blank lines skipped).
pub fn parse_paf(text: &str) -> Result<Vec<PafRecord>, PafError> {
    text.lines().filter(|l| !l.trim().is_empty()).map(PafRecord::parse_line).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{MapperConfig, TargetIndex};
    use crate::sim::genome::random_genome;

    fn sample_record() -> PafRecord {
        PafRecord {
            query_name: "read_1".into(),
            query_len: 2_000,
            query_start: 15,
            query_end: 1_980,
            strand: '+',
            target_name: "draft".into(),
            target_len: 30_000,
            target_start: 5_010,
            target_end: 6_995,
            matches: 615,
            block_len: 1_985,
            mapq: 60,
        }
    }

    #[test]
    fn roundtrip_single_record() {
        let r = sample_record();
        assert_eq!(PafRecord::parse_line(&r.to_line()).unwrap(), r);
    }

    #[test]
    fn roundtrip_document() {
        let records = vec![sample_record(), {
            let mut r = sample_record();
            r.query_name = "read_2".into();
            r.strand = '-';
            r
        }];
        let text = write_paf(&records);
        assert_eq!(parse_paf(&text).unwrap(), records);
    }

    #[test]
    fn parse_errors() {
        assert!(PafRecord::parse_line("too\tfew\tcolumns").is_err());
        let mut bad = sample_record().to_line();
        bad = bad.replace("\t+\t", "\t?\t");
        assert!(PafRecord::parse_line(&bad).is_err());
        // end < start
        let r = PafRecord { query_start: 100, query_end: 10, ..sample_record() };
        assert!(PafRecord::parse_line(&r.to_line()).is_err());
    }

    #[test]
    fn overlap_conversion_roundtrip() {
        let genome = random_genome(10_000, 3);
        let index = TargetIndex::build(&genome, MapperConfig::default());
        let read = genome[2_000..4_000].to_string();
        let ovl = index.map_read(0, &read).unwrap();
        let paf = PafRecord::from_overlap(&ovl, "read_0", read.len(), "draft", genome.len(), 11);
        assert_eq!(paf.query_start, ovl.read_start);
        assert_eq!(paf.target_end, ovl.target_end);
        let back = paf.to_overlap(0);
        assert_eq!(back.read_start, ovl.read_start);
        assert_eq!(back.read_end, ovl.read_end);
        assert_eq!(back.target_start, ovl.target_start);
        assert_eq!(back.target_end, ovl.target_end);
    }

    #[test]
    fn mapper_output_serializes_cleanly() {
        let genome = random_genome(20_000, 5);
        let index = TargetIndex::build(&genome, MapperConfig::default());
        let reads: Vec<String> =
            (0..5).map(|i| genome[i * 2_000..i * 2_000 + 3_000].to_string()).collect();
        let overlaps = index.map_all(&reads);
        let records: Vec<PafRecord> = overlaps
            .iter()
            .map(|o| {
                PafRecord::from_overlap(
                    o,
                    format!("read_{}", o.read_idx),
                    reads[o.read_idx].len(),
                    "draft",
                    genome.len(),
                    11,
                )
            })
            .collect();
        let text = write_paf(&records);
        assert_eq!(parse_paf(&text).unwrap().len(), overlaps.len());
        assert_eq!(text.lines().count(), overlaps.len());
    }
}
