//! FASTA parsing and writing.

use std::fmt;

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header line without the `>`.
    pub id: String,
    /// Sequence (uppercase ACGTN).
    pub seq: String,
}

impl FastaRecord {
    /// Create a record.
    pub fn new(id: impl Into<String>, seq: impl Into<String>) -> Self {
        FastaRecord { id: id.into(), seq: seq.into() }
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// Error from FASTA parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaError(pub String);

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FASTA error: {}", self.0)
    }
}

impl std::error::Error for FastaError {}

/// Parse FASTA text into records. Multi-line sequences are concatenated;
/// blank lines are ignored; sequence characters are validated and
/// uppercased.
pub fn parse_fasta(text: &str) -> Result<Vec<FastaRecord>, FastaError> {
    let mut records = Vec::new();
    let mut current: Option<FastaRecord> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(rec) = current.take() {
                if rec.seq.is_empty() {
                    return Err(FastaError(format!("record {:?} has no sequence", rec.id)));
                }
                records.push(rec);
            }
            let id = header.trim();
            if id.is_empty() {
                return Err(FastaError(format!("empty header at line {}", lineno + 1)));
            }
            current = Some(FastaRecord::new(id, String::new()));
        } else {
            let rec = current.as_mut().ok_or_else(|| {
                FastaError(format!("sequence before header at line {}", lineno + 1))
            })?;
            for ch in line.chars() {
                let up = ch.to_ascii_uppercase();
                if !matches!(up, 'A' | 'C' | 'G' | 'T' | 'N') {
                    return Err(FastaError(format!(
                        "illegal character {ch:?} at line {}",
                        lineno + 1
                    )));
                }
                rec.seq.push(up);
            }
        }
    }
    if let Some(rec) = current {
        if rec.seq.is_empty() {
            return Err(FastaError(format!("record {:?} has no sequence", rec.id)));
        }
        records.push(rec);
    }
    Ok(records)
}

/// Write records as FASTA with `width`-column wrapping (0 = no wrapping).
pub fn write_fasta(records: &[FastaRecord], width: usize) -> String {
    let mut out = String::new();
    for rec in records {
        out.push('>');
        out.push_str(&rec.id);
        out.push('\n');
        if width == 0 {
            out.push_str(&rec.seq);
            out.push('\n');
        } else {
            for chunk in rec.seq.as_bytes().chunks(width) {
                out.push_str(std::str::from_utf8(chunk).expect("ASCII sequence"));
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let recs = parse_fasta(">r1 desc\nACGT\nacgt\n>r2\nNNNN\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "r1 desc");
        assert_eq!(recs[0].seq, "ACGTACGT"); // multi-line + uppercased
        assert_eq!(recs[1].seq, "NNNN");
    }

    #[test]
    fn roundtrip_with_wrapping() {
        let recs = vec![FastaRecord::new("x", "ACGTACGTACGT")];
        for width in [0, 4, 5, 100] {
            let text = write_fasta(&recs, width);
            assert_eq!(parse_fasta(&text).unwrap(), recs, "width {width}");
        }
    }

    #[test]
    fn errors() {
        assert!(parse_fasta("ACGT\n").is_err()); // sequence before header
        assert!(parse_fasta(">\nACGT\n").is_err()); // empty header
        assert!(parse_fasta(">x\nACXT\n").is_err()); // illegal char
        assert!(parse_fasta(">x\n>y\nACGT\n").is_err()); // empty record
        assert!(parse_fasta(">x\nACGT\n>y\n").is_err()); // trailing empty record
    }

    #[test]
    fn empty_input_is_empty_vec() {
        assert!(parse_fasta("").unwrap().is_empty());
        assert!(parse_fasta("\n\n").unwrap().is_empty());
    }
}
