//! Minimizer-based read-to-draft mapping.
//!
//! Racon consumes read→assembly overlaps (PAF from minimap). This module
//! is that mapper: extract `(w, k)` minimizers from the target, index
//! them, look up each read's minimizers, and chain co-diagonal hits into
//! [`Overlap`] records.

use std::collections::HashMap;

/// One read→target mapping (a PAF-like record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Overlap {
    /// Index of the read in the input set.
    pub read_idx: usize,
    /// Start of the mapped region on the read.
    pub read_start: usize,
    /// End (exclusive) on the read.
    pub read_end: usize,
    /// Start on the target.
    pub target_start: usize,
    /// End (exclusive) on the target.
    pub target_end: usize,
    /// Number of minimizer hits supporting the chain.
    pub hits: usize,
}

/// A `(position, hash)` minimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Minimizer {
    /// Position of the k-mer in the sequence.
    pub pos: usize,
    /// 64-bit hash of the k-mer.
    pub hash: u64,
}

/// Mapper configuration.
#[derive(Debug, Clone, Copy)]
pub struct MapperConfig {
    /// k-mer length.
    pub k: usize,
    /// Minimizer window length.
    pub w: usize,
    /// Maximum |read_diag − hit_diag| for chaining.
    pub diag_slack: usize,
    /// Minimum chained hits to emit an overlap.
    pub min_hits: usize,
}

impl Default for MapperConfig {
    fn default() -> Self {
        // k = 11 keeps enough exact seed matches when both the read and
        // the draft carry ~10% error (their pairwise divergence is ~20%);
        // w = 5 samples densely enough to chain reliably.
        MapperConfig { k: 11, w: 5, diag_slack: 100, min_hits: 4 }
    }
}

fn kmer_hash(kmer: &[u8]) -> u64 {
    let mut code: u64 = 0;
    for &b in kmer {
        code = (code << 2)
            | match b {
                b'A' => 0,
                b'C' => 1,
                b'G' => 2,
                _ => 3,
            };
    }
    // Invertible finalizer so adjacent k-mers decorrelate.
    let mut z = code.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z ^ (z >> 27)
}

/// Extract `(w, k)` minimizers: for every window of `w` consecutive
/// k-mers, keep the one with the smallest hash (deduplicated).
pub fn minimizers(seq: &str, k: usize, w: usize) -> Vec<Minimizer> {
    let bytes = seq.as_bytes();
    if bytes.len() < k {
        return Vec::new();
    }
    let hashes: Vec<u64> = bytes.windows(k).map(kmer_hash).collect();
    let n = hashes.len();
    let w = w.max(1);
    let mut out: Vec<Minimizer> = Vec::new();
    for win_start in 0..n.saturating_sub(w - 1) {
        let (best_off, &best_hash) = hashes[win_start..win_start + w]
            .iter()
            .enumerate()
            .min_by_key(|&(_, h)| h)
            .expect("non-empty window");
        let pos = win_start + best_off;
        if out.last().map(|m| m.pos) != Some(pos) {
            out.push(Minimizer { pos, hash: best_hash });
        }
    }
    if out.is_empty() && n > 0 {
        // Sequence shorter than one window: keep its best k-mer.
        let (pos, &hash) = hashes.iter().enumerate().min_by_key(|&(_, h)| h).expect("non-empty");
        out.push(Minimizer { pos, hash });
    }
    out
}

/// An index over a target sequence's minimizers.
#[derive(Debug, Clone)]
pub struct TargetIndex {
    index: HashMap<u64, Vec<usize>>,
    config: MapperConfig,
    target_len: usize,
}

impl TargetIndex {
    /// Build the index for `target`.
    pub fn build(target: &str, config: MapperConfig) -> Self {
        let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
        for m in minimizers(target, config.k, config.w) {
            index.entry(m.hash).or_default().push(m.pos);
        }
        TargetIndex { index, config, target_len: target.len() }
    }

    /// Number of distinct minimizer hashes indexed.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Map one read against the target. Returns the best chain (if any).
    pub fn map_read(&self, read_idx: usize, read: &str) -> Option<Overlap> {
        let read_mins = minimizers(read, self.config.k, self.config.w);
        // Collect (diag, read_pos, target_pos) anchor hits.
        let mut anchors: Vec<(i64, usize, usize)> = Vec::new();
        for m in &read_mins {
            if let Some(positions) = self.index.get(&m.hash) {
                for &tpos in positions {
                    anchors.push((tpos as i64 - m.pos as i64, m.pos, tpos));
                }
            }
        }
        if anchors.is_empty() {
            return None;
        }
        // Bin anchors by diagonal; the densest slack-window of diagonals
        // wins (a simple, deterministic chainer).
        anchors.sort_unstable();
        let slack = self.config.diag_slack as i64;
        let mut best: Option<(usize, usize, usize)> = None; // (hits, lo, hi) indices
        let mut lo = 0;
        for hi in 0..anchors.len() {
            while anchors[hi].0 - anchors[lo].0 > slack {
                lo += 1;
            }
            let hits = hi - lo + 1;
            if best.map(|(h, _, _)| hits > h).unwrap_or(true) {
                best = Some((hits, lo, hi));
            }
        }
        let (hits, lo, hi) = best.expect("anchors non-empty");
        if hits < self.config.min_hits {
            return None;
        }
        let chain = &anchors[lo..=hi];
        let read_start = chain.iter().map(|a| a.1).min().expect("non-empty chain");
        let read_end = chain.iter().map(|a| a.1).max().expect("non-empty chain") + self.config.k;
        let target_start = chain.iter().map(|a| a.2).min().expect("non-empty chain");
        let target_end = (chain.iter().map(|a| a.2).max().expect("non-empty chain")
            + self.config.k)
            .min(self.target_len);
        Some(Overlap { read_idx, read_start, read_end, target_start, target_end, hits })
    }

    /// Map every read; reads that fail to map are skipped.
    pub fn map_all(&self, reads: &[String]) -> Vec<Overlap> {
        reads.iter().enumerate().filter_map(|(i, r)| self.map_read(i, r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::genome::random_genome;
    use crate::sim::reads::{sample_reads, ErrorModel};

    #[test]
    fn minimizers_deterministic_and_ordered() {
        let g = random_genome(2000, 3);
        let a = minimizers(&g, 15, 10);
        let b = minimizers(&g, 15, 10);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].pos < w[1].pos));
        // Density ≈ 2/(w+1).
        let density = a.len() as f64 / g.len() as f64;
        assert!(density > 0.1 && density < 0.35, "{density}");
    }

    #[test]
    fn short_sequence_minimizers() {
        assert!(minimizers("ACGT", 15, 10).is_empty());
        let m = minimizers(&random_genome(20, 1), 15, 10);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn perfect_read_maps_to_its_origin() {
        let genome = random_genome(20_000, 17);
        let index = TargetIndex::build(&genome, MapperConfig::default());
        let read = genome[5_000..7_000].to_string();
        let ovl = index.map_read(0, &read).expect("should map");
        assert!(ovl.target_start.abs_diff(5_000) < 50, "{ovl:?}");
        assert!(ovl.target_end.abs_diff(7_000) < 50, "{ovl:?}");
        assert!(ovl.hits > 50);
    }

    #[test]
    fn noisy_reads_map_near_their_origin() {
        let genome = random_genome(30_000, 23);
        let index = TargetIndex::build(&genome, MapperConfig::default());
        let reads = sample_reads(&genome, 30, 2_000, &ErrorModel::pacbio(), 99);
        let mut mapped = 0;
        for (i, read) in reads.iter().enumerate() {
            if let Some(ovl) = index.map_read(i, &read.seq) {
                mapped += 1;
                let true_start: usize = read
                    .id
                    .split('/')
                    .nth(1)
                    .and_then(|c| c.split('_').next())
                    .and_then(|s| s.parse().ok())
                    .expect("encoded position");
                assert!(
                    ovl.target_start.abs_diff(true_start) < 400,
                    "read {i}: mapped {} vs true {true_start}",
                    ovl.target_start
                );
            }
        }
        // PacBio-error reads should nearly all map.
        assert!(mapped >= 27, "only {mapped}/30 mapped");
    }

    #[test]
    fn unrelated_read_does_not_map() {
        let genome = random_genome(20_000, 31);
        let other = random_genome(2_000, 777);
        let index = TargetIndex::build(&genome, MapperConfig::default());
        assert!(index.map_read(0, &other).is_none());
    }

    #[test]
    fn map_all_keeps_read_indices() {
        let genome = random_genome(10_000, 41);
        let index = TargetIndex::build(&genome, MapperConfig::default());
        let reads = vec![
            genome[1_000..2_500].to_string(),
            random_genome(1_500, 888), // unmappable
            genome[6_000..7_500].to_string(),
        ];
        let overlaps = index.map_all(&reads);
        let idxs: Vec<usize> = overlaps.iter().map(|o| o.read_idx).collect();
        assert_eq!(idxs, vec![0, 2]);
    }

    #[test]
    fn empty_inputs() {
        let index = TargetIndex::build("", MapperConfig::default());
        assert!(index.is_empty());
        assert!(index.map_read(0, "ACGTACGTACGTACGTACGT").is_none());
    }
}
