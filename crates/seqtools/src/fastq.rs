//! FASTQ parsing and writing (Sanger/Phred+33 qualities).

use std::fmt;

/// One FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Read id without the `@`.
    pub id: String,
    /// Sequence.
    pub seq: String,
    /// Phred+33 quality string, same length as `seq`.
    pub qual: String,
}

impl FastqRecord {
    /// Create a record, panicking if lengths mismatch (use `try_new` for
    /// fallible construction).
    pub fn new(id: impl Into<String>, seq: impl Into<String>, qual: impl Into<String>) -> Self {
        let rec = FastqRecord { id: id.into(), seq: seq.into(), qual: qual.into() };
        assert_eq!(rec.seq.len(), rec.qual.len(), "seq/qual length mismatch");
        rec
    }

    /// Read length.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the read is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Mean Phred quality score.
    pub fn mean_quality(&self) -> f64 {
        if self.qual.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.qual.bytes().map(|b| (b - 33) as u64).sum();
        sum as f64 / self.qual.len() as f64
    }
}

/// Error from FASTQ parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqError(pub String);

impl fmt::Display for FastqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FASTQ error: {}", self.0)
    }
}

impl std::error::Error for FastqError {}

/// Parse 4-line FASTQ records.
pub fn parse_fastq(text: &str) -> Result<Vec<FastqRecord>, FastqError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut records = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim().is_empty() {
            i += 1;
            continue;
        }
        if i + 3 >= lines.len() {
            return Err(FastqError(format!("truncated record at line {}", i + 1)));
        }
        let id = lines[i]
            .strip_prefix('@')
            .ok_or_else(|| FastqError(format!("expected @ at line {}", i + 1)))?
            .trim()
            .to_string();
        let seq = lines[i + 1].trim().to_string();
        if !lines[i + 2].starts_with('+') {
            return Err(FastqError(format!("expected + at line {}", i + 3)));
        }
        let qual = lines[i + 3].trim().to_string();
        if seq.len() != qual.len() {
            return Err(FastqError(format!(
                "seq/qual length mismatch for {id:?} ({} vs {})",
                seq.len(),
                qual.len()
            )));
        }
        if let Some(bad) =
            seq.chars().find(|c| !matches!(c.to_ascii_uppercase(), 'A' | 'C' | 'G' | 'T' | 'N'))
        {
            return Err(FastqError(format!("illegal character {bad:?} in {id:?}")));
        }
        records.push(FastqRecord { id, seq: seq.to_ascii_uppercase(), qual });
        i += 4;
    }
    Ok(records)
}

/// Write records as 4-line FASTQ.
pub fn write_fastq(records: &[FastqRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push('@');
        out.push_str(&rec.id);
        out.push('\n');
        out.push_str(&rec.seq);
        out.push_str("\n+\n");
        out.push_str(&rec.qual);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let recs = vec![
            FastqRecord::new("read1", "ACGT", "IIII"),
            FastqRecord::new("read2", "GGCC", "!!!!"),
        ];
        let text = write_fastq(&recs);
        assert_eq!(parse_fastq(&text).unwrap(), recs);
    }

    #[test]
    fn mean_quality() {
        let rec = FastqRecord::new("r", "AC", "!I"); // Q0 and Q40
        assert!((rec.mean_quality() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn errors() {
        assert!(parse_fastq("@r\nACGT\n+\nIII\n").is_err()); // length mismatch
        assert!(parse_fastq("@r\nACGT\n").is_err()); // truncated
        assert!(parse_fastq("r\nACGT\n+\nIIII\n").is_err()); // missing @
        assert!(parse_fastq("@r\nACGT\nIIII\nIIII\n").is_err()); // missing +
        assert!(parse_fastq("@r\nACXT\n+\nIIII\n").is_err()); // bad base
    }

    #[test]
    fn blank_lines_skipped() {
        let recs = parse_fastq("\n@r\nAC\n+\nII\n\n").unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn constructor_validates() {
        let _ = FastqRecord::new("r", "ACGT", "II");
    }
}
