//! Million-user load generation for the GYAN stack.
//!
//! This crate turns one `u64` seed into a full soak test: a
//! non-homogeneous Poisson arrival process (diurnal sinusoid, burst
//! windows) assigns heavy-tailed jobs to a skewed population of up to
//! 10^6 registered users, and the [`driver`] pushes that schedule
//! through the *real* `GalaxyApp`/`QueueEngine`/`install_gyan` (or
//! `install_fleet`) stack on the shared virtual clock — with the stock
//! SLO alert rules evaluated at every wave barrier and the simtest
//! structural invariants checked alongside.
//!
//! Three properties make it a load *harness* rather than a benchmark:
//!
//! * **replayable** — every report and failure reproduces from
//!   `LOADTEST_SEED=<n>` alone;
//! * **asserting** — a healthy scenario must keep
//!   [`DEFAULT_SLO_RULES`] quiet, and a failure carries the
//!   fired-alert list plus a flight-recorder dump;
//! * **scalable** — the queue's event-driven dispatch backend means
//!   10^5 in-flight jobs need a ready-queue entry each, not an OS
//!   thread each, and the recorder's retention cap keeps observability
//!   memory bounded.
//!
//! Environment knobs (all optional):
//!
//! * `LOADTEST_USERS` — user population for the soak tests;
//! * `LOADTEST_SEED` — pin one reproducing seed;
//! * `LOADTEST_CASES` — seeds swept per scenario shape.

pub mod arrival;
pub mod driver;
pub mod mix;
pub mod scenario;

pub use arrival::{ArrivalProcess, Burst, LoadProfile};
pub use driver::{
    run_scenario, LoadExecutor, LoadFailure, LoadOptions, LoadReport, DEFAULT_SLO_RULES,
    FAIL_GPU_ENV, RUNTIME_ENV,
};
pub use mix::{BoundedPareto, UserMix};
pub use scenario::{LoadJob, LoadScenario, MemoryModel, Topology, CPU_TOOL_ID, GPU_TOOL_ID};

// The knob grammar is shared with simtest (`SIMTEST_*` ↔ `LOADTEST_*`).
pub use simtest::{parse_cases, parse_seed};

/// User population from `LOADTEST_USERS`, else `default`.
pub fn env_users(default: usize) -> usize {
    parse_cases(std::env::var("LOADTEST_USERS").ok().as_deref(), default)
}

/// Pinned seed from `LOADTEST_SEED`, if set.
pub fn env_seed() -> Option<u64> {
    parse_seed(std::env::var("LOADTEST_SEED").ok().as_deref())
}

/// Seed-sweep width from `LOADTEST_CASES`, else `default`.
pub fn env_cases(default: usize) -> usize {
    parse_cases(std::env::var("LOADTEST_CASES").ok().as_deref(), default)
}

#[cfg(test)]
mod tests {
    #[test]
    fn knob_parsing_reuses_the_simtest_grammar() {
        assert_eq!(super::parse_cases(Some("250"), 10), 250);
        assert_eq!(super::parse_cases(Some("0"), 10), 10, "zero users is meaningless");
        assert_eq!(super::parse_cases(None, 10_000), 10_000);
        assert_eq!(super::parse_seed(Some("99")), Some(99));
        assert_eq!(super::parse_seed(Some("bogus")), None);
    }
}
