//! Seeded non-homogeneous Poisson arrival processes.
//!
//! Real Galaxy servers see diurnal load — a sinusoidal swell over the
//! day — punctuated by bursts (a course assignment due, a pipeline
//! re-run). [`LoadProfile`] describes that shape as a time-varying rate
//! λ(t); [`ArrivalProcess`] samples it by *thinning*: candidate events
//! are drawn from a homogeneous Poisson process at the profile's peak
//! rate, and each candidate at time `t` is kept with probability
//! λ(t)/λ_peak. Thinning is exact (the kept events are a Poisson
//! process with intensity λ) and needs O(1) state, so a million-user
//! schedule streams without materializing anything but the output.
//!
//! Everything is deterministic from the seed: the same
//! `(profile, horizon, seed)` triple always yields the same event
//! stream, which is what makes a load-test failure reproducible from
//! `LOADTEST_SEED=<n>` alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A window of elevated load: while `t ∈ [start_s, start_s + duration_s)`
/// the instantaneous rate is multiplied by `multiplier`.
#[derive(Debug, Clone, PartialEq)]
pub struct Burst {
    /// Window start (seconds on the virtual clock).
    pub start_s: f64,
    /// Window length in seconds.
    pub duration_s: f64,
    /// Rate multiplier while the window is open.
    pub multiplier: f64,
}

impl Burst {
    /// Whether `t` falls inside this burst window.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start_s && t < self.start_s + self.duration_s
    }
}

/// Time-varying arrival rate: a base rate modulated by a diurnal
/// sinusoid and multiplied through any open burst windows.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadProfile {
    /// Mean arrival rate in jobs per virtual second. Must be positive.
    pub base_rate: f64,
    /// Diurnal swing as a fraction of the base rate (0 = flat, 0.6 =
    /// ±60% over the period). Clamped conceptually to `[0, 1)` so the
    /// rate never goes negative.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal sinusoid in seconds (one "day").
    pub period_s: f64,
    /// Elevated-load windows; overlapping bursts multiply.
    pub bursts: Vec<Burst>,
}

impl LoadProfile {
    /// A flat profile at `rate` jobs/second — no diurnal swing, no
    /// bursts. The degenerate case used to calibrate the sampler.
    pub fn constant(rate: f64) -> Self {
        LoadProfile { base_rate: rate, diurnal_amplitude: 0.0, period_s: 0.0, bursts: Vec::new() }
    }

    /// Instantaneous rate λ(t), never negative.
    pub fn rate_at(&self, t: f64) -> f64 {
        let mut rate = self.base_rate;
        if self.diurnal_amplitude > 0.0 && self.period_s > 0.0 {
            rate *=
                1.0 + self.diurnal_amplitude * (std::f64::consts::TAU * t / self.period_s).sin();
        }
        for burst in &self.bursts {
            if burst.contains(t) {
                rate *= burst.multiplier;
            }
        }
        rate.max(0.0)
    }

    /// An upper bound on λ(t) over all `t`: base × (1 + amplitude) ×
    /// the product of every burst multiplier (bursts may overlap, so
    /// the product — not the max — is the safe envelope for thinning).
    pub fn peak_rate(&self) -> f64 {
        let mut peak = self.base_rate * (1.0 + self.diurnal_amplitude.max(0.0));
        for burst in &self.bursts {
            if burst.multiplier > 1.0 {
                peak *= burst.multiplier;
            }
        }
        peak
    }
}

/// Streaming thinned-Poisson sampler over a [`LoadProfile`]. Iterating
/// yields strictly increasing arrival times in `[0, horizon_s)`.
#[derive(Debug)]
pub struct ArrivalProcess {
    profile: LoadProfile,
    horizon_s: f64,
    peak: f64,
    t: f64,
    rng: StdRng,
}

impl ArrivalProcess {
    /// A sampler over `[0, horizon_s)`, fully determined by `seed`.
    ///
    /// # Panics
    /// If the profile's base rate is not positive (the exponential gap
    /// draw would divide by zero).
    pub fn new(profile: LoadProfile, horizon_s: f64, seed: u64) -> Self {
        assert!(profile.base_rate > 0.0, "arrival profile needs a positive base rate");
        let peak = profile.peak_rate();
        ArrivalProcess { profile, horizon_s, peak, t: 0.0, rng: StdRng::seed_from_u64(seed) }
    }
}

impl Iterator for ArrivalProcess {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        loop {
            // Exponential gap at the peak rate: −ln(1−U)/λ_peak with
            // U ∈ [0, 1), so the argument to ln is always in (0, 1].
            let u: f64 = self.rng.gen();
            self.t += -(1.0 - u).ln() / self.peak;
            if self.t >= self.horizon_s {
                return None;
            }
            // Keep the candidate with probability λ(t)/λ_peak.
            let accept: f64 = self.rng.gen();
            if accept * self.peak < self.profile.rate_at(self.t) {
                return Some(self.t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile_matches_configured_rate() {
        let arrivals: Vec<f64> =
            ArrivalProcess::new(LoadProfile::constant(2.0), 10_000.0, 7).collect();
        // 2 jobs/s over 10^4 s: the count concentrates around 20 000.
        let rate = arrivals.len() as f64 / 10_000.0;
        assert!((rate - 2.0).abs() < 0.1, "empirical rate {rate}");
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]), "times strictly increase");
        assert!(arrivals.iter().all(|t| (0.0..10_000.0).contains(t)));
    }

    #[test]
    fn same_seed_reproduces_the_stream() {
        let profile = LoadProfile {
            base_rate: 1.0,
            diurnal_amplitude: 0.5,
            period_s: 1_000.0,
            bursts: vec![Burst { start_s: 200.0, duration_s: 50.0, multiplier: 3.0 }],
        };
        let a: Vec<f64> = ArrivalProcess::new(profile.clone(), 2_000.0, 42).collect();
        let b: Vec<f64> = ArrivalProcess::new(profile, 2_000.0, 42).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn burst_window_concentrates_arrivals() {
        let profile = LoadProfile {
            base_rate: 1.0,
            diurnal_amplitude: 0.0,
            period_s: 0.0,
            bursts: vec![Burst { start_s: 1_000.0, duration_s: 500.0, multiplier: 5.0 }],
        };
        let arrivals: Vec<f64> = ArrivalProcess::new(profile, 3_000.0, 11).collect();
        let in_burst = arrivals.iter().filter(|t| (1_000.0..1_500.0).contains(*t)).count();
        let before = arrivals.iter().filter(|t| **t < 500.0).count();
        // The burst window sees ~5× the density of a same-length quiet window.
        assert!(
            in_burst as f64 > 3.0 * before as f64,
            "burst {in_burst} vs quiet {before} arrivals"
        );
    }

    #[test]
    fn diurnal_rate_swings_about_the_base() {
        let profile = LoadProfile {
            base_rate: 10.0,
            diurnal_amplitude: 0.6,
            period_s: 86_400.0,
            bursts: Vec::new(),
        };
        // Peak at t = period/4, trough at 3·period/4.
        assert!((profile.rate_at(21_600.0) - 16.0).abs() < 1e-9);
        assert!((profile.rate_at(64_800.0) - 4.0).abs() < 1e-9);
        assert!((profile.peak_rate() - 16.0).abs() < 1e-9);
    }
}
