//! Heavy-tailed job-size and user-population mixes.
//!
//! Production job runtimes are not exponential: most jobs are short,
//! but a fat tail of long jobs dominates wave durations (and therefore
//! queue waits, under wave-barrier time charging). [`BoundedPareto`]
//! models that tail with an inverse-CDF sampler — no distribution
//! crates needed — and its hard upper bound keeps any single draw from
//! stalling a simulated cluster forever.
//!
//! User activity is similarly skewed: a few power users submit most of
//! the load while the long tail of a million registered users submits
//! rarely. [`UserMix`] reproduces that with a power-law index map,
//! which is O(1) per draw at any population size.

use rand::rngs::StdRng;
use rand::Rng;

/// Pareto distribution truncated to `[xm, cap]`, sampled by inverting
/// the truncated CDF. Every draw satisfies `xm <= x <= cap`, so sizes
/// are never zero or negative and never unbounded.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedPareto {
    /// Scale: the minimum (and modal) value. Must be positive.
    pub xm: f64,
    /// Hard upper truncation. Must be ≥ `xm`.
    pub cap: f64,
    /// Tail index: smaller α ⇒ heavier tail. Must be positive.
    pub alpha: f64,
}

impl BoundedPareto {
    /// One draw in `[xm, cap]`.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        debug_assert!(self.xm > 0.0 && self.cap >= self.xm && self.alpha > 0.0);
        let u: f64 = rng.gen(); // [0, 1)
                                // Inverse CDF of the bounded Pareto: with r = (xm/cap)^α,
                                // F⁻¹(u) = xm · (1 − u·(1 − r))^(−1/α).
        let r = (self.xm / self.cap).powf(self.alpha);
        let x = self.xm / (1.0 - u * (1.0 - r)).powf(1.0 / self.alpha);
        // Clamp against floating-point drift at the edges.
        x.clamp(self.xm, self.cap)
    }

    /// Analytic mean of the truncated distribution (α ≠ 1).
    pub fn mean(&self) -> f64 {
        let (xm, cap, a) = (self.xm, self.cap, self.alpha);
        if (a - 1.0).abs() < 1e-9 {
            // α = 1: mean = ln(cap/xm) / (1/xm − 1/cap).
            return (cap / xm).ln() / (1.0 / xm - 1.0 / cap);
        }
        let r = (xm / cap).powf(a);
        (a * xm / (a - 1.0)) * (1.0 - (xm / cap).powf(a - 1.0)) / (1.0 - r)
    }

    /// Tail probability P(X > x) of the truncated distribution.
    pub fn tail(&self, x: f64) -> f64 {
        if x <= self.xm {
            return 1.0;
        }
        if x >= self.cap {
            return 0.0;
        }
        let r = (self.xm / self.cap).powf(self.alpha);
        ((self.xm / x).powf(self.alpha) - r) / (1.0 - r)
    }
}

/// Skewed assignment of work to a (possibly huge) user population.
///
/// Sampling maps a uniform draw through `u^skew`: with `skew = 1` every
/// user is equally likely; larger skew concentrates submissions on the
/// low-index "power users" while still touching the whole population —
/// a cheap stand-in for a Zipf mix that needs no harmonic tables.
#[derive(Debug, Clone, PartialEq)]
pub struct UserMix {
    /// Population size. Must be positive.
    pub users: usize,
    /// Power-law skew exponent (≥ 1).
    pub skew: f64,
}

impl UserMix {
    /// One user index in `[0, users)`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        debug_assert!(self.users > 0 && self.skew >= 1.0);
        let u: f64 = rng.gen();
        ((self.users as f64 * u.powf(self.skew)) as usize).min(self.users - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_inside_the_bounds() {
        let dist = BoundedPareto { xm: 0.5, cap: 15.0, alpha: 1.6 };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50_000 {
            let x = dist.sample(&mut rng);
            assert!((0.5..=15.0).contains(&x), "out-of-range draw {x}");
        }
    }

    #[test]
    fn empirical_mean_tracks_the_analytic_mean() {
        let dist = BoundedPareto { xm: 0.5, cap: 15.0, alpha: 1.6 };
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum();
        let empirical = sum / n as f64;
        let analytic = dist.mean();
        assert!(
            (empirical - analytic).abs() / analytic < 0.05,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn tail_probability_matches_empirical_tail() {
        let dist = BoundedPareto { xm: 0.5, cap: 15.0, alpha: 1.6 };
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let over = (0..n).filter(|_| dist.sample(&mut rng) > 5.0).count();
        let empirical = over as f64 / n as f64;
        let analytic = dist.tail(5.0);
        assert!((empirical - analytic).abs() < 0.01, "{empirical} vs {analytic}");
    }

    #[test]
    fn user_mix_concentrates_on_low_indices_but_covers_the_population() {
        let mix = UserMix { users: 10_000, skew: 2.5 };
        let mut rng = StdRng::seed_from_u64(5);
        let draws: Vec<usize> = (0..20_000).map(|_| mix.sample(&mut rng)).collect();
        assert!(draws.iter().all(|&i| i < 10_000));
        let low = draws.iter().filter(|&&i| i < 1_000).count();
        // Under uniform assignment the low decile would get ~10%; the
        // skewed mix funnels a multiple of that onto the power users.
        assert!(low > 4_000, "only {low} of 20000 draws hit the low decile");
        let high = draws.iter().filter(|&&i| i >= 9_000).count();
        assert!(high > 0, "tail of the population never sampled");
    }

    #[test]
    fn uniform_skew_is_uniform() {
        let mix = UserMix { users: 100, skew: 1.0 };
        let mut rng = StdRng::seed_from_u64(6);
        let low = (0..20_000).filter(|_| mix.sample(&mut rng) < 50).count();
        assert!((low as f64 / 20_000.0 - 0.5).abs() < 0.03);
    }
}
