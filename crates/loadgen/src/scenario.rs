//! Seed-determined load scenarios: everything about a soak run —
//! topology, arrival shape, job mix, and fault mix — derives from one
//! `u64`, so any failure reproduces from `LOADTEST_SEED=<n>` alone.

use crate::arrival::{ArrivalProcess, Burst, LoadProfile};
use crate::mix::{BoundedPareto, UserMix};
use galaxy::queue::DispatchMode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tool id of the CPU-only synthetic tool the driver installs.
pub const CPU_TOOL_ID: &str = "load_cpu";
/// Tool id of the GPU wrapper tool (with the paper's
/// `$__galaxy_gpu_enabled__` conditional) the driver installs.
pub const GPU_TOOL_ID: &str = "load_gpu";

/// Cluster shape the scenario runs against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// One node with `gpus` devices behind `install_gyan`.
    SingleNode {
        /// GPU count on the node.
        gpus: u32,
    },
    /// A heterogeneous multi-node fleet behind `install_fleet`.
    Fleet {
        /// Tesla K80 node count.
        k80: u32,
        /// A100 node count.
        a100: u32,
    },
}

/// One generated submission: when, who, what, and how long it "runs"
/// on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadJob {
    /// Arrival time on the virtual clock (seconds).
    pub at: f64,
    /// Submitting user (`u000042`-style, stable across runs).
    pub user: String,
    /// Tool id ([`CPU_TOOL_ID`] or [`GPU_TOOL_ID`]).
    pub tool: &'static str,
    /// Virtual runtime charged by the wave-time model (seconds).
    pub runtime_s: f64,
    /// Inject a failure on any GPU-enabled attempt (the CPU resubmit
    /// then succeeds), exercising the resubmission ladder under load.
    pub fail_on_gpu: bool,
    /// Queue priority (0 = normal).
    pub priority: u8,
    /// Declared input size (MiB); 0 when the scenario carries no
    /// [`MemoryModel`].
    pub input_mib: u64,
    /// Peak GPU memory (MiB) the job touches on a GPU attempt; 0 when
    /// the scenario carries no [`MemoryModel`] (the OOM rule is off).
    pub peak_mib: u64,
}

/// The GPU memory behaviour of a scenario's synthetic GPU jobs: input
/// sizes from a heavy-tailed draw, peak memory tied to the input-size
/// bucket (so footprint profiles can converge), and a CPU slowdown for
/// jobs pushed off the GPU.
///
/// Peaks are quantized per power-of-two input bucket and jittered by
/// ±`noise`: every peak a profile observes sits within a narrow band of
/// the bucket's base footprint, which keeps the learned p95 within the
/// paper-experiment accuracy bound (with `noise = 0.07`, the worst
/// peak/p95 ratio is 1.07/0.93 ≈ 1.15 < 1.2) while still leaving a
/// tail of attempts that exceed it and exercise the revised-budget
/// retry.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryModel {
    /// Input-size distribution (MiB).
    pub input: BoundedPareto,
    /// Peak GPU memory per input MiB (applied to the bucket midpoint).
    pub peak_per_input_mib: f64,
    /// Relative jitter applied to each job's peak (fraction, e.g. 0.07).
    pub noise: f64,
    /// Runtime multiplier for a memory-model GPU job that ends up
    /// running on CPU (fallback or rejection) — the cost the learned
    /// right-sizing loop is trying to avoid.
    pub cpu_slowdown: f64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel {
            // Heavy-tailed inputs: most jobs fit a ~1 GiB static hint,
            // a few percent land in buckets whose footprint exceeds it.
            input: BoundedPareto { xm: 64.0, cap: 8_192.0, alpha: 1.3 },
            peak_per_input_mib: 0.75,
            noise: 0.07,
            cpu_slowdown: 6.0,
        }
    }
}

impl MemoryModel {
    /// Deterministic peak for `input_mib` given a jitter draw
    /// `u ∈ [-1, 1]`: the bucket midpoint's footprint, jittered.
    fn peak_for(&self, input_mib: u64, u: f64) -> u64 {
        let bucket = obs::sketch::size_bucket(input_mib);
        let midpoint_mib = 1.5 * (1u64 << bucket.min(62)) as f64;
        let base = midpoint_mib * self.peak_per_input_mib;
        (base * (1.0 + self.noise * u)).round().max(1.0) as u64
    }
}

/// Full description of one load-test run. Construct via the named
/// shapes ([`LoadScenario::diurnal`] & co.) or literally for custom
/// sweeps; [`LoadScenario::generate`] expands it into the concrete,
/// seed-determined submission schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadScenario {
    /// Generating seed: the whole schedule derives from this.
    pub seed: u64,
    /// Shape name, for reports and failure messages.
    pub name: &'static str,
    /// Registered user population size.
    pub users: usize,
    /// Arrival horizon in virtual seconds (jobs arrive in `[0, duration_s)`).
    pub duration_s: f64,
    /// Time-varying arrival rate.
    pub profile: LoadProfile,
    /// Heavy-tailed virtual-runtime distribution.
    pub runtime: BoundedPareto,
    /// Power-law skew of submissions across the user population.
    pub user_skew: f64,
    /// Fraction of jobs using the GPU wrapper tool.
    pub gpu_fraction: f64,
    /// Fraction of GPU jobs that fail their GPU-enabled attempts.
    pub gpu_fail_fraction: f64,
    /// Queue-engine wave width (worker count).
    pub workers: u32,
    /// Cluster shape.
    pub topology: Topology,
    /// Queue admission capacity.
    pub capacity: usize,
    /// Handler-pool dispatch backend. [`DispatchMode::Event`] is the
    /// load-test default: 10^5 in-flight jobs without 10^5 OS threads.
    pub dispatch: DispatchMode,
    /// GPU memory model for synthetic GPU jobs. `None` (the default for
    /// every named shape) disables the OOM rule and keeps schedules
    /// byte-identical to pre-memory-model runs; `Some` gives each GPU
    /// job an input size and a peak footprint drawn from a *separate*
    /// salted RNG stream, so enabling it never perturbs arrival times,
    /// users, runtimes, or fault flags.
    pub memory: Option<MemoryModel>,
}

impl LoadScenario {
    /// A healthy day of load: diurnal sinusoid, ~1 job per user over
    /// the day, GPU minority, provisioned so every SLO stays quiet.
    pub fn diurnal(seed: u64, users: usize) -> Self {
        let duration_s = 86_400.0;
        LoadScenario {
            seed,
            name: "diurnal",
            users,
            duration_s,
            profile: LoadProfile {
                base_rate: users as f64 / duration_s,
                diurnal_amplitude: 0.6,
                period_s: duration_s,
                bursts: Vec::new(),
            },
            runtime: BoundedPareto { xm: 0.5, cap: 15.0, alpha: 1.6 },
            user_skew: 2.5,
            gpu_fraction: 0.25,
            gpu_fail_fraction: 0.0,
            workers: 32,
            topology: Topology::SingleNode { gpus: 32 },
            capacity: 16_384,
            dispatch: DispatchMode::Event,
            memory: None,
        }
    }

    /// Six healthy hours punctuated by two 15-minute 4× bursts. The
    /// runtime cap is tightened so wave barriers stay short enough for
    /// burst arrivals to keep their waits inside the SLO.
    pub fn burst(seed: u64, users: usize) -> Self {
        let duration_s = 21_600.0;
        LoadScenario {
            seed,
            name: "burst",
            users,
            duration_s,
            profile: LoadProfile {
                base_rate: users as f64 / duration_s,
                diurnal_amplitude: 0.3,
                period_s: duration_s,
                bursts: vec![
                    Burst { start_s: 5_400.0, duration_s: 900.0, multiplier: 4.0 },
                    Burst { start_s: 14_400.0, duration_s: 900.0, multiplier: 4.0 },
                ],
            },
            runtime: BoundedPareto { xm: 0.5, cap: 8.0, alpha: 1.6 },
            user_skew: 2.0,
            gpu_fraction: 0.25,
            gpu_fail_fraction: 0.0,
            workers: 32,
            topology: Topology::SingleNode { gpus: 32 },
            capacity: 16_384,
            dispatch: DispatchMode::Event,
            memory: None,
        }
    }

    /// A fleet too small for its arrival rate: one worker serving a
    /// stream that outpaces it, so the backlog — and queue-wait p99 —
    /// grows without bound until `queue-wait-p99` fires.
    pub fn under_provisioned(seed: u64, users: usize) -> Self {
        let duration_s = 1_800.0;
        LoadScenario {
            seed,
            name: "under-provisioned",
            users,
            duration_s,
            profile: LoadProfile {
                base_rate: users as f64 / duration_s,
                diurnal_amplitude: 0.2,
                period_s: duration_s,
                bursts: Vec::new(),
            },
            runtime: BoundedPareto { xm: 0.5, cap: 15.0, alpha: 1.6 },
            user_skew: 2.0,
            gpu_fraction: 0.2,
            gpu_fail_fraction: 0.0,
            workers: 1,
            topology: Topology::SingleNode { gpus: 1 },
            capacity: 8_192,
            dispatch: DispatchMode::Event,
            memory: None,
        }
    }

    /// A cluster whose GPU attempts mostly fail: every failed attempt
    /// resubmits down the ladder to CPU, driving the resubmission rate
    /// over the `resubmission-burn` SLO threshold. The horizon scales
    /// with the population (fixed ~5 arrivals/s) because the SLO this
    /// shape must breach is a *rate* — a population-scaled rate would
    /// stop firing at small smoke-test populations.
    pub fn gpu_flaky(seed: u64, users: usize) -> Self {
        let duration_s = (users as f64 / 5.0).max(60.0);
        LoadScenario {
            seed,
            name: "gpu-flaky",
            users,
            duration_s,
            profile: LoadProfile {
                base_rate: users as f64 / duration_s,
                diurnal_amplitude: 0.0,
                period_s: 0.0,
                bursts: Vec::new(),
            },
            runtime: BoundedPareto { xm: 0.2, cap: 2.0, alpha: 1.4 },
            user_skew: 2.0,
            gpu_fraction: 0.9,
            gpu_fail_fraction: 0.9,
            workers: 4,
            topology: Topology::SingleNode { gpus: 4 },
            capacity: 8_192,
            dispatch: DispatchMode::Event,
            memory: None,
        }
    }

    /// A healthy diurnal hour against a heterogeneous multi-node fleet
    /// (`install_fleet` placement instead of single-node GYAN).
    pub fn fleet(seed: u64, users: usize) -> Self {
        let duration_s = 3_600.0;
        LoadScenario {
            seed,
            name: "fleet-diurnal",
            users,
            duration_s,
            profile: LoadProfile {
                base_rate: users as f64 / duration_s,
                diurnal_amplitude: 0.4,
                period_s: duration_s,
                bursts: Vec::new(),
            },
            runtime: BoundedPareto { xm: 0.5, cap: 10.0, alpha: 1.6 },
            user_skew: 2.0,
            gpu_fraction: 0.3,
            gpu_fail_fraction: 0.0,
            workers: 8,
            topology: Topology::Fleet { k80: 2, a100: 2 },
            capacity: 8_192,
            dispatch: DispatchMode::Event,
            memory: None,
        }
    }

    /// Attach the stock [`MemoryModel`] (builder form for sweeps).
    pub fn with_memory_model(mut self) -> Self {
        self.memory = Some(MemoryModel::default());
        self
    }

    /// Expand into the concrete submission schedule: arrival times from
    /// the thinned-Poisson process, users from the skewed mix, runtimes
    /// from the bounded Pareto, GPU/fault flags from Bernoulli draws —
    /// all from `self.seed`, in one deterministic pass.
    pub fn generate(&self) -> Vec<LoadJob> {
        // Separate streams for arrival times and job attributes so the
        // attribute draws can't perturb inter-arrival statistics.
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Memory draws come from a third, salted stream: attaching a
        // MemoryModel must not perturb any draw of the base schedule.
        let mut mem_rng = StdRng::seed_from_u64(self.seed ^ 0xF00D_F007_F007_F00D);
        let mix = UserMix { users: self.users, skew: self.user_skew };
        ArrivalProcess::new(self.profile.clone(), self.duration_s, self.seed)
            .map(|at| {
                let user = format!("u{:06}", mix.sample(&mut rng));
                let gpu = rng.gen_bool(self.gpu_fraction);
                let (input_mib, peak_mib) = match (&self.memory, gpu) {
                    (Some(model), true) => {
                        let input = model.input.sample(&mut mem_rng).round().max(1.0) as u64;
                        let jitter: f64 = mem_rng.gen_range(-1.0..=1.0);
                        (input, model.peak_for(input, jitter))
                    }
                    _ => (0, 0),
                };
                LoadJob {
                    at,
                    user,
                    tool: if gpu { GPU_TOOL_ID } else { CPU_TOOL_ID },
                    runtime_s: self.runtime.sample(&mut rng),
                    fail_on_gpu: gpu && rng.gen_bool(self.gpu_fail_fraction),
                    priority: if rng.gen_bool(0.05) { rng.gen_range(1..=3u8) } else { 0 },
                    input_mib,
                    peak_mib,
                }
            })
            .collect()
    }

    /// One-line description for reports and failure messages.
    pub fn describe(&self) -> String {
        let topology = match &self.topology {
            Topology::SingleNode { gpus } => format!("1 node × {gpus} GPU"),
            Topology::Fleet { k80, a100 } => format!("fleet {k80}×k80 + {a100}×a100"),
        };
        format!(
            "{} seed={} users={} horizon={}s rate={:.3}/s workers={} {} gpu={:.0}% fail={:.0}%",
            self.name,
            self.seed,
            self.users,
            self.duration_s,
            self.profile.base_rate,
            self.workers,
            topology,
            self.gpu_fraction * 100.0,
            self.gpu_fail_fraction * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let scenario = LoadScenario::diurnal(17, 2_000);
        assert_eq!(scenario.generate(), scenario.generate());
        let other = LoadScenario::diurnal(18, 2_000);
        assert_ne!(scenario.generate(), other.generate());
    }

    #[test]
    fn schedule_respects_the_scenario_envelope() {
        let scenario = LoadScenario::burst(3, 5_000);
        let jobs = scenario.generate();
        assert!(!jobs.is_empty());
        for job in &jobs {
            assert!((0.0..scenario.duration_s).contains(&job.at));
            assert!(job.runtime_s >= scenario.runtime.xm && job.runtime_s <= scenario.runtime.cap);
            assert!(!job.fail_on_gpu, "burst scenario injects no faults");
        }
        // The base rate contributes ~one job per user over the horizon;
        // the two 4× burst windows add roughly another quarter on top.
        let n = jobs.len() as f64;
        assert!((4_000.0..8_000.0).contains(&n), "{n} arrivals for 5000 users");
    }

    #[test]
    fn memory_model_rides_a_separate_stream() {
        let base = LoadScenario::diurnal(17, 2_000);
        let modeled = base.clone().with_memory_model();
        let a = base.generate();
        let b = modeled.generate();
        assert_eq!(a.len(), b.len(), "same arrival schedule");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.at, &x.user, x.tool, x.runtime_s, x.fail_on_gpu, x.priority),
                (y.at, &y.user, y.tool, y.runtime_s, y.fail_on_gpu, y.priority),
                "base draws must be untouched by the memory stream"
            );
            assert_eq!((x.input_mib, x.peak_mib), (0, 0), "no model, no sizes");
        }
        let model = MemoryModel::default();
        for job in b.iter().filter(|j| j.tool == GPU_TOOL_ID) {
            assert!(job.input_mib >= model.input.xm as u64 && job.peak_mib > 0);
            // Peaks stay inside the bucket's jitter band.
            let bucket = obs::sketch::size_bucket(job.input_mib);
            let base_peak = 1.5 * (1u64 << bucket) as f64 * model.peak_per_input_mib;
            let lo = base_peak * (1.0 - model.noise) - 1.0;
            let hi = base_peak * (1.0 + model.noise) + 1.0;
            assert!(
                (lo..=hi).contains(&(job.peak_mib as f64)),
                "peak {} outside [{lo:.0},{hi:.0}] for input {}",
                job.peak_mib,
                job.input_mib
            );
        }
        for job in b.iter().filter(|j| j.tool == CPU_TOOL_ID) {
            assert_eq!((job.input_mib, job.peak_mib), (0, 0));
        }
    }

    #[test]
    fn flaky_scenario_marks_gpu_failures_only_on_gpu_jobs() {
        let jobs = LoadScenario::gpu_flaky(5, 1_000).generate();
        assert!(jobs.iter().any(|j| j.fail_on_gpu));
        for job in jobs.iter().filter(|j| j.fail_on_gpu) {
            assert_eq!(job.tool, GPU_TOOL_ID);
        }
    }
}
