//! Run one [`LoadScenario`] through the real stack, asserting SLOs at
//! every wave barrier.
//!
//! Nothing is mocked below the executor: the driver builds a
//! [`GalaxyApp`] from the shipped `GYAN_JOB_CONF`, installs GYAN (or
//! the fleet hook, per topology), and pumps a real [`QueueEngine`] in
//! [`DispatchMode::Event`](galaxy::queue::DispatchMode::Event) — so a
//! hundred thousand in-flight jobs cost a ready-queue entry each, not
//! an OS thread each. Only the tool *body* is synthetic: a
//! [`LoadExecutor`] that succeeds (or injects a failure) instantly,
//! with each job's virtual runtime charged by the wave-time model from
//! a job environment variable.
//!
//! The operations plane runs live alongside: the stock
//! [`gyan::ops::default_alert_rules`] SLO set is evaluated at every
//! wave barrier, and a rule named in [`LoadOptions::fail_on`] firing
//! converts the run into a [`LoadFailure`] that carries the fired-alert
//! list, a flight-recorder dump, and the reproducing seed.

use crate::scenario::{LoadScenario, Topology};
use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::queue::{QueueConfig, QueueEngine, ResubmitPolicy, SubmissionState, WaveTimeCharging};
use galaxy::runners::{ExecutionPlan, ExecutionResult, JobExecutor};
use galaxy::tool::macros::MacroLibrary;
use galaxy::{GalaxyApp, GalaxyError};
use gpusim::{GpuArch, GpuCluster};
use gyan::allocation::AllocationPolicy;
use gyan::footprint::{
    MemoryHint, FOOTPRINT_ESTIMATE_EVENT, GALAXY_INPUT_SIZE_MIB_ENV, GPU_MEMORY_BUDGET_ENV,
    GPU_OBSERVED_PEAK_ENV,
};
use gyan::ops::default_alert_rules;
use gyan::setup::{install_gyan_with_footprint, ClusterTime, GyanConfig};
use obs::slo::{AlertEngine, AlertExpr, AlertRule, Compare};
use simtest::invariants;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Job env var carrying the virtual runtime (seconds) the wave-time
/// model charges for the job.
pub const RUNTIME_ENV: &str = "LOADSIM_RUNTIME_S";
/// Job env var marking a job that fails its GPU-enabled attempts.
pub const FAIL_GPU_ENV: &str = "LOADSIM_FAIL_GPU";
/// Job env var carrying the (slower) virtual runtime charged when a
/// memory-model GPU job ends up running on CPU.
pub const CPU_RUNTIME_ENV: &str = "LOADSIM_CPU_RUNTIME_S";
/// Export the GYAN hook sets on plans that won a GPU lease.
const GPU_ENABLED_ENV: &str = "GALAXY_GPU_ENABLED";

/// Bound on retained obs spans/events during a soak — enough context
/// for a flight dump, without O(total jobs) recorder growth.
const LOG_RETENTION: usize = 100_000;

/// Virtual runtime charged when a plan carries no [`RUNTIME_ENV`]
/// (resubmitted attempts keep their job env, so this is rare).
const DEFAULT_RUNTIME_S: f64 = 0.05;

const CPU_TOOL: &str = r#"<tool id="load_cpu" name="Load CPU">
  <command>echo tick</command>
  <outputs><data name="out" format="txt"/></outputs>
</tool>"#;

const GPU_TOOL: &str = r#"<tool id="load_gpu" name="Load GPU">
  <requirements><requirement type="compute">gpu</requirement></requirements>
  <command><![CDATA[
#if $__galaxy_gpu_enabled__ == "true"
load_kernel --device gpu
#else
load_kernel --device cpu
#end if
]]></command>
  <outputs><data name="out" format="txt"/></outputs>
</tool>"#;

/// Synthetic executor for load tests: returns instantly (virtual time
/// is charged by the wave-time model, not by running anything), and
/// fails GPU-enabled attempts of jobs flagged with [`FAIL_GPU_ENV`] —
/// whose CPU resubmission then succeeds, exercising the ladder.
#[derive(Debug, Default, Clone, Copy)]
pub struct LoadExecutor;

impl JobExecutor for LoadExecutor {
    fn execute(&self, plan: &ExecutionPlan) -> ExecutionResult {
        let gpu = plan.env_var(GPU_ENABLED_ENV) == Some("true");
        if gpu && plan.env_var(FAIL_GPU_ENV) == Some("1") {
            return ExecutionResult {
                exit_code: 137,
                stdout: String::new(),
                stderr: "injected: synthetic GPU fault".to_string(),
                pid: None,
            };
        }
        // The OOM rule of the memory model: a GPU attempt whose declared
        // peak exceeds the budget the orchestrator granted dies exactly
        // like a real CUDA OOM kill. Inactive unless the scenario set a
        // peak (and the hook therefore exported a budget).
        if gpu {
            let peak = plan.env_var(GPU_OBSERVED_PEAK_ENV).and_then(|v| v.parse::<u64>().ok());
            let budget = plan.env_var(GPU_MEMORY_BUDGET_ENV).and_then(|v| v.parse::<u64>().ok());
            if let (Some(peak), Some(budget)) = (peak, budget) {
                if peak > budget {
                    return ExecutionResult {
                        exit_code: 137,
                        stdout: String::new(),
                        stderr: format!("oom: peak {peak} MiB exceeded the {budget} MiB budget"),
                        pid: None,
                    };
                }
            }
        }
        ExecutionResult::ok(if gpu { "gpu" } else { "cpu" })
    }
}

/// Driver knobs.
#[derive(Debug, Clone, Default)]
pub struct LoadOptions {
    /// SLO rule names that must stay quiet: the run fails with a
    /// [`LoadFailure`] (flight dump + reproducing seed) the moment one
    /// of them fires. Empty = record firings in the report instead.
    pub fail_on: Vec<String>,
    /// Override the livelock bound (default: `4 × jobs + 100` waves).
    pub max_waves: Option<usize>,
    /// Device allocation strategy for single-node GYAN topologies
    /// (`None` keeps [`GyanConfig::default`]'s Process-Id strategy).
    pub allocation_policy: Option<AllocationPolicy>,
    /// Memory-hint resolution mode — [`MemoryHint::Static`] (default)
    /// vs. [`MemoryHint::Learned`] right-sizing from footprint
    /// profiles. The ablation bench sweeps this.
    pub memory_hint: MemoryHint,
    /// Footprint-revised same-destination retries granted before the
    /// GPU→CPU fallback ladder (effective only with a learned-mode
    /// footprint advisor installed).
    pub footprint_retries: u32,
}

/// Rule names every healthy scenario is expected to keep quiet — the
/// full stock SLO set from [`gyan::ops::default_alert_rules`].
pub const DEFAULT_SLO_RULES: &[&str] = &[
    "queue-wait-p99",
    "gpu-conflict-rate",
    "job-failure-burn",
    "resubmission-burn",
    "lease-oversubscription",
];

/// Outcome of one passing soak run. Deterministic per scenario: two
/// runs of the same seed (even across dispatch backends) compare equal.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Generating seed.
    pub seed: u64,
    /// User population size.
    pub users: usize,
    /// Generated arrivals (submitted + rejected).
    pub arrivals: usize,
    /// Submissions the queue admitted.
    pub submitted: usize,
    /// Submissions rejected by admission control.
    pub rejected: usize,
    /// Jobs that finished OK.
    pub ok: usize,
    /// Jobs that failed terminally.
    pub error: usize,
    /// Jobs cancelled.
    pub cancelled: usize,
    /// Waves pumped before the queue drained.
    pub waves: usize,
    /// SLO rules that fired at any barrier (sorted, deduplicated).
    pub fired: Vec<String>,
    /// Queue-wait p50 estimate (seconds, virtual).
    pub queue_wait_p50: f64,
    /// Queue-wait p99 estimate (seconds, virtual).
    pub queue_wait_p99: f64,
    /// Virtual time at drain.
    pub makespan_s: f64,
    /// Deepest queue backlog observed at a wave boundary.
    pub peak_queue_depth: usize,
    /// Closed spans evicted by the recorder's retention cap.
    pub dropped_spans: u64,
    /// Events evicted by the recorder's retention cap.
    pub dropped_events: u64,
    /// Resubmissions that walked the fallback ladder (GPU→CPU).
    pub resubmitted_fallback: u64,
    /// Placement-aware same-destination retries (failed node excluded).
    pub resubmitted_node: u64,
    /// Footprint-revised same-destination retries (bigger budget).
    pub resubmitted_footprint: u64,
    /// `footprint.estimate` audits whose estimate came from a converged
    /// learned profile.
    pub learned_estimates: u64,
    /// Mean |estimate − observed peak| / peak over those audits (%).
    pub estimate_err_pct_mean: f64,
    /// Worst |estimate − observed peak| / peak over those audits (%).
    pub estimate_err_pct_max: f64,
}

/// A failed soak run, reproducible from the seed alone.
#[derive(Debug, Clone)]
pub struct LoadFailure {
    /// Seed that reproduces the failure (`LOADTEST_SEED=<seed>`).
    pub seed: u64,
    /// Wave at which the run failed (None = setup or whole-run check).
    pub wave: Option<usize>,
    /// What failed: `"slo"`, an invariant name, `"setup"`, …
    pub reason: &'static str,
    /// Failure specifics.
    pub detail: String,
    /// Scenario description.
    pub scenario: String,
    /// SLO rules firing at failure time.
    pub fired_alerts: Vec<String>,
    /// Flight-recorder JSONL dump captured at failure time.
    pub flight_jsonl: Option<String>,
}

impl std::fmt::Display for LoadFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "loadtest failure: {}", self.reason)?;
        match self.wave {
            Some(w) => writeln!(f, "  at wave {w}: {}", self.detail)?,
            None => writeln!(f, "  {}", self.detail)?,
        }
        writeln!(f, "  scenario: {}", self.scenario)?;
        if !self.fired_alerts.is_empty() {
            writeln!(f, "  fired alerts: {}", self.fired_alerts.join(", "))?;
        }
        if let Some(dump) = &self.flight_jsonl {
            writeln!(f, "  flight recorder: {} line(s) captured", dump.lines().count())?;
        }
        write!(f, "  reproduce with LOADTEST_SEED={}", self.seed)
    }
}

/// Galaxy-level SLO rules for topologies without a GYAN lease table
/// (thresholds mirror [`gyan::ops::default_alert_rules`]).
fn galaxy_slo_rules() -> Vec<AlertRule> {
    vec![
        AlertRule::new(
            "queue-wait-p99",
            AlertExpr::HistogramQuantile {
                name: galaxy::queue::QUEUE_WAIT_HISTOGRAM.to_string(),
                q: 0.99,
            },
            Compare::Gt,
            30.0,
        )
        .hold_for(5.0),
        AlertRule::new(
            "job-failure-burn",
            AlertExpr::CounterRate {
                name: galaxy::scheduler::JOBS_FAILED_COUNTER.to_string(),
                window_s: 30.0,
            },
            Compare::Gt,
            0.2,
        )
        .hold_for(5.0),
        AlertRule::new(
            "resubmission-burn",
            AlertExpr::CounterRate {
                name: galaxy::queue::QUEUE_RESUBMITTED_COUNTER.to_string(),
                window_s: 30.0,
            },
            Compare::Gt,
            0.5,
        )
        .hold_for(5.0),
    ]
}

/// Execute `scenario` under `options`: submit the generated schedule as
/// its arrivals come due on the virtual clock, pump the queue wave by
/// wave, and evaluate the SLO plane at every barrier.
// LoadFailure is large (it carries the flight dump), but the Err path
// is terminal — a failure report, not a hot return.
#[allow(clippy::result_large_err)]
pub fn run_scenario(
    scenario: &LoadScenario,
    options: &LoadOptions,
) -> Result<LoadReport, LoadFailure> {
    let fail = |wave: Option<usize>, reason: &'static str, detail: String| LoadFailure {
        seed: scenario.seed,
        wave,
        reason,
        detail,
        scenario: scenario.describe(),
        fired_alerts: Vec::new(),
        flight_jsonl: None,
    };

    // --- Build the real stack -------------------------------------------
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).expect("shipped job conf"));
    let lib = MacroLibrary::new();
    for xml in [CPU_TOOL, GPU_TOOL] {
        if let Err(e) = app.install_tool_xml(xml, &lib) {
            return Err(fail(None, "setup", format!("tool install: {e}")));
        }
    }
    app.set_event_log_limit(Some(LOG_RETENTION));

    // Per-topology wiring. The cluster/fleet handles are kept alive for
    // the whole run; the clock is the shared virtual timeline.
    let (clock, gyan_table, the_fleet, _cluster) = match scenario.topology {
        Topology::SingleNode { gpus } => {
            let cluster = GpuCluster::node(GpuArch::tesla_k80(), gpus);
            let config = GyanConfig {
                policy: options.allocation_policy.unwrap_or(GyanConfig::default().policy),
                memory_hint: options.memory_hint,
                ..GyanConfig::default()
            };
            let (table, _registry) = install_gyan_with_footprint(&mut app, &cluster, config);
            (cluster.clock().clone(), Some(table), None, Some(cluster))
        }
        Topology::Fleet { k80, a100 } => {
            let fleet = fleet::Fleet::builder()
                .nodes(fleet::NodeClass::k80(), k80)
                .nodes(fleet::NodeClass::a100(), a100)
                .recorder(app.recorder().clone())
                .build();
            fleet::install_fleet_with_footprint(
                &mut app,
                &fleet,
                fleet::FleetConfig {
                    gpu_destination: "local_gpu".to_string(),
                    gpu_destinations: vec!["local_gpu".to_string()],
                    memory_hint: options.memory_hint,
                    ..fleet::FleetConfig::default()
                },
            );
            (fleet.clock().clone(), None, Some(fleet), None)
        }
    };
    app.set_time_source(Box::new(ClusterTime::new(clock.clone())));
    let recorder = app.recorder().clone();
    recorder.set_log_retention(Some(LOG_RETENTION));

    // The live SLO plane: stock rules, evaluated at every barrier.
    let alerts = AlertEngine::new(&recorder);
    match (&gyan_table, &the_fleet) {
        (Some(table), _) => {
            for rule in default_alert_rules(table) {
                alerts.add_rule(rule);
            }
        }
        (None, Some(fleet)) => {
            for rule in galaxy_slo_rules() {
                alerts.add_rule(rule);
            }
            // Fleet analogue of lease-oversubscription/leaked-lease: at a
            // barrier every placement must have been released.
            let f = fleet.clone();
            alerts.add_rule(AlertRule::new(
                "fleet-lease-leak",
                AlertExpr::Custom(Arc::new(move || Some(f.total_lease_count() as f64))),
                Compare::Gt,
                0.0,
            ));
        }
        (None, None) => unreachable!("topology wired above"),
    }
    let enrich = |mut failure: LoadFailure| -> LoadFailure {
        failure.fired_alerts = alerts.firing();
        failure.flight_jsonl = recorder.flight_snapshot().map(|s| s.to_jsonl());
        failure
    };

    let model_default = DEFAULT_RUNTIME_S;
    let config = QueueConfig {
        workers: scenario.workers,
        capacity: scenario.capacity,
        per_user_limit: None,
        resubmit: ResubmitPolicy::gpu_to_cpu("local_cpu")
            .with_footprint_retries(options.footprint_retries),
        time_charging: Some(WaveTimeCharging {
            clock: Box::new(ClusterTime::new(clock.clone())),
            model: Box::new(move |plan: &ExecutionPlan| {
                // A memory-model GPU job pushed off the GPU pays its CPU
                // runtime; everything else charges its base runtime.
                let env = if plan.env_var(GPU_ENABLED_ENV) == Some("true") {
                    RUNTIME_ENV
                } else {
                    plan.env_var(CPU_RUNTIME_ENV).map(|_| CPU_RUNTIME_ENV).unwrap_or(RUNTIME_ENV)
                };
                plan.env_var(env).and_then(|v| v.parse::<f64>().ok()).unwrap_or(model_default)
            }),
        }),
        dispatch: scenario.dispatch,
    };
    let executor = Arc::new(LoadExecutor);
    app.set_executor(Box::new(LoadExecutor));
    let mut engine = QueueEngine::new(app, executor, config);
    if let Some(table) = &gyan_table {
        engine.set_discard_listener(table.discard_listener(Some(recorder.clone())));
    }

    // --- Pump arrivals through on the virtual clock ---------------------
    let jobs = scenario.generate();
    let max_waves = options.max_waves.unwrap_or(jobs.len() * 4 + 100);
    let mut next = 0usize;
    let mut submitted = 0usize;
    let mut rejected = 0usize;
    let mut waves = 0usize;
    let mut peak_queue_depth = 0usize;
    let mut fired: BTreeSet<String> = BTreeSet::new();
    loop {
        // Submit every arrival that has come due.
        let now = clock.now();
        while next < jobs.len() && jobs[next].at <= now {
            let job = &jobs[next];
            next += 1;
            match engine.submit_with_priority(&job.user, job.tool, &ParamDict::new(), job.priority)
            {
                Ok(handle) => {
                    submitted += 1;
                    let app = engine.app_mut();
                    app.set_job_env(handle.0, RUNTIME_ENV, &format!("{:.3}", job.runtime_s));
                    if job.fail_on_gpu {
                        app.set_job_env(handle.0, FAIL_GPU_ENV, "1");
                    }
                    if job.peak_mib > 0 {
                        // Memory-model job: declare its input size (what
                        // the hook buckets on), its true peak (what the
                        // executor OOM-checks and the profile learns),
                        // and the slower runtime a CPU fallback pays.
                        app.set_job_env(
                            handle.0,
                            GALAXY_INPUT_SIZE_MIB_ENV,
                            &job.input_mib.to_string(),
                        );
                        app.set_job_env(handle.0, GPU_OBSERVED_PEAK_ENV, &job.peak_mib.to_string());
                        let slowdown =
                            scenario.memory.as_ref().map(|m| m.cpu_slowdown).unwrap_or(1.0);
                        app.set_job_env(
                            handle.0,
                            CPU_RUNTIME_ENV,
                            &format!("{:.3}", job.runtime_s * slowdown),
                        );
                    }
                }
                Err(GalaxyError::QueueRejected(_)) => rejected += 1,
                Err(e) => {
                    return Err(fail(None, "submission", format!("{:?}: {e}", job.tool)));
                }
            }
        }
        peak_queue_depth = peak_queue_depth.max(engine.queue_depth());

        let dispatched = engine.pump_wave();
        if dispatched == 0 {
            if next < jobs.len() {
                // Queue idle but arrivals remain: jump to the next one.
                clock.advance_to(jobs[next].at);
                continue;
            }
            break;
        }
        waves += 1;

        // The SLO plane and the structural invariants, every barrier.
        alerts.evaluate();
        let firing = alerts.firing();
        for name in &firing {
            fired.insert(name.clone());
        }
        if let Some(bad) = firing.iter().find(|n| options.fail_on.iter().any(|f| f == *n)) {
            return Err(enrich(fail(
                Some(waves),
                "slo",
                format!("alert {bad:?} fired with {} in queue", engine.queue_depth()),
            )));
        }
        if let Some(table) = &gyan_table {
            invariants::no_leaked_leases(table, waves)
                .map_err(|v| enrich(fail(Some(waves), v.invariant, v.detail)))?;
        }
        if let Some(fleet) = &the_fleet {
            let leases = fleet.total_lease_count();
            if leases > 0 {
                return Err(enrich(fail(
                    Some(waves),
                    "fleet_lease_leak",
                    format!("{leases} fleet lease(s) survived the wave barrier"),
                )));
            }
        }
        if waves >= max_waves {
            return Err(enrich(fail(
                Some(waves),
                "wave_bound",
                format!("still dispatching after {max_waves} waves"),
            )));
        }
    }

    // --- Whole-run checks and the report --------------------------------
    invariants::conservation(&engine).map_err(|v| enrich(fail(None, v.invariant, v.detail)))?;

    let states = engine.submission_states();
    let count = |want: SubmissionState| states.iter().filter(|(_, s)| *s == want).count();
    let metrics = recorder.metrics();
    let (dropped_spans, dropped_events) = recorder.dropped_log_records();
    let resubmits = |reason: &str| {
        metrics.counter_value(&format!(
            "{}{{reason=\"{reason}\"}}",
            galaxy::queue::QUEUE_RESUBMITTED_COUNTER
        ))
    };
    // Accuracy of the learned estimates, from the footprint audits.
    let learned_errs: Vec<f64> = recorder
        .events()
        .iter()
        .filter(|e| {
            e.name == FOOTPRINT_ESTIMATE_EVENT
                && e.field("source").and_then(|v| v.as_str()) == Some("learned")
        })
        .filter_map(|e| e.field("err_pct").and_then(|v| v.as_f64()))
        .map(f64::abs)
        .collect();
    let report = LoadReport {
        seed: scenario.seed,
        users: scenario.users,
        arrivals: jobs.len(),
        submitted,
        rejected,
        ok: count(SubmissionState::Ok),
        error: count(SubmissionState::Error),
        cancelled: count(SubmissionState::Cancelled),
        waves,
        fired: fired.into_iter().collect(),
        queue_wait_p50: metrics
            .histogram_quantile(galaxy::queue::QUEUE_WAIT_HISTOGRAM, 0.5)
            .unwrap_or(0.0),
        queue_wait_p99: metrics
            .histogram_quantile(galaxy::queue::QUEUE_WAIT_HISTOGRAM, 0.99)
            .unwrap_or(0.0),
        makespan_s: clock.now(),
        peak_queue_depth,
        dropped_spans,
        dropped_events,
        resubmitted_fallback: resubmits("fallback"),
        resubmitted_node: resubmits("node_excluded"),
        resubmitted_footprint: resubmits("footprint_revised"),
        learned_estimates: learned_errs.len() as u64,
        estimate_err_pct_mean: if learned_errs.is_empty() {
            0.0
        } else {
            learned_errs.iter().sum::<f64>() / learned_errs.len() as f64
        },
        estimate_err_pct_max: learned_errs.iter().cloned().fold(0.0, f64::max),
    };

    engine.shutdown();
    invariants::spans_balanced(&recorder).map_err(|v| enrich(fail(None, v.invariant, v.detail)))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::LoadScenario;
    use galaxy::queue::DispatchMode;

    /// A fast scenario for unit tests: a few hundred arrivals squeezed
    /// into a short horizon.
    fn small(seed: u64) -> LoadScenario {
        let mut s = LoadScenario::diurnal(seed, 300);
        s.duration_s = 600.0;
        s.profile.base_rate = 300.0 / 600.0;
        s.profile.period_s = 600.0;
        s.workers = 8;
        s.topology = Topology::SingleNode { gpus: 8 };
        s
    }

    #[test]
    fn healthy_small_run_is_quiet_and_complete() {
        let scenario = small(21);
        let options = LoadOptions {
            fail_on: DEFAULT_SLO_RULES.iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        };
        let report = run_scenario(&scenario, &options).expect("healthy run");
        assert_eq!(report.rejected, 0);
        assert_eq!(report.ok, report.submitted);
        assert_eq!(report.error + report.cancelled, 0);
        assert!(report.fired.is_empty(), "fired: {:?}", report.fired);
        assert!(report.submitted > 100, "only {} submitted", report.submitted);
        assert!(report.makespan_s >= 600.0 - 15.0, "makespan {}", report.makespan_s);
    }

    #[test]
    fn event_and_thread_backends_produce_identical_reports() {
        let event = run_scenario(&small(33), &LoadOptions::default()).expect("event run");
        let mut threaded_scenario = small(33);
        threaded_scenario.dispatch = DispatchMode::Threads;
        let threads = run_scenario(&threaded_scenario, &LoadOptions::default()).expect("threads");
        assert_eq!(event, threads);
    }

    #[test]
    fn deterministic_replay_from_one_seed() {
        let a = run_scenario(&small(55), &LoadOptions::default()).expect("run a");
        let b = run_scenario(&small(55), &LoadOptions::default()).expect("run b");
        assert_eq!(a, b);
    }

    #[test]
    fn injected_gpu_faults_resubmit_to_cpu_and_still_finish_ok() {
        let mut scenario = small(77);
        scenario.gpu_fraction = 0.5;
        scenario.gpu_fail_fraction = 1.0;
        let report = run_scenario(&scenario, &LoadOptions::default()).expect("faulty run");
        // Every GPU-enabled failure falls down the ladder to CPU and
        // succeeds there: no terminal errors.
        assert_eq!(report.ok, report.submitted);
        assert_eq!(report.error, 0);
    }

    #[test]
    fn fleet_topology_runs_clean() {
        let mut scenario = LoadScenario::fleet(91, 200);
        scenario.duration_s = 400.0;
        scenario.profile.base_rate = 0.5;
        scenario.profile.period_s = 400.0;
        let report = run_scenario(&scenario, &LoadOptions::default()).expect("fleet run");
        assert_eq!(report.ok, report.submitted);
        assert!(!report.fired.iter().any(|r| r == "fleet-lease-leak"), "{:?}", report.fired);
    }

    #[test]
    fn learned_hints_cut_fallbacks_and_estimate_within_bound() {
        let mut scenario = small(42);
        scenario.gpu_fraction = 0.9;
        scenario.memory = Some(crate::scenario::MemoryModel::default());

        // Static arm: every job whose true peak exceeds the 1024 MiB
        // destination hint OOMs on GPU and pays the CPU slowdown.
        let static_report =
            run_scenario(&scenario, &LoadOptions::default()).expect("static arm runs");
        assert!(
            static_report.resubmitted_fallback > 0,
            "memory model must push some jobs off the GPU in the static arm"
        );
        assert_eq!(static_report.learned_estimates, 0, "static arm never learns");

        // Learned arm: footprint retries double the budget until the
        // attempt fits, the profile converges, and later jobs dispatch
        // with a right-sized learned p95.
        let learned_report = run_scenario(
            &scenario,
            &LoadOptions {
                memory_hint: MemoryHint::learned(),
                footprint_retries: 3,
                ..Default::default()
            },
        )
        .expect("learned arm runs");
        assert!(
            learned_report.resubmitted_fallback < static_report.resubmitted_fallback,
            "learned {} !< static {}",
            learned_report.resubmitted_footprint,
            static_report.resubmitted_fallback
        );
        assert!(learned_report.resubmitted_footprint > 0, "budget doublings happened");
        assert!(learned_report.learned_estimates > 0, "profiles converged");
        assert!(
            learned_report.estimate_err_pct_max <= 20.0,
            "worst learned estimate off by {:.1}%",
            learned_report.estimate_err_pct_max
        );
        // Both arms still finish every job (CPU is always a safe harbour).
        assert_eq!(static_report.ok, static_report.submitted);
        assert_eq!(learned_report.ok, learned_report.submitted);
    }

    #[test]
    fn slo_violation_fails_with_flight_dump_and_seed() {
        let mut scenario = LoadScenario::under_provisioned(13, 400);
        scenario.duration_s = 600.0;
        scenario.profile.base_rate = 400.0 / 600.0;
        let options =
            LoadOptions { fail_on: vec!["queue-wait-p99".to_string()], ..Default::default() };
        let failure = run_scenario(&scenario, &options).expect_err("must breach the wait SLO");
        assert_eq!(failure.reason, "slo");
        assert!(failure.fired_alerts.iter().any(|a| a == "queue-wait-p99"));
        assert!(failure.flight_jsonl.is_some(), "flight dump captured");
        let text = failure.to_string();
        assert!(text.contains("LOADTEST_SEED=13"), "{text}");
    }
}
