//! Shared state for a node's GPUs.

use crate::arch::GpuArch;
use crate::clock::VirtualClock;
use crate::device::DeviceState;
use crate::error::GpuError;
use crate::host::HostSpec;
use crate::process::GpuProcess;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Injectable `nvidia-smi` failure modes, shared by every clone of a
/// cluster handle. On a real node the SMI query is a subprocess that can
/// die (driver resets, Xid errors) or serve data that is already stale by
/// the time a scheduler acts on it; simulation scenarios reproduce both.
#[derive(Default)]
struct SmiFaults {
    /// Remaining injected query failures: each SMI query consumes one
    /// until the counter reaches zero, then queries succeed again.
    fail_queries: AtomicU32,
    /// When set, SMI emitters serve this frozen snapshot instead of the
    /// live device state — a stale-view fault.
    frozen: Mutex<Option<Vec<DeviceState>>>,
}

/// All GPUs of one compute node plus the shared virtual clock and host
/// model. Clones share state, so a cluster handle can be given to the
/// Galaxy runner, the GYAN allocator, and the monitoring script at once —
/// mirroring how all of those independently shell out to `nvidia-smi` on a
/// real node.
#[derive(Clone)]
pub struct GpuCluster {
    devices: Arc<Vec<RwLock<DeviceState>>>,
    clock: VirtualClock,
    host: HostSpec,
    driver_version: &'static str,
    cuda_version: &'static str,
    next_pid: Arc<AtomicU32>,
    smi_faults: Arc<SmiFaults>,
}

impl GpuCluster {
    /// Build a node with `count` devices of the given architecture.
    pub fn node(arch: GpuArch, count: u32) -> Self {
        let devices = (0..count).map(|i| RwLock::new(DeviceState::new(arch.clone(), i))).collect();
        GpuCluster {
            devices: Arc::new(devices),
            clock: VirtualClock::new(),
            host: HostSpec::xeon_e5_2670(),
            driver_version: "455.45.01",
            cuda_version: "11.1",
            next_pid: Arc::new(AtomicU32::new(39_900)),
            smi_faults: Arc::new(SmiFaults::default()),
        }
    }

    /// [`GpuCluster::node`] sharing an existing virtual clock — fleet
    /// shards advance in lock-step on one fleet-wide timeline instead of
    /// each node owning a private clock.
    pub fn node_on_clock(arch: GpuArch, count: u32, clock: &VirtualClock) -> Self {
        let mut node = Self::node(arch, count);
        node.clock = clock.clone();
        node
    }

    /// The paper's evaluation node: one Tesla K80 board exposing two GK210
    /// dies as devices 0 and 1, driver 455.45.01 (as shown in Fig. 10).
    pub fn k80_node() -> Self {
        Self::node(GpuArch::tesla_k80(), 2)
    }

    /// A Volta node: four V100 dies (a DGX-1-style half-board).
    pub fn v100_node() -> Self {
        Self::node(GpuArch::tesla_v100(), 4)
    }

    /// An Ampere node: eight A100 dies (a DGX-A100-style board).
    pub fn a100_node() -> Self {
        Self::node(GpuArch::a100(), 8)
    }

    /// A node with no GPUs — the CPU-only fallback scenario.
    pub fn cpu_only_node() -> Self {
        Self::node(GpuArch::tesla_k80(), 0)
    }

    /// Architecture of the node's devices (`None` on a GPU-less node).
    /// Nodes are homogeneous — heterogeneity lives between fleet shards,
    /// not within one node — so device 0 speaks for all.
    pub fn arch(&self) -> Option<GpuArch> {
        self.devices.first().map(|d| d.read().arch.clone())
    }

    /// Number of devices on the node.
    pub fn device_count(&self) -> u32 {
        self.devices.len() as u32
    }

    /// Shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Host CPU description.
    pub fn host(&self) -> &HostSpec {
        &self.host
    }

    /// Driver version string for smi output.
    pub fn driver_version(&self) -> &'static str {
        self.driver_version
    }

    /// CUDA runtime version string for smi output.
    pub fn cuda_version(&self) -> &'static str {
        self.cuda_version
    }

    /// Allocate a fresh host pid for a simulated tool process.
    pub fn spawn_pid(&self) -> u32 {
        self.next_pid.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Run `f` with shared access to device `minor`.
    pub fn with_device<T>(
        &self,
        minor: u32,
        f: impl FnOnce(&DeviceState) -> T,
    ) -> Result<T, GpuError> {
        let dev = self.devices.get(minor as usize).ok_or(GpuError::InvalidDevice(minor))?;
        Ok(f(&dev.read()))
    }

    /// Run `f` with exclusive access to device `minor`.
    pub fn with_device_mut<T>(
        &self,
        minor: u32,
        f: impl FnOnce(&mut DeviceState) -> T,
    ) -> Result<T, GpuError> {
        let dev = self.devices.get(minor as usize).ok_or(GpuError::InvalidDevice(minor))?;
        Ok(f(&mut dev.write()))
    }

    /// Snapshot every device's state (for smi/nvml emitters).
    pub fn snapshot(&self) -> Vec<DeviceState> {
        self.devices.iter().map(|d| d.read().clone()).collect()
    }

    /// Attach a process to a device.
    pub fn attach_process(&self, minor: u32, proc: GpuProcess) -> Result<(), GpuError> {
        self.with_device_mut(minor, |d| d.attach_process(proc))?
    }

    /// Detach a process from a device.
    pub fn detach_process(&self, minor: u32, pid: u32) -> Result<GpuProcess, GpuError> {
        self.with_device_mut(minor, |d| d.detach_process(pid))?
    }

    /// Minor numbers of devices with no resident processes, ascending —
    /// the "available GPUs" list of the paper's Pseudocode 1.
    pub fn available_devices(&self) -> Vec<u32> {
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.read().is_available())
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// All minor numbers, ascending.
    pub fn all_devices(&self) -> Vec<u32> {
        (0..self.device_count()).collect()
    }

    /// Arm `n` SMI query failures: the next `n` fallible SMI queries
    /// ([`crate::smi::try_query_xml`]) return an error instead of output,
    /// then queries succeed again. Shared across clones.
    pub fn inject_smi_query_failures(&self, n: u32) {
        self.smi_faults.fail_queries.fetch_add(n, Ordering::SeqCst);
    }

    /// Freeze the SMI view at the current device state: until
    /// [`thaw_smi_snapshot`](Self::thaw_smi_snapshot) is called, every SMI
    /// emitter serves this snapshot regardless of later attach/detach —
    /// the stale-observation fault the reservation layer must survive.
    pub fn freeze_smi_snapshot(&self) {
        let snapshot = self.devices.iter().map(|d| d.read().clone()).collect();
        *self.smi_faults.frozen.lock() = Some(snapshot);
    }

    /// Drop a frozen SMI snapshot so queries see live state again.
    pub fn thaw_smi_snapshot(&self) {
        *self.smi_faults.frozen.lock() = None;
    }

    /// Consume one armed SMI query failure; `true` if a failure fired.
    pub(crate) fn take_smi_query_failure(&self) -> bool {
        self.smi_faults
            .fail_queries
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    /// The snapshot SMI emitters should render: the frozen one if a
    /// stale-view fault is armed, otherwise the live device state.
    pub(crate) fn effective_smi_snapshot(&self) -> Vec<DeviceState> {
        if let Some(frozen) = self.smi_faults.frozen.lock().as_ref() {
            return frozen.clone();
        }
        self.snapshot()
    }
}

impl std::fmt::Debug for GpuCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuCluster")
            .field("devices", &self.device_count())
            .field("t", &self.clock.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k80_node_has_two_devices() {
        let c = GpuCluster::k80_node();
        assert_eq!(c.device_count(), 2);
        assert_eq!(c.available_devices(), vec![0, 1]);
        assert_eq!(c.all_devices(), vec![0, 1]);
    }

    #[test]
    fn attach_updates_availability() {
        let c = GpuCluster::k80_node();
        c.attach_process(1, GpuProcess::compute(10, "bonito", 2700)).unwrap();
        assert_eq!(c.available_devices(), vec![0]);
        c.detach_process(1, 10).unwrap();
        assert_eq!(c.available_devices(), vec![0, 1]);
    }

    #[test]
    fn invalid_device_errors() {
        let c = GpuCluster::k80_node();
        assert!(matches!(
            c.attach_process(5, GpuProcess::compute(1, "x", 1)),
            Err(GpuError::InvalidDevice(5))
        ));
        assert!(c.with_device(9, |_| ()).is_err());
    }

    #[test]
    fn clones_share_state() {
        let a = GpuCluster::k80_node();
        let b = a.clone();
        a.attach_process(0, GpuProcess::compute(1, "x", 1)).unwrap();
        assert_eq!(b.available_devices(), vec![1]);
        a.clock().advance(3.0);
        assert_eq!(b.clock().now(), 3.0);
    }

    #[test]
    fn pids_are_unique_and_increasing() {
        let c = GpuCluster::k80_node();
        let a = c.spawn_pid();
        let b = c.spawn_pid();
        assert!(b > a);
    }

    #[test]
    fn cpu_only_node_has_no_devices() {
        let c = GpuCluster::cpu_only_node();
        assert_eq!(c.device_count(), 0);
        assert!(c.available_devices().is_empty());
    }

    #[test]
    fn injected_query_failures_are_shared_and_consumed() {
        let a = GpuCluster::k80_node();
        let b = a.clone();
        a.inject_smi_query_failures(2);
        assert!(b.take_smi_query_failure());
        assert!(a.take_smi_query_failure());
        assert!(!a.take_smi_query_failure(), "budget exhausted");
    }

    #[test]
    fn frozen_snapshot_hides_later_attaches() {
        let c = GpuCluster::k80_node();
        c.freeze_smi_snapshot();
        c.attach_process(0, GpuProcess::compute(7, "late", 100)).unwrap();
        let frozen = c.effective_smi_snapshot();
        assert!(frozen[0].processes().is_empty(), "frozen view predates attach");
        c.thaw_smi_snapshot();
        assert_eq!(c.effective_smi_snapshot()[0].processes().len(), 1);
    }
}
