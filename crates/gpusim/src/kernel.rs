//! Kernel launch descriptions and the roofline duration model.

use crate::arch::GpuArch;
use crate::error::GpuError;
use crate::occupancy::{efficiency, occupancy};

/// Fixed driver/launch overhead per kernel, seconds. Real CUDA launch
/// latency is 3–10 µs; the K80 era sat at the high end.
pub const LAUNCH_OVERHEAD_S: f64 = 8e-6;

/// Floating-point precision of a kernel's arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Single precision (FP32).
    Fp32,
    /// Double precision (FP64).
    Fp64,
    /// Half precision (FP16 / automatic mixed precision). Halves DRAM
    /// traffic and uses the tensor-core rate where the part has one.
    Fp16,
}

/// A work description for one kernel launch.
///
/// Tools describe *what* a kernel does (FLOPs and DRAM traffic); the model
/// decides *how long* it takes on a given architecture. This is the standard
/// roofline abstraction: `t = max(flops / peak_flops, bytes / bandwidth)`,
/// scaled by achievable occupancy.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Kernel symbol name as a profiler would report it,
    /// e.g. `generatePOAKernel`.
    pub name: String,
    /// Number of thread blocks in the grid.
    pub grid_blocks: u32,
    /// Threads per block.
    pub block_threads: u32,
    /// Total floating point operations performed by the whole grid.
    pub flops: f64,
    /// Total DRAM bytes moved (reads + writes) by the whole grid.
    pub dram_bytes: f64,
    /// Arithmetic precision.
    pub precision: Precision,
}

impl KernelSpec {
    /// Convenience constructor for an FP32 kernel.
    pub fn fp32(
        name: impl Into<String>,
        grid_blocks: u32,
        block_threads: u32,
        flops: f64,
        dram_bytes: f64,
    ) -> Self {
        KernelSpec {
            name: name.into(),
            grid_blocks,
            block_threads,
            flops,
            dram_bytes,
            precision: Precision::Fp32,
        }
    }

    /// Arithmetic intensity in FLOP/byte.
    pub fn intensity(&self) -> f64 {
        if self.dram_bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.dram_bytes
        }
    }

    /// Whether the roofline classifies this launch as memory-bound on
    /// `arch` (intensity below the machine balance point).
    pub fn memory_bound(&self, arch: &GpuArch) -> bool {
        let peak = match self.precision {
            Precision::Fp32 => arch.fp32_flops(),
            Precision::Fp64 => arch.fp64_gflops * 1e9,
            Precision::Fp16 => arch.fp16_gflops * 1e9,
        };
        self.intensity() < peak / arch.mem_bandwidth_bytes()
    }

    /// Model the execution time of this launch on `arch`, in seconds.
    ///
    /// Returns the duration plus the compute-time and memory-time components
    /// (used by the profiler's stall analysis).
    pub fn duration(&self, arch: &GpuArch) -> Result<KernelTiming, GpuError> {
        let occ = occupancy(arch, self.grid_blocks, self.block_threads)?;
        let eff = efficiency(&occ);
        let peak_flops = match self.precision {
            Precision::Fp32 => arch.fp32_flops(),
            Precision::Fp64 => arch.fp64_gflops * 1e9,
            Precision::Fp16 => arch.fp16_gflops * 1e9,
        };
        let compute_s = self.flops / (peak_flops * eff);
        // DRAM efficiency: real kernels rarely exceed ~75% of peak
        // bandwidth; FP16 operands halve the traffic.
        let dram_bytes = match self.precision {
            Precision::Fp16 => self.dram_bytes / 2.0,
            _ => self.dram_bytes,
        };
        let memory_s = dram_bytes / (arch.mem_bandwidth_bytes() * 0.75);
        let busy = compute_s.max(memory_s);
        Ok(KernelTiming {
            total_s: LAUNCH_OVERHEAD_S + busy,
            compute_s,
            memory_s,
            occupancy: occ.occupancy,
            efficiency: eff,
        })
    }
}

/// Breakdown of a modeled kernel execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTiming {
    /// Wall (virtual) duration including launch overhead.
    pub total_s: f64,
    /// Time the launch would need if purely compute-limited.
    pub compute_s: f64,
    /// Time the launch would need if purely bandwidth-limited.
    pub memory_s: f64,
    /// Achieved occupancy fraction.
    pub occupancy: f64,
    /// Achieved fraction of peak throughput.
    pub efficiency: f64,
}

impl KernelTiming {
    /// Fraction of stall cycles attributable to memory dependencies —
    /// the quantity NVProf's stall analysis reports (the paper measured
    /// ~70% memory-dependency stalls for Racon's kernels).
    pub fn memory_stall_fraction(&self) -> f64 {
        let denom = self.compute_s + self.memory_s;
        if denom == 0.0 {
            0.0
        } else {
            self.memory_s / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k80() -> GpuArch {
        GpuArch::tesla_k80()
    }

    #[test]
    fn gemm_like_kernel_is_compute_bound() {
        // 1024³ GEMM: 2·n³ flops, 3·n²·4 bytes (ideal caching).
        let n = 1024.0_f64;
        let k = KernelSpec::fp32("gemm", 4096, 256, 2.0 * n * n * n, 3.0 * n * n * 4.0);
        assert!(!k.memory_bound(&k80()));
        let t = k.duration(&k80()).unwrap();
        assert!(t.compute_s > t.memory_s);
        // 2.1 GFLOP on a 4.4 TFLOP/s part ≈ 0.5 ms at full efficiency.
        assert!(t.total_s > 4e-4 && t.total_s < 5e-3, "{t:?}");
    }

    #[test]
    fn streaming_kernel_is_memory_bound() {
        // SAXPY over 100M elements: 2 flops, 12 bytes per element.
        let n = 1e8;
        let k = KernelSpec::fp32("saxpy", 100_000, 256, 2.0 * n, 12.0 * n);
        assert!(k.memory_bound(&k80()));
        let t = k.duration(&k80()).unwrap();
        assert!(t.memory_s > t.compute_s);
        assert!(t.memory_stall_fraction() > 0.9);
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let k = KernelSpec::fp32("noop", 1, 32, 1.0, 1.0);
        let t = k.duration(&k80()).unwrap();
        assert!(t.total_s >= LAUNCH_OVERHEAD_S);
        assert!(t.total_s < 2.0 * LAUNCH_OVERHEAD_S);
    }

    #[test]
    fn fp64_slower_than_fp32_on_same_work() {
        let mk = |p| KernelSpec {
            name: "k".into(),
            grid_blocks: 1024,
            block_threads: 256,
            flops: 1e10,
            dram_bytes: 1e6,
            precision: p,
        };
        let t32 = mk(Precision::Fp32).duration(&k80()).unwrap();
        let t64 = mk(Precision::Fp64).duration(&k80()).unwrap();
        assert!(t64.total_s > t32.total_s * 2.0);
    }

    #[test]
    fn bigger_grid_better_throughput() {
        // Same total work split into more blocks → shorter or equal time
        // once the grid saturates the device.
        let small = KernelSpec::fp32("k", 4, 256, 1e10, 1e6).duration(&k80()).unwrap();
        let large = KernelSpec::fp32("k", 4096, 256, 1e10, 1e6).duration(&k80()).unwrap();
        assert!(large.total_s < small.total_s);
    }

    #[test]
    fn faster_arch_runs_same_kernel_faster() {
        let k = KernelSpec::fp32("k", 4096, 256, 1e11, 1e9);
        let k80_t = k.duration(&GpuArch::tesla_k80()).unwrap();
        let a100_t = k.duration(&GpuArch::a100()).unwrap();
        assert!(a100_t.total_s < k80_t.total_s / 2.0);
    }

    #[test]
    fn same_kernel_prices_strictly_faster_per_node_class() {
        // The fleet's placement layer relies on the roofline model
        // pricing one kernel differently per node class: the same racon
        // polishing kernel must get strictly cheaper K80 → V100 → A100 in
        // both a compute-bound and a memory-bound shape.
        let compute_bound = KernelSpec::fp32("polish", 4096, 256, 1e12, 1e9);
        let memory_bound = KernelSpec::fp32("overlap", 4096, 256, 1e9, 1e10);
        for k in [compute_bound, memory_bound] {
            let k80_t = k.duration(&GpuArch::tesla_k80()).unwrap().total_s;
            let v100_t = k.duration(&GpuArch::tesla_v100()).unwrap().total_s;
            let a100_t = k.duration(&GpuArch::a100()).unwrap().total_s;
            assert!(v100_t < k80_t, "{}: V100 {v100_t} !< K80 {k80_t}", k.name);
            assert!(a100_t < v100_t, "{}: A100 {a100_t} !< V100 {v100_t}", k.name);
        }
    }

    #[test]
    fn fp16_is_fast_on_tensor_core_parts_only() {
        let mk = |p| KernelSpec {
            name: "gemm".into(),
            grid_blocks: 4096,
            block_threads: 256,
            flops: 1e12,
            dram_bytes: 1e9,
            precision: p,
        };
        let k80_32 = mk(Precision::Fp32).duration(&GpuArch::tesla_k80()).unwrap();
        let k80_16 = mk(Precision::Fp16).duration(&GpuArch::tesla_k80()).unwrap();
        // Kepler: only the memory-traffic halving helps.
        assert!(k80_16.total_s <= k80_32.total_s);
        assert!(k80_16.total_s > k80_32.total_s * 0.4);
        let v100_32 = mk(Precision::Fp32).duration(&GpuArch::tesla_v100()).unwrap();
        let v100_16 = mk(Precision::Fp16).duration(&GpuArch::tesla_v100()).unwrap();
        assert!(v100_16.total_s < v100_32.total_s * 0.5, "tensor cores should dominate");
    }

    #[test]
    fn invalid_launch_propagates() {
        let k = KernelSpec::fp32("bad", 0, 256, 1.0, 1.0);
        assert!(k.duration(&k80()).is_err());
    }

    #[test]
    fn intensity_of_zero_bytes_is_infinite() {
        let k = KernelSpec::fp32("reg-only", 1, 32, 100.0, 0.0);
        assert!(k.intensity().is_infinite());
        assert!(!k.memory_bound(&k80()));
    }
}
