//! CUDA occupancy calculator.
//!
//! Computes how many warps can be resident per SM for a launch
//! configuration, and how many "waves" of blocks a grid needs. The paper's
//! background section stresses that "higher number of blocks used in a
//! device kernel allows better scaling across any GPU architecture" — the
//! wave count is exactly that effect.

use crate::arch::GpuArch;
use crate::error::GpuError;

/// Result of an occupancy computation for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// Fraction of the architecture's maximum resident warps (0–1].
    pub occupancy: f64,
    /// Number of sequential waves needed to run the whole grid.
    pub waves: u32,
    /// Fraction of the last wave's SM capacity actually used (0–1]; the
    /// "tail effect" of partially filled final waves.
    pub tail_utilization: f64,
}

/// Compute occupancy for `grid_blocks` blocks of `block_threads` threads.
pub fn occupancy(
    arch: &GpuArch,
    grid_blocks: u32,
    block_threads: u32,
) -> Result<Occupancy, GpuError> {
    if block_threads == 0 || grid_blocks == 0 {
        return Err(GpuError::BadLaunch("zero-sized grid or block".into()));
    }
    if block_threads > arch.max_threads_per_block {
        return Err(GpuError::BadLaunch(format!(
            "{} threads/block exceeds limit {}",
            block_threads, arch.max_threads_per_block
        )));
    }
    let warps_per_block = block_threads.div_ceil(arch.warp_size);

    // Residency limits: warps, threads, and raw block slots per SM.
    let by_warps = arch.max_warps_per_sm / warps_per_block;
    let by_threads = arch.max_threads_per_sm / block_threads;
    let blocks_per_sm = by_warps.min(by_threads).min(arch.max_blocks_per_sm).max(1);

    let warps_per_sm = (blocks_per_sm * warps_per_block).min(arch.max_warps_per_sm);
    let occ = f64::from(warps_per_sm) / f64::from(arch.max_warps_per_sm);

    let blocks_per_wave = blocks_per_sm * arch.sm_count;
    let waves = grid_blocks.div_ceil(blocks_per_wave);
    let last_wave_blocks = grid_blocks - (waves - 1) * blocks_per_wave;
    let tail = f64::from(last_wave_blocks) / f64::from(blocks_per_wave);

    Ok(Occupancy { blocks_per_sm, warps_per_sm, occupancy: occ, waves, tail_utilization: tail })
}

/// Effective fraction of peak throughput achievable by this launch: the
/// occupancy factor damped by the tail effect across waves.
pub fn efficiency(o: &Occupancy) -> f64 {
    let full_waves = f64::from(o.waves - 1);
    let avg_wave_fill = (full_waves + o.tail_utilization) / f64::from(o.waves);
    // Low occupancy cannot hide latency; model as sqrt ramp which matches
    // the usual "need ~50% occupancy for ~full throughput" rule of thumb.
    let latency_hiding = o.occupancy.sqrt().min(1.0);
    (avg_wave_fill * latency_hiding).clamp(0.01, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuArch;

    #[test]
    fn full_occupancy_256_threads() {
        let arch = GpuArch::tesla_k80();
        let o = occupancy(&arch, 1000, 256).unwrap();
        // 256 threads = 8 warps; 64/8 = 8 blocks by warps, 2048/256 = 8 by
        // threads, max_blocks 16 → 8 blocks/SM, 64 warps = 100% occupancy.
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.warps_per_sm, 64);
        assert!((o.occupancy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_blocks_limited_by_block_slots() {
        let arch = GpuArch::tesla_k80();
        let o = occupancy(&arch, 64, 32).unwrap();
        // 1 warp per block; block-slot limit (16) binds before warp limit.
        assert_eq!(o.blocks_per_sm, 16);
        assert_eq!(o.warps_per_sm, 16);
        assert!(o.occupancy < 0.3);
    }

    #[test]
    fn waves_and_tail() {
        let arch = GpuArch::tesla_k80();
        let o = occupancy(&arch, 1, 256).unwrap();
        assert_eq!(o.waves, 1);
        assert!(o.tail_utilization < 0.01 + 1.0 / (8.0 * 15.0));
        let o2 = occupancy(&arch, 8 * 15 * 3, 256).unwrap();
        assert_eq!(o2.waves, 3);
        assert!((o2.tail_utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_increases_with_grid_size() {
        let arch = GpuArch::tesla_k80();
        let small = efficiency(&occupancy(&arch, 1, 256).unwrap());
        let large = efficiency(&occupancy(&arch, 10_000, 256).unwrap());
        assert!(large > small);
        assert!(large <= 1.0);
    }

    #[test]
    fn bad_launches_rejected() {
        let arch = GpuArch::tesla_k80();
        assert!(occupancy(&arch, 0, 256).is_err());
        assert!(occupancy(&arch, 10, 0).is_err());
        assert!(occupancy(&arch, 10, arch.max_threads_per_block + 1).is_err());
    }

    #[test]
    fn odd_block_sizes_round_to_warps() {
        let arch = GpuArch::tesla_k80();
        let o = occupancy(&arch, 100, 33).unwrap(); // 2 warps per block
        assert_eq!(o.warps_per_sm % 2, 0);
    }
}
