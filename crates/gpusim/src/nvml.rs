//! A `pynvml`-like query API.
//!
//! GYAN's dynamic destination rule "obtains the system GPU availability and
//! the number of GPUs using the `pynvml` Python library". This module is
//! the equivalent surface over the simulated cluster, with method names
//! kept close to NVML's so the GYAN code reads like the paper's.

use crate::cluster::GpuCluster;
use crate::error::GpuError;

/// Memory info in bytes, mirroring `nvmlDeviceGetMemoryInfo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryInfo {
    /// Total framebuffer bytes.
    pub total: u64,
    /// Bytes in use.
    pub used: u64,
    /// Bytes free.
    pub free: u64,
}

/// Utilization rates in percent, mirroring `nvmlDeviceGetUtilizationRates`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationRates {
    /// SM utilization percentage.
    pub gpu: f64,
    /// Memory controller utilization percentage.
    pub memory: f64,
}

/// A running compute process, mirroring
/// `nvmlDeviceGetComputeRunningProcesses`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunningProcess {
    /// Host pid.
    pub pid: u32,
    /// Bytes of device memory used.
    pub used_gpu_memory: u64,
}

/// Handle to the simulated NVML library.
#[derive(Clone)]
pub struct Nvml {
    cluster: GpuCluster,
}

impl Nvml {
    /// `nvmlInit` — bind to a cluster.
    pub fn init(cluster: &GpuCluster) -> Self {
        Nvml { cluster: cluster.clone() }
    }

    /// `nvmlDeviceGetCount`.
    pub fn device_count(&self) -> u32 {
        self.cluster.device_count()
    }

    /// `nvmlDeviceGetName` for device `index`.
    pub fn device_name(&self, index: u32) -> Result<String, GpuError> {
        self.cluster.with_device(index, |d| d.arch.name.to_string())
    }

    /// `nvmlDeviceGetMemoryInfo` for device `index`.
    pub fn memory_info(&self, index: u32) -> Result<MemoryInfo, GpuError> {
        self.cluster.with_device(index, |d| MemoryInfo {
            total: d.fb_total_mib() << 20,
            used: d.fb_used_mib() << 20,
            free: d.fb_free_mib() << 20,
        })
    }

    /// `nvmlDeviceGetUtilizationRates` for device `index`.
    pub fn utilization_rates(&self, index: u32) -> Result<UtilizationRates, GpuError> {
        self.cluster.with_device(index, |d| UtilizationRates {
            gpu: d.sm_utilization,
            memory: d.mem_utilization,
        })
    }

    /// `nvmlDeviceGetTemperature` (GPU sensor) for device `index`, °C.
    pub fn temperature(&self, index: u32) -> Result<f64, GpuError> {
        self.cluster.with_device(index, |d| d.temperature_c)
    }

    /// `nvmlDeviceGetPowerUsage` for device `index`, milliwatts (NVML's
    /// unit).
    pub fn power_usage_mw(&self, index: u32) -> Result<u64, GpuError> {
        self.cluster.with_device(index, |d| (d.power_draw_w() * 1000.0) as u64)
    }

    /// `nvmlDeviceGetEnforcedPowerLimit` for device `index`, milliwatts.
    pub fn power_limit_mw(&self, index: u32) -> Result<u64, GpuError> {
        self.cluster.with_device(index, |d| (d.arch.power_limit_w * 1000.0) as u64)
    }

    /// `nvmlDeviceGetComputeRunningProcesses` for device `index`.
    pub fn compute_running_processes(&self, index: u32) -> Result<Vec<RunningProcess>, GpuError> {
        self.cluster.with_device(index, |d| {
            d.processes()
                .iter()
                .map(|p| RunningProcess { pid: p.pid, used_gpu_memory: p.used_mib << 20 })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::GpuProcess;

    #[test]
    fn counts_and_names() {
        let c = GpuCluster::k80_node();
        let nvml = Nvml::init(&c);
        assert_eq!(nvml.device_count(), 2);
        assert_eq!(nvml.device_name(0).unwrap(), "Tesla K80");
        assert!(nvml.device_name(3).is_err());
    }

    #[test]
    fn memory_info_tracks_processes() {
        let c = GpuCluster::k80_node();
        let nvml = Nvml::init(&c);
        let before = nvml.memory_info(0).unwrap();
        c.attach_process(0, GpuProcess::compute(9, "t", 100)).unwrap();
        let after = nvml.memory_info(0).unwrap();
        assert_eq!(after.used - before.used, 100 << 20);
        assert_eq!(after.total, before.total);
        assert_eq!(after.free + after.used, after.total);
    }

    #[test]
    fn running_processes_reported() {
        let c = GpuCluster::k80_node();
        c.attach_process(1, GpuProcess::compute(42, "bonito", 2700)).unwrap();
        let nvml = Nvml::init(&c);
        let procs = nvml.compute_running_processes(1).unwrap();
        assert_eq!(procs, vec![RunningProcess { pid: 42, used_gpu_memory: 2700 << 20 }]);
        assert!(nvml.compute_running_processes(0).unwrap().is_empty());
    }

    #[test]
    fn temperature_and_power_reported() {
        let c = GpuCluster::k80_node();
        c.with_device_mut(0, |d| d.set_utilization(100.0, 50.0)).unwrap();
        let nvml = Nvml::init(&c);
        assert!(nvml.temperature(0).unwrap() > nvml.temperature(1).unwrap());
        assert_eq!(nvml.power_usage_mw(0).unwrap(), 149_000); // at limit
        assert_eq!(nvml.power_limit_mw(0).unwrap(), 149_000);
        assert_eq!(nvml.power_usage_mw(1).unwrap(), 60_000); // idle
        assert!(nvml.temperature(9).is_err());
    }

    #[test]
    fn utilization_defaults_to_idle() {
        let c = GpuCluster::k80_node();
        let nvml = Nvml::init(&c);
        let u = nvml.utilization_rates(0).unwrap();
        assert_eq!(u.gpu, 0.0);
        assert_eq!(u.memory, 0.0);
    }
}
