//! A CUDA-runtime-like facade for simulated tools.
//!
//! A [`CudaContext`] is what a GPU-enabled tool (the Racon/Bonito
//! reimplementations in `seqtools`) holds while executing. It:
//!
//! * honours `CUDA_VISIBLE_DEVICES` masking — logical device ordinals are
//!   remapped onto the physical minors GYAN exposed, exactly as the real
//!   driver does;
//! * registers the tool's process on each device it touches, so
//!   `nvidia-smi` queries made concurrently by GYAN's allocator and
//!   monitor observe it;
//! * advances the cluster's virtual clock for every malloc, memcpy,
//!   kernel wait, and synchronize according to the cost models;
//! * feeds the [`Profiler`] so NVProf-style hotspot figures can be
//!   regenerated.

use crate::cluster::GpuCluster;
use crate::error::GpuError;
use crate::kernel::{KernelSpec, LAUNCH_OVERHEAD_S};
use crate::process::GpuProcess;
use crate::profiler::{ApiKind, Profiler};
use crate::trace::Trace;
use crate::transfer::TransferSpec;
use std::collections::HashMap;

/// Per-call host overhead of `cudaMalloc`, seconds.
const MALLOC_BASE_S: f64 = 60e-6;
/// Additional `cudaMalloc` cost per byte (page table + zeroing), s/B.
/// Calibrated so multi-GiB working sets cost seconds, matching the paper's
/// "2 s for GPU memory allocation" for Racon's polishing batches.
const MALLOC_PER_BYTE_S: f64 = 0.25e-9;

/// Memory the bare context itself pins on a device (CUDA context overhead).
/// 60 MiB matches the per-process usage in the paper's Fig. 11.
const CONTEXT_MIB: u64 = 60;

/// Parse a `CUDA_VISIBLE_DEVICES`-style string into physical minors.
///
/// `None` means the variable is unset → all devices visible. An empty or
/// unparsable string yields an empty list (the real driver hides all
/// devices on malformed entries from the first bad token onward).
pub fn parse_visible_devices(value: Option<&str>, device_count: u32) -> Vec<u32> {
    match value {
        None => (0..device_count).collect(),
        Some(s) => {
            let mut out = Vec::new();
            for token in s.split(',') {
                let token = token.trim();
                match token.parse::<u32>() {
                    Ok(minor) if minor < device_count && !out.contains(&minor) => out.push(minor),
                    _ => break, // driver semantics: stop at first invalid id
                }
            }
            out
        }
    }
}

/// A simulated CUDA context held by one tool process.
pub struct CudaContext {
    cluster: GpuCluster,
    /// Logical ordinal → physical minor.
    visible: Vec<u32>,
    /// Currently selected logical device.
    current: usize,
    /// Host pid of the owning process.
    pid: u32,
    /// Process name shown in smi output.
    proc_name: String,
    /// Devices where our process has been registered.
    registered: Vec<u32>,
    /// Bytes currently allocated per physical minor (beyond context).
    allocated_bytes: HashMap<u32, u64>,
    /// Profiler for this context.
    pub profiler: Profiler,
    /// Event-level timeline of this context's activity.
    pub trace: Trace,
}

impl CudaContext {
    /// Create a context for process `pid` named `proc_name`, honouring the
    /// `CUDA_VISIBLE_DEVICES` value GYAN exported (or `None` if unset).
    pub fn new(
        cluster: &GpuCluster,
        visible_devices: Option<&str>,
        pid: u32,
        proc_name: impl Into<String>,
    ) -> Result<Self, GpuError> {
        let visible = parse_visible_devices(visible_devices, cluster.device_count());
        if visible.is_empty() {
            return Err(GpuError::NoVisibleDevices);
        }
        Ok(CudaContext {
            cluster: cluster.clone(),
            visible,
            current: 0,
            pid,
            proc_name: proc_name.into(),
            registered: Vec::new(),
            allocated_bytes: HashMap::new(),
            profiler: Profiler::new(),
            trace: Trace::new(),
        })
    }

    /// Number of devices this context can see (`cudaGetDeviceCount`).
    pub fn device_count(&self) -> u32 {
        self.visible.len() as u32
    }

    /// Select the active logical device (`cudaSetDevice`).
    pub fn set_device(&mut self, logical: u32) -> Result<(), GpuError> {
        if (logical as usize) < self.visible.len() {
            self.current = logical as usize;
            Ok(())
        } else {
            Err(GpuError::InvalidDevice(logical))
        }
    }

    /// Physical minor of the active device.
    pub fn current_minor(&self) -> u32 {
        self.visible[self.current]
    }

    /// Physical minors of all visible devices, in logical order.
    pub fn visible_minors(&self) -> &[u32] {
        &self.visible
    }

    /// Host pid of the owning process.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    fn ensure_registered(&mut self, minor: u32) -> Result<(), GpuError> {
        if !self.registered.contains(&minor) {
            self.cluster.attach_process(
                minor,
                GpuProcess::compute(self.pid, self.proc_name.clone(), CONTEXT_MIB),
            )?;
            self.registered.push(minor);
        }
        Ok(())
    }

    /// `cudaMalloc`: charge `bytes` on the active device and advance time.
    pub fn malloc(&mut self, bytes: u64) -> Result<(), GpuError> {
        let minor = self.current_minor();
        self.ensure_registered(minor)?;
        let mib = bytes.div_ceil(1 << 20) as i64;
        self.cluster.with_device_mut(minor, |d| d.resize_process(self.pid, mib))??;
        *self.allocated_bytes.entry(minor).or_default() += bytes;
        let cost = MALLOC_BASE_S + bytes as f64 * MALLOC_PER_BYTE_S;
        let start = self.cluster.clock().now();
        self.cluster.clock().advance(cost);
        self.profiler.record(ApiKind::ApiCall, "cudaMalloc", cost);
        self.trace.record("cudaMalloc", "host", "host", start, cost);
        Ok(())
    }

    /// `cudaFree`: release `bytes` on the active device.
    pub fn free(&mut self, bytes: u64) -> Result<(), GpuError> {
        let minor = self.current_minor();
        let mib = bytes.div_ceil(1 << 20) as i64;
        self.cluster.with_device_mut(minor, |d| d.resize_process(self.pid, -mib))??;
        let held = self.allocated_bytes.entry(minor).or_default();
        *held = held.saturating_sub(bytes);
        let cost = MALLOC_BASE_S / 2.0;
        self.cluster.clock().advance(cost);
        self.profiler.record(ApiKind::ApiCall, "cudaFree", cost);
        Ok(())
    }

    /// `cudaMemcpy` (synchronous): blocks until outstanding work on the
    /// active device finishes, then performs the transfer.
    pub fn memcpy(&mut self, spec: TransferSpec) -> Result<(), GpuError> {
        let minor = self.current_minor();
        self.ensure_registered(minor)?;
        self.wait_device(minor, "cudaMemcpy");
        let arch = self.cluster.with_device(minor, |d| d.arch.clone())?;
        let dur = spec.duration(&arch);
        let start = self.cluster.clock().now();
        self.cluster.clock().advance(dur);
        self.profiler.record(ApiKind::ApiCall, spec.kind.api_name(), dur);
        self.profiler.record(ApiKind::GpuActivity, spec.kind.api_name(), dur);
        let track = match spec.kind {
            crate::transfer::CopyKind::DeviceToHost => format!("gpu{minor}/d2h"),
            _ => format!("gpu{minor}/h2d"),
        };
        self.trace.record(spec.kind.api_name(), "dma", track, start, dur);
        Ok(())
    }

    /// `cudaMemcpyAsync`: enqueue the transfer on the device's copy engine
    /// and return immediately. Host→device copies overlap with kernel
    /// execution; device→host copies additionally wait for queued kernels
    /// (they read kernel output).
    pub fn memcpy_async(&mut self, spec: TransferSpec) -> Result<(), GpuError> {
        let minor = self.current_minor();
        self.ensure_registered(minor)?;
        let arch = self.cluster.with_device(minor, |d| d.arch.clone())?;
        let dur = spec.duration(&arch);

        let now = self.cluster.clock().advance(crate::transfer::MEMCPY_LATENCY_S);
        self.profiler.record(
            ApiKind::ApiCall,
            "cudaMemcpyAsync",
            crate::transfer::MEMCPY_LATENCY_S,
        );

        // Engine-busy state lives on the (shared) device: concurrent
        // contexts contend for the same DMA engines.
        let is_d2h = matches!(spec.kind, crate::transfer::CopyKind::DeviceToHost);
        let start = self.cluster.with_device_mut(minor, |d| {
            // Result copies (D2H) read kernel output, so they also wait
            // for the compute engine.
            let compute_gate = if is_d2h { d.compute_busy_until } else { 0.0 };
            let engine = if is_d2h { &mut d.d2h_busy_until } else { &mut d.h2d_busy_until };
            let start = engine.max(now).max(compute_gate);
            *engine = start + dur;
            start
        })?;
        self.profiler.record(ApiKind::GpuActivity, spec.kind.api_name(), dur);
        let track = match spec.kind {
            crate::transfer::CopyKind::DeviceToHost => format!("gpu{minor}/d2h"),
            _ => format!("gpu{minor}/h2d"),
        };
        self.trace.record(spec.kind.api_name(), "dma", track, start, dur);
        Ok(())
    }

    /// Launch a kernel asynchronously on the active device
    /// (`cudaLaunchKernel`): the host pays only launch overhead; device
    /// busy time is tracked until the next sync.
    pub fn launch(&mut self, kernel: &KernelSpec) -> Result<(), GpuError> {
        let minor = self.current_minor();
        self.ensure_registered(minor)?;
        let arch = self.cluster.with_device(minor, |d| d.arch.clone())?;
        let timing = kernel.duration(&arch)?;

        let now = self.cluster.clock().advance(LAUNCH_OVERHEAD_S);
        self.profiler.record(ApiKind::ApiCall, "cudaLaunchKernel", LAUNCH_OVERHEAD_S);

        // Stream semantics: the kernel waits for prior kernels (the
        // compute engine is shared device-wide, so other contexts'
        // kernels count too) and for the latest enqueued input copy.
        let start = self.cluster.with_device_mut(minor, |d| {
            let start = d.compute_busy_until.max(d.h2d_busy_until).max(now);
            d.compute_busy_until = start + timing.total_s;
            start
        })?;
        let done = start + timing.total_s;
        let _ = done;

        self.profiler.record(ApiKind::GpuActivity, &kernel.name, timing.total_s);
        self.trace.record(
            kernel.name.clone(),
            "kernel",
            format!("gpu{minor}/compute"),
            start,
            timing.total_s,
        );
        self.profiler.record_stalls(&timing);

        // Reflect the launch in device utilization so concurrent monitor
        // samples see a busy device.
        let sm = timing.efficiency * 100.0;
        let mem = timing.memory_stall_fraction() * 100.0;
        self.cluster.with_device_mut(minor, |d| d.set_utilization(sm, mem))?;
        Ok(())
    }

    /// `cudaStreamSynchronize` on the active device: the host blocks until
    /// queued kernels complete; the wait is attributed to the sync API
    /// (which is why sync dominates NVProf's API-call section in Fig. 4).
    pub fn synchronize(&mut self) -> Result<(), GpuError> {
        let minor = self.current_minor();
        self.wait_device(minor, "cudaStreamSynchronize");
        Ok(())
    }

    fn wait_device(&mut self, minor: u32, api: &str) {
        let now = self.cluster.clock().now();
        let done = self.cluster.with_device(minor, |d| d.engines_busy_until()).unwrap_or(0.0);
        if done > now {
            let wait = done - now;
            self.cluster.clock().advance_to(done);
            self.profiler.record(ApiKind::ApiCall, api, wait);
        }
    }

    /// Tear down the context: sync every device, drop utilization, detach
    /// the process everywhere (`cudaDeviceReset` + process exit).
    pub fn destroy(mut self) -> Profiler {
        let minors: Vec<u32> = self.registered.clone();
        for minor in &minors {
            self.wait_device(*minor, "cudaStreamSynchronize");
        }
        for minor in minors {
            let _ = self.cluster.with_device_mut(minor, |d| d.set_utilization(0.0, 0.0));
            let _ = self.cluster.detach_process(minor, self.pid);
        }
        std::mem::take(&mut self.profiler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::GpuCluster;

    #[test]
    fn visible_device_parsing() {
        assert_eq!(parse_visible_devices(None, 2), vec![0, 1]);
        assert_eq!(parse_visible_devices(Some("1"), 2), vec![1]);
        assert_eq!(parse_visible_devices(Some("1,0"), 2), vec![1, 0]);
        assert_eq!(parse_visible_devices(Some(""), 2), Vec::<u32>::new());
        assert_eq!(parse_visible_devices(Some("0,junk,1"), 2), vec![0]);
        assert_eq!(parse_visible_devices(Some("7"), 2), Vec::<u32>::new());
        assert_eq!(parse_visible_devices(Some("0,0"), 2), vec![0]);
    }

    #[test]
    fn masking_remaps_logical_ordinals() {
        let cluster = GpuCluster::k80_node();
        let mut ctx = CudaContext::new(&cluster, Some("1"), 100, "tool").unwrap();
        assert_eq!(ctx.device_count(), 1);
        assert_eq!(ctx.current_minor(), 1);
        ctx.malloc(1 << 20).unwrap();
        // The process must appear on physical device 1, not 0.
        assert_eq!(cluster.available_devices(), vec![0]);
        ctx.destroy();
        assert_eq!(cluster.available_devices(), vec![0, 1]);
    }

    #[test]
    fn empty_mask_fails() {
        let cluster = GpuCluster::k80_node();
        assert!(matches!(
            CudaContext::new(&cluster, Some(""), 1, "t"),
            Err(GpuError::NoVisibleDevices)
        ));
    }

    #[test]
    fn malloc_registers_context_memory() {
        let cluster = GpuCluster::k80_node();
        let mut ctx = CudaContext::new(&cluster, None, 55, "racon_gpu").unwrap();
        ctx.malloc(512 << 20).unwrap();
        let used = cluster.with_device(0, |d| d.fb_used_mib()).unwrap();
        assert_eq!(used, 63 + 60 + 512); // driver + context + allocation
        ctx.destroy();
    }

    #[test]
    fn async_launch_then_sync_advances_clock() {
        let cluster = GpuCluster::k80_node();
        let mut ctx = CudaContext::new(&cluster, None, 1, "t").unwrap();
        let k = KernelSpec::fp32("bigk", 4096, 256, 1e12, 1e9);
        ctx.launch(&k).unwrap();
        let t_after_launch = cluster.clock().now();
        assert!(t_after_launch < 0.001); // launch is async
        ctx.synchronize().unwrap();
        let t_after_sync = cluster.clock().now();
        assert!(t_after_sync > 0.05, "{t_after_sync}");
        // Wait time attributed to the sync API.
        let sync = ctx.profiler.api_entry("cudaStreamSynchronize").unwrap();
        assert!(sync.seconds > 0.05);
        ctx.destroy();
    }

    #[test]
    fn memcpy_blocks_on_pending_kernels() {
        let cluster = GpuCluster::k80_node();
        let mut ctx = CudaContext::new(&cluster, None, 1, "t").unwrap();
        ctx.launch(&KernelSpec::fp32("k", 4096, 256, 1e12, 1e9)).unwrap();
        ctx.memcpy(TransferSpec::d2h(1e6)).unwrap();
        // The memcpy API time itself is small; the kernel wait went to
        // cudaMemcpy (synchronous copy semantics).
        assert!(ctx.profiler.api_entry("cudaMemcpy").unwrap().seconds > 0.05);
        assert!(ctx.profiler.api_entry("cudaMemcpyDtoH").is_some());
        ctx.destroy();
    }

    #[test]
    fn utilization_visible_during_run_and_cleared_after() {
        let cluster = GpuCluster::k80_node();
        let mut ctx = CudaContext::new(&cluster, None, 1, "t").unwrap();
        ctx.launch(&KernelSpec::fp32("k", 4096, 256, 1e12, 1e9)).unwrap();
        let util = cluster.with_device(0, |d| d.sm_utilization).unwrap();
        assert!(util > 50.0);
        ctx.destroy();
        let util = cluster.with_device(0, |d| d.sm_utilization).unwrap();
        assert_eq!(util, 0.0);
    }

    #[test]
    fn oom_malloc_errors() {
        let cluster = GpuCluster::k80_node();
        let mut ctx = CudaContext::new(&cluster, None, 1, "hog").unwrap();
        let too_big = (cluster.with_device(0, |d| d.fb_total_mib()).unwrap() + 1) << 20;
        assert!(matches!(ctx.malloc(too_big), Err(GpuError::OutOfMemory { .. })));
        ctx.destroy();
    }

    #[test]
    fn set_device_switches_and_validates() {
        let cluster = GpuCluster::k80_node();
        let mut ctx = CudaContext::new(&cluster, None, 1, "t").unwrap();
        ctx.set_device(1).unwrap();
        assert_eq!(ctx.current_minor(), 1);
        assert!(ctx.set_device(2).is_err());
        ctx.destroy();
    }

    #[test]
    fn destroy_returns_merged_profiler() {
        let cluster = GpuCluster::k80_node();
        let mut ctx = CudaContext::new(&cluster, None, 1, "t").unwrap();
        ctx.malloc(1 << 20).unwrap();
        let prof = ctx.destroy();
        assert_eq!(prof.api_entry("cudaMalloc").unwrap().calls, 1);
    }
}

#[cfg(test)]
mod pipeline_tests {
    use super::*;
    use crate::cluster::GpuCluster;

    /// Async H2D copies must overlap with kernel execution: a pipelined
    /// copy+kernel sequence finishes in roughly max(copies, kernels), not
    /// their sum.
    #[test]
    fn async_copies_overlap_kernels() {
        let mk = |pipelined: bool| -> f64 {
            let cluster = GpuCluster::k80_node();
            let mut ctx = CudaContext::new(&cluster, None, 1, "t").unwrap();
            for _ in 0..4 {
                let copy = TransferSpec::h2d(7e9); // ~1.2 s, comparable to the kernel
                if pipelined {
                    ctx.memcpy_async(copy).unwrap();
                } else {
                    ctx.memcpy(copy).unwrap();
                }
                ctx.launch(&KernelSpec::fp32("k", 4096, 256, 5e12, 1e8)).unwrap();
            }
            ctx.synchronize().unwrap();
            let t = cluster.clock().now();
            ctx.destroy();
            t
        };
        let serial = mk(false);
        let pipelined = mk(true);
        assert!(pipelined < serial * 0.75, "pipelined {pipelined:.3} vs serial {serial:.3}");
    }

    /// D2H copies wait for queued kernels (they read their output), and
    /// the two DMA directions use independent engines.
    #[test]
    fn d2h_waits_for_compute_but_not_h2d_queue() {
        let cluster = GpuCluster::k80_node();
        let mut ctx = CudaContext::new(&cluster, None, 1, "t").unwrap();
        ctx.launch(&KernelSpec::fp32("k", 4096, 256, 5e12, 1e8)).unwrap();
        // D2H result copy: must land after the kernel.
        ctx.memcpy_async(TransferSpec::d2h(1e6)).unwrap();
        // Next batch's H2D: free to start immediately on its own engine.
        ctx.memcpy_async(TransferSpec::h2d(1e6)).unwrap();
        let (h2d_end, d2h_end, kernel_end) = cluster
            .with_device(0, |d| (d.h2d_busy_until, d.d2h_busy_until, d.compute_busy_until))
            .unwrap();
        assert!(h2d_end < kernel_end, "h2d should not wait for the kernel");
        assert!(d2h_end > kernel_end, "d2h must wait for the kernel");
        ctx.destroy();
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::cluster::GpuCluster;

    #[test]
    fn trace_shows_copy_compute_overlap() {
        let cluster = GpuCluster::k80_node();
        let mut ctx = CudaContext::new(&cluster, None, 1, "t").unwrap();
        for _ in 0..3 {
            ctx.memcpy_async(TransferSpec::h2d(6e9)).unwrap();
            ctx.launch(&KernelSpec::fp32("k", 4096, 256, 5e12, 1e8)).unwrap();
        }
        ctx.synchronize().unwrap();
        // Pipelined: later H2D copies run while earlier kernels execute.
        assert!(ctx.trace.has_cross_track_overlap("gpu0/h2d", "gpu0/compute"));
        // Events within one engine never overlap each other.
        for track in ["gpu0/h2d", "gpu0/compute"] {
            let events = ctx.trace.track(track);
            for pair in events.windows(2) {
                assert!(
                    pair[0].end_s() <= pair[1].start_s + 1e-12,
                    "overlap within {track}: {pair:?}"
                );
            }
        }
        // The Chrome export is non-trivial.
        let json = ctx.trace.to_chrome_trace();
        assert!(json.contains("gpu0/compute"));
        ctx.destroy();
    }

    #[test]
    fn trace_tracks_are_device_specific() {
        let cluster = GpuCluster::k80_node();
        let mut ctx = CudaContext::new(&cluster, None, 1, "t").unwrap();
        ctx.launch(&KernelSpec::fp32("k0", 64, 128, 1e9, 1e6)).unwrap();
        ctx.set_device(1).unwrap();
        ctx.launch(&KernelSpec::fp32("k1", 64, 128, 1e9, 1e6)).unwrap();
        ctx.synchronize().unwrap();
        assert_eq!(ctx.trace.track("gpu0/compute").len(), 1);
        assert_eq!(ctx.trace.track("gpu1/compute").len(), 1);
        ctx.destroy();
    }
}

#[cfg(test)]
mod contention_tests {
    use super::*;
    use crate::cluster::GpuCluster;

    /// Two contexts (processes) on the same device must serialize on the
    /// compute engine: the second process's kernel starts after the
    /// first's finishes.
    #[test]
    fn contexts_contend_for_the_same_device() {
        let cluster = GpuCluster::k80_node();
        let kernel = KernelSpec::fp32("k", 4096, 256, 5e12, 1e8); // ~1.2 s

        let mut a = CudaContext::new(&cluster, Some("0"), 1, "a").unwrap();
        let mut b = CudaContext::new(&cluster, Some("0"), 2, "b").unwrap();
        a.launch(&kernel).unwrap();
        b.launch(&kernel).unwrap();
        b.synchronize().unwrap();
        let t_shared = cluster.clock().now();
        a.destroy();
        b.destroy();

        // Same two kernels on *different* devices: no contention.
        let cluster2 = GpuCluster::k80_node();
        let mut a = CudaContext::new(&cluster2, Some("0"), 1, "a").unwrap();
        let mut b = CudaContext::new(&cluster2, Some("1"), 2, "b").unwrap();
        a.launch(&kernel).unwrap();
        b.launch(&kernel).unwrap();
        a.synchronize().unwrap();
        b.synchronize().unwrap();
        let t_parallel = cluster2.clock().now();
        a.destroy();
        b.destroy();

        assert!(
            t_shared > t_parallel * 1.8,
            "shared-device run {t_shared:.3}s should be ~2x the dual-device {t_parallel:.3}s"
        );
    }
}
