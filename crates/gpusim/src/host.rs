//! CPU host cost model.
//!
//! Expresses CPU-side work in the same virtual time base as the GPU model,
//! so "CPU-only execution" vs "GPU execution" comparisons (the paper's
//! Figs. 3, 5, 7) are apples-to-apples. Parallel sections scale with thread
//! count under Amdahl's law with a parallel efficiency factor.

use serde::{Deserialize, Serialize};

/// Static description of the host CPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Logical CPUs available to jobs.
    pub logical_cpus: u32,
    /// Sustained double/single-precision GFLOP/s of ONE core on real
    /// (non-ideal) bioinformatics code, including SIMD where the tool uses
    /// it. This is deliberately far below theoretical peak.
    pub core_gflops: f64,
    /// Host memory bandwidth, GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Parallel efficiency when scaling across cores (0–1]; covers memory
    /// contention and scheduling overhead.
    pub parallel_efficiency: f64,
}

impl HostSpec {
    /// The paper's evaluation host: Intel Xeon E5-2670 node, "48 CPUs".
    pub const fn xeon_e5_2670() -> Self {
        HostSpec {
            name: "Intel Xeon E5-2670",
            logical_cpus: 48,
            core_gflops: 4.0,
            mem_bandwidth_gbs: 51.2,
            parallel_efficiency: 0.85,
        }
    }

    /// Time in seconds for `flops` of work with a fraction `parallel_frac`
    /// parallelizable, run on `threads` threads (Amdahl + efficiency).
    pub fn time_for(&self, flops: f64, parallel_frac: f64, threads: u32) -> f64 {
        let threads = threads.clamp(1, self.logical_cpus) as f64;
        let serial = flops * (1.0 - parallel_frac);
        let parallel = flops * parallel_frac;
        let core_flops = self.core_gflops * 1e9;
        let speedup = 1.0 + (threads - 1.0) * self.parallel_efficiency;
        serial / core_flops + parallel / (core_flops * speedup)
    }

    /// Time to stream `bytes` through host memory (I/O-ish phases: parsing,
    /// serialization). Single-stream; extra threads do not help much, so
    /// callers treat this as serial work.
    pub fn stream_time(&self, bytes: f64) -> f64 {
        // Parsing-type code achieves a small fraction of raw bandwidth.
        bytes / (self.mem_bandwidth_gbs * 1e9 * 0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_threads_is_faster_but_sublinear() {
        let h = HostSpec::xeon_e5_2670();
        let t1 = h.time_for(1e12, 0.95, 1);
        let t4 = h.time_for(1e12, 0.95, 4);
        let t8 = h.time_for(1e12, 0.95, 8);
        assert!(t4 < t1);
        assert!(t8 < t4);
        // Sublinear: 4 threads less than 4× faster.
        assert!(t1 / t4 < 4.0);
        assert!(t1 / t4 > 2.0);
    }

    #[test]
    fn amdahl_limits_speedup() {
        let h = HostSpec::xeon_e5_2670();
        let t1 = h.time_for(1e12, 0.5, 1);
        let t48 = h.time_for(1e12, 0.5, 48);
        // Half the work is serial: speedup can never reach 2×.
        assert!(t1 / t48 < 2.0);
    }

    #[test]
    fn thread_count_clamped_to_cpus() {
        let h = HostSpec::xeon_e5_2670();
        assert_eq!(h.time_for(1e12, 0.9, 48), h.time_for(1e12, 0.9, 1000));
        assert_eq!(h.time_for(1e12, 0.9, 1), h.time_for(1e12, 0.9, 0));
    }

    #[test]
    fn stream_time_scales_linearly() {
        let h = HostSpec::xeon_e5_2670();
        let t1 = h.stream_time(1e9);
        let t2 = h.stream_time(2e9);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_host_shape() {
        let h = HostSpec::xeon_e5_2670();
        assert_eq!(h.logical_cpus, 48);
        assert!(h.parallel_efficiency <= 1.0);
    }
}
