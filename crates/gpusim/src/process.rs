//! Processes resident on a simulated GPU, as reported by `nvidia-smi`.

use serde::{Deserialize, Serialize};

/// The process type column of `nvidia-smi` ("C" compute, "G" graphics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessType {
    /// Compute context (CUDA). Everything GYAN schedules is compute.
    Compute,
    /// Graphics context.
    Graphics,
}

impl ProcessType {
    /// The single-letter code `nvidia-smi` prints.
    pub fn code(self) -> &'static str {
        match self {
            ProcessType::Compute => "C",
            ProcessType::Graphics => "G",
        }
    }
}

/// One process holding a context on a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuProcess {
    /// Host process id.
    pub pid: u32,
    /// Executable path as shown in the smi process table
    /// (e.g. `/usr/bin/racon_gpu`).
    pub name: String,
    /// Framebuffer memory attributed to this process, MiB.
    pub used_mib: u64,
    /// Compute or graphics context.
    pub ptype: ProcessType,
}

impl GpuProcess {
    /// A compute process (the common case).
    pub fn compute(pid: u32, name: impl Into<String>, used_mib: u64) -> Self {
        GpuProcess { pid, name: name.into(), used_mib, ptype: ProcessType::Compute }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes() {
        assert_eq!(ProcessType::Compute.code(), "C");
        assert_eq!(ProcessType::Graphics.code(), "G");
    }

    #[test]
    fn compute_constructor() {
        let p = GpuProcess::compute(39953, "/usr/bin/racon_gpu", 60);
        assert_eq!(p.pid, 39953);
        assert_eq!(p.ptype, ProcessType::Compute);
        assert_eq!(p.used_mib, 60);
    }
}
