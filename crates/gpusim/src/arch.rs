//! GPU architecture descriptors.
//!
//! The parameters mirror the numbers the paper quotes for the Tesla K80
//! (two GK210 dies per board, 2,496 CUDA cores each, 480 GB/s aggregate
//! memory bandwidth, 24 GB total board memory, 15 SMs per die, warp size 32,
//! 4 warp schedulers per SM) plus two newer parts used in the paper's
//! motivation section, so experiments can sweep architectures.

use serde::{Deserialize, Serialize};

/// Static description of one GPU *die* (what `nvidia-smi` shows as one
/// device; a K80 board exposes two of these).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuArch {
    /// Marketing name reported by the driver (e.g. "Tesla K80").
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Base core clock in MHz.
    pub base_clock_mhz: u32,
    /// Boost core clock in MHz (the cost model uses this).
    pub boost_clock_mhz: u32,
    /// Device memory size in MiB (per die).
    pub fb_total_mib: u64,
    /// Memory bandwidth in GB/s (per die).
    pub mem_bandwidth_gbs: f64,
    /// Threads per warp.
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum threads in one block.
    pub max_threads_per_block: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Warp schedulers per SM.
    pub warp_schedulers_per_sm: u32,
    /// Peak single-precision throughput in GFLOP/s.
    pub fp32_gflops: f64,
    /// Peak double-precision throughput in GFLOP/s.
    pub fp64_gflops: f64,
    /// Peak half-precision throughput in GFLOP/s (tensor cores where
    /// present; Kepler has no fast FP16 path and runs it at FP32 rate).
    pub fp16_gflops: f64,
    /// PCIe generation the board negotiates under load.
    pub pcie_gen: u8,
    /// Host↔device bandwidth in GB/s (effective, per direction).
    pub pcie_bandwidth_gbs: f64,
    /// Idle power draw in watts (for smi output).
    pub power_idle_w: f64,
    /// Power limit in watts.
    pub power_limit_w: f64,
}

impl GpuArch {
    /// One GK210 die of a Tesla K80 board — the evaluation GPU of the paper.
    ///
    /// `fb_total_mib` is 11,441 MiB, matching the `11441MiB` the paper's
    /// Fig. 10 console output shows per device.
    pub const fn tesla_k80() -> Self {
        GpuArch {
            name: "Tesla K80",
            sm_count: 15,
            cores_per_sm: 192,
            base_clock_mhz: 560,
            boost_clock_mhz: 875,
            fb_total_mib: 11_441,
            mem_bandwidth_gbs: 240.0,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            warp_schedulers_per_sm: 4,
            fp32_gflops: 4368.0,
            fp64_gflops: 1456.0,
            fp16_gflops: 4368.0, // no fast FP16 on Kepler
            pcie_gen: 3,
            pcie_bandwidth_gbs: 10.0,
            power_idle_w: 60.0,
            power_limit_w: 149.0,
        }
    }

    /// Tesla V100 (SXM2 16 GB) — referenced by the paper's COVID-19
    /// motivation examples.
    pub const fn tesla_v100() -> Self {
        GpuArch {
            name: "Tesla V100-SXM2-16GB",
            sm_count: 80,
            cores_per_sm: 64,
            base_clock_mhz: 1290,
            boost_clock_mhz: 1530,
            fb_total_mib: 16_160,
            mem_bandwidth_gbs: 900.0,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            warp_schedulers_per_sm: 4,
            fp32_gflops: 15_700.0,
            fp64_gflops: 7850.0,
            fp16_gflops: 125_000.0, // tensor cores
            pcie_gen: 3,
            pcie_bandwidth_gbs: 12.0,
            power_idle_w: 40.0,
            power_limit_w: 300.0,
        }
    }

    /// A100 (SXM4 40 GB) — the paper's "more gains expected with A100".
    pub const fn a100() -> Self {
        GpuArch {
            name: "A100-SXM4-40GB",
            sm_count: 108,
            cores_per_sm: 64,
            base_clock_mhz: 1095,
            boost_clock_mhz: 1410,
            fb_total_mib: 40_536,
            mem_bandwidth_gbs: 1555.0,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            warp_schedulers_per_sm: 4,
            fp32_gflops: 19_500.0,
            fp64_gflops: 9700.0,
            fp16_gflops: 312_000.0, // tensor cores
            pcie_gen: 4,
            pcie_bandwidth_gbs: 24.0,
            power_idle_w: 50.0,
            power_limit_w: 400.0,
        }
    }

    /// Total CUDA cores on this die.
    pub fn total_cores(&self) -> u32 {
        self.sm_count * self.cores_per_sm
    }

    /// Peak FP32 throughput in FLOP/s (not GFLOP/s).
    pub fn fp32_flops(&self) -> f64 {
        self.fp32_gflops * 1e9
    }

    /// Memory bandwidth in bytes/s.
    pub fn mem_bandwidth_bytes(&self) -> f64 {
        self.mem_bandwidth_gbs * 1e9
    }

    /// PCIe bandwidth in bytes/s.
    pub fn pcie_bandwidth_bytes(&self) -> f64 {
        self.pcie_bandwidth_gbs * 1e9
    }

    /// Roofline ridge point: the arithmetic intensity (FLOP/byte) at which
    /// a kernel crosses from memory-bound to compute-bound on this die.
    /// Below this, the duration model charges bandwidth; above, FLOPs.
    pub fn roofline_ridge_flops_per_byte(&self) -> f64 {
        self.fp32_flops() / self.mem_bandwidth_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k80_matches_paper_figures() {
        let k80 = GpuArch::tesla_k80();
        // Paper: "Both GPUs have 2,496 processor cores with a core clock of
        // 560 MHz to 875 MHz ... the total board memory is 24 GB ... there
        // are 15 SMs, each containing 4 warp schedulers".
        assert_eq!(k80.total_cores(), 2880); // 15 SMs × 192 cores (GK210)
        assert_eq!(k80.base_clock_mhz, 560);
        assert_eq!(k80.boost_clock_mhz, 875);
        assert_eq!(k80.sm_count, 15);
        assert_eq!(k80.warp_schedulers_per_sm, 4);
        assert_eq!(k80.fb_total_mib, 11_441);
        assert_eq!(k80.warp_size, 32);
        assert_eq!(k80.max_warps_per_sm, 64);
    }

    #[test]
    fn newer_archs_are_strictly_faster() {
        let k80 = GpuArch::tesla_k80();
        let v100 = GpuArch::tesla_v100();
        let a100 = GpuArch::a100();
        assert!(v100.fp32_gflops > k80.fp32_gflops);
        assert!(a100.fp32_gflops > v100.fp32_gflops);
        assert!(a100.mem_bandwidth_gbs > v100.mem_bandwidth_gbs);
        // Tensor cores: fp16 far above fp32 on Volta+, equal on Kepler.
        assert_eq!(k80.fp16_gflops, k80.fp32_gflops);
        assert!(v100.fp16_gflops > 5.0 * v100.fp32_gflops);
    }

    #[test]
    fn roofline_inputs_ordered_across_node_classes() {
        // Both roofline axes must strictly ascend K80 < V100 < A100, so a
        // fleet pricing one kernel across node classes always finds the
        // newer class faster regardless of which regime the kernel is in.
        let archs = [GpuArch::tesla_k80(), GpuArch::tesla_v100(), GpuArch::a100()];
        for pair in archs.windows(2) {
            assert!(
                pair[1].fp32_flops() > pair[0].fp32_flops(),
                "{} fp32 must exceed {}",
                pair[1].name,
                pair[0].name
            );
            assert!(
                pair[1].mem_bandwidth_bytes() > pair[0].mem_bandwidth_bytes(),
                "{} bandwidth must exceed {}",
                pair[1].name,
                pair[0].name
            );
            assert!(
                pair[1].fb_total_mib > pair[0].fb_total_mib,
                "{} memory must exceed {}",
                pair[1].name,
                pair[0].name
            );
        }
    }

    #[test]
    fn ridge_points_match_published_balance() {
        // Ridge point = fp32 / bandwidth. Newer parts grew bandwidth
        // faster than FP32 FLOPs, so the ridge *descends* across the
        // generations: an A100 stays compute-bound down to a lower
        // arithmetic intensity than a K80.
        let k80 = GpuArch::tesla_k80().roofline_ridge_flops_per_byte();
        let v100 = GpuArch::tesla_v100().roofline_ridge_flops_per_byte();
        let a100 = GpuArch::a100().roofline_ridge_flops_per_byte();
        assert!((k80 - 18.2).abs() < 0.1, "K80 ridge ~18.2, got {k80}");
        assert!((v100 - 17.4).abs() < 0.1, "V100 ridge ~17.4, got {v100}");
        assert!((a100 - 12.5).abs() < 0.1, "A100 ridge ~12.5, got {a100}");
        assert!(k80 > v100 && v100 > a100);
    }

    #[test]
    fn unit_conversions() {
        let k80 = GpuArch::tesla_k80();
        assert!((k80.fp32_flops() - 4.368e12).abs() < 1e6);
        assert!((k80.mem_bandwidth_bytes() - 2.4e11).abs() < 1.0);
    }
}
