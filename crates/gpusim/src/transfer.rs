//! Host↔device transfer cost model.
//!
//! The paper attributes ~40 s of Racon's GPU run to "CUDA API calls to
//! transfer input data and results from and to GPU ... in chunks that fit
//! in GPU memory" — PCIe traffic is a first-class cost here.

use crate::arch::GpuArch;

/// Direction of a `cudaMemcpy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyKind {
    /// Host to device.
    HostToDevice,
    /// Device to host.
    DeviceToHost,
    /// Device to device (runs at DRAM bandwidth, not PCIe).
    DeviceToDevice,
}

impl CopyKind {
    /// The API name a profiler reports for this copy.
    pub fn api_name(self) -> &'static str {
        match self {
            CopyKind::HostToDevice => "cudaMemcpyHtoD",
            CopyKind::DeviceToHost => "cudaMemcpyDtoH",
            CopyKind::DeviceToDevice => "cudaMemcpyDtoD",
        }
    }
}

/// One transfer operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferSpec {
    /// Bytes to move.
    pub bytes: f64,
    /// Direction.
    pub kind: CopyKind,
    /// Whether the host buffer is pinned (page-locked). Pageable copies
    /// run at roughly 60% of PCIe throughput because of the staging copy.
    pub pinned: bool,
}

/// Fixed per-call latency of a memcpy, seconds (driver + DMA setup).
pub const MEMCPY_LATENCY_S: f64 = 12e-6;

impl TransferSpec {
    /// A pageable host→device copy.
    pub fn h2d(bytes: f64) -> Self {
        TransferSpec { bytes, kind: CopyKind::HostToDevice, pinned: false }
    }

    /// A pageable device→host copy.
    pub fn d2h(bytes: f64) -> Self {
        TransferSpec { bytes, kind: CopyKind::DeviceToHost, pinned: false }
    }

    /// Mark the host buffer as pinned.
    pub fn pinned(mut self) -> Self {
        self.pinned = true;
        self
    }

    /// Modeled duration of this transfer on `arch`, seconds.
    pub fn duration(&self, arch: &GpuArch) -> f64 {
        let bw = match self.kind {
            CopyKind::DeviceToDevice => arch.mem_bandwidth_bytes() * 0.8,
            _ => {
                let pcie = arch.pcie_bandwidth_bytes();
                if self.pinned {
                    pcie
                } else {
                    pcie * 0.6
                }
            }
        };
        MEMCPY_LATENCY_S + self.bytes / bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_faster_than_pageable() {
        let arch = GpuArch::tesla_k80();
        let pageable = TransferSpec::h2d(1e9).duration(&arch);
        let pinned = TransferSpec::h2d(1e9).pinned().duration(&arch);
        assert!(pinned < pageable);
    }

    #[test]
    fn d2d_runs_at_dram_speed() {
        let arch = GpuArch::tesla_k80();
        let d2d = TransferSpec { bytes: 1e9, kind: CopyKind::DeviceToDevice, pinned: false }
            .duration(&arch);
        let h2d = TransferSpec::h2d(1e9).duration(&arch);
        assert!(d2d < h2d / 5.0);
    }

    #[test]
    fn latency_floors_small_copies() {
        let arch = GpuArch::tesla_k80();
        let t = TransferSpec::h2d(8.0).duration(&arch);
        assert!(t >= MEMCPY_LATENCY_S);
        assert!(t < 2.0 * MEMCPY_LATENCY_S);
    }

    #[test]
    fn gigabyte_on_k80_takes_fraction_of_second() {
        // 1 GB pageable over ~6 GB/s effective ≈ 0.17 s.
        let arch = GpuArch::tesla_k80();
        let t = TransferSpec::h2d(1e9).duration(&arch);
        assert!(t > 0.1 && t < 0.3, "{t}");
    }

    #[test]
    fn api_names() {
        assert_eq!(CopyKind::HostToDevice.api_name(), "cudaMemcpyHtoD");
        assert_eq!(CopyKind::DeviceToHost.api_name(), "cudaMemcpyDtoH");
    }
}
