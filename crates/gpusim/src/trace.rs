//! Event-level execution traces in Chrome tracing format.
//!
//! While the [`crate::profiler::Profiler`] aggregates per-API totals
//! (NVProf's summary view), the trace records every kernel, DMA transfer,
//! and host call as a timestamped interval on its engine's track — the
//! timeline view. `to_chrome_trace` emits the JSON that
//! `chrome://tracing` / Perfetto load directly, which is how the batch
//! pipelining (H2D copies overlapping kernels) can be inspected visually.

/// One traced interval.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (kernel symbol, API call).
    pub name: String,
    /// Category: `kernel`, `h2d`, `d2h`, `host`.
    pub category: &'static str,
    /// Track the interval belongs to, e.g. `gpu0/compute`, `gpu1/h2d`,
    /// `host`.
    pub track: String,
    /// Start, virtual seconds.
    pub start_s: f64,
    /// Duration, virtual seconds.
    pub dur_s: f64,
}

impl TraceEvent {
    /// End of the interval.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.dur_s
    }

    /// Whether two intervals overlap in time.
    pub fn overlaps(&self, other: &TraceEvent) -> bool {
        self.start_s < other.end_s() && other.start_s < self.end_s()
    }
}

/// An append-only trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an interval.
    pub fn record(
        &mut self,
        name: impl Into<String>,
        category: &'static str,
        track: impl Into<String>,
        start_s: f64,
        dur_s: f64,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            category,
            track: track.into(),
            start_s,
            dur_s,
        });
    }

    /// All events in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events on one track, sorted by start time.
    pub fn track(&self, track: &str) -> Vec<&TraceEvent> {
        let mut v: Vec<&TraceEvent> = self.events.iter().filter(|e| e.track == track).collect();
        v.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        v
    }

    /// Do any two events on *different* tracks overlap? (The signature of
    /// copy/compute pipelining.)
    pub fn has_cross_track_overlap(&self, track_a: &str, track_b: &str) -> bool {
        let a = self.track(track_a);
        let b = self.track(track_b);
        a.iter().any(|ea| b.iter().any(|eb| ea.overlaps(eb)))
    }

    /// Merge another trace into this one.
    pub fn merge(&mut self, other: &Trace) {
        self.events.extend(other.events.iter().cloned());
    }

    /// Emit Chrome tracing JSON (`chrome://tracing`, Perfetto).
    /// Timestamps are microseconds as the format requires.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":1,\"tid\":\"{}\"}}",
                escape_json(&e.name),
                e.category,
                e.start_s * 1e6,
                e.dur_s * 1e6,
                escape_json(&e.track)
            ));
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query_tracks() {
        let mut t = Trace::new();
        t.record("k1", "kernel", "gpu0/compute", 1.0, 2.0);
        t.record("copy1", "h2d", "gpu0/h2d", 0.5, 1.0);
        t.record("k2", "kernel", "gpu0/compute", 3.5, 1.0);
        assert_eq!(t.events().len(), 3);
        let compute = t.track("gpu0/compute");
        assert_eq!(compute.len(), 2);
        assert_eq!(compute[0].name, "k1");
        assert_eq!(compute[1].name, "k2");
    }

    #[test]
    fn overlap_detection() {
        let a = TraceEvent {
            name: "a".into(),
            category: "kernel",
            track: "x".into(),
            start_s: 1.0,
            dur_s: 2.0,
        };
        let b = TraceEvent { name: "b".into(), start_s: 2.5, ..a.clone() };
        let c = TraceEvent { name: "c".into(), start_s: 3.0, ..a.clone() };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // touching intervals do not overlap
        assert!(b.overlaps(&c));
    }

    #[test]
    fn cross_track_overlap() {
        let mut t = Trace::new();
        t.record("k", "kernel", "gpu0/compute", 1.0, 2.0);
        t.record("c", "h2d", "gpu0/h2d", 2.0, 2.0);
        assert!(t.has_cross_track_overlap("gpu0/compute", "gpu0/h2d"));
        assert!(!t.has_cross_track_overlap("gpu0/compute", "gpu1/h2d"));
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = Trace::new();
        t.record("generatePOAKernel", "kernel", "gpu0/compute", 0.001, 0.010);
        t.record("weird\"name\n", "host", "host", 0.0, 0.5);
        let json = t.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"generatePOAKernel\""));
        assert!(json.contains("\"ts\":1000.000"));
        assert!(json.contains("\"dur\":10000.000"));
        assert!(json.contains("weird\\\"name\\n"));
        // Balanced braces (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn merge_combines_events() {
        let mut a = Trace::new();
        a.record("x", "host", "host", 0.0, 1.0);
        let mut b = Trace::new();
        b.record("y", "host", "host", 1.0, 1.0);
        a.merge(&b);
        assert_eq!(a.events().len(), 2);
    }
}
