//! Mutable state of one simulated GPU device (one die).

use crate::arch::GpuArch;
use crate::error::GpuError;
use crate::process::GpuProcess;

/// Dynamic state of a device, combined with its static [`GpuArch`].
///
/// The reserved framebuffer (`reserved_mib`) models the driver/display
/// overhead every real device shows even when idle — the paper's Fig. 10
/// reports 63 MiB used on an idle K80 die.
#[derive(Debug, Clone)]
pub struct DeviceState {
    /// Architecture parameters.
    pub arch: GpuArch,
    /// Minor number (`/dev/nvidiaN`), which is what GYAN's wrapper
    /// "version" tag and `CUDA_VISIBLE_DEVICES` refer to.
    pub minor_number: u32,
    /// Driver-assigned UUID string.
    pub uuid: String,
    /// PCI bus id, e.g. `00000000:05:00.0`.
    pub bus_id: String,
    /// Framebuffer MiB reserved by the driver (counted as used).
    pub reserved_mib: u64,
    /// Framebuffer MiB allocated by processes.
    allocated_mib: u64,
    /// Instantaneous SM utilization percentage (0–100).
    pub sm_utilization: f64,
    /// Instantaneous memory-controller utilization percentage (0–100).
    pub mem_utilization: f64,
    /// GPU core temperature, °C (cosmetic, for smi output).
    pub temperature_c: f64,
    /// Current PCIe link generation (can downshift when idle).
    pub pcie_link_gen: u8,
    /// Virtual time until which the compute engine (SMs) is busy. Shared
    /// across every context on the device, so concurrent processes
    /// serialize on the hardware as they would for real.
    pub compute_busy_until: f64,
    /// Virtual time until which the host→device DMA engine is busy.
    pub h2d_busy_until: f64,
    /// Virtual time until which the device→host DMA engine is busy.
    pub d2h_busy_until: f64,
    /// Resident processes.
    processes: Vec<GpuProcess>,
}

impl DeviceState {
    /// Create an idle device with the given architecture and minor number.
    pub fn new(arch: GpuArch, minor_number: u32) -> Self {
        let uuid = format!("GPU-{:08x}-sim-{:04}", 0x6b80u32 + minor_number, minor_number);
        let bus_id = format!("00000000:{:02X}:00.0", 5 + minor_number);
        DeviceState {
            arch,
            minor_number,
            uuid,
            bus_id,
            reserved_mib: 63,
            allocated_mib: 0,
            sm_utilization: 0.0,
            mem_utilization: 0.0,
            temperature_c: 36.0,
            pcie_link_gen: 1, // idle devices downshift to gen1
            compute_busy_until: 0.0,
            h2d_busy_until: 0.0,
            d2h_busy_until: 0.0,
            processes: Vec::new(),
        }
    }

    /// Framebuffer MiB currently in use (driver reservation + allocations).
    pub fn fb_used_mib(&self) -> u64 {
        self.reserved_mib + self.allocated_mib
    }

    /// Framebuffer MiB free.
    pub fn fb_free_mib(&self) -> u64 {
        self.arch.fb_total_mib.saturating_sub(self.fb_used_mib())
    }

    /// Framebuffer MiB total.
    pub fn fb_total_mib(&self) -> u64 {
        self.arch.fb_total_mib
    }

    /// Resident processes, in arrival order.
    pub fn processes(&self) -> &[GpuProcess] {
        &self.processes
    }

    /// True when no process holds a context here — the definition of
    /// "available" used by GYAN's Pseudocode 1.
    pub fn is_available(&self) -> bool {
        self.processes.is_empty()
    }

    /// Attach a process, charging its memory. Fails with OOM when the
    /// framebuffer cannot hold it.
    pub fn attach_process(&mut self, proc: GpuProcess) -> Result<(), GpuError> {
        if proc.used_mib > self.fb_free_mib() {
            return Err(GpuError::OutOfMemory {
                device: self.minor_number,
                requested_mib: proc.used_mib,
                free_mib: self.fb_free_mib(),
            });
        }
        self.allocated_mib += proc.used_mib;
        self.pcie_link_gen = self.arch.pcie_gen;
        self.processes.push(proc);
        Ok(())
    }

    /// Detach a process by pid, releasing its memory.
    pub fn detach_process(&mut self, pid: u32) -> Result<GpuProcess, GpuError> {
        let idx = self
            .processes
            .iter()
            .position(|p| p.pid == pid)
            .ok_or(GpuError::NoSuchProcess { device: self.minor_number, pid })?;
        let proc = self.processes.remove(idx);
        self.allocated_mib = self.allocated_mib.saturating_sub(proc.used_mib);
        if self.processes.is_empty() {
            self.sm_utilization = 0.0;
            self.mem_utilization = 0.0;
            self.pcie_link_gen = 1;
        }
        Ok(proc)
    }

    /// Grow (or shrink, with negative `delta_mib`) the memory charged to an
    /// existing process — models `cudaMalloc`/`cudaFree` during a run.
    pub fn resize_process(&mut self, pid: u32, delta_mib: i64) -> Result<(), GpuError> {
        let free = self.fb_free_mib();
        let proc = self
            .processes
            .iter_mut()
            .find(|p| p.pid == pid)
            .ok_or(GpuError::NoSuchProcess { device: self.minor_number, pid })?;
        if delta_mib >= 0 {
            let grow = delta_mib as u64;
            if grow > free {
                return Err(GpuError::OutOfMemory {
                    device: self.minor_number,
                    requested_mib: grow,
                    free_mib: free,
                });
            }
            proc.used_mib += grow;
            self.allocated_mib += grow;
        } else {
            let shrink = (-delta_mib) as u64;
            if shrink > proc.used_mib {
                return Err(GpuError::BadFree {
                    device: self.minor_number,
                    requested_mib: shrink,
                    used_mib: proc.used_mib,
                });
            }
            proc.used_mib -= shrink;
            self.allocated_mib -= shrink;
        }
        Ok(())
    }

    /// Set instantaneous utilization (clamped to 0–100); temperature rises
    /// with load so the monitor script sees realistic trends.
    pub fn set_utilization(&mut self, sm: f64, mem: f64) {
        self.sm_utilization = sm.clamp(0.0, 100.0);
        self.mem_utilization = mem.clamp(0.0, 100.0);
        self.temperature_c = 36.0 + 0.45 * self.sm_utilization;
    }

    /// Instantaneous power draw derived from utilization (for smi output).
    pub fn power_draw_w(&self) -> f64 {
        let span = self.arch.power_limit_w - self.arch.power_idle_w;
        self.arch.power_idle_w + span * (self.sm_utilization / 100.0)
    }

    /// Latest completion time across all three engines.
    pub fn engines_busy_until(&self) -> f64 {
        self.compute_busy_until.max(self.h2d_busy_until).max(self.d2h_busy_until)
    }

    /// Performance state string for smi output (`P0` busy, `P8` idle).
    pub fn perf_state(&self) -> &'static str {
        if self.processes.is_empty() && self.sm_utilization == 0.0 {
            "P8"
        } else {
            "P0"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceState {
        DeviceState::new(GpuArch::tesla_k80(), 0)
    }

    #[test]
    fn idle_device_shows_driver_reservation() {
        let d = dev();
        assert_eq!(d.fb_used_mib(), 63); // matches paper Fig. 10
        assert!(d.is_available());
        assert_eq!(d.perf_state(), "P8");
    }

    #[test]
    fn attach_detach_accounting() {
        let mut d = dev();
        d.attach_process(GpuProcess::compute(100, "/usr/bin/racon_gpu", 60)).unwrap();
        assert_eq!(d.fb_used_mib(), 123);
        assert!(!d.is_available());
        assert_eq!(d.perf_state(), "P0");
        let p = d.detach_process(100).unwrap();
        assert_eq!(p.used_mib, 60);
        assert_eq!(d.fb_used_mib(), 63);
        assert!(d.is_available());
    }

    #[test]
    fn oom_rejected() {
        let mut d = dev();
        let big = GpuProcess::compute(1, "hog", d.fb_free_mib() + 1);
        assert!(matches!(d.attach_process(big), Err(GpuError::OutOfMemory { .. })));
    }

    #[test]
    fn resize_grows_and_shrinks() {
        let mut d = dev();
        d.attach_process(GpuProcess::compute(7, "t", 100)).unwrap();
        d.resize_process(7, 400).unwrap();
        assert_eq!(d.fb_used_mib(), 63 + 500);
        d.resize_process(7, -500).unwrap();
        assert_eq!(d.fb_used_mib(), 63);
        assert!(matches!(d.resize_process(7, -1), Err(GpuError::BadFree { .. })));
    }

    #[test]
    fn resize_oom_rejected() {
        let mut d = dev();
        d.attach_process(GpuProcess::compute(7, "t", 0)).unwrap();
        let too_big = (d.fb_free_mib() + 1) as i64;
        assert!(matches!(d.resize_process(7, too_big), Err(GpuError::OutOfMemory { .. })));
    }

    #[test]
    fn detach_unknown_pid_fails() {
        let mut d = dev();
        assert!(matches!(d.detach_process(42), Err(GpuError::NoSuchProcess { .. })));
    }

    #[test]
    fn utilization_drives_power_and_temperature() {
        let mut d = dev();
        d.set_utilization(95.0, 40.0);
        assert!(d.power_draw_w() > 140.0);
        assert!(d.temperature_c > 70.0);
        d.set_utilization(150.0, -3.0);
        assert_eq!(d.sm_utilization, 100.0);
        assert_eq!(d.mem_utilization, 0.0);
    }

    #[test]
    fn pcie_gen_shifts_with_activity() {
        let mut d = dev();
        assert_eq!(d.pcie_link_gen, 1);
        d.attach_process(GpuProcess::compute(1, "t", 10)).unwrap();
        assert_eq!(d.pcie_link_gen, d.arch.pcie_gen);
        d.detach_process(1).unwrap();
        assert_eq!(d.pcie_link_gen, 1);
    }
}
