//! # gpusim
//!
//! A GPU cluster simulator standing in for the NVIDIA hardware + driver
//! stack that the GYAN paper runs on (2× Tesla K80 on a Chameleon Cloud
//! node). GYAN itself never launches CUDA kernels — it *queries* GPU state
//! (`nvidia-smi -q -x`, `pynvml`) and *constrains* tools
//! (`CUDA_VISIBLE_DEVICES`, `docker --gpus`, `singularity --nv`). This crate
//! therefore provides:
//!
//! * [`cluster::GpuCluster`] — shared mutable state for a node's GPUs, with
//!   process placement and memory accounting;
//! * [`arch`] — architecture descriptors (Tesla K80/GK210, V100, A100) with
//!   the microarchitectural parameters the cost model needs;
//! * [`nvml`] — a `pynvml`-like query API (device count, utilization,
//!   memory info, running processes);
//! * [`smi`] — an `nvidia-smi` emulator producing the `-q -x` XML document
//!   and the human-readable console table shown in the paper's Figs. 10/11;
//! * [`cuda`] — a CUDA-runtime-like facade (malloc/memcpy/launch/sync) whose
//!   calls advance a **virtual clock** according to an occupancy + roofline
//!   cost model ([`kernel`], [`occupancy`], [`transfer`]);
//! * [`profiler`] — an NVProf-like profiler accumulating per-API time and a
//!   stall analysis, used to regenerate the paper's Figs. 4 and 6;
//! * [`host`] — a CPU host cost model (Xeon E5-2670 class) so CPU-only tool
//!   executions are expressed in the same virtual time base.
//!
//! All time in this crate is *virtual*: deterministic seconds derived from
//! work descriptions, never wall-clock measurements.

pub mod arch;
pub mod clock;
pub mod cluster;
pub mod cuda;
pub mod device;
pub mod error;
pub mod host;
pub mod kernel;
pub mod nvml;
pub mod occupancy;
pub mod process;
pub mod profiler;
pub mod smi;
pub mod trace;
pub mod transfer;

pub use arch::GpuArch;
pub use clock::{ObserverId, VirtualClock};
pub use cluster::GpuCluster;
pub use cuda::CudaContext;
pub use device::DeviceState;
pub use error::GpuError;
pub use host::HostSpec;
pub use kernel::KernelSpec;
pub use process::{GpuProcess, ProcessType};
pub use profiler::{ApiKind, Profiler, StallAnalysis};
pub use trace::{Trace, TraceEvent};
pub use transfer::{CopyKind, TransferSpec};
