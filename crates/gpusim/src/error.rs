//! Error type for GPU simulator operations.

use std::fmt;

/// Failures surfaced by the simulated driver/runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// Requested device minor number does not exist (or is masked out by
    /// `CUDA_VISIBLE_DEVICES`).
    InvalidDevice(u32),
    /// Allocation would exceed the device's framebuffer capacity.
    OutOfMemory { device: u32, requested_mib: u64, free_mib: u64 },
    /// The context has no visible devices (e.g. `CUDA_VISIBLE_DEVICES=""`).
    NoVisibleDevices,
    /// Freeing memory that was never allocated.
    BadFree { device: u32, requested_mib: u64, used_mib: u64 },
    /// A process id was not found on the device.
    NoSuchProcess { device: u32, pid: u32 },
    /// Kernel launch configuration violates device limits.
    BadLaunch(String),
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::InvalidDevice(d) => write!(f, "invalid device ordinal {d}"),
            GpuError::OutOfMemory { device, requested_mib, free_mib } => write!(
                f,
                "out of memory on device {device}: requested {requested_mib} MiB, {free_mib} MiB free"
            ),
            GpuError::NoVisibleDevices => write!(f, "no CUDA-capable device is detected"),
            GpuError::BadFree { device, requested_mib, used_mib } => write!(
                f,
                "invalid free on device {device}: {requested_mib} MiB requested, {used_mib} MiB in use"
            ),
            GpuError::NoSuchProcess { device, pid } => {
                write!(f, "no process {pid} on device {device}")
            }
            GpuError::BadLaunch(msg) => write!(f, "invalid kernel launch: {msg}"),
        }
    }
}

impl std::error::Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GpuError::OutOfMemory { device: 1, requested_mib: 4096, free_mib: 128 };
        assert!(e.to_string().contains("4096 MiB"));
        assert!(GpuError::NoVisibleDevices.to_string().contains("no CUDA-capable"));
    }
}
