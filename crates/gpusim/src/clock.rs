//! Virtual time: deterministic simulated seconds shared across a cluster.

use parking_lot::Mutex;
use std::sync::Arc;

/// Callback invoked with the new time after every clock advance. Used by
/// the GYAN hardware-usage monitor to take 1 Hz samples in virtual time.
pub type ClockObserver = Box<dyn Fn(f64) + Send + Sync>;

/// Handle identifying a registered observer, for deregistration via
/// [`VirtualClock::remove_observer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObserverId(u64);

/// A monotonically increasing virtual clock measured in seconds.
///
/// The clock is shared (`Arc`) between the cluster, CUDA contexts, and the
/// monitoring script so that samples, kernel completions, and scheduler
/// decisions are ordered on a single time base.
#[derive(Clone, Default)]
pub struct VirtualClock {
    now: Arc<Mutex<f64>>,
    observers: Arc<Mutex<Vec<(ObserverId, ClockObserver)>>>,
    next_observer_id: Arc<Mutex<u64>>,
}

impl VirtualClock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        *self.now.lock()
    }

    /// Advance the clock by `seconds` (must be non-negative) and return the
    /// new time.
    pub fn advance(&self, seconds: f64) -> f64 {
        assert!(seconds >= 0.0, "virtual time cannot go backwards ({seconds})");
        let new_now = {
            let mut now = self.now.lock();
            *now += seconds;
            *now
        };
        self.notify(new_now);
        new_now
    }

    /// Move the clock to `t` if `t` is later than the current time
    /// (rendezvous semantics for independent streams).
    pub fn advance_to(&self, t: f64) -> f64 {
        let new_now = {
            let mut now = self.now.lock();
            if t > *now {
                *now = t;
            }
            *now
        };
        self.notify(new_now);
        new_now
    }

    /// Register an observer called with the new time after every advance.
    /// Returns an id accepted by [`VirtualClock::remove_observer`], so
    /// transient listeners (e.g. a usage monitor) don't leak.
    pub fn on_advance(&self, observer: ClockObserver) -> ObserverId {
        let id = {
            let mut next = self.next_observer_id.lock();
            *next += 1;
            ObserverId(*next)
        };
        self.observers.lock().push((id, observer));
        id
    }

    /// Deregister an observer. Returns whether it was still registered
    /// (idempotent: removing twice is a no-op).
    pub fn remove_observer(&self, id: ObserverId) -> bool {
        let mut observers = self.observers.lock();
        let before = observers.len();
        observers.retain(|(oid, _)| *oid != id);
        observers.len() != before
    }

    /// Number of currently registered observers.
    pub fn observer_count(&self) -> usize {
        self.observers.lock().len()
    }

    // Observers must not advance the clock or (de)register observers from
    // inside the callback (the lock is held during the call); the monitor
    // only reads device state, which is safe.
    fn notify(&self, now: f64) {
        let observers = self.observers.lock();
        for (_, cb) in observers.iter() {
            cb(now);
        }
    }
}

impl std::fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualClock").field("now", &self.now()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0.0);
        assert_eq!(c.advance(1.5), 1.5);
        assert_eq!(c.advance(0.5), 2.0);
    }

    #[test]
    fn advance_to_never_rewinds() {
        let c = VirtualClock::new();
        c.advance(5.0);
        assert_eq!(c.advance_to(3.0), 5.0);
        assert_eq!(c.advance_to(7.0), 7.0);
    }

    #[test]
    fn clones_share_state() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(2.0);
        assert_eq!(b.now(), 2.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn negative_advance_panics() {
        VirtualClock::new().advance(-1.0);
    }
}

#[cfg(test)]
mod observer_tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn observers_see_every_advance() {
        let c = VirtualClock::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        c.on_advance(Box::new(move |_t| {
            h.fetch_add(1, Ordering::Relaxed);
        }));
        c.advance(1.0);
        c.advance_to(5.0);
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn observer_receives_new_time() {
        let c = VirtualClock::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = seen.clone();
        c.on_advance(Box::new(move |t| s.lock().push(t)));
        c.advance(2.5);
        c.advance(0.5);
        assert_eq!(*seen.lock(), vec![2.5, 3.0]);
    }

    #[test]
    fn removed_observer_stops_firing() {
        let c = VirtualClock::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let id = c.on_advance(Box::new(move |_t| {
            h.fetch_add(1, Ordering::Relaxed);
        }));
        c.advance(1.0);
        assert_eq!(c.observer_count(), 1);
        assert!(c.remove_observer(id));
        assert!(!c.remove_observer(id), "second removal must be a no-op");
        c.advance(1.0);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(c.observer_count(), 0);
    }

    #[test]
    fn removal_targets_only_the_given_id() {
        let c = VirtualClock::new();
        let hits_a = Arc::new(AtomicUsize::new(0));
        let hits_b = Arc::new(AtomicUsize::new(0));
        let (a, b) = (hits_a.clone(), hits_b.clone());
        let id_a = c.on_advance(Box::new(move |_| {
            a.fetch_add(1, Ordering::Relaxed);
        }));
        let _id_b = c.on_advance(Box::new(move |_| {
            b.fetch_add(1, Ordering::Relaxed);
        }));
        c.remove_observer(id_a);
        c.advance(1.0);
        assert_eq!(hits_a.load(Ordering::Relaxed), 0);
        assert_eq!(hits_b.load(Ordering::Relaxed), 1);
    }
}
