//! `nvidia-smi` emulator.
//!
//! Two output formats:
//!
//! * [`query_xml`] — the `nvidia-smi -q -x` XML document that GYAN's
//!   `get_gpu_usage` (Pseudocode 1) parses with BeautifulSoup. Tag names
//!   (`nvidia_smi_log`, `gpu`, `minor_number`, `fb_memory_usage`,
//!   `processes`, `process_info`, `pid`, `used_memory`) match the real
//!   tool so the GYAN-side parser is a faithful port.
//! * [`render_table`] — the human-readable console table reproduced in the
//!   paper's Figs. 10 and 11.

use crate::cluster::GpuCluster;
use crate::device::DeviceState;
use xmlparse::{write_document, Document, Element, WriteOptions};

/// A failed `nvidia-smi` invocation — the simulated equivalent of the
/// subprocess dying or the driver refusing the query. Only produced when
/// a scenario arms failures via
/// [`GpuCluster::inject_smi_query_failures`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmiError {
    message: String,
}

impl SmiError {
    fn query_failed() -> Self {
        SmiError { message: "NVIDIA-SMI has failed: injected query fault".to_string() }
    }
}

impl std::fmt::Display for SmiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SmiError {}

/// Fallible variant of [`query_xml`]: consumes one armed query failure if
/// any is pending, otherwise renders the effective (possibly frozen)
/// snapshot.
pub fn try_query_xml(cluster: &GpuCluster) -> Result<String, SmiError> {
    if cluster.take_smi_query_failure() {
        return Err(SmiError::query_failed());
    }
    Ok(query_xml(cluster))
}

/// Produce the `nvidia-smi -q -x` XML document for the cluster's current
/// state.
pub fn query_xml(cluster: &GpuCluster) -> String {
    obs::profile_scope!("smi.render_xml");
    let snapshot = cluster.effective_smi_snapshot();
    let mut log = Element::new("nvidia_smi_log");
    log.push_element(
        Element::new("timestamp").with_text(format!("t={:.3}s", cluster.clock().now())),
    );
    log.push_element(Element::new("driver_version").with_text(cluster.driver_version()));
    log.push_element(Element::new("cuda_version").with_text(cluster.cuda_version()));
    log.push_element(Element::new("attached_gpus").with_text(snapshot.len().to_string()));
    for dev in &snapshot {
        log.push_element(gpu_element(dev));
    }
    let mut doc = Document::new(log);
    doc.prolog.push("xml version=\"1.0\" encoding=\"UTF-8\"".to_string());
    write_document(&doc, &WriteOptions::pretty())
}

fn gpu_element(dev: &DeviceState) -> Element {
    let mut gpu = Element::new("gpu").with_attr("id", dev.bus_id.clone());
    gpu.push_element(Element::new("product_name").with_text(dev.arch.name));
    gpu.push_element(Element::new("uuid").with_text(dev.uuid.clone()));
    gpu.push_element(Element::new("minor_number").with_text(dev.minor_number.to_string()));
    gpu.push_element(Element::new("performance_state").with_text(dev.perf_state()));

    let fb = Element::new("fb_memory_usage")
        .with_child(Element::new("total").with_text(format!("{} MiB", dev.fb_total_mib())))
        .with_child(Element::new("used").with_text(format!("{} MiB", dev.fb_used_mib())))
        .with_child(Element::new("free").with_text(format!("{} MiB", dev.fb_free_mib())));
    gpu.push_element(fb);

    let util = Element::new("utilization")
        .with_child(Element::new("gpu_util").with_text(format!("{:.0} %", dev.sm_utilization)))
        .with_child(Element::new("memory_util").with_text(format!("{:.0} %", dev.mem_utilization)));
    gpu.push_element(util);

    let temp = Element::new("temperature")
        .with_child(Element::new("gpu_temp").with_text(format!("{:.0} C", dev.temperature_c)));
    gpu.push_element(temp);

    let power = Element::new("power_readings")
        .with_child(Element::new("power_draw").with_text(format!("{:.2} W", dev.power_draw_w())))
        .with_child(
            Element::new("power_limit").with_text(format!("{:.2} W", dev.arch.power_limit_w)),
        );
    gpu.push_element(power);

    let pcie = Element::new("pci").with_child(
        Element::new("pci_gpu_link_info").with_child(
            Element::new("pcie_gen")
                .with_child(
                    Element::new("current_link_gen").with_text(dev.pcie_link_gen.to_string()),
                )
                .with_child(Element::new("max_link_gen").with_text(dev.arch.pcie_gen.to_string())),
        ),
    );
    gpu.push_element(pcie);

    let mut processes = Element::new("processes");
    for p in dev.processes() {
        processes.push_element(
            Element::new("process_info")
                .with_child(Element::new("pid").with_text(p.pid.to_string()))
                .with_child(Element::new("type").with_text(p.ptype.code()))
                .with_child(Element::new("process_name").with_text(p.name.clone()))
                .with_child(Element::new("used_memory").with_text(format!("{} MiB", p.used_mib))),
        );
    }
    gpu.push_element(processes);
    gpu
}

/// Render the verbose per-device report of `nvidia-smi -q` (plain text,
/// no `-x`): the human-readable sibling of [`query_xml`].
pub fn query_plain(cluster: &GpuCluster) -> String {
    let snapshot = cluster.effective_smi_snapshot();
    let mut out = String::new();
    out.push_str(
        "==============NVSMI LOG==============

",
    );
    out.push_str(&format!(
        "Timestamp                                 : t={:.3}s
",
        cluster.clock().now()
    ));
    out.push_str(&format!(
        "Driver Version                            : {}
",
        cluster.driver_version()
    ));
    out.push_str(&format!(
        "CUDA Version                              : {}

",
        cluster.cuda_version()
    ));
    out.push_str(&format!(
        "Attached GPUs                             : {}
",
        snapshot.len()
    ));
    for dev in &snapshot {
        out.push_str(&format!(
            "GPU {}
",
            dev.bus_id
        ));
        out.push_str(&format!(
            "    Product Name                          : {}
",
            dev.arch.name
        ));
        out.push_str(&format!(
            "    Minor Number                          : {}
",
            dev.minor_number
        ));
        out.push_str(&format!(
            "    GPU UUID                              : {}
",
            dev.uuid
        ));
        out.push_str(&format!(
            "    Performance State                     : {}
",
            dev.perf_state()
        ));
        out.push_str(
            "    FB Memory Usage
",
        );
        out.push_str(&format!(
            "        Total                             : {} MiB
",
            dev.fb_total_mib()
        ));
        out.push_str(&format!(
            "        Used                              : {} MiB
",
            dev.fb_used_mib()
        ));
        out.push_str(&format!(
            "        Free                              : {} MiB
",
            dev.fb_free_mib()
        ));
        out.push_str(
            "    Utilization
",
        );
        out.push_str(&format!(
            "        Gpu                               : {:.0} %
",
            dev.sm_utilization
        ));
        out.push_str(&format!(
            "        Memory                            : {:.0} %
",
            dev.mem_utilization
        ));
        out.push_str(
            "    Processes
",
        );
        if dev.processes().is_empty() {
            out.push_str(
                "        None
",
            );
        }
        for p in dev.processes() {
            out.push_str(&format!(
                "        Process ID                        : {}
            Type                          : {}
            Name                          : {}
            Used GPU Memory               : {} MiB
",
                p.pid,
                p.ptype.code(),
                p.name,
                p.used_mib
            ));
        }
    }
    out
}

/// Render the console table shown by plain `nvidia-smi` (the format the
/// paper's Figs. 10 and 11 screenshot).
pub fn render_table(cluster: &GpuCluster) -> String {
    let snapshot = cluster.effective_smi_snapshot();
    let mut out = String::new();
    out.push_str(&format!(
        "+-----------------------------------------------------------------------------+\n\
         | NVIDIA-SMI {:<11} Driver Version: {:<11} CUDA Version: {:<8}    |\n\
         |-------------------------------+----------------------+----------------------+\n\
         | GPU  Name        Persistence-M| Bus-Id        Disp.A | Volatile Uncorr. ECC |\n\
         | Fan  Temp  Perf  Pwr:Usage/Cap|         Memory-Usage | GPU-Util  Compute M. |\n\
         |===============================+======================+======================|\n",
        cluster.driver_version(),
        cluster.driver_version(),
        cluster.cuda_version()
    ));
    for dev in &snapshot {
        out.push_str(&format!(
            "| {:>3}  {:<12}     Off  | {} Off |                    0 |\n",
            dev.minor_number, dev.arch.name, dev.bus_id
        ));
        out.push_str(&format!(
            "| N/A  {:>3.0}C  {:<4} {:>3.0}W / {:>3.0}W | {:>9} / {:>8} | {:>6.0}%      Default |\n",
            dev.temperature_c,
            dev.perf_state(),
            dev.power_draw_w(),
            dev.arch.power_limit_w,
            format!("{}MiB", dev.fb_used_mib()),
            format!("{}MiB", dev.fb_total_mib()),
            dev.sm_utilization
        ));
        out.push_str(
            "+-------------------------------+----------------------+----------------------+\n",
        );
    }
    out.push('\n');
    out.push_str(
        "+-----------------------------------------------------------------------------+\n\
         | Processes:                                                                  |\n\
         |  GPU   GI   CI        PID   Type   Process name                  GPU Memory |\n\
         |        ID   ID                                                   Usage      |\n\
         |=============================================================================|\n",
    );
    let mut any = false;
    for dev in &snapshot {
        for p in dev.processes() {
            any = true;
            out.push_str(&format!(
                "| {:>4}   N/A  N/A  {:>9}    {:>3}   {:<29} {:>7}MiB |\n",
                dev.minor_number,
                p.pid,
                p.ptype.code(),
                p.name,
                p.used_mib
            ));
        }
    }
    if !any {
        out.push_str(
            "|  No running processes found                                                 |\n",
        );
    }
    out.push_str(
        "+-----------------------------------------------------------------------------+\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::GpuProcess;
    use xmlparse::parse;

    #[test]
    fn xml_parses_and_has_expected_structure() {
        let c = GpuCluster::k80_node();
        c.attach_process(0, GpuProcess::compute(39953, "/usr/bin/racon_gpu", 60)).unwrap();
        let xml = query_xml(&c);
        let doc = parse(&xml).unwrap();
        let root = doc.root();
        assert_eq!(root.name(), "nvidia_smi_log");
        let gpus = root.find_all("gpu");
        assert_eq!(gpus.len(), 2);
        assert_eq!(gpus[0].find_text("minor_number").unwrap(), "0");
        assert_eq!(gpus[1].find_text("minor_number").unwrap(), "1");
        // Device 0 has one process, device 1 none.
        assert_eq!(gpus[0].find_all("process_info").len(), 1);
        assert!(gpus[1].find_all("process_info").is_empty());
        let pid = gpus[0].find("process_info").unwrap().find_text("pid").unwrap();
        assert_eq!(pid, "39953");
    }

    #[test]
    fn xml_memory_fields_use_mib_suffix() {
        let c = GpuCluster::k80_node();
        let xml = query_xml(&c);
        let doc = parse(&xml).unwrap();
        let fb = doc.root().find("fb_memory_usage").unwrap();
        assert_eq!(fb.find_text("total").unwrap(), "11441 MiB");
        assert_eq!(fb.find_text("used").unwrap(), "63 MiB");
    }

    #[test]
    fn xml_is_parseable_via_find_all_like_pseudocode1() {
        // Re-enact the paper's Pseudocode 1 parsing loop directly.
        let c = GpuCluster::k80_node();
        c.attach_process(1, GpuProcess::compute(40534, "/usr/bin/racon_gpu", 60)).unwrap();
        let doc = parse(&query_xml(&c)).unwrap();
        let mut avail = Vec::new();
        let mut all = Vec::new();
        for gpu in doc.root().find_all("gpu") {
            let minor: u32 = gpu.find_text("minor_number").unwrap().parse().unwrap();
            all.push(minor);
            if gpu.find_all("process_info").is_empty() {
                avail.push(minor);
            }
        }
        assert_eq!(all, vec![0, 1]);
        assert_eq!(avail, vec![0]);
    }

    #[test]
    fn table_contains_header_and_processes() {
        let c = GpuCluster::k80_node();
        c.attach_process(0, GpuProcess::compute(39953, "/usr/bin/racon_gpu", 60)).unwrap();
        let t = render_table(&c);
        assert!(t.contains("NVIDIA-SMI 455.45.01"));
        assert!(t.contains("CUDA Version: 11.1"));
        assert!(t.contains("Tesla K80"));
        assert!(t.contains("39953"));
        assert!(t.contains("/usr/bin/racon_gpu"));
        assert!(t.contains("11441MiB"));
    }

    #[test]
    fn table_reports_no_processes_when_idle() {
        let c = GpuCluster::k80_node();
        assert!(render_table(&c).contains("No running processes found"));
    }

    #[test]
    fn injected_failure_errors_once_then_recovers() {
        let c = GpuCluster::k80_node();
        c.inject_smi_query_failures(1);
        let err = try_query_xml(&c).unwrap_err();
        assert!(err.to_string().contains("NVIDIA-SMI has failed"), "{err}");
        // The budget is spent: the next query succeeds and parses.
        let xml = try_query_xml(&c).unwrap();
        assert!(parse(&xml).is_ok());
    }

    #[test]
    fn frozen_snapshot_serves_stale_but_well_formed_xml() {
        let c = GpuCluster::k80_node();
        c.freeze_smi_snapshot();
        c.attach_process(0, GpuProcess::compute(99, "late_proc", 500)).unwrap();
        let doc = parse(&query_xml(&c)).unwrap();
        let gpus = doc.root().find_all("gpu");
        assert!(gpus[0].find_all("process_info").is_empty(), "stale view predates attach");
        c.thaw_smi_snapshot();
        let doc = parse(&query_xml(&c)).unwrap();
        assert_eq!(doc.root().find_all("gpu")[0].find_all("process_info").len(), 1);
    }

    #[test]
    fn plain_query_lists_devices_and_processes() {
        let c = GpuCluster::k80_node();
        c.attach_process(1, GpuProcess::compute(40534, "/usr/bin/racon_gpu", 60)).unwrap();
        let q = query_plain(&c);
        assert!(q.contains("NVSMI LOG"));
        assert!(q.contains("Attached GPUs                             : 2"));
        assert!(q.contains("Minor Number                          : 0"));
        assert!(q.contains("Minor Number                          : 1"));
        assert!(q.contains("Process ID                        : 40534"));
        assert!(q.contains("Used GPU Memory               : 60 MiB"));
        // Idle device 0 shows no processes.
        assert!(q.contains("None"));
    }
}
