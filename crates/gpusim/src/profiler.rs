//! An NVProf-like profiler.
//!
//! NVProf reports two sections: *GPU activities* (time the device spent in
//! each kernel / copy) and *API calls* (time the host spent inside each CUDA
//! runtime call, where `cudaStreamSynchronize` absorbs the waiting-for-GPU
//! time). The paper's Figs. 4 and 6 plot exactly these hotspots, and its
//! stall analysis ("~70% memory dependency stall and ~20% execution
//! dependency stall") comes from NVProf's stall-reason counters, which we
//! derive from the kernel roofline breakdown.

use crate::kernel::KernelTiming;
use std::collections::HashMap;

/// Category of a profiled entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApiKind {
    /// Host-side CUDA runtime call (cudaMalloc, cudaMemcpy, sync, launch).
    ApiCall,
    /// Device-side activity (kernel execution, DMA transfer).
    GpuActivity,
}

/// Accumulated time and call count for one named entry.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Entry {
    /// Total seconds attributed to this name.
    pub seconds: f64,
    /// Number of calls/launches.
    pub calls: u64,
}

/// NVProf-style aggregate stall analysis across all profiled kernels,
/// weighted by kernel busy time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StallAnalysis {
    /// Fraction of stalls from memory dependencies (0–1).
    pub memory_dependency: f64,
    /// Fraction from execution (pipeline) dependencies.
    pub execution_dependency: f64,
    /// Everything else (instruction fetch, sync, not-selected, ...).
    pub other: f64,
}

/// Accumulates profiling data for one tool execution.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    api_calls: HashMap<String, Entry>,
    gpu_activities: HashMap<String, Entry>,
    // Stall accumulation: busy-time-weighted memory stall fraction.
    stall_weight: f64,
    stall_memory: f64,
}

impl Profiler {
    /// A fresh, empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `seconds` under `name` in the given section.
    pub fn record(&mut self, kind: ApiKind, name: &str, seconds: f64) {
        let map = match kind {
            ApiKind::ApiCall => &mut self.api_calls,
            ApiKind::GpuActivity => &mut self.gpu_activities,
        };
        let entry = map.entry(name.to_string()).or_default();
        entry.seconds += seconds;
        entry.calls += 1;
    }

    /// Record a kernel's stall profile (called once per launch with the
    /// modeled timing breakdown).
    pub fn record_stalls(&mut self, timing: &KernelTiming) {
        let busy = timing.compute_s.max(timing.memory_s);
        self.stall_weight += busy;
        self.stall_memory += busy * timing.memory_stall_fraction();
    }

    /// All API-call entries sorted by descending time.
    pub fn api_report(&self) -> Vec<(String, Entry)> {
        sorted(&self.api_calls)
    }

    /// All GPU-activity entries sorted by descending time.
    pub fn gpu_report(&self) -> Vec<(String, Entry)> {
        sorted(&self.gpu_activities)
    }

    /// Total time across API calls.
    pub fn total_api_seconds(&self) -> f64 {
        self.api_calls.values().map(|e| e.seconds).sum()
    }

    /// Total device busy time.
    pub fn total_gpu_seconds(&self) -> f64 {
        self.gpu_activities.values().map(|e| e.seconds).sum()
    }

    /// Look up one API entry by name.
    pub fn api_entry(&self, name: &str) -> Option<Entry> {
        self.api_calls.get(name).copied()
    }

    /// Look up one GPU-activity entry by name.
    pub fn gpu_entry(&self, name: &str) -> Option<Entry> {
        self.gpu_activities.get(name).copied()
    }

    /// Aggregate stall analysis over all recorded kernels.
    ///
    /// Memory-dependency stalls come from the roofline memory fraction; the
    /// remainder is split between execution dependencies and other reasons
    /// in the ~2.5:1 ratio NVProf typically shows for dependency-limited
    /// bio kernels.
    pub fn stall_analysis(&self) -> StallAnalysis {
        if self.stall_weight == 0.0 {
            return StallAnalysis::default();
        }
        let memory = self.stall_memory / self.stall_weight;
        let rest = 1.0 - memory;
        StallAnalysis {
            memory_dependency: memory,
            execution_dependency: rest * 0.72,
            other: rest * 0.28,
        }
    }

    /// Merge another profiler's data into this one (used when a tool run
    /// spans multiple contexts/devices).
    pub fn merge(&mut self, other: &Profiler) {
        for (name, e) in &other.api_calls {
            let slot = self.api_calls.entry(name.clone()).or_default();
            slot.seconds += e.seconds;
            slot.calls += e.calls;
        }
        for (name, e) in &other.gpu_activities {
            let slot = self.gpu_activities.entry(name.clone()).or_default();
            slot.seconds += e.seconds;
            slot.calls += e.calls;
        }
        self.stall_weight += other.stall_weight;
        self.stall_memory += other.stall_memory;
    }
}

fn sorted(map: &HashMap<String, Entry>) -> Vec<(String, Entry)> {
    let mut v: Vec<(String, Entry)> = map.iter().map(|(k, e)| (k.clone(), *e)).collect();
    v.sort_by(|a, b| b.1.seconds.total_cmp(&a.1.seconds).then_with(|| a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut p = Profiler::new();
        p.record(ApiKind::ApiCall, "cudaMemcpyHtoD", 0.5);
        p.record(ApiKind::ApiCall, "cudaMemcpyHtoD", 0.25);
        p.record(ApiKind::GpuActivity, "generatePOAKernel", 1.0);
        let e = p.api_entry("cudaMemcpyHtoD").unwrap();
        assert_eq!(e.calls, 2);
        assert!((e.seconds - 0.75).abs() < 1e-12);
        assert_eq!(p.gpu_entry("generatePOAKernel").unwrap().calls, 1);
    }

    #[test]
    fn report_sorted_descending() {
        let mut p = Profiler::new();
        p.record(ApiKind::ApiCall, "a", 0.1);
        p.record(ApiKind::ApiCall, "b", 0.9);
        p.record(ApiKind::ApiCall, "c", 0.5);
        let names: Vec<String> = p.api_report().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["b", "c", "a"]);
    }

    #[test]
    fn stall_analysis_weighted_by_busy_time() {
        let mut p = Profiler::new();
        // A memory-bound kernel (fraction 0.8) that ran 9× longer than a
        // compute-bound one (fraction 0.2).
        p.record_stalls(&KernelTiming {
            total_s: 9.0,
            compute_s: 2.25,
            memory_s: 9.0,
            occupancy: 1.0,
            efficiency: 1.0,
        });
        p.record_stalls(&KernelTiming {
            total_s: 1.0,
            compute_s: 1.0,
            memory_s: 0.25,
            occupancy: 1.0,
            efficiency: 1.0,
        });
        let s = p.stall_analysis();
        assert!(s.memory_dependency > 0.7, "{s:?}");
        let sum = s.memory_dependency + s.execution_dependency + s.other;
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stall_analysis_is_zero() {
        assert_eq!(Profiler::new().stall_analysis(), StallAnalysis::default());
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Profiler::new();
        a.record(ApiKind::ApiCall, "x", 1.0);
        let mut b = Profiler::new();
        b.record(ApiKind::ApiCall, "x", 2.0);
        b.record(ApiKind::GpuActivity, "k", 3.0);
        a.merge(&b);
        assert_eq!(a.api_entry("x").unwrap().calls, 2);
        assert!((a.total_api_seconds() - 3.0).abs() < 1e-12);
        assert!((a.total_gpu_seconds() - 3.0).abs() < 1e-12);
    }
}
