//! Container image registry and launch-overhead simulation.
//!
//! Stands in for Docker Hub / biocontainers plus the local image cache.
//! The paper measured "approximately 0.6 s (36%) of the time was spent on
//! container launching and cold start overhead" for the Racon-GPU
//! container; the overhead model is calibrated to that.

use crate::error::GalaxyError;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Metadata for one published image.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageMeta {
    /// Compressed image size in MB (drives pull time).
    pub size_mb: f64,
    /// Whether the image bundles a CUDA userland (GPU-capable).
    pub gpu_capable: bool,
}

/// Fixed container start overhead once the image is local (runtime setup,
/// namespace creation, entrypoint exec), seconds.
pub const COLD_START_S: f64 = 0.6;
/// Additional per-GB overlay/extraction cost on first start, seconds.
const FIRST_START_PER_GB_S: f64 = 0.25;
/// Registry pull bandwidth, MB/s.
const PULL_BANDWIDTH_MBS: f64 = 120.0;

/// A simulated registry + local image cache. Clones share the cache.
#[derive(Clone, Default)]
pub struct ImageRegistry {
    images: Arc<Mutex<HashMap<String, ImageMeta>>>,
    cache: Arc<Mutex<HashSet<String>>>,
}

impl ImageRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with the images the paper's evaluation uses.
    pub fn with_paper_images() -> Self {
        let reg = Self::new();
        // The Racon-GPU image the authors published to Docker Hub.
        reg.publish(
            "gulsumgudukbay/racon_dockerfile",
            ImageMeta { size_mb: 980.0, gpu_capable: true },
        );
        reg.publish("nanoporetech/bonito", ImageMeta { size_mb: 2400.0, gpu_capable: true });
        reg.publish(
            "quay.io/biocontainers/racon:1.4.3",
            ImageMeta { size_mb: 120.0, gpu_capable: false },
        );
        reg
    }

    /// Publish an image to the registry.
    pub fn publish(&self, name: impl Into<String>, meta: ImageMeta) {
        self.images.lock().insert(name.into(), meta);
    }

    /// Image metadata.
    pub fn lookup(&self, name: &str) -> Option<ImageMeta> {
        self.images.lock().get(name).cloned()
    }

    /// Whether the image is already in the local cache.
    pub fn is_cached(&self, name: &str) -> bool {
        self.cache.lock().contains(name)
    }

    /// Pull an image (`docker pull`): returns the simulated pull seconds
    /// (0 when cached) or an error for unknown images.
    pub fn pull(&self, name: &str) -> Result<f64, GalaxyError> {
        let meta = self
            .lookup(name)
            .ok_or_else(|| GalaxyError::Container(format!("image not found: {name}")))?;
        if self.is_cached(name) {
            return Ok(0.0);
        }
        self.cache.lock().insert(name.to_string());
        Ok(meta.size_mb / PULL_BANDWIDTH_MBS)
    }

    /// Launch overhead for starting a container from `name`, assuming it
    /// has been pulled: fixed runtime setup plus a first-start extraction
    /// cost. Subsequent starts pay only [`COLD_START_S`].
    pub fn start_overhead(&self, name: &str, first_start: bool) -> Result<f64, GalaxyError> {
        let meta = self
            .lookup(name)
            .ok_or_else(|| GalaxyError::Container(format!("image not found: {name}")))?;
        let mut overhead = COLD_START_S;
        if first_start {
            overhead += FIRST_START_PER_GB_S * (meta.size_mb / 1024.0);
        }
        Ok(overhead)
    }

    /// Drop the local cache (for tests).
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pull_caches_and_is_idempotent() {
        let reg = ImageRegistry::with_paper_images();
        let first = reg.pull("gulsumgudukbay/racon_dockerfile").unwrap();
        assert!(first > 1.0);
        let second = reg.pull("gulsumgudukbay/racon_dockerfile").unwrap();
        assert_eq!(second, 0.0);
        assert!(reg.is_cached("gulsumgudukbay/racon_dockerfile"));
    }

    #[test]
    fn unknown_image_errors() {
        let reg = ImageRegistry::new();
        assert!(matches!(reg.pull("ghost/image"), Err(GalaxyError::Container(_))));
        assert!(reg.start_overhead("ghost/image", true).is_err());
    }

    #[test]
    fn first_start_costs_more() {
        let reg = ImageRegistry::with_paper_images();
        let first = reg.start_overhead("gulsumgudukbay/racon_dockerfile", true).unwrap();
        let later = reg.start_overhead("gulsumgudukbay/racon_dockerfile", false).unwrap();
        assert!(first > later);
        // Calibration: the paper attributes ~0.6 s to container launch +
        // cold start for the Racon image.
        assert_eq!(later, COLD_START_S);
        assert!(first > 0.6 && first < 1.0, "{first}");
    }

    #[test]
    fn gpu_capability_recorded() {
        let reg = ImageRegistry::with_paper_images();
        assert!(reg.lookup("gulsumgudukbay/racon_dockerfile").unwrap().gpu_capable);
        assert!(!reg.lookup("quay.io/biocontainers/racon:1.4.3").unwrap().gpu_capable);
    }

    #[test]
    fn clones_share_cache() {
        let a = ImageRegistry::with_paper_images();
        let b = a.clone();
        a.pull("nanoporetech/bonito").unwrap();
        assert!(b.is_cached("nanoporetech/bonito"));
    }
}
