//! Workflows: ordered multi-tool pipelines.
//!
//! The paper's background: "A single job can be a single tool instance or
//! a workflow consisting of a sequence of multiple tools." A
//! [`Workflow`] is an ordered list of steps; each step runs a tool, and
//! may take any parameter's value from an upstream step's output dataset.
//! Execution is sequential and fail-fast, and each step goes through the
//! full GYAN-instrumented pipeline (so a workflow can mix GPU and CPU
//! tools, each mapped independently).

use crate::app::GalaxyApp;
use crate::error::GalaxyError;
use crate::params::ParamDict;

/// Where a step's parameter value comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueSource {
    /// A literal value.
    Literal(String),
    /// The content of the first output dataset of an earlier step
    /// (0-based step index).
    StepOutput(usize),
}

/// One step of a workflow.
#[derive(Debug, Clone)]
pub struct WorkflowStep {
    /// Tool to run.
    pub tool_id: String,
    /// Parameter bindings.
    pub params: Vec<(String, ValueSource)>,
}

impl WorkflowStep {
    /// A step with no parameters.
    pub fn new(tool_id: impl Into<String>) -> Self {
        WorkflowStep { tool_id: tool_id.into(), params: Vec::new() }
    }

    /// Bind a literal parameter.
    pub fn with_param(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.push((name.into(), ValueSource::Literal(value.into())));
        self
    }

    /// Bind a parameter to an upstream step's first output.
    pub fn with_input_from(mut self, name: impl Into<String>, step: usize) -> Self {
        self.params.push((name.into(), ValueSource::StepOutput(step)));
        self
    }
}

/// An ordered multi-step pipeline.
#[derive(Debug, Clone)]
pub struct Workflow {
    /// Display name.
    pub name: String,
    /// Steps in execution order.
    pub steps: Vec<WorkflowStep>,
}

impl Workflow {
    /// An empty workflow.
    pub fn new(name: impl Into<String>) -> Self {
        Workflow { name: name.into(), steps: Vec::new() }
    }

    /// Append a step.
    pub fn step(mut self, step: WorkflowStep) -> Self {
        self.steps.push(step);
        self
    }

    /// Validate step references (upstream-only, in range, tools known).
    /// Bad references are rejected with
    /// [`GalaxyError::InvalidStepReference`] naming the offending step and
    /// why — instead of failing opaquely at execution time.
    pub fn validate(&self, app: &GalaxyApp) -> Result<(), GalaxyError> {
        for (i, step) in self.steps.iter().enumerate() {
            if app.tool(&step.tool_id).is_none() {
                return Err(GalaxyError::UnknownTool(step.tool_id.clone()));
            }
            for (_, source) in &step.params {
                if let ValueSource::StepOutput(from) = source {
                    let reason = if *from == i {
                        "self_reference"
                    } else if *from >= self.steps.len() {
                        "out_of_range"
                    } else if *from > i {
                        "forward_reference"
                    } else {
                        continue;
                    };
                    return Err(GalaxyError::InvalidStepReference {
                        workflow: self.name.clone(),
                        step: i,
                        reference: *from,
                        reason,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Result of a workflow invocation.
#[derive(Debug, Clone)]
pub struct WorkflowRun {
    /// Job ids of completed steps, in order.
    pub job_ids: Vec<u64>,
    /// Index of the failed step, when the run aborted.
    pub failed_step: Option<usize>,
}

impl WorkflowRun {
    /// Whether every step completed.
    pub fn ok(&self) -> bool {
        self.failed_step.is_none()
    }
}

impl GalaxyApp {
    /// Run a workflow: validate, then execute steps in order, feeding
    /// upstream outputs into downstream parameters. Aborts on the first
    /// failing step (remaining steps are not submitted).
    pub fn submit_workflow(&mut self, workflow: &Workflow) -> Result<WorkflowRun, GalaxyError> {
        workflow.validate(self)?;
        let mut job_ids: Vec<u64> = Vec::with_capacity(workflow.steps.len());
        for (i, step) in workflow.steps.iter().enumerate() {
            let mut params = ParamDict::new();
            for (name, source) in &step.params {
                let value = match source {
                    ValueSource::Literal(v) => v.clone(),
                    ValueSource::StepOutput(from) => {
                        let upstream_job = job_ids[*from];
                        let ds = self
                            .history()
                            .datasets_for_job(upstream_job)
                            .first()
                            .map(|d| d.content.clone())
                            .ok_or_else(|| {
                                GalaxyError::BadWrapper(format!(
                                    "workflow step {i}: upstream step {from} produced no output"
                                ))
                            })?;
                        ds
                    }
                };
                params.set(name.clone(), value);
            }
            match self.submit(&step.tool_id, &params) {
                Ok(id) => job_ids.push(id),
                Err(_) => {
                    return Ok(WorkflowRun { job_ids, failed_step: Some(i) });
                }
            }
        }
        Ok(WorkflowRun { job_ids, failed_step: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::conf::{JobConfig, GYAN_JOB_CONF};
    use crate::tool::macros::MacroLibrary;

    const UPPER: &str = r#"<tool id="upper" name="Uppercase">
      <command>echo $text</command>
      <inputs><param name="text" type="text" value="x"/></inputs>
      <outputs><data name="out" format="txt"/></outputs>
    </tool>"#;

    /// A shell-less `echo` implementation so chained outputs are real.
    struct EchoExecutor;
    impl crate::runners::JobExecutor for EchoExecutor {
        fn execute(&self, plan: &crate::runners::ExecutionPlan) -> crate::runners::ExecutionResult {
            let echoed = plan.command_line.strip_prefix("echo ").unwrap_or("");
            crate::runners::ExecutionResult::ok(echoed)
        }
    }

    fn app() -> GalaxyApp {
        let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
        app.install_tool_xml(UPPER, &MacroLibrary::new()).unwrap();
        app.set_executor(Box::new(EchoExecutor));
        app.register_rule(
            "gpu_dynamic_destination",
            Box::new(|_t, _j, _c| Ok("local_cpu".to_string())),
        );
        app
    }

    #[test]
    fn chained_steps_pass_outputs_downstream() {
        let mut app = app();
        let wf = Workflow::new("chain")
            .step(WorkflowStep::new("upper").with_param("text", "hello"))
            .step(WorkflowStep::new("upper").with_input_from("text", 0))
            .step(WorkflowStep::new("upper").with_input_from("text", 1));
        let run = app.submit_workflow(&wf).unwrap();
        assert!(run.ok());
        assert_eq!(run.job_ids.len(), 3);
        // Step 0 echoed "hello"; steps 1 and 2 echoed the upstream output.
        for id in &run.job_ids {
            assert_eq!(app.job(*id).unwrap().stdout.trim(), "hello");
        }
    }

    #[test]
    fn forward_reference_rejected() {
        let app_ = app();
        let wf = Workflow::new("bad")
            .step(WorkflowStep::new("upper").with_input_from("text", 1))
            .step(WorkflowStep::new("upper"));
        match wf.validate(&app_) {
            Err(GalaxyError::InvalidStepReference { step, reference, reason, .. }) => {
                assert_eq!((step, reference, reason), (0, 1, "forward_reference"));
            }
            other => panic!("expected InvalidStepReference, got {other:?}"),
        }
    }

    #[test]
    fn self_reference_rejected() {
        let app_ = app();
        let wf = Workflow::new("bad").step(WorkflowStep::new("upper").with_input_from("text", 0));
        match wf.validate(&app_) {
            Err(GalaxyError::InvalidStepReference { step, reference, reason, .. }) => {
                assert_eq!((step, reference, reason), (0, 0, "self_reference"));
            }
            other => panic!("expected InvalidStepReference, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_reference_rejected() {
        let app_ = app();
        let wf = Workflow::new("bad")
            .step(WorkflowStep::new("upper"))
            .step(WorkflowStep::new("upper").with_input_from("text", 9));
        match wf.validate(&app_) {
            Err(GalaxyError::InvalidStepReference { step, reference, reason, workflow }) => {
                assert_eq!((step, reference, reason), (1, 9, "out_of_range"));
                assert_eq!(workflow, "bad");
            }
            other => panic!("expected InvalidStepReference, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tool_rejected() {
        let app_ = app();
        let wf = Workflow::new("bad").step(WorkflowStep::new("ghost"));
        assert!(matches!(wf.validate(&app_), Err(GalaxyError::UnknownTool(_))));
    }

    #[test]
    fn failing_step_aborts_remaining() {
        struct FailSecond;
        impl crate::runners::JobExecutor for FailSecond {
            fn execute(
                &self,
                plan: &crate::runners::ExecutionPlan,
            ) -> crate::runners::ExecutionResult {
                if plan.command_line.contains("boom") {
                    crate::runners::ExecutionResult::fail(1, "boom")
                } else {
                    crate::runners::ExecutionResult::ok("fine")
                }
            }
        }
        let mut app = app();
        app.set_executor(Box::new(FailSecond));
        let wf = Workflow::new("abort")
            .step(WorkflowStep::new("upper").with_param("text", "ok"))
            .step(WorkflowStep::new("upper").with_param("text", "boom"))
            .step(WorkflowStep::new("upper").with_param("text", "never-runs"));
        let run = app.submit_workflow(&wf).unwrap();
        assert!(!run.ok());
        assert_eq!(run.failed_step, Some(1));
        assert_eq!(run.job_ids.len(), 1);
        // Only two jobs were created (the third step never submitted).
        assert_eq!(app.jobs().len(), 2);
    }
}
