//! Histories and datasets: where job outputs land.
//!
//! Galaxy presents results to the user as datasets in a history (the final
//! step of the paper's Fig. 2 flow). This is a light model: enough for
//! integration tests to assert that tool outputs propagate end-to-end.

/// Dataset lifecycle states (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetState {
    /// Declared but not yet produced.
    Queued,
    /// Produced successfully.
    Ok,
    /// Production failed.
    Error,
}

/// One history dataset (an "HDA" in Galaxy terms).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset id within the history.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Datatype extension (`fasta`, `fastq`, ...).
    pub format: String,
    /// Producing job id.
    pub job_id: u64,
    /// State.
    pub state: DatasetState,
    /// Content (simulated file payload).
    pub content: String,
}

/// A user's history of datasets.
#[derive(Debug, Clone, Default)]
pub struct History {
    datasets: Vec<Dataset>,
    next_id: u64,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare an output dataset for a job, in `Queued` state.
    pub fn declare(
        &mut self,
        name: impl Into<String>,
        format: impl Into<String>,
        job_id: u64,
    ) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        self.datasets.push(Dataset {
            id,
            name: name.into(),
            format: format.into(),
            job_id,
            state: DatasetState::Queued,
            content: String::new(),
        });
        id
    }

    /// Mark a dataset produced with `content`.
    pub fn complete(&mut self, id: u64, content: impl Into<String>) -> bool {
        match self.dataset_mut(id) {
            Some(ds) => {
                ds.state = DatasetState::Ok;
                ds.content = content.into();
                true
            }
            None => false,
        }
    }

    /// Mark a dataset failed.
    pub fn fail(&mut self, id: u64) -> bool {
        match self.dataset_mut(id) {
            Some(ds) => {
                ds.state = DatasetState::Error;
                true
            }
            None => false,
        }
    }

    /// Dataset by id.
    pub fn dataset(&self, id: u64) -> Option<&Dataset> {
        self.datasets.iter().find(|d| d.id == id)
    }

    fn dataset_mut(&mut self, id: u64) -> Option<&mut Dataset> {
        self.datasets.iter_mut().find(|d| d.id == id)
    }

    /// All datasets produced by a job.
    pub fn datasets_for_job(&self, job_id: u64) -> Vec<&Dataset> {
        self.datasets.iter().filter(|d| d.job_id == job_id).collect()
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_then_complete() {
        let mut h = History::new();
        let id = h.declare("consensus", "fasta", 7);
        assert_eq!(h.dataset(id).unwrap().state, DatasetState::Queued);
        assert!(h.complete(id, ">seq\nACGT\n"));
        let ds = h.dataset(id).unwrap();
        assert_eq!(ds.state, DatasetState::Ok);
        assert!(ds.content.starts_with(">seq"));
    }

    #[test]
    fn fail_marks_error() {
        let mut h = History::new();
        let id = h.declare("out", "txt", 1);
        assert!(h.fail(id));
        assert_eq!(h.dataset(id).unwrap().state, DatasetState::Error);
    }

    #[test]
    fn unknown_ids_return_false() {
        let mut h = History::new();
        assert!(!h.complete(99, ""));
        assert!(!h.fail(99));
        assert!(h.dataset(99).is_none());
    }

    #[test]
    fn datasets_for_job_filters() {
        let mut h = History::new();
        h.declare("a", "txt", 1);
        h.declare("b", "txt", 2);
        h.declare("c", "txt", 1);
        assert_eq!(h.datasets_for_job(1).len(), 2);
        assert_eq!(h.datasets_for_job(3).len(), 0);
        assert_eq!(h.len(), 3);
    }
}
