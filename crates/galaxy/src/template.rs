//! A miniature Cheetah-like template engine.
//!
//! Galaxy tool wrappers embed their command lines as Cheetah templates.
//! This module implements the subset those wrappers use — and in
//! particular everything the paper's Code 3 (`racon.xml`) needs:
//!
//! * `$name` and `${name}` variable substitution;
//! * `#if <cond>` / `#else` / `#end if` blocks, where `<cond>` is a
//!   comparison (`$var == "lit"`, `$var != "lit"`, `$a == $b`), a bare
//!   truthiness test (`$var`), or a negation (`not <cond>`);
//! * `#for $item in $list` / `#end for`, iterating over comma-separated
//!   values;
//! * `##` comment lines.
//!
//! Directive lines must start (after indentation) with `#`; everything
//! else is literal text with inline substitutions.

use crate::error::GalaxyError;
use crate::params::ParamDict;

/// A parsed template, ready for repeated evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Text(String),
    Var(String),
    If { cond: Cond, then: Vec<Node>, otherwise: Vec<Node> },
    For { var: String, list: String, body: Vec<Node> },
}

#[derive(Debug, Clone, PartialEq)]
enum Cond {
    Truthy(String),
    Not(Box<Cond>),
    Eq(Expr, Expr),
    Ne(Expr, Expr),
}

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Var(String),
    Lit(String),
}

impl Template {
    /// Parse the template source.
    pub fn parse(src: &str) -> Result<Template, GalaxyError> {
        let lines: Vec<&str> = src.split_inclusive('\n').collect();
        let mut pos = 0usize;
        let nodes = parse_block(&lines, &mut pos, None)?;
        Ok(Template { nodes })
    }

    /// Evaluate against `params`, producing the final text.
    pub fn render(&self, params: &ParamDict) -> Result<String, GalaxyError> {
        let mut out = String::new();
        render_nodes(&self.nodes, params, &mut out)?;
        Ok(out)
    }

    /// Names of every variable the template references.
    pub fn referenced_vars(&self) -> Vec<String> {
        let mut vars = Vec::new();
        collect_vars(&self.nodes, &mut vars);
        vars.sort();
        vars.dedup();
        vars
    }
}

fn collect_vars(nodes: &[Node], out: &mut Vec<String>) {
    for node in nodes {
        match node {
            Node::Text(_) => {}
            Node::Var(v) => out.push(v.clone()),
            Node::If { cond, then, otherwise } => {
                collect_cond_vars(cond, out);
                collect_vars(then, out);
                collect_vars(otherwise, out);
            }
            Node::For { list, body, .. } => {
                out.push(list.clone());
                collect_vars(body, out);
            }
        }
    }
}

fn collect_cond_vars(cond: &Cond, out: &mut Vec<String>) {
    match cond {
        Cond::Truthy(v) => out.push(v.clone()),
        Cond::Not(inner) => collect_cond_vars(inner, out),
        Cond::Eq(a, b) | Cond::Ne(a, b) => {
            for e in [a, b] {
                if let Expr::Var(v) = e {
                    out.push(v.clone());
                }
            }
        }
    }
}

/// Parse until `end` directive (or EOF when `end` is `None`).
fn parse_block(
    lines: &[&str],
    pos: &mut usize,
    end: Option<&str>,
) -> Result<Vec<Node>, GalaxyError> {
    let mut nodes = Vec::new();
    while *pos < lines.len() {
        let line = lines[*pos];
        let trimmed = line.trim_start();
        if let Some(directive) = trimmed.strip_prefix('#') {
            let directive = directive.trim_end();
            if directive.starts_with('#') {
                // `##` comment line: swallow it.
                *pos += 1;
                continue;
            }
            if let Some(end_kw) = end {
                if directive_matches(directive, end_kw) {
                    return Ok(nodes); // caller consumes the end line
                }
            }
            if directive_matches(directive, "else") {
                // Handled by the #if parser; seeing it here means we're in
                // the `then` branch — return and let the caller decide.
                if end.is_some() {
                    return Ok(nodes);
                }
                return Err(GalaxyError::Template("#else outside #if".into()));
            }
            if let Some(cond_src) = directive.strip_prefix("if ") {
                *pos += 1;
                let cond = parse_cond(cond_src.trim())?;
                let then = parse_block(lines, pos, Some("end if"))?;
                let mut otherwise = Vec::new();
                // Either we're on `#else` or `#end if` now.
                if *pos < lines.len()
                    && directive_matches(
                        lines[*pos].trim_start().trim_start_matches('#').trim_end(),
                        "else",
                    )
                    && lines[*pos].trim_start().starts_with('#')
                {
                    *pos += 1;
                    otherwise = parse_block(lines, pos, Some("end if"))?;
                }
                expect_end(lines, pos, "end if")?;
                nodes.push(Node::If { cond, then, otherwise });
                continue;
            }
            if let Some(for_src) = directive.strip_prefix("for ") {
                *pos += 1;
                let (var, list) = parse_for_header(for_src.trim())?;
                let body = parse_block(lines, pos, Some("end for"))?;
                expect_end(lines, pos, "end for")?;
                nodes.push(Node::For { var, list, body });
                continue;
            }
            return Err(GalaxyError::Template(format!("unknown directive: #{directive}")));
        }
        // Plain content line: inline substitution.
        *pos += 1;
        parse_inline(line, &mut nodes)?;
    }
    if let Some(end_kw) = end {
        return Err(GalaxyError::Template(format!("missing #{end_kw}")));
    }
    Ok(nodes)
}

fn directive_matches(directive: &str, keyword: &str) -> bool {
    // Accept both "end if" and "endif" spellings, as Cheetah does.
    let d: String = directive.split_whitespace().collect::<Vec<_>>().join(" ");
    let k_spaced = keyword.to_string();
    let k_joined: String = keyword.split_whitespace().collect();
    d == k_spaced || d == k_joined
}

fn expect_end(lines: &[&str], pos: &mut usize, keyword: &str) -> Result<(), GalaxyError> {
    if *pos >= lines.len() {
        return Err(GalaxyError::Template(format!("missing #{keyword}")));
    }
    let trimmed = lines[*pos].trim_start();
    let directive = trimmed.strip_prefix('#').unwrap_or("").trim_end();
    if directive_matches(directive, keyword) {
        *pos += 1;
        Ok(())
    } else {
        Err(GalaxyError::Template(format!("expected #{keyword}, found {trimmed:?}")))
    }
}

fn parse_for_header(src: &str) -> Result<(String, String), GalaxyError> {
    // "$item in $list"
    let mut parts = src.split(" in ");
    let var = parts
        .next()
        .map(str::trim)
        .and_then(|v| v.strip_prefix('$'))
        .ok_or_else(|| GalaxyError::Template(format!("bad #for header: {src}")))?;
    let list = parts
        .next()
        .map(str::trim)
        .and_then(|v| v.strip_prefix('$'))
        .ok_or_else(|| GalaxyError::Template(format!("bad #for header: {src}")))?;
    Ok((var.to_string(), list.to_string()))
}

fn parse_cond(src: &str) -> Result<Cond, GalaxyError> {
    if let Some(rest) = src.strip_prefix("not ") {
        return Ok(Cond::Not(Box::new(parse_cond(rest.trim())?)));
    }
    for (op, is_eq) in [("==", true), ("!=", false)] {
        if let Some(idx) = src.find(op) {
            let lhs = parse_expr(src[..idx].trim())?;
            let rhs = parse_expr(src[idx + 2..].trim())?;
            return Ok(if is_eq { Cond::Eq(lhs, rhs) } else { Cond::Ne(lhs, rhs) });
        }
    }
    match parse_expr(src)? {
        Expr::Var(v) => Ok(Cond::Truthy(v)),
        Expr::Lit(l) => Err(GalaxyError::Template(format!("literal condition: {l:?}"))),
    }
}

fn parse_expr(src: &str) -> Result<Expr, GalaxyError> {
    if let Some(var) = src.strip_prefix('$') {
        let var = var.trim_start_matches('{').trim_end_matches('}');
        if var.is_empty() || !is_var_name(var) {
            return Err(GalaxyError::Template(format!("bad variable: {src:?}")));
        }
        return Ok(Expr::Var(var.to_string()));
    }
    if (src.starts_with('"') && src.ends_with('"') && src.len() >= 2)
        || (src.starts_with('\'') && src.ends_with('\'') && src.len() >= 2)
    {
        return Ok(Expr::Lit(src[1..src.len() - 1].to_string()));
    }
    Err(GalaxyError::Template(format!("bad expression: {src:?}")))
}

fn is_var_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_alphabetic() || c == '_')
        && chars.all(|c| c.is_alphanumeric() || c == '_' || c == '.')
}

/// Parse one line of literal text, splitting out `$var` / `${var}`.
fn parse_inline(line: &str, nodes: &mut Vec<Node>) -> Result<(), GalaxyError> {
    let mut text = String::new();
    let mut chars = line.char_indices().peekable();
    while let Some((_, ch)) = chars.next() {
        if ch != '$' {
            text.push(ch);
            continue;
        }
        // `$$` is an escaped dollar sign.
        if matches!(chars.peek(), Some((_, '$'))) {
            chars.next();
            text.push('$');
            continue;
        }
        let braced = matches!(chars.peek(), Some((_, '{')));
        if braced {
            chars.next();
        }
        let mut name = String::new();
        while let Some(&(_, c)) = chars.peek() {
            let ok = if braced { c != '}' } else { c.is_alphanumeric() || c == '_' || c == '.' };
            if !ok {
                break;
            }
            name.push(c);
            chars.next();
        }
        if braced {
            match chars.next() {
                Some((_, '}')) => {}
                _ => return Err(GalaxyError::Template("unterminated ${...}".into())),
            }
        }
        if name.is_empty() {
            text.push('$'); // lone `$`, treat literally
            continue;
        }
        if !text.is_empty() {
            nodes.push(Node::Text(std::mem::take(&mut text)));
        }
        nodes.push(Node::Var(name));
    }
    if !text.is_empty() {
        nodes.push(Node::Text(text));
    }
    Ok(())
}

fn render_nodes(nodes: &[Node], params: &ParamDict, out: &mut String) -> Result<(), GalaxyError> {
    for node in nodes {
        match node {
            Node::Text(t) => out.push_str(t),
            Node::Var(name) => {
                let value = params
                    .get(name)
                    .ok_or_else(|| GalaxyError::Template(format!("undefined variable ${name}")))?;
                out.push_str(value);
            }
            Node::If { cond, then, otherwise } => {
                if eval_cond(cond, params)? {
                    render_nodes(then, params, out)?;
                } else {
                    render_nodes(otherwise, params, out)?;
                }
            }
            Node::For { var, list, body } => {
                let list_value = params
                    .get(list)
                    .ok_or_else(|| GalaxyError::Template(format!("undefined variable ${list}")))?
                    .to_string();
                for item in list_value.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    let mut scoped = params.clone();
                    scoped.set(var.clone(), item);
                    render_nodes(body, &scoped, out)?;
                }
            }
        }
    }
    Ok(())
}

fn eval_cond(cond: &Cond, params: &ParamDict) -> Result<bool, GalaxyError> {
    match cond {
        Cond::Truthy(var) => {
            let v = params
                .get(var)
                .ok_or_else(|| GalaxyError::Template(format!("undefined variable ${var}")))?;
            Ok(!matches!(v, "" | "false" | "False" | "None"))
        }
        Cond::Not(inner) => Ok(!eval_cond(inner, params)?),
        Cond::Eq(a, b) => Ok(eval_expr(a, params)? == eval_expr(b, params)?),
        Cond::Ne(a, b) => Ok(eval_expr(a, params)? != eval_expr(b, params)?),
    }
}

fn eval_expr<'a>(expr: &'a Expr, params: &'a ParamDict) -> Result<&'a str, GalaxyError> {
    match expr {
        Expr::Var(v) => {
            params.get(v).ok_or_else(|| GalaxyError::Template(format!("undefined variable ${v}")))
        }
        Expr::Lit(l) => Ok(l.as_str()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(pairs: &[(&str, &str)]) -> ParamDict {
        let mut p = ParamDict::new();
        for (k, v) in pairs {
            p.set(*k, *v);
        }
        p
    }

    #[test]
    fn simple_substitution() {
        let t = Template::parse("racon -t $threads $input > ${output}").unwrap();
        let out = t.render(&params(&[("threads", "4"), ("input", "r.fq"), ("output", "o.fa")]));
        assert_eq!(out.unwrap(), "racon -t 4 r.fq > o.fa");
    }

    #[test]
    fn dollar_escape_and_lone_dollar() {
        let t = Template::parse("cost: $$5 and $ sign").unwrap();
        assert_eq!(t.render(&ParamDict::new()).unwrap(), "cost: $5 and $ sign");
    }

    #[test]
    fn racon_wrapper_if_else() {
        // The shape of the paper's Code 3: pick the executable based on
        // __galaxy_gpu_enabled__.
        let src = "#if $__galaxy_gpu_enabled__ == \"true\"\n\
                   racon_gpu --cudapoa-batches $batches\n\
                   #else\n\
                   racon -t $threads\n\
                   #end if\n";
        let t = Template::parse(src).unwrap();
        let gpu = t
            .render(&params(&[
                ("__galaxy_gpu_enabled__", "true"),
                ("batches", "16"),
                ("threads", "4"),
            ]))
            .unwrap();
        assert_eq!(gpu.trim(), "racon_gpu --cudapoa-batches 16");
        let cpu = t
            .render(&params(&[
                ("__galaxy_gpu_enabled__", "false"),
                ("batches", "16"),
                ("threads", "4"),
            ]))
            .unwrap();
        assert_eq!(cpu.trim(), "racon -t 4");
    }

    #[test]
    fn truthiness_and_not() {
        let t = Template::parse("#if not $flag\noff\n#else\non\n#end if\n").unwrap();
        assert_eq!(t.render(&params(&[("flag", "false")])).unwrap().trim(), "off");
        assert_eq!(t.render(&params(&[("flag", "yes")])).unwrap().trim(), "on");
        assert_eq!(t.render(&params(&[("flag", "")])).unwrap().trim(), "off");
    }

    #[test]
    fn nested_ifs() {
        let src = "#if $a == \"1\"\n#if $b == \"2\"\nboth\n#else\njust-a\n#end if\n#else\nno-a\n#end if\n";
        let t = Template::parse(src).unwrap();
        assert_eq!(t.render(&params(&[("a", "1"), ("b", "2")])).unwrap().trim(), "both");
        assert_eq!(t.render(&params(&[("a", "1"), ("b", "9")])).unwrap().trim(), "just-a");
        assert_eq!(t.render(&params(&[("a", "0"), ("b", "2")])).unwrap().trim(), "no-a");
    }

    #[test]
    fn for_loop_over_csv() {
        let t = Template::parse("#for $gpu in $gpu_ids\n--gpu $gpu \n#end for\n").unwrap();
        let out = t.render(&params(&[("gpu_ids", "0, 1")])).unwrap();
        assert_eq!(out, "--gpu 0 \n--gpu 1 \n");
    }

    #[test]
    fn endif_spelling_variants() {
        for end in ["#end if", "#endif"] {
            let src = format!("#if $x\nyes\n{end}\n");
            let t = Template::parse(&src).unwrap();
            assert_eq!(t.render(&params(&[("x", "1")])).unwrap().trim(), "yes");
        }
    }

    #[test]
    fn comments_swallowed() {
        let t = Template::parse("## this is a comment\nvisible\n").unwrap();
        assert_eq!(t.render(&ParamDict::new()).unwrap(), "visible\n");
    }

    #[test]
    fn undefined_variable_is_error() {
        let t = Template::parse("$missing").unwrap();
        assert!(matches!(t.render(&ParamDict::new()), Err(GalaxyError::Template(_))));
    }

    #[test]
    fn unbalanced_if_is_parse_error() {
        assert!(Template::parse("#if $x\nnope\n").is_err());
        assert!(Template::parse("#else\n").is_err());
        assert!(Template::parse("#end if\n").is_err());
    }

    #[test]
    fn var_eq_var_comparison() {
        let t = Template::parse("#if $a == $b\nsame\n#else\ndiff\n#end if\n").unwrap();
        assert_eq!(t.render(&params(&[("a", "x"), ("b", "x")])).unwrap().trim(), "same");
        assert_eq!(t.render(&params(&[("a", "x"), ("b", "y")])).unwrap().trim(), "diff");
    }

    #[test]
    fn referenced_vars_reported() {
        let t = Template::parse("#if $flag\n$a ${b}\n#end if\n").unwrap();
        assert_eq!(t.referenced_vars(), vec!["a", "b", "flag"]);
    }

    #[test]
    fn nested_for_loops() {
        let t = Template::parse(
            "#for $node in $nodes
#for $gpu in $gpus
$node:$gpu 
#end for
#end for
",
        )
        .unwrap();
        let out = t.render(&params(&[("nodes", "n1,n2"), ("gpus", "0,1")])).unwrap();
        assert_eq!(
            out,
            "n1:0 
n1:1 
n2:0 
n2:1 
"
        );
    }

    #[test]
    fn for_inside_if() {
        let src =
            "#if $multi == \"yes\"\n#for $g in $gpus\n-d $g \n#end for\n#else\n-d all\n#end if\n";
        let t = Template::parse(src).unwrap();
        let multi = t.render(&params(&[("multi", "yes"), ("gpus", "0,1")])).unwrap();
        assert_eq!(
            multi.trim(),
            "-d 0 
-d 1"
                .trim_end()
        );
        let single = t.render(&params(&[("multi", "no"), ("gpus", "0,1")])).unwrap();
        assert_eq!(single.trim(), "-d all");
    }

    #[test]
    fn empty_list_renders_nothing() {
        let t = Template::parse(
            "#for $x in $items
$x
#end for
",
        )
        .unwrap();
        assert_eq!(t.render(&params(&[("items", "")])).unwrap(), "");
    }

    #[test]
    fn loop_variable_shadows_outer_param() {
        let t = Template::parse(
            "#for $x in $items
$x 
#end for
$x",
        )
        .unwrap();
        let out = t.render(&params(&[("items", "a,b"), ("x", "outer")])).unwrap();
        assert_eq!(
            out,
            "a 
b 
outer"
        );
    }

    #[test]
    fn unknown_directive_rejected() {
        assert!(Template::parse("#while $x\n#end while\n").is_err());
    }
}
