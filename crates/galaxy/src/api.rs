//! A web-API facade over the application — the "users trigger a job
//! submission through the Galaxy web-interface" step of the paper's
//! Fig. 2, modeled as typed request/response values (serde-serializable,
//! as Galaxy's JSON API is).

use crate::app::GalaxyApp;
use crate::params::ParamDict;
use crate::GalaxyError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// `POST /api/tools/{tool_id}/execute` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// Tool to run.
    pub tool_id: String,
    /// User-supplied inputs.
    pub inputs: BTreeMap<String, String>,
}

/// Response to a submission.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitResponse {
    /// Created job id.
    pub job_id: u64,
    /// Initial (already final, in this synchronous substrate) state.
    pub state: String,
}

/// `GET /api/jobs/{id}` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSummary {
    /// Job id.
    pub id: u64,
    /// Tool id.
    pub tool_id: String,
    /// State name (`ok`, `error`, ...).
    pub state: String,
    /// Destination the job ran on.
    pub destination: Option<String>,
    /// Exported environment.
    pub env: BTreeMap<String, String>,
    /// Final command line.
    pub command_line: Option<String>,
    /// Runtime in (virtual) seconds.
    pub runtime_s: Option<f64>,
    /// Exit code.
    pub exit_code: Option<i32>,
}

/// `GET /api/tools` entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ToolSummary {
    /// Tool id.
    pub id: String,
    /// Display name.
    pub name: String,
    /// Version string.
    pub version: String,
    /// Whether the tool declares GYAN's GPU requirement.
    pub requires_gpu: bool,
    /// Requested GPU minor ids, when pinned.
    pub requested_gpus: Vec<u32>,
}

/// API error envelope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApiError {
    /// Human-readable message.
    pub err_msg: String,
    /// Coarse error code.
    pub err_code: u16,
}

impl From<GalaxyError> for ApiError {
    fn from(e: GalaxyError) -> Self {
        let err_code = match &e {
            GalaxyError::UnknownTool(_) | GalaxyError::UnknownDestination(_) => 404,
            GalaxyError::ToolFailed(_) => 500,
            _ => 400,
        };
        ApiError { err_msg: e.to_string(), err_code }
    }
}

/// The API surface. Wraps a mutable app reference per "request".
pub struct Api<'a> {
    app: &'a mut GalaxyApp,
}

impl<'a> Api<'a> {
    /// Bind to an application.
    pub fn new(app: &'a mut GalaxyApp) -> Self {
        Api { app }
    }

    /// `GET /api/tools`.
    pub fn list_tools(&self) -> Vec<ToolSummary> {
        let mut tools: Vec<ToolSummary> = self
            .app
            .tools()
            .map(|t| ToolSummary {
                id: t.id.clone(),
                name: t.name.clone(),
                version: t.version.clone(),
                requires_gpu: t.requires_gpu(),
                requested_gpus: t.requested_gpu_ids(),
            })
            .collect();
        tools.sort_by(|a, b| a.id.cmp(&b.id));
        tools
    }

    /// `POST /api/tools/{id}/execute`.
    pub fn submit(&mut self, request: &SubmitRequest) -> Result<SubmitResponse, ApiError> {
        let mut params = ParamDict::new();
        for (k, v) in &request.inputs {
            params.set(k.clone(), v.clone());
        }
        let job_id = self.app.submit(&request.tool_id, &params)?;
        let state = self
            .app
            .job(job_id)
            .map(|j| j.state().name().to_string())
            .unwrap_or_else(|| "unknown".to_string());
        Ok(SubmitResponse { job_id, state })
    }

    /// `GET /api/jobs/{id}`.
    pub fn job(&self, id: u64) -> Result<JobSummary, ApiError> {
        let job = self
            .app
            .job(id)
            .ok_or(ApiError { err_msg: format!("job {id} not found"), err_code: 404 })?;
        Ok(JobSummary {
            id: job.id,
            tool_id: job.tool_id.clone(),
            state: job.state().name().to_string(),
            destination: job.destination_id.clone(),
            env: job.env.iter().cloned().collect(),
            command_line: job.command_line.clone(),
            runtime_s: job.runtime(),
            exit_code: job.exit_code,
        })
    }

    /// `GET /api/jobs`.
    pub fn list_jobs(&self) -> Vec<JobSummary> {
        self.app.jobs().iter().map(|j| self.job(j.id).expect("job exists")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::conf::{JobConfig, GYAN_JOB_CONF};
    use crate::tool::macros::MacroLibrary;

    fn app() -> GalaxyApp {
        let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
        app.install_tool_xml(
            r#"<tool id="racon_gpu" name="Racon" version="1.4.3">
                 <requirements><requirement type="compute" version="1">gpu</requirement></requirements>
                 <command>echo $text</command>
                 <inputs><param name="text" type="text" value="hi"/></inputs>
               </tool>"#,
            &MacroLibrary::new(),
        )
        .unwrap();
        app.register_rule(
            "gpu_dynamic_destination",
            Box::new(|_t, _j, _c| Ok("local_cpu".to_string())),
        );
        app
    }

    #[test]
    fn tools_listing_reports_gpu_requirements() {
        let mut app = app();
        let api = Api::new(&mut app);
        let tools = api.list_tools();
        assert_eq!(tools.len(), 1);
        assert_eq!(tools[0].id, "racon_gpu");
        assert!(tools[0].requires_gpu);
        assert_eq!(tools[0].requested_gpus, vec![1]);
    }

    #[test]
    fn submit_and_fetch_job_roundtrip() {
        let mut app = app();
        let mut api = Api::new(&mut app);
        let mut inputs = BTreeMap::new();
        inputs.insert("text".to_string(), "hello-api".to_string());
        let resp = api.submit(&SubmitRequest { tool_id: "racon_gpu".into(), inputs }).unwrap();
        assert_eq!(resp.state, "ok");
        let summary = api.job(resp.job_id).unwrap();
        assert_eq!(summary.tool_id, "racon_gpu");
        assert_eq!(summary.command_line.as_deref(), Some("echo hello-api"));
        assert_eq!(api.list_jobs().len(), 1);
    }

    #[test]
    fn unknown_tool_is_404() {
        let mut app = app();
        let mut api = Api::new(&mut app);
        let err = api
            .submit(&SubmitRequest { tool_id: "ghost".into(), inputs: BTreeMap::new() })
            .unwrap_err();
        assert_eq!(err.err_code, 404);
        assert!(api.job(99).is_err());
    }

    #[test]
    fn payloads_are_serde_capable() {
        // Compile-time check that every payload type implements both
        // Serialize and DeserializeOwned (Galaxy's API speaks JSON; any
        // serde format backend can carry these).
        fn assert_serde<T: Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<SubmitRequest>();
        assert_serde::<SubmitResponse>();
        assert_serde::<JobSummary>();
        assert_serde::<ToolSummary>();
        assert_serde::<ApiError>();
    }
}
