//! Package requirement resolution.
//!
//! Real Galaxy resolves a tool's `<requirement type="package">` entries
//! through dependency resolvers (conda, Docker, modules). This module is
//! that layer for the simulated stack: a resolver knows which packages
//! (name + version) a destination can provide and reports what is
//! missing, so a deployment can refuse jobs whose software is absent —
//! the same check that makes GYAN's `compute`/`gpu` requirement the *only*
//! unresolvable one on a CPU-only node.

use crate::tool::{Requirement, RequirementType, Tool};
use std::collections::HashMap;

/// A conda-channel-like catalog of installable packages.
#[derive(Debug, Clone, Default)]
pub struct DependencyResolver {
    /// package name → installed versions.
    packages: HashMap<String, Vec<String>>,
}

/// Outcome of resolving one requirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Requirement satisfied by an installed version.
    Resolved {
        /// Package name.
        name: String,
        /// The version that satisfied it.
        version: String,
    },
    /// Package installed, but no matching version.
    VersionMismatch {
        /// Package name.
        name: String,
        /// Version the tool asked for.
        requested: String,
        /// Versions actually installed.
        installed: Vec<String>,
    },
    /// Package not installed at all.
    Missing {
        /// Package name.
        name: String,
    },
    /// Non-package requirements (GYAN's `compute`/`gpu`, env sets) are
    /// resolved by other subsystems; the resolver passes them through.
    NotAPackage,
}

impl DependencyResolver {
    /// An empty resolver (nothing installed).
    pub fn new() -> Self {
        Self::default()
    }

    /// A resolver pre-loaded with the paper's tool stack.
    pub fn with_paper_packages() -> Self {
        let mut r = Self::new();
        r.install("racon", "1.4.3");
        r.install("bonito", "0.3.2");
        r.install("minimap2", "2.17");
        r.install("samtools", "1.11");
        r
    }

    /// Install a package version.
    pub fn install(&mut self, name: impl Into<String>, version: impl Into<String>) {
        let versions = self.packages.entry(name.into()).or_default();
        let version = version.into();
        if !versions.contains(&version) {
            versions.push(version);
        }
    }

    /// Resolve one requirement.
    pub fn resolve(&self, req: &Requirement) -> Resolution {
        if req.rtype != RequirementType::Package {
            return Resolution::NotAPackage;
        }
        match self.packages.get(&req.name) {
            None => Resolution::Missing { name: req.name.clone() },
            Some(installed) => match &req.version {
                // Unversioned requirement: any installed version works;
                // conda picks the newest.
                None => Resolution::Resolved {
                    name: req.name.clone(),
                    version: installed.last().expect("non-empty").clone(),
                },
                Some(requested) => {
                    if installed.contains(requested) {
                        Resolution::Resolved { name: req.name.clone(), version: requested.clone() }
                    } else {
                        Resolution::VersionMismatch {
                            name: req.name.clone(),
                            requested: requested.clone(),
                            installed: installed.clone(),
                        }
                    }
                }
            },
        }
    }

    /// Resolve every package requirement of a tool; returns the failures
    /// (empty = tool can run).
    pub fn unresolved(&self, tool: &Tool) -> Vec<Resolution> {
        tool.requirements
            .iter()
            .map(|r| self.resolve(r))
            .filter(|r| {
                matches!(r, Resolution::Missing { .. } | Resolution::VersionMismatch { .. })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::macros::MacroLibrary;
    use crate::tool::wrapper::parse_tool;

    fn racon_tool() -> Tool {
        parse_tool(
            r#"<tool id="racon_gpu">
              <requirements>
                <requirement type="package" version="1.4.3">racon</requirement>
                <requirement type="compute">gpu</requirement>
              </requirements>
              <command>racon</command>
            </tool>"#,
            &MacroLibrary::new(),
        )
        .unwrap()
    }

    #[test]
    fn paper_stack_resolves_racon() {
        let resolver = DependencyResolver::with_paper_packages();
        assert!(resolver.unresolved(&racon_tool()).is_empty());
    }

    #[test]
    fn gpu_requirement_is_not_a_package() {
        let resolver = DependencyResolver::with_paper_packages();
        let tool = racon_tool();
        let gpu_req = tool.gpu_requirement().unwrap();
        assert_eq!(resolver.resolve(gpu_req), Resolution::NotAPackage);
    }

    #[test]
    fn missing_package_reported() {
        let resolver = DependencyResolver::new();
        let failures = resolver.unresolved(&racon_tool());
        assert_eq!(failures, vec![Resolution::Missing { name: "racon".into() }]);
    }

    #[test]
    fn version_mismatch_reported_with_alternatives() {
        let mut resolver = DependencyResolver::new();
        resolver.install("racon", "1.5.0");
        let failures = resolver.unresolved(&racon_tool());
        assert_eq!(
            failures,
            vec![Resolution::VersionMismatch {
                name: "racon".into(),
                requested: "1.4.3".into(),
                installed: vec!["1.5.0".into()],
            }]
        );
    }

    #[test]
    fn unversioned_requirement_takes_newest() {
        let mut resolver = DependencyResolver::new();
        resolver.install("samtools", "1.10");
        resolver.install("samtools", "1.11");
        let req =
            Requirement { rtype: RequirementType::Package, name: "samtools".into(), version: None };
        assert_eq!(
            resolver.resolve(&req),
            Resolution::Resolved { name: "samtools".into(), version: "1.11".into() }
        );
    }

    #[test]
    fn duplicate_install_is_idempotent() {
        let mut resolver = DependencyResolver::new();
        resolver.install("racon", "1.4.3");
        resolver.install("racon", "1.4.3");
        let req = Requirement::package("racon", "1.4.3");
        assert!(matches!(resolver.resolve(&req), Resolution::Resolved { .. }));
    }
}
