//! Jobs and the Galaxy job state machine.

pub mod conf;

use crate::error::GalaxyError;
use crate::params::ParamDict;

/// Galaxy job states (the subset relevant to dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobState {
    /// Created, not yet mapped to a destination.
    New,
    /// Mapped and waiting for the runner.
    Queued,
    /// Executing.
    Running,
    /// Finished successfully.
    Ok,
    /// Finished with an error.
    Error,
    /// Cancelled/removed.
    Deleted,
}

impl JobState {
    /// Lower-case name as Galaxy's API reports it.
    pub fn name(self) -> &'static str {
        match self {
            JobState::New => "new",
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Ok => "ok",
            JobState::Error => "error",
            JobState::Deleted => "deleted",
        }
    }

    fn can_transition(self, to: JobState) -> bool {
        use JobState::*;
        matches!(
            (self, to),
            (New, Queued)
                | (Queued, Running)
                | (Running, Ok)
                | (Running, Error)
                | (New, Error)
                | (Queued, Error)
                | (New, Deleted)
                | (Queued, Deleted)
                | (Running, Deleted)
                // Resubmission: a failed attempt may be requeued (Galaxy's
                // `<resubmit>`); `Ok` and `Deleted` stay terminal.
                | (Error, Queued)
        )
    }
}

/// A submitted tool execution.
#[derive(Debug, Clone)]
pub struct Job {
    /// Unique job id.
    pub id: u64,
    /// The tool being run.
    pub tool_id: String,
    /// User-provided + backend-injected parameters.
    pub params: ParamDict,
    state: JobState,
    /// Destination chosen by mapping (static or dynamic).
    pub destination_id: Option<String>,
    /// Final assembled shell command.
    pub command_line: Option<String>,
    /// Environment exported to the tool process (`GALAXY_GPU_ENABLED`,
    /// `CUDA_VISIBLE_DEVICES`, ...).
    pub env: Vec<(String, String)>,
    /// Resolved container image when running containerized.
    pub container_image: Option<String>,
    /// Virtual time of submission.
    pub submit_time: Option<f64>,
    /// Virtual time execution started.
    pub start_time: Option<f64>,
    /// Virtual time execution finished.
    pub end_time: Option<f64>,
    /// Captured standard output.
    pub stdout: String,
    /// Captured standard error.
    pub stderr: String,
    /// Exit code reported by the executor.
    pub exit_code: Option<i32>,
    /// Host pid of the spawned process (simulated).
    pub pid: Option<u32>,
}

impl Job {
    /// Create a new job in state `New`.
    pub fn new(id: u64, tool_id: impl Into<String>, params: ParamDict) -> Self {
        Job {
            id,
            tool_id: tool_id.into(),
            params,
            state: JobState::New,
            destination_id: None,
            command_line: None,
            env: Vec::new(),
            container_image: None,
            submit_time: None,
            start_time: None,
            end_time: None,
            stdout: String::new(),
            stderr: String::new(),
            exit_code: None,
            pid: None,
        }
    }

    /// Current state.
    pub fn state(&self) -> JobState {
        self.state
    }

    /// Transition to `to`, validating against the state machine.
    pub fn transition(&mut self, to: JobState) -> Result<(), GalaxyError> {
        if self.state.can_transition(to) {
            self.state = to;
            Ok(())
        } else {
            Err(GalaxyError::BadTransition { from: self.state.name(), to: to.name() })
        }
    }

    /// Set an environment variable for the tool process (replaces any
    /// existing value for the key).
    pub fn set_env(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        self.env.retain(|(k, _)| *k != key);
        self.env.push((key, value.into()));
    }

    /// Remove an exported environment variable, returning whether a value
    /// was present. Hooks use this on resubmitted attempts: a CPU retry
    /// must not inherit the failed GPU attempt's `CUDA_VISIBLE_DEVICES`
    /// or `GALAXY_NODE` exports.
    pub fn remove_env(&mut self, key: &str) -> bool {
        let before = self.env.len();
        self.env.retain(|(k, _)| k != key);
        self.env.len() != before
    }

    /// Look up an exported environment variable.
    pub fn env_var(&self, key: &str) -> Option<&str> {
        self.env.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Wall (virtual) runtime, if the job has finished.
    pub fn runtime(&self) -> Option<f64> {
        Some(self.end_time? - self.start_time?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_transitions() {
        let mut j = Job::new(1, "racon_gpu", ParamDict::new());
        assert_eq!(j.state(), JobState::New);
        j.transition(JobState::Queued).unwrap();
        j.transition(JobState::Running).unwrap();
        j.transition(JobState::Ok).unwrap();
        assert_eq!(j.state(), JobState::Ok);
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut j = Job::new(1, "t", ParamDict::new());
        assert!(j.transition(JobState::Running).is_err()); // must queue first
        j.transition(JobState::Queued).unwrap();
        assert!(j.transition(JobState::Ok).is_err()); // must run first
        j.transition(JobState::Running).unwrap();
        j.transition(JobState::Error).unwrap();
        assert!(j.transition(JobState::Running).is_err()); // terminal
        assert!(j.transition(JobState::Deleted).is_err()); // terminal
    }

    #[test]
    fn error_can_requeue_for_resubmission() {
        let mut j = Job::new(1, "t", ParamDict::new());
        j.transition(JobState::Queued).unwrap();
        j.transition(JobState::Running).unwrap();
        j.transition(JobState::Error).unwrap();
        j.transition(JobState::Queued).unwrap();
        j.transition(JobState::Running).unwrap();
        j.transition(JobState::Ok).unwrap();
        assert!(j.transition(JobState::Queued).is_err(), "Ok stays terminal");
    }

    #[test]
    fn delete_from_any_live_state() {
        for setup in 0..3 {
            let mut j = Job::new(1, "t", ParamDict::new());
            if setup >= 1 {
                j.transition(JobState::Queued).unwrap();
            }
            if setup >= 2 {
                j.transition(JobState::Running).unwrap();
            }
            j.transition(JobState::Deleted).unwrap();
        }
    }

    #[test]
    fn env_replace_semantics() {
        let mut j = Job::new(1, "t", ParamDict::new());
        j.set_env("GALAXY_GPU_ENABLED", "false");
        j.set_env("GALAXY_GPU_ENABLED", "true");
        assert_eq!(j.env_var("GALAXY_GPU_ENABLED"), Some("true"));
        assert_eq!(j.env.len(), 1);
    }

    #[test]
    fn remove_env_drops_the_key_and_reports_presence() {
        let mut j = Job::new(1, "t", ParamDict::new());
        j.set_env("CUDA_VISIBLE_DEVICES", "0,1");
        j.set_env("GALAXY_NODE", "k80-000");
        assert!(j.remove_env("CUDA_VISIBLE_DEVICES"));
        assert!(j.env_var("CUDA_VISIBLE_DEVICES").is_none());
        assert_eq!(j.env_var("GALAXY_NODE"), Some("k80-000"));
        assert!(!j.remove_env("CUDA_VISIBLE_DEVICES"), "second removal is a no-op");
    }

    #[test]
    fn runtime_requires_both_timestamps() {
        let mut j = Job::new(1, "t", ParamDict::new());
        assert!(j.runtime().is_none());
        j.start_time = Some(10.0);
        assert!(j.runtime().is_none());
        j.end_time = Some(14.5);
        assert_eq!(j.runtime(), Some(4.5));
    }

    #[test]
    fn state_names() {
        assert_eq!(JobState::New.name(), "new");
        assert_eq!(JobState::Ok.name(), "ok");
    }
}
