//! `job_conf.xml` parsing: runner plugins, destinations, and tool mapping.
//!
//! Galaxy administrators configure job execution through this file. GYAN's
//! paper (Code 2) adds a *dynamic* destination whose `function` parameter
//! names a rule — `gpu_dynamic_destination` — that decides between GPU and
//! CPU destinations at submit time. This module parses that structure; the
//! rule functions themselves are registered on [`crate::app::GalaxyApp`].

use crate::error::GalaxyError;
use crate::params::ParamDict;
use std::collections::HashMap;
use xmlparse::parse;

/// A `<plugin>` runner declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Plugin {
    /// Plugin id referenced by destinations (`local`, `dynamic`, ...).
    pub id: String,
    /// The `type` attribute (always `runner` here).
    pub ptype: String,
    /// Python load path in real Galaxy; informational here.
    pub load: String,
    /// Worker thread count.
    pub workers: u32,
}

/// A `<destination>` — a place jobs can be sent.
#[derive(Debug, Clone, PartialEq)]
pub struct Destination {
    /// Destination id (`local_gpu`, `docker_dest`, ...).
    pub id: String,
    /// Runner plugin id, or `dynamic` for rule-based destinations.
    pub runner: String,
    /// `<param id="...">value</param>` entries.
    pub params: ParamDict,
}

impl Destination {
    /// Whether this destination defers to a dynamic rule.
    pub fn is_dynamic(&self) -> bool {
        self.runner == "dynamic"
    }

    /// The dynamic rule function name (paper Code 2:
    /// `<param id="function">gpu_dynamic_destination</param>`).
    pub fn rule_function(&self) -> Option<&str> {
        self.params.get("function")
    }

    /// Whether Docker execution is enabled on this destination.
    pub fn docker_enabled(&self) -> bool {
        self.params.get("docker_enabled") == Some("true")
    }

    /// Whether Singularity execution is enabled on this destination.
    pub fn singularity_enabled(&self) -> bool {
        self.params.get("singularity_enabled") == Some("true")
    }
}

/// Parsed `job_conf.xml`.
#[derive(Debug, Clone, Default)]
pub struct JobConfig {
    /// Runner plugins.
    pub plugins: Vec<Plugin>,
    /// Destinations in declaration order.
    pub destinations: Vec<Destination>,
    /// The `default=` attribute of `<destinations>`.
    pub default_destination: Option<String>,
    /// `<tool id=... destination=...>` static mappings.
    pub tool_destinations: HashMap<String, String>,
}

impl JobConfig {
    /// Parse from XML source.
    pub fn from_xml(src: &str) -> Result<JobConfig, GalaxyError> {
        let doc = parse(src)?;
        let root = doc.root();
        if root.name() != "job_conf" {
            return Err(GalaxyError::BadJobConf(format!(
                "root must be <job_conf>, found <{}>",
                root.name()
            )));
        }

        let mut config = JobConfig::default();

        if let Some(plugins_el) = root.find("plugins") {
            for p in plugins_el.children_named("plugin") {
                config.plugins.push(Plugin {
                    id: require_attr(p, "id", "plugin")?,
                    ptype: p.attr("type").unwrap_or("runner").to_string(),
                    load: p.attr("load").unwrap_or_default().to_string(),
                    workers: p.attr("workers").and_then(|w| w.parse().ok()).unwrap_or(4),
                });
            }
        }

        if let Some(dests_el) = root.find("destinations") {
            config.default_destination = dests_el.attr("default").map(str::to_string);
            for d in dests_el.children_named("destination") {
                let mut params = ParamDict::new();
                for param_el in d.children_named("param") {
                    let key = require_attr(param_el, "id", "param")?;
                    params.set(key, param_el.text());
                }
                config.destinations.push(Destination {
                    id: require_attr(d, "id", "destination")?,
                    runner: require_attr(d, "runner", "destination")?,
                    params,
                });
            }
        }

        if let Some(tools_el) = root.find("tools") {
            for t in tools_el.children_named("tool") {
                let id = require_attr(t, "id", "tool")?;
                let dest = require_attr(t, "destination", "tool")?;
                config.tool_destinations.insert(id, dest);
            }
        }

        config.validate()?;
        Ok(config)
    }

    fn validate(&self) -> Result<(), GalaxyError> {
        let dest_ids: Vec<&str> = self.destinations.iter().map(|d| d.id.as_str()).collect();
        if let Some(default) = &self.default_destination {
            if !dest_ids.contains(&default.as_str()) {
                return Err(GalaxyError::BadJobConf(format!(
                    "default destination {default:?} is not declared"
                )));
            }
        }
        for (tool, dest) in &self.tool_destinations {
            if !dest_ids.contains(&dest.as_str()) {
                return Err(GalaxyError::BadJobConf(format!(
                    "tool {tool:?} maps to undeclared destination {dest:?}"
                )));
            }
        }
        for dest in &self.destinations {
            let known_runner =
                dest.runner == "dynamic" || self.plugins.iter().any(|p| p.id == dest.runner);
            if !known_runner {
                return Err(GalaxyError::BadJobConf(format!(
                    "destination {:?} references unknown runner {:?}",
                    dest.id, dest.runner
                )));
            }
        }
        Ok(())
    }

    /// Look up a destination by id.
    pub fn destination(&self, id: &str) -> Option<&Destination> {
        self.destinations.iter().find(|d| d.id == id)
    }

    /// The destination id configured for a tool: the static `<tools>`
    /// mapping if present, otherwise the default.
    pub fn destination_for_tool(&self, tool_id: &str) -> Option<&str> {
        self.tool_destinations
            .get(tool_id)
            .map(String::as_str)
            .or(self.default_destination.as_deref())
    }
}

fn require_attr(el: &xmlparse::Element, attr: &str, what: &str) -> Result<String, GalaxyError> {
    el.attr(attr)
        .map(str::to_string)
        .ok_or_else(|| GalaxyError::BadJobConf(format!("<{what}> missing {attr}=")))
}

/// The GYAN `job_conf.xml` from the paper's Code 2, extended with the
/// destinations the evaluation uses. Provided here so examples, tests, and
/// benches share one canonical configuration.
pub const GYAN_JOB_CONF: &str = r#"<job_conf>
  <plugins>
    <plugin id="local" type="runner" load="galaxy.jobs.runners.local:LocalJobRunner" workers="4"/>
  </plugins>
  <destinations default="dynamic_dest">
    <destination id="dynamic_dest" runner="dynamic">
      <param id="type">python</param>
      <param id="function">gpu_dynamic_destination</param>
      <param id="rules_module">dynamic_destination</param>
    </destination>
    <destination id="local_gpu" runner="local"/>
    <destination id="local_cpu" runner="local"/>
    <destination id="docker_gpu" runner="local">
      <param id="docker_enabled">true</param>
    </destination>
    <destination id="docker_cpu" runner="local">
      <param id="docker_enabled">true</param>
    </destination>
    <destination id="singularity_gpu" runner="local">
      <param id="singularity_enabled">true</param>
    </destination>
  </destinations>
  <tools>
  </tools>
</job_conf>"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_code2_shape() {
        let conf = JobConfig::from_xml(GYAN_JOB_CONF).unwrap();
        assert_eq!(conf.plugins.len(), 1);
        assert_eq!(conf.plugins[0].id, "local");
        assert_eq!(conf.default_destination.as_deref(), Some("dynamic_dest"));
        let dyn_dest = conf.destination("dynamic_dest").unwrap();
        assert!(dyn_dest.is_dynamic());
        assert_eq!(dyn_dest.rule_function(), Some("gpu_dynamic_destination"));
        assert!(conf.destination("docker_gpu").unwrap().docker_enabled());
        assert!(!conf.destination("local_gpu").unwrap().docker_enabled());
        assert!(conf.destination("singularity_gpu").unwrap().singularity_enabled());
    }

    #[test]
    fn tool_mapping_overrides_default() {
        let src = r#"<job_conf>
          <plugins><plugin id="local" type="runner" load="x"/></plugins>
          <destinations default="a">
            <destination id="a" runner="local"/>
            <destination id="b" runner="local"/>
          </destinations>
          <tools><tool id="bonito" destination="b"/></tools>
        </job_conf>"#;
        let conf = JobConfig::from_xml(src).unwrap();
        assert_eq!(conf.destination_for_tool("bonito"), Some("b"));
        assert_eq!(conf.destination_for_tool("anything_else"), Some("a"));
    }

    #[test]
    fn undeclared_default_rejected() {
        let src = r#"<job_conf><destinations default="ghost">
          <destination id="a" runner="dynamic"/>
        </destinations></job_conf>"#;
        assert!(matches!(JobConfig::from_xml(src), Err(GalaxyError::BadJobConf(_))));
    }

    #[test]
    fn undeclared_tool_destination_rejected() {
        let src = r#"<job_conf>
          <plugins><plugin id="local" type="runner" load="x"/></plugins>
          <destinations default="a"><destination id="a" runner="local"/></destinations>
          <tools><tool id="t" destination="ghost"/></tools>
        </job_conf>"#;
        assert!(JobConfig::from_xml(src).is_err());
    }

    #[test]
    fn unknown_runner_rejected() {
        let src = r#"<job_conf><destinations>
          <destination id="a" runner="slurm"/>
        </destinations></job_conf>"#;
        assert!(JobConfig::from_xml(src).is_err());
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(JobConfig::from_xml("<conf/>").is_err());
    }

    #[test]
    fn workers_default_when_missing() {
        let src = r#"<job_conf>
          <plugins><plugin id="local" type="runner" load="x"/></plugins>
        </job_conf>"#;
        let conf = JobConfig::from_xml(src).unwrap();
        assert_eq!(conf.plugins[0].workers, 4);
    }
}
