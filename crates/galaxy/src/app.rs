//! The Galaxy application: tool box, destination mapping, and the job
//! submission pipeline of the paper's Fig. 2.
//!
//! [`GalaxyApp`] executes the four steps GYAN instruments:
//!
//! 1. the user submits a job for a tool (`submit`);
//! 2. the job is mapped to a destination — statically via `job_conf`, or
//!    through a registered *dynamic rule* (GYAN's
//!    `gpu_dynamic_destination`);
//! 3. registered [`JobHook`]s run (GYAN's GPU allocation +
//!    `CUDA_VISIBLE_DEVICES`/`GALAXY_GPU_ENABLED` export), the command is
//!    rendered and — for container destinations — wrapped and passed
//!    through [`CommandMutator`]s (GYAN's `--gpus all`/`--nv` injection);
//! 4. the plan is handed to the [`JobExecutor`] and the results are
//!    collected into the history.

use crate::containers::ImageRegistry;
use crate::error::GalaxyError;
use crate::history::History;
use crate::job::conf::{Destination, JobConfig};
use crate::job::{Job, JobState};
use crate::params::ParamDict;
use crate::runners::container_cmd::VolumeBind;
use crate::runners::local::LocalRunner;
use crate::runners::{
    CommandMutator, ExecutionPlan, ExecutionResult, JobConclusion, JobExecutor, JobHook,
    NullExecutor,
};
use crate::tool::macros::MacroLibrary;
use crate::tool::wrapper::parse_tool;
use crate::tool::Tool;
use obs::{Recorder, Span};
use std::collections::HashMap;

/// Counter: jobs entering [`GalaxyApp::submit`].
pub const JOBS_SUBMITTED_COUNTER: &str = "galaxy_jobs_submitted_total";
/// Counter: jobs finishing in the `Ok` state.
pub const JOBS_OK_COUNTER: &str = "galaxy_jobs_ok_total";
/// Counter: jobs finishing in the `Error` state.
pub const JOBS_ERROR_COUNTER: &str = "galaxy_jobs_error_total";

/// A dynamic destination rule: given the tool, the job, and the config,
/// return the id of a concrete destination. This is the signature of the
/// paper's `gpu_dynamic_destination` function in `dynamic_destination.py`.
pub type DynamicRule =
    Box<dyn Fn(&Tool, &Job, &JobConfig) -> Result<String, GalaxyError> + Send + Sync>;

/// Placement-aware resubmission callback: `(tool_id, destination_id,
/// excluded_nodes) -> can_still_host`. Installed by a placement layer
/// (the fleet) so the queue engine can ask, without a dependency on it,
/// whether retrying a failed attempt on the same destination is viable
/// once the failed node is excluded — falling to the ordinary fallback
/// ladder when it is not.
pub type PlacementAdvisor = Box<dyn Fn(&str, &str, &[String]) -> bool + Send + Sync>;

/// Footprint-aware resubmission callback: given the failed job (with its
/// per-attempt env still attached), return a revised GPU memory budget
/// (MiB) for a same-destination retry — or `None` when no better budget
/// is known and the failure should walk the ordinary fallback ladder.
/// Installed by a footprint layer (GYAN's learned profiles) so the queue
/// engine can resubmit with a grown budget, via
/// [`crate::GALAXY_GPU_BUDGET_OVERRIDE_ENV`], before blindly falling
/// from GPU to CPU.
pub type FootprintAdvisor = Box<dyn Fn(&Job) -> Option<u64> + Send + Sync>;

/// Source of (virtual) time for job timestamps.
pub trait TimeSource: Send + Sync {
    /// Current time in seconds.
    fn now(&self) -> f64;
}

/// A time source pinned to zero (default when no simulator is attached).
#[derive(Debug, Default, Clone, Copy)]
pub struct ZeroTime;

impl TimeSource for ZeroTime {
    fn now(&self) -> f64 {
        0.0
    }
}

/// One timestamped event in the application log.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual time of the event.
    pub t: f64,
    /// Human-readable description.
    pub message: String,
}

/// The Galaxy application.
pub struct GalaxyApp {
    tools: HashMap<String, Tool>,
    config: JobConfig,
    rules: HashMap<String, DynamicRule>,
    hooks: Vec<Box<dyn JobHook>>,
    mutators: Vec<Box<dyn CommandMutator>>,
    registry: ImageRegistry,
    history: History,
    jobs: HashMap<u64, Job>,
    next_job_id: u64,
    executor: Box<dyn JobExecutor>,
    time: Box<dyn TimeSource>,
    volumes: Vec<VolumeBind>,
    events: Vec<Event>,
    /// Optional cap on the app event log; `None` retains everything.
    /// Soak harnesses set this — per-job lifecycle strings would
    /// otherwise grow O(jobs) over a 10^5-user run.
    event_log_limit: Option<usize>,
    dropped_events: u64,
    recorder: Recorder,
    /// `galaxy.job` spans of jobs whose lifecycle is still open (created
    /// or prepared but not yet finished) — kept so the asynchronous queue
    /// path can span multiple dispatch attempts under one job span.
    open_spans: HashMap<u64, Span>,
    placement_advisor: Option<PlacementAdvisor>,
    footprint_advisor: Option<FootprintAdvisor>,
}

impl GalaxyApp {
    /// Create an app from a parsed job configuration.
    pub fn new(config: JobConfig) -> Self {
        GalaxyApp {
            tools: HashMap::new(),
            config,
            rules: HashMap::new(),
            hooks: Vec::new(),
            mutators: Vec::new(),
            registry: ImageRegistry::new(),
            history: History::new(),
            jobs: HashMap::new(),
            next_job_id: 0,
            executor: Box::new(NullExecutor),
            time: Box::new(ZeroTime),
            volumes: Vec::new(),
            events: Vec::new(),
            event_log_limit: None,
            dropped_events: 0,
            recorder: Recorder::new(),
            open_spans: HashMap::new(),
            placement_advisor: None,
            footprint_advisor: None,
        }
    }

    /// Install a parsed tool into the tool box.
    pub fn install_tool(&mut self, tool: Tool) {
        self.tools.insert(tool.id.clone(), tool);
    }

    /// Parse a wrapper (with macro library) and install it.
    pub fn install_tool_xml(
        &mut self,
        src: &str,
        library: &MacroLibrary,
    ) -> Result<&Tool, GalaxyError> {
        let tool = parse_tool(src, library)?;
        let id = tool.id.clone();
        self.install_tool(tool);
        Ok(&self.tools[&id])
    }

    /// Tool by id.
    pub fn tool(&self, id: &str) -> Option<&Tool> {
        self.tools.get(id)
    }

    /// Iterator over every installed tool (unordered).
    pub fn tools(&self) -> impl Iterator<Item = &Tool> {
        self.tools.values()
    }

    /// Register a dynamic destination rule under `name`.
    pub fn register_rule(&mut self, name: impl Into<String>, rule: DynamicRule) {
        self.rules.insert(name.into(), rule);
    }

    /// Register a pre-dispatch hook.
    pub fn add_hook(&mut self, hook: Box<dyn JobHook>) {
        self.hooks.push(hook);
    }

    /// Register a command mutator.
    pub fn add_mutator(&mut self, mutator: Box<dyn CommandMutator>) {
        self.mutators.push(mutator);
    }

    /// Install the placement-aware resubmission advisor (see
    /// [`PlacementAdvisor`]). Replaces any previous advisor.
    pub fn set_placement_advisor(&mut self, advisor: PlacementAdvisor) {
        self.placement_advisor = Some(advisor);
    }

    /// The installed placement advisor, if any.
    pub fn placement_advisor(&self) -> Option<&PlacementAdvisor> {
        self.placement_advisor.as_ref()
    }

    /// Install the footprint-aware resubmission advisor (see
    /// [`FootprintAdvisor`]). Replaces any previous advisor.
    pub fn set_footprint_advisor(&mut self, advisor: FootprintAdvisor) {
        self.footprint_advisor = Some(advisor);
    }

    /// The installed footprint advisor, if any.
    pub fn footprint_advisor(&self) -> Option<&FootprintAdvisor> {
        self.footprint_advisor.as_ref()
    }

    /// Replace the execution backend.
    pub fn set_executor(&mut self, executor: Box<dyn JobExecutor>) {
        self.executor = executor;
    }

    /// Replace the time source (attach the simulator clock).
    pub fn set_time_source(&mut self, time: Box<dyn TimeSource>) {
        self.time = time;
    }

    /// Replace the telemetry recorder (share one with the scheduler or
    /// GYAN components). Clones of the handle see everything this app
    /// records.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The telemetry recorder for this app.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Replace the container image registry.
    pub fn set_registry(&mut self, registry: ImageRegistry) {
        self.registry = registry;
    }

    /// Shared access to the registry.
    pub fn registry(&self) -> &ImageRegistry {
        &self.registry
    }

    /// Add a volume bind applied to all container launches.
    pub fn add_volume(&mut self, volume: VolumeBind) {
        self.volumes.push(volume);
    }

    /// The parsed job configuration.
    pub fn config(&self) -> &JobConfig {
        &self.config
    }

    /// Submit a job for `tool_id` with user-specified `user_params` and run
    /// it to completion (the synchronous single-job path; the queue engine
    /// in [`crate::queue`] drives the same phases asynchronously).
    pub fn submit(&mut self, tool_id: &str, user_params: &ParamDict) -> Result<u64, GalaxyError> {
        let job_id = self.create_job(tool_id, user_params)?;
        let plan = self.prepare_plan(job_id, None)?;
        let result = self.execute_plan(job_id, &plan);
        self.finish_job(job_id, &result, true).map(|()| job_id)
    }

    /// Phase 1 of Fig. 2: resolve the tool, build the parameter dictionary
    /// (declared defaults, then the user's values — Galaxy's
    /// `build_param_dict`), and create the job record in the `New` state.
    /// Opens the job's `galaxy.job` telemetry span; it stays open until
    /// [`GalaxyApp::finish_job`] (or a preparation failure) closes it.
    pub fn create_job(
        &mut self,
        tool_id: &str,
        user_params: &ParamDict,
    ) -> Result<u64, GalaxyError> {
        self.recorder.metrics().inc_counter(JOBS_SUBMITTED_COUNTER, 1);
        let job_span = self.recorder.span("galaxy.job");
        job_span.field("tool", tool_id);

        let parse_span = job_span.child("galaxy.tool_parse");
        let tool = match self.tools.get(tool_id) {
            Some(t) => t,
            None => {
                self.recorder.metrics().inc_counter(JOBS_ERROR_COUNTER, 1);
                job_span.field("error", "unknown tool");
                return Err(GalaxyError::UnknownTool(tool_id.to_string()));
            }
        };
        let mut params = ParamDict::new();
        for input in &tool.inputs {
            if let Some(default) = &input.default {
                params.set(input.name.clone(), default.clone());
            }
        }
        params.extend(user_params);
        parse_span.field("inputs", tool.inputs.len());
        parse_span.end();

        self.next_job_id += 1;
        let job_id = self.next_job_id;
        job_span.field("job_id", job_id);
        let mut job = Job::new(job_id, tool_id, params);
        job.submit_time = Some(self.time.now());
        self.jobs.insert(job_id, job);
        self.open_spans.insert(job_id, job_span);
        self.log(format!("job {job_id} submitted for tool {tool_id}"));
        Ok(job_id)
    }

    /// Phases 2–3 of Fig. 2: map the job to a destination, run the
    /// registered hooks, and assemble the [`ExecutionPlan`] — without
    /// dispatching it. `dest_override` bypasses mapping and pins a concrete
    /// destination (the queue engine's resubmission path). On failure the
    /// job is marked `Error` with counters/span annotated; a job already in
    /// `Error` may be prepared again (resubmission).
    pub fn prepare_plan(
        &mut self,
        job_id: u64,
        dest_override: Option<&str>,
    ) -> Result<ExecutionPlan, GalaxyError> {
        let Some(mut job) = self.jobs.remove(&job_id) else {
            return Err(GalaxyError::UnknownJob(job_id));
        };
        let Some(tool) = self.tools.get(&job.tool_id).cloned() else {
            let err = GalaxyError::UnknownTool(job.tool_id.clone());
            self.jobs.insert(job_id, job);
            self.fail_job(job_id, &err);
            return Err(err);
        };
        let job_span = self.open_spans.remove(&job_id).unwrap_or_else(|| {
            let s = self.recorder.span("galaxy.job");
            s.field("tool", job.tool_id.as_str());
            s.field("job_id", job_id);
            s
        });
        let result = self.prepare_job(&tool, &mut job, &job_span, dest_override);
        self.jobs.insert(job_id, job);
        self.open_spans.insert(job_id, job_span);
        if let Err(e) = &result {
            self.fail_job(job_id, e);
        }
        result
    }

    fn prepare_job(
        &mut self,
        tool: &Tool,
        job: &mut Job,
        job_span: &Span,
        dest_override: Option<&str>,
    ) -> Result<ExecutionPlan, GalaxyError> {
        // Step 2 of Fig. 2: destination mapping (or the resubmission
        // override, which skips the rule and targets a fallback directly).
        let map_span = job_span.child("galaxy.map_destination");
        let destination = match dest_override {
            Some(id) => {
                let dest = self
                    .config
                    .destination(id)
                    .ok_or_else(|| GalaxyError::UnknownDestination(id.to_string()))?;
                map_span.field("override", true);
                dest.clone()
            }
            None => self.map_destination(tool, job)?,
        };
        map_span.field("destination", destination.id.as_str());
        map_span.end();
        job.destination_id = Some(destination.id.clone());
        job.transition(JobState::Queued)?;
        self.log(format!("job {} mapped to destination {}", job.id, destination.id));

        // GYAN's extension point: hooks adjust env + params before the
        // command is rendered.
        let hooks_span = job_span.child("galaxy.hooks");
        hooks_span.field("hooks", self.hooks.len());
        for hook in &self.hooks {
            hook.before_dispatch(job, tool, &destination);
        }
        hooks_span.end();

        // Step 3: command assembly (the template-render and
        // container-assembly phases span themselves under `job_span`).
        let plan = LocalRunner.build_plan_traced(
            tool,
            job,
            &destination,
            &self.registry,
            &self.mutators,
            &self.volumes,
            job_span,
        )?;
        job.command_line = Some(plan.command_line.clone());
        job.transition(JobState::Running)?;
        job.start_time = Some(self.time.now());
        self.log(format!("job {} running: {}", job.id, plan.rendered_command()));
        Ok(plan)
    }

    /// Dispatch a prepared plan on the app's executor, tracing the
    /// `galaxy.dispatch` phase under the job's span.
    fn execute_plan(&self, job_id: u64, plan: &ExecutionPlan) -> ExecutionResult {
        let dispatch_span = self.job_span_child(job_id, "galaxy.dispatch");
        if let Some(span) = &dispatch_span {
            span.field("destination", plan.destination_id.as_str());
        }
        let result = self.executor.execute(plan);
        if let Some(span) = dispatch_span {
            span.field("exit_code", i64::from(result.exit_code));
            span.end();
        }
        result
    }

    /// Open a child span under a live job's `galaxy.job` span (used by the
    /// queue engine to trace dispatch phases it drives itself).
    pub fn job_span_child(&self, job_id: u64, name: &str) -> Option<Span> {
        self.open_spans.get(&job_id).map(|s| s.child(name))
    }

    /// Phase 4 of Fig. 2: record an execution result — timestamps,
    /// captured streams, the state transition, and history collection.
    /// With `final_attempt == false` a failure records the attempt but
    /// leaves the job eligible for resubmission: no failed datasets are
    /// declared, the error counter is untouched, and the job span stays
    /// open so the next attempt traces under it.
    pub fn finish_job(
        &mut self,
        job_id: u64,
        result: &ExecutionResult,
        final_attempt: bool,
    ) -> Result<(), GalaxyError> {
        let now = self.time.now();
        let Some(job) = self.jobs.get_mut(&job_id) else {
            return Err(GalaxyError::UnknownJob(job_id));
        };
        job.end_time = Some(now);
        job.stdout = result.stdout.clone();
        job.stderr = result.stderr.clone();
        job.exit_code = Some(result.exit_code);
        job.pid = result.pid;
        let tool_outputs =
            self.tools.get(&job.tool_id).map(|t| t.outputs.clone()).unwrap_or_default();

        if result.exit_code == 0 {
            job.transition(JobState::Ok)?;
            for (i, output) in tool_outputs.iter().enumerate() {
                let ds = self.history.declare(output.name.clone(), output.format.clone(), job_id);
                let content = if i == 0 { result.stdout.clone() } else { String::new() };
                self.history.complete(ds, content);
            }
            self.recorder.metrics().inc_counter(JOBS_OK_COUNTER, 1);
            if let Some(span) = self.open_spans.remove(&job_id) {
                span.end();
            }
            self.log(format!("job {job_id} ok"));
            self.conclude(job_id, JobConclusion::Ok);
            Ok(())
        } else {
            job.transition(JobState::Error)?;
            let err = GalaxyError::ToolFailed(result.stderr.clone());
            if final_attempt {
                for output in &tool_outputs {
                    let ds =
                        self.history.declare(output.name.clone(), output.format.clone(), job_id);
                    self.history.fail(ds);
                }
                self.recorder.metrics().inc_counter(JOBS_ERROR_COUNTER, 1);
                if let Some(span) = self.open_spans.remove(&job_id) {
                    span.field("error", err.to_string());
                    span.end();
                }
                self.log(format!("job {job_id} error (exit {})", result.exit_code));
                self.conclude(job_id, JobConclusion::FailedFinal);
            } else {
                self.log(format!(
                    "job {job_id} attempt failed (exit {}), eligible for resubmission",
                    result.exit_code
                ));
                // Release attempt-scoped hook resources (GYAN's GPU lease)
                // *before* the resubmitted attempt re-prepares — the
                // fallback attempt must not inherit the failed one's
                // device reservation.
                self.conclude(job_id, JobConclusion::FailedRetryable);
            }
            Err(err)
        }
    }

    /// Notify every hook that a job's current attempt concluded.
    fn conclude(&self, job_id: u64, conclusion: JobConclusion) {
        for hook in &self.hooks {
            hook.after_conclude(job_id, conclusion);
        }
    }

    /// Notify hooks that a prepared-but-never-executed plan was dropped
    /// (discard shutdown) so attempt-scoped resources are released.
    pub fn discard_job(&mut self, job_id: u64) {
        self.log(format!("job {job_id} discarded before execution"));
        self.close_job_span_discarded(job_id);
        self.conclude(job_id, JobConclusion::Discarded);
    }

    /// Close a job's open `galaxy.job` span with a `discarded` marker
    /// WITHOUT notifying hooks. The queue engine uses this for plans
    /// skipped by a mid-wave discard, where lease release is owned by the
    /// pool's discard listener (same path as a discard shutdown) and a
    /// second conclusion would double-notify.
    pub fn close_job_span_discarded(&mut self, job_id: u64) {
        if let Some(span) = self.open_spans.remove(&job_id) {
            span.field("discarded", true);
            span.end();
        }
    }

    /// Mark a job failed outside the executor path (mapping/hook/template
    /// errors): error counter, span annotation, `Error` state, stderr.
    fn fail_job(&mut self, job_id: u64, e: &GalaxyError) {
        self.recorder.metrics().inc_counter(JOBS_ERROR_COUNTER, 1);
        if let Some(span) = self.open_spans.remove(&job_id) {
            span.field("error", e.to_string());
            span.end();
        }
        self.log(format!("job {job_id} failed: {e}"));
        if let Some(job) = self.jobs.get_mut(&job_id) {
            let _ = job.transition(JobState::Error);
            job.stderr = e.to_string();
        }
        self.conclude(job_id, JobConclusion::PrepareFailed);
    }

    /// Resolve the destination for a tool's job, following one level of
    /// dynamic-rule indirection.
    pub fn map_destination(&self, tool: &Tool, job: &Job) -> Result<Destination, GalaxyError> {
        let dest_id = self.config.destination_for_tool(&tool.id).ok_or_else(|| {
            GalaxyError::UnknownDestination(format!("no mapping for {}", tool.id))
        })?;
        let dest = self
            .config
            .destination(dest_id)
            .ok_or_else(|| GalaxyError::UnknownDestination(dest_id.to_string()))?;
        if !dest.is_dynamic() {
            return Ok(dest.clone());
        }
        let rule_name = dest.rule_function().ok_or_else(|| {
            GalaxyError::BadJobConf(format!("dynamic {} has no function", dest.id))
        })?;
        let rule = self
            .rules
            .get(rule_name)
            .ok_or_else(|| GalaxyError::UnknownRule(rule_name.to_string()))?;
        let chosen_id = rule(tool, job, &self.config)?;
        let chosen = self
            .config
            .destination(&chosen_id)
            .ok_or_else(|| GalaxyError::UnknownDestination(chosen_id.clone()))?;
        if chosen.is_dynamic() {
            return Err(GalaxyError::BadJobConf(format!(
                "dynamic rule {rule_name} returned another dynamic destination {chosen_id}"
            )));
        }
        Ok(chosen.clone())
    }

    /// Job by id.
    pub fn job(&self, id: u64) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// Set an environment variable on a job's record before dispatch —
    /// how the queue engine passes per-submission context (e.g.
    /// [`crate::GALAXY_USER_ENV`]) to pre-dispatch hooks. Returns false
    /// for unknown job ids.
    pub fn set_job_env(&mut self, id: u64, key: &str, value: &str) -> bool {
        match self.jobs.get_mut(&id) {
            Some(job) => {
                job.set_env(key, value);
                true
            }
            None => false,
        }
    }

    /// Remove an environment variable from a job's record — the companion
    /// of [`GalaxyApp::set_job_env`] for per-attempt context that must
    /// not leak onto the next attempt (e.g. the exclusion set of
    /// [`crate::GALAXY_EXCLUDED_NODES_ENV`]). Returns false when the job
    /// is unknown or the key was absent.
    pub fn remove_job_env(&mut self, id: u64, key: &str) -> bool {
        self.jobs.get_mut(&id).map(|job| job.remove_env(key)).unwrap_or(false)
    }

    /// All jobs, ordered by id.
    pub fn jobs(&self) -> Vec<&Job> {
        let mut v: Vec<&Job> = self.jobs.values().collect();
        v.sort_by_key(|j| j.id);
        v
    }

    /// The history of produced datasets.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The application event log.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Cap the app event log at roughly `limit` entries, evicting the
    /// oldest in amortized batches (~25% slack) once exceeded. `None`
    /// (the default) retains everything.
    pub fn set_event_log_limit(&mut self, limit: Option<usize>) {
        self.event_log_limit = limit;
        self.evict_events();
    }

    /// App events evicted by the log cap so far.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    fn log(&mut self, message: String) {
        self.events.push(Event { t: self.time.now(), message });
        self.evict_events();
    }

    fn evict_events(&mut self) {
        let Some(limit) = self.event_log_limit else { return };
        let slack = limit / 4 + 1;
        if self.events.len() > limit + slack {
            let drop_n = self.events.len() - limit;
            self.events.drain(0..drop_n);
            self.dropped_events += drop_n as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::conf::GYAN_JOB_CONF;

    const ECHO_TOOL: &str = r#"<tool id="echo" name="Echo">
      <command>echo $text</command>
      <inputs><param name="text" type="text" value="hello"/></inputs>
      <outputs><data name="out" format="txt"/></outputs>
    </tool>"#;

    fn app_with_echo() -> GalaxyApp {
        let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
        app.install_tool_xml(ECHO_TOOL, &MacroLibrary::new()).unwrap();
        // Route everything to the plain CPU destination for these tests.
        app.register_rule(
            "gpu_dynamic_destination",
            Box::new(|_tool, _job, _conf| Ok("local_cpu".to_string())),
        );
        app
    }

    #[test]
    fn submit_runs_job_to_ok() {
        let mut app = app_with_echo();
        let mut params = ParamDict::new();
        params.set("text", "world");
        let id = app.submit("echo", &params).unwrap();
        let job = app.job(id).unwrap();
        assert_eq!(job.state(), JobState::Ok);
        assert_eq!(job.command_line.as_deref(), Some("echo world"));
        assert_eq!(job.destination_id.as_deref(), Some("local_cpu"));
        assert_eq!(app.history().datasets_for_job(id).len(), 1);
    }

    #[test]
    fn defaults_fill_missing_params() {
        let mut app = app_with_echo();
        let id = app.submit("echo", &ParamDict::new()).unwrap();
        assert_eq!(app.job(id).unwrap().command_line.as_deref(), Some("echo hello"));
    }

    #[test]
    fn unknown_tool_rejected() {
        let mut app = app_with_echo();
        assert!(matches!(app.submit("ghost", &ParamDict::new()), Err(GalaxyError::UnknownTool(_))));
    }

    #[test]
    fn unregistered_rule_fails_mapping() {
        let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
        app.install_tool_xml(ECHO_TOOL, &MacroLibrary::new()).unwrap();
        let err = app.submit("echo", &ParamDict::new()).unwrap_err();
        assert!(matches!(err, GalaxyError::UnknownRule(_)));
        // The job record still exists, in Error state.
        assert_eq!(app.jobs().len(), 1);
        assert_eq!(app.jobs()[0].state(), JobState::Error);
    }

    #[test]
    fn rule_returning_dynamic_destination_rejected() {
        let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
        app.install_tool_xml(ECHO_TOOL, &MacroLibrary::new()).unwrap();
        app.register_rule(
            "gpu_dynamic_destination",
            Box::new(|_, _, _| Ok("dynamic_dest".to_string())),
        );
        assert!(matches!(app.submit("echo", &ParamDict::new()), Err(GalaxyError::BadJobConf(_))));
    }

    #[test]
    fn failing_executor_marks_job_error() {
        struct Failing;
        impl JobExecutor for Failing {
            fn execute(
                &self,
                _p: &crate::runners::ExecutionPlan,
            ) -> crate::runners::ExecutionResult {
                crate::runners::ExecutionResult::fail(1, "tool blew up")
            }
        }
        let mut app = app_with_echo();
        app.set_executor(Box::new(Failing));
        let err = app.submit("echo", &ParamDict::new()).unwrap_err();
        assert!(matches!(err, GalaxyError::ToolFailed(_)));
        let job = app.jobs()[0];
        assert_eq!(job.state(), JobState::Error);
        assert_eq!(job.exit_code, Some(1));
        // Output dataset exists but failed.
        assert_eq!(app.history().datasets_for_job(job.id).len(), 1);
    }

    #[test]
    fn hooks_run_before_command_render() {
        struct InjectText;
        impl JobHook for InjectText {
            fn before_dispatch(&self, job: &mut Job, _t: &Tool, _d: &Destination) {
                job.params.set("text", "from-hook");
                job.set_env("GALAXY_GPU_ENABLED", "false");
            }
        }
        let mut app = app_with_echo();
        app.add_hook(Box::new(InjectText));
        let id = app.submit("echo", &ParamDict::new()).unwrap();
        let job = app.job(id).unwrap();
        assert_eq!(job.command_line.as_deref(), Some("echo from-hook"));
        assert_eq!(job.env_var("GALAXY_GPU_ENABLED"), Some("false"));
    }

    #[test]
    fn static_tool_mapping_bypasses_rule() {
        let conf = r#"<job_conf>
          <plugins><plugin id="local" type="runner" load="x"/></plugins>
          <destinations default="dyn">
            <destination id="dyn" runner="dynamic">
              <param id="function">gpu_dynamic_destination</param>
            </destination>
            <destination id="pinned" runner="local"/>
          </destinations>
          <tools><tool id="echo" destination="pinned"/></tools>
        </job_conf>"#;
        let mut app = GalaxyApp::new(JobConfig::from_xml(conf).unwrap());
        app.install_tool_xml(ECHO_TOOL, &MacroLibrary::new()).unwrap();
        let id = app.submit("echo", &ParamDict::new()).unwrap();
        assert_eq!(app.job(id).unwrap().destination_id.as_deref(), Some("pinned"));
    }

    #[test]
    fn submit_emits_phase_span_tree_and_counters() {
        let mut app = app_with_echo();
        app.submit("echo", &ParamDict::new()).unwrap();

        let rec = app.recorder();
        let job = &rec.spans_named("galaxy.job")[0];
        assert_eq!(job.field("tool").and_then(|v| v.as_str()), Some("echo"));
        assert_eq!(job.field("job_id").and_then(|v| v.as_f64()), Some(1.0));
        assert!(job.end.is_some(), "job span must close");
        for phase in [
            "galaxy.tool_parse",
            "galaxy.map_destination",
            "galaxy.hooks",
            "galaxy.template_render",
            "galaxy.container_assembly",
            "galaxy.dispatch",
        ] {
            let spans = rec.spans_named(phase);
            assert_eq!(spans.len(), 1, "missing phase span {phase}");
            assert_eq!(spans[0].parent, Some(job.id), "{phase} must nest under the job");
            assert!(spans[0].end.is_some(), "{phase} must close");
        }
        let dispatch = &rec.spans_named("galaxy.dispatch")[0];
        assert_eq!(dispatch.field("exit_code").and_then(|v| v.as_f64()), Some(0.0));

        let m = rec.metrics();
        assert_eq!(m.counter_value(JOBS_SUBMITTED_COUNTER), 1);
        assert_eq!(m.counter_value(JOBS_OK_COUNTER), 1);
        assert_eq!(m.counter_value(JOBS_ERROR_COUNTER), 0);
    }

    #[test]
    fn failed_job_counts_and_annotates_span() {
        let mut app = app_with_echo();
        let _ = app.submit("ghost", &ParamDict::new());
        struct Failing;
        impl JobExecutor for Failing {
            fn execute(
                &self,
                _p: &crate::runners::ExecutionPlan,
            ) -> crate::runners::ExecutionResult {
                crate::runners::ExecutionResult::fail(2, "boom")
            }
        }
        app.set_executor(Box::new(Failing));
        let _ = app.submit("echo", &ParamDict::new());

        let m = app.recorder().metrics();
        assert_eq!(m.counter_value(JOBS_SUBMITTED_COUNTER), 2);
        assert_eq!(m.counter_value(JOBS_ERROR_COUNTER), 2);
        assert_eq!(m.counter_value(JOBS_OK_COUNTER), 0);
        let jobs = app.recorder().spans_named("galaxy.job");
        assert!(jobs.iter().all(|s| s.field("error").is_some()));
    }

    #[test]
    fn events_logged_through_lifecycle() {
        let mut app = app_with_echo();
        let id = app.submit("echo", &ParamDict::new()).unwrap();
        let messages: Vec<&str> = app.events().iter().map(|e| e.message.as_str()).collect();
        assert!(messages.iter().any(|m| m.contains("submitted")));
        assert!(messages.iter().any(|m| m.contains("mapped to destination local_cpu")));
        assert!(messages.iter().any(|m| m.contains(&format!("job {id} ok"))));
    }
}
