//! The parameter dictionary bridging the Galaxy backend and tool wrappers.
//!
//! In Galaxy, `build_param_dict` (in `evaluation.py`) exposes backend
//! Python state to the Cheetah template as a dictionary. GYAN's paper adds
//! the `__galaxy_gpu_enabled__` entry through exactly this bridge. Our
//! [`ParamDict`] is that dictionary: string keys to string values, with an
//! insertion-ordered view for reproducible command lines.

use std::collections::HashMap;

/// String-keyed, string-valued parameter dictionary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamDict {
    values: HashMap<String, String>,
    order: Vec<String>,
}

impl ParamDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace a value.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        if !self.values.contains_key(&key) {
            self.order.push(key.clone());
        }
        self.values.insert(key, value.into());
    }

    /// Look up a value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Look up with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Whether a key is present.
    pub fn contains(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<String> {
        self.order.retain(|k| k != key);
        self.values.remove(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(String::as_str)
    }

    /// (key, value) pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.order.iter().map(|k| (k.as_str(), self.values[k].as_str()))
    }

    /// Merge `other` into `self` (other wins on conflicts).
    pub fn extend(&mut self, other: &ParamDict) {
        for (k, v) in other.iter() {
            self.set(k, v);
        }
    }
}

impl<K: Into<String>, V: Into<String>> FromIterator<(K, V)> for ParamDict {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut dict = ParamDict::new();
        for (k, v) in iter {
            dict.set(k, v);
        }
        dict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_replace() {
        let mut p = ParamDict::new();
        p.set("threads", "4");
        assert_eq!(p.get("threads"), Some("4"));
        p.set("threads", "8");
        assert_eq!(p.get("threads"), Some("8"));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn insertion_order_preserved() {
        let mut p = ParamDict::new();
        p.set("z", "1");
        p.set("a", "2");
        p.set("m", "3");
        let keys: Vec<&str> = p.keys().collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn remove_drops_order_entry() {
        let mut p = ParamDict::new();
        p.set("a", "1");
        p.set("b", "2");
        assert_eq!(p.remove("a"), Some("1".into()));
        assert_eq!(p.keys().collect::<Vec<_>>(), vec!["b"]);
        assert!(!p.contains("a"));
    }

    #[test]
    fn extend_overwrites() {
        let mut a: ParamDict = [("x", "1"), ("y", "2")].into_iter().collect();
        let b: ParamDict = [("y", "9"), ("z", "3")].into_iter().collect();
        a.extend(&b);
        assert_eq!(a.get("y"), Some("9"));
        assert_eq!(a.get("z"), Some("3"));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn get_or_default() {
        let p = ParamDict::new();
        assert_eq!(p.get_or("missing", "fallback"), "fallback");
    }
}
