//! # galaxy
//!
//! A Galaxy-workalike job orchestration framework — the substrate the GYAN
//! paper modifies. The real Galaxy is a large Python web application; this
//! crate reproduces the specific execution pipeline GYAN hooks into
//! (paper §III, Fig. 2):
//!
//! 1. **Tool parsing** — tools are described by XML *wrapper files*
//!    ([`tool`]) with `<requirements>`, a Cheetah command template
//!    ([`template`]), `<inputs>`/`<outputs>`, and optional `<macros>`
//!    imports ([`tool::macros`]).
//! 2. **Destination mapping** — a `job_conf.xml` ([`job::conf`]) declares
//!    runner plugins and *destinations*; destinations may be *dynamic*,
//!    deferring the choice to a registered rule function (this is the
//!    extension point where GYAN installs its GPU-aware rule).
//! 3. **Command building & dispatch** — runners ([`runners`]) assemble the
//!    shell command line from the evaluated template, wrap it for
//!    Docker/Singularity when the destination enables containers
//!    ([`containers`]), apply registered *command mutators* (GYAN's
//!    `--gpus all` / `--nv` injection), and export environment variables
//!    (GYAN's `GALAXY_GPU_ENABLED`, `CUDA_VISIBLE_DEVICES`).
//! 4. **Job lifecycle** — jobs move through the Galaxy state machine
//!    ([`job`]) and land their outputs in a history ([`history`]).
//!
//! The crate is execution-agnostic: running the assembled command is
//! delegated to a caller-provided [`runners::JobExecutor`], which is how
//! the simulated Racon/Bonito tools (crate `seqtools`) get plugged in
//! without this substrate depending on them.

pub mod api;
pub mod app;
pub mod containers;
pub mod deps;
pub mod error;
pub mod history;
pub mod job;
pub mod params;
pub mod queue;
pub mod runners;
pub mod scheduler;
pub mod template;
pub mod tool;
pub mod workflow;

/// Environment variable naming the fleet node a job was placed on. Set by
/// a placement-aware pre-dispatch hook; the queue engine mirrors it into
/// the ledger so ops views can label jobs per node.
pub const GALAXY_NODE_ENV: &str = "GALAXY_NODE";

/// Environment variable carrying a comma-separated list of fleet node
/// names the current attempt must not land on. The queue engine exports
/// it on resubmitted attempts (placement-aware resubmission: the node a
/// GPU attempt failed on is excluded from the retry); placement hooks
/// parse it into the placement request's exclusion set.
pub const GALAXY_EXCLUDED_NODES_ENV: &str = "GALAXY_EXCLUDED_NODES";

/// Environment variable carrying the submitting user into pre-dispatch
/// hooks (the queue engine sets it from its fair-share context before
/// preparing the plan, since `Job` itself has no user field).
pub const GALAXY_USER_ENV: &str = "GALAXY_USER";

/// Environment variable carrying a revised GPU memory budget (MiB) for a
/// footprint-revised resubmission: the queue engine sets it from the
/// installed [`app::FootprintAdvisor`] before requeueing a failed
/// attempt on its original destination, and the GPU hook consumes it as
/// the highest-priority memory hint for that retry.
pub const GALAXY_GPU_BUDGET_OVERRIDE_ENV: &str = "GALAXY_GPU_BUDGET_OVERRIDE_MIB";

pub use app::{FootprintAdvisor, GalaxyApp, PlacementAdvisor};
pub use error::GalaxyError;
pub use job::{Job, JobState};
pub use params::ParamDict;
pub use queue::{
    DagRunReport, DagStep, DagWorkflow, JobHandle, JobSnapshot, JobsLedger, QueueConfig,
    QueueEngine, ResubmitPolicy, SubmissionState, WorkflowHandle,
};
pub use tool::{Requirement, RequirementType, Tool};
pub use workflow::{Workflow, WorkflowStep};
