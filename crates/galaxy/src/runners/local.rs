//! The local runner: the equivalent of Galaxy's `local.py`.
//!
//! Builds the final argv for a job on a `local`-runner destination:
//! renders the tool's command template against the job's parameter
//! dictionary (the `__command_line` step of the paper's Pseudocode 2),
//! wraps it in a Docker/Singularity launch when the destination enables
//! containers, and applies registered command mutators.

use crate::containers::ImageRegistry;
use crate::error::GalaxyError;
use crate::job::conf::Destination;
use crate::job::Job;
use crate::runners::container_cmd::{docker_command, singularity_command, VolumeBind};
use crate::runners::{CommandMutator, ContainerEngine, ContainerInvocation, ExecutionPlan};
use crate::tool::{ContainerType, Tool};
use obs::Span;

/// Stateless command assembler for local (and local-containerized)
/// execution.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalRunner;

impl LocalRunner {
    /// Render the tool command for a job (template × param dict).
    pub fn render_command(&self, tool: &Tool, job: &Job) -> Result<String, GalaxyError> {
        let rendered = tool.command.render(&job.params)?;
        // Collapse the template's line structure into one shell command.
        let cmd: String = rendered.split_whitespace().collect::<Vec<_>>().join(" ");
        if cmd.is_empty() {
            return Err(GalaxyError::Template(format!("tool {} rendered empty command", tool.id)));
        }
        Ok(cmd)
    }

    /// Build the full execution plan for `job` on `destination`.
    ///
    /// `mutators` are applied to the assembled command parts, and — for
    /// container destinations — the image is pulled through `registry` to
    /// account for pull + cold-start overhead.
    pub fn build_plan(
        &self,
        tool: &Tool,
        job: &Job,
        destination: &Destination,
        registry: &ImageRegistry,
        mutators: &[Box<dyn CommandMutator>],
        volumes: &[VolumeBind],
    ) -> Result<ExecutionPlan, GalaxyError> {
        self.build_plan_inner(tool, job, destination, registry, mutators, volumes, None)
    }

    /// [`LocalRunner::build_plan`] with telemetry: the template-render and
    /// container-assembly phases each get a child span under `parent`.
    #[allow(clippy::too_many_arguments)]
    pub fn build_plan_traced(
        &self,
        tool: &Tool,
        job: &Job,
        destination: &Destination,
        registry: &ImageRegistry,
        mutators: &[Box<dyn CommandMutator>],
        volumes: &[VolumeBind],
        parent: &Span,
    ) -> Result<ExecutionPlan, GalaxyError> {
        self.build_plan_inner(tool, job, destination, registry, mutators, volumes, Some(parent))
    }

    #[allow(clippy::too_many_arguments)]
    fn build_plan_inner(
        &self,
        tool: &Tool,
        job: &Job,
        destination: &Destination,
        registry: &ImageRegistry,
        mutators: &[Box<dyn CommandMutator>],
        volumes: &[VolumeBind],
        parent: Option<&Span>,
    ) -> Result<ExecutionPlan, GalaxyError> {
        let render_span = parent.map(|p| p.child("galaxy.template_render"));
        let command_line = self.render_command(tool, job)?;
        if let Some(s) = render_span {
            s.field("command", command_line.as_str());
            s.end();
        }
        let workdir = format!("/galaxy/jobs/{}", job.id);

        let assembly_span = parent.map(|p| p.child("galaxy.container_assembly"));
        let container = if destination.docker_enabled() {
            let image = tool
                .container(ContainerType::Docker)
                .ok_or_else(|| {
                    GalaxyError::Container(format!(
                        "destination {} requires docker but tool {} declares no docker container",
                        destination.id, tool.id
                    ))
                })?
                .image
                .clone();
            let first_start = !registry.is_cached(&image);
            let pull_s = registry.pull(&image)?;
            let overhead_s = pull_s + registry.start_overhead(&image, first_start)?;
            let mut parts = docker_command(&image, &command_line, &job.env, volumes, &workdir);
            for m in mutators {
                m.mutate(&mut parts, job, destination);
            }
            Some(ContainerInvocation {
                engine: ContainerEngine::Docker,
                image,
                command_parts: parts,
                overhead_s,
            })
        } else if destination.singularity_enabled() {
            let image = tool
                .container(ContainerType::Singularity)
                .or_else(|| tool.container(ContainerType::Docker))
                .ok_or_else(|| {
                    GalaxyError::Container(format!(
                        "destination {} requires singularity but tool {} declares no container",
                        destination.id, tool.id
                    ))
                })?
                .image
                .clone();
            let first_start = !registry.is_cached(&image);
            let pull_s = registry.pull(&image)?;
            let overhead_s = pull_s + registry.start_overhead(&image, first_start)?;
            let mut parts = singularity_command(&image, &command_line, &job.env, volumes, &workdir);
            for m in mutators {
                m.mutate(&mut parts, job, destination);
            }
            Some(ContainerInvocation {
                engine: ContainerEngine::Singularity,
                image,
                command_parts: parts,
                overhead_s,
            })
        } else {
            None
        };

        let command_parts = match &container {
            Some(c) => c.command_parts.clone(),
            None => {
                let mut parts =
                    vec!["/bin/bash".to_string(), "-c".to_string(), command_line.clone()];
                for m in mutators {
                    m.mutate(&mut parts, job, destination);
                }
                parts
            }
        };

        if let Some(s) = assembly_span {
            match &container {
                Some(c) => {
                    s.field("engine", format!("{:?}", c.engine).to_lowercase());
                    s.field("image", c.image.as_str());
                    s.field("overhead_s", c.overhead_s);
                }
                None => s.field("engine", "bare"),
            }
            s.field("mutators", mutators.len());
            s.end();
        }

        Ok(ExecutionPlan {
            job_id: job.id,
            tool_id: tool.id.clone(),
            destination_id: destination.id.clone(),
            command_line,
            env: job.env.clone(),
            container,
            command_parts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containers::ImageMeta;
    use crate::params::ParamDict;
    use crate::tool::macros::MacroLibrary;
    use crate::tool::wrapper::parse_tool;

    fn tool_with_container() -> Tool {
        parse_tool(
            r#"<tool id="racon_gpu" name="Racon">
              <requirements>
                <requirement type="compute">gpu</requirement>
                <container type="docker">test/racon</container>
              </requirements>
              <command>racon -t $threads $input</command>
            </tool>"#,
            &MacroLibrary::new(),
        )
        .unwrap()
    }

    fn job() -> Job {
        let mut params = ParamDict::new();
        params.set("threads", "4");
        params.set("input", "reads.fq");
        let mut j = Job::new(7, "racon_gpu", params);
        j.set_env("GALAXY_GPU_ENABLED", "true");
        j
    }

    fn dest(id: &str, params: &[(&str, &str)]) -> Destination {
        let mut p = ParamDict::new();
        for (k, v) in params {
            p.set(*k, *v);
        }
        Destination { id: id.into(), runner: "local".into(), params: p }
    }

    fn registry() -> ImageRegistry {
        let reg = ImageRegistry::new();
        reg.publish("test/racon", ImageMeta { size_mb: 500.0, gpu_capable: true });
        reg
    }

    #[test]
    fn renders_flat_command() {
        let tool = tool_with_container();
        let cmd = LocalRunner.render_command(&tool, &job()).unwrap();
        assert_eq!(cmd, "racon -t 4 reads.fq");
    }

    #[test]
    fn bare_metal_plan_uses_bash() {
        let plan = LocalRunner
            .build_plan(
                &tool_with_container(),
                &job(),
                &dest("local_gpu", &[]),
                &registry(),
                &[],
                &[],
            )
            .unwrap();
        assert!(plan.container.is_none());
        assert_eq!(plan.command_parts[0], "/bin/bash");
        assert_eq!(plan.command_parts[2], "racon -t 4 reads.fq");
    }

    #[test]
    fn docker_plan_wraps_and_charges_overhead() {
        let reg = registry();
        let plan = LocalRunner
            .build_plan(
                &tool_with_container(),
                &job(),
                &dest("docker_gpu", &[("docker_enabled", "true")]),
                &reg,
                &[],
                &[VolumeBind::rw("/data")],
            )
            .unwrap();
        let c = plan.container.as_ref().unwrap();
        assert_eq!(c.engine, ContainerEngine::Docker);
        assert!(c.overhead_s > 3.0); // pull 500MB + first start
        assert_eq!(plan.command_parts[0], "docker");
        // Second job: image cached, much cheaper.
        let plan2 = LocalRunner
            .build_plan(
                &tool_with_container(),
                &job(),
                &dest("docker_gpu", &[("docker_enabled", "true")]),
                &reg,
                &[],
                &[],
            )
            .unwrap();
        assert!(plan2.container.unwrap().overhead_s < 1.0);
    }

    #[test]
    fn singularity_falls_back_to_docker_image() {
        let plan = LocalRunner
            .build_plan(
                &tool_with_container(),
                &job(),
                &dest("sing", &[("singularity_enabled", "true")]),
                &registry(),
                &[],
                &[],
            )
            .unwrap();
        let c = plan.container.unwrap();
        assert_eq!(c.engine, ContainerEngine::Singularity);
        assert_eq!(c.image, "test/racon");
        assert!(plan.command_parts.iter().any(|p| p == "exec"));
    }

    #[test]
    fn docker_destination_without_container_errors() {
        let tool = parse_tool(
            r#"<tool id="plain"><command>echo $x</command></tool>"#,
            &MacroLibrary::new(),
        )
        .unwrap();
        let mut params = ParamDict::new();
        params.set("x", "1");
        let j = Job::new(1, "plain", params);
        let result = LocalRunner.build_plan(
            &tool,
            &j,
            &dest("docker", &[("docker_enabled", "true")]),
            &registry(),
            &[],
            &[],
        );
        assert!(matches!(result, Err(GalaxyError::Container(_))));
    }

    #[test]
    fn mutators_applied_to_parts() {
        struct AppendFlag;
        impl CommandMutator for AppendFlag {
            fn mutate(&self, parts: &mut Vec<String>, job: &Job, _d: &Destination) {
                if job.env_var("GALAXY_GPU_ENABLED") == Some("true") {
                    let run_pos = parts.iter().position(|p| p == "run").map(|i| i + 1);
                    if let Some(pos) = run_pos {
                        parts.insert(pos, "--gpus all".into());
                    }
                }
            }
        }
        let mutators: Vec<Box<dyn CommandMutator>> = vec![Box::new(AppendFlag)];
        let plan = LocalRunner
            .build_plan(
                &tool_with_container(),
                &job(),
                &dest("docker_gpu", &[("docker_enabled", "true")]),
                &registry(),
                &mutators,
                &[],
            )
            .unwrap();
        assert_eq!(plan.command_parts[2], "--gpus all");
    }

    #[test]
    fn empty_rendered_command_rejected() {
        let tool = parse_tool(
            "<tool id=\"t\"><command>#if $x == \"1\"\nrun\n#end if\n</command></tool>",
            &MacroLibrary::new(),
        )
        .unwrap();
        let mut params = ParamDict::new();
        params.set("x", "0");
        let j = Job::new(1, "t", params);
        assert!(LocalRunner.render_command(&tool, &j).is_err());
    }
}
