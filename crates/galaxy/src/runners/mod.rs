//! Job runners: command assembly and the execution interface.
//!
//! Galaxy's *runner* turns a mapped job into a concrete process: it renders
//! the tool's command template, optionally wraps it in a container launch
//! command, and spawns it. This module provides:
//!
//! * [`ExecutionPlan`] — everything needed to start the process;
//! * [`local::LocalRunner`] — the bare-metal runner (the paper's
//!   `local.py`);
//! * [`container_cmd`] — Docker/Singularity command-line assembly;
//! * [`CommandMutator`] — the extension point GYAN uses to inject
//!   `--gpus all` / `--nv` into container launches;
//! * [`JobExecutor`] — the pluggable backend that actually "runs" the
//!   process (the simulated tools in crate `seqtools` implement this).

pub mod container_cmd;
pub mod faults;
pub mod local;

use crate::job::conf::Destination;
use crate::job::Job;
use crate::tool::Tool;

/// Container engine of a wrapped launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerEngine {
    /// Docker (`docker run ...`).
    Docker,
    /// Singularity (`singularity exec ...`).
    Singularity,
}

/// A containerized launch: the engine, image, and the assembled command
/// parts (`docker run --rm ... image /bin/bash -c '<tool cmd>'`).
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerInvocation {
    /// Docker or Singularity.
    pub engine: ContainerEngine,
    /// Image name.
    pub image: String,
    /// Full command parts including the engine binary.
    pub command_parts: Vec<String>,
    /// Pull + start overhead in virtual seconds, charged by the executor.
    pub overhead_s: f64,
}

/// The fully assembled plan for one job.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// Job id.
    pub job_id: u64,
    /// Tool id.
    pub tool_id: String,
    /// Destination the job was mapped to.
    pub destination_id: String,
    /// The rendered tool command (before any container wrapping).
    pub command_line: String,
    /// Environment exported to the process.
    pub env: Vec<(String, String)>,
    /// Present when the destination runs containers.
    pub container: Option<ContainerInvocation>,
    /// The final argv, container-wrapped when applicable.
    pub command_parts: Vec<String>,
}

impl ExecutionPlan {
    /// Environment variable lookup.
    pub fn env_var(&self, key: &str) -> Option<&str> {
        self.env.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// The final command as one shell-ish string (for logs and tests).
    pub fn rendered_command(&self) -> String {
        self.command_parts.join(" ")
    }
}

/// Result of executing a plan.
#[derive(Debug, Clone, Default)]
pub struct ExecutionResult {
    /// Process exit code (0 = success).
    pub exit_code: i32,
    /// Captured stdout.
    pub stdout: String,
    /// Captured stderr.
    pub stderr: String,
    /// Host pid the executor spawned for the tool, when it spawned one.
    pub pid: Option<u32>,
}

impl ExecutionResult {
    /// A success with the given stdout.
    pub fn ok(stdout: impl Into<String>) -> Self {
        ExecutionResult { exit_code: 0, stdout: stdout.into(), stderr: String::new(), pid: None }
    }

    /// A failure with the given code and stderr.
    pub fn fail(exit_code: i32, stderr: impl Into<String>) -> Self {
        ExecutionResult { exit_code, stdout: String::new(), stderr: stderr.into(), pid: None }
    }

    /// Attach the spawned pid.
    pub fn with_pid(mut self, pid: u32) -> Self {
        self.pid = Some(pid);
        self
    }
}

/// Pluggable process back-end. Implementations simulate the tool run
/// (advancing virtual time) and return the outcome.
pub trait JobExecutor: Send + Sync {
    /// Execute the plan.
    fn execute(&self, plan: &ExecutionPlan) -> ExecutionResult;
}

impl<T: JobExecutor + ?Sized> JobExecutor for std::sync::Arc<T> {
    fn execute(&self, plan: &ExecutionPlan) -> ExecutionResult {
        (**self).execute(plan)
    }
}

/// An executor that succeeds instantly — useful for orchestration tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullExecutor;

impl JobExecutor for NullExecutor {
    fn execute(&self, _plan: &ExecutionPlan) -> ExecutionResult {
        ExecutionResult::ok("")
    }
}

/// Mutates assembled container/launch command parts before execution —
/// the extension point GYAN's Challenge-III uses to append `--gpus all`
/// (Docker) or `--nv` (Singularity) and to strip `rw`/`ro` bind flags.
pub trait CommandMutator: Send + Sync {
    /// Adjust `parts` in place. `job` exposes the env (GYAN checks
    /// `GALAXY_GPU_ENABLED`); `destination` exposes destination params.
    fn mutate(&self, parts: &mut Vec<String>, job: &Job, destination: &Destination);
}

/// How a job's current attempt ended, from the hooks' point of view.
///
/// Hooks that acquire per-job resources in
/// [`JobHook::before_dispatch`] (GYAN's GPU leases) use this to decide
/// what to free in [`JobHook::after_conclude`]: every variant means the
/// attempt's prepared plan will never execute again as-is, so
/// attempt-scoped resources must be released. A retryable failure
/// re-prepares from scratch, re-running the hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobConclusion {
    /// The job finished successfully.
    Ok,
    /// The job failed and no further attempts will run.
    FailedFinal,
    /// The attempt failed but the job is eligible for resubmission; the
    /// next attempt re-runs the hooks against the fallback destination.
    FailedRetryable,
    /// Preparation itself failed (mapping, hooks, template, container).
    PrepareFailed,
    /// The prepared plan was discarded without executing (engine
    /// shutdown before dispatch).
    Discarded,
}

impl JobConclusion {
    /// Stable snake_case name used in audit events.
    pub fn as_str(self) -> &'static str {
        match self {
            JobConclusion::Ok => "ok",
            JobConclusion::FailedFinal => "failed_final",
            JobConclusion::FailedRetryable => "failed_retryable",
            JobConclusion::PrepareFailed => "prepare_failed",
            JobConclusion::Discarded => "discarded",
        }
    }
}

/// Hook invoked after destination mapping and before command rendering —
/// the extension point GYAN's orchestrator uses to pick GPUs, export
/// `CUDA_VISIBLE_DEVICES`/`GALAXY_GPU_ENABLED`, and bridge
/// `__galaxy_gpu_enabled__` into the parameter dictionary.
pub trait JobHook: Send + Sync {
    /// Adjust the job in place.
    fn before_dispatch(&self, job: &mut Job, tool: &Tool, destination: &Destination);

    /// Called when an attempt concludes (success, final failure,
    /// retryable failure, preparation failure, or discard), so hooks can
    /// release attempt-scoped resources they acquired in
    /// [`JobHook::before_dispatch`]. Default: no-op.
    fn after_conclude(&self, job_id: u64, conclusion: JobConclusion) {
        let _ = (job_id, conclusion);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamDict;

    #[test]
    fn execution_result_constructors() {
        let ok = ExecutionResult::ok("out");
        assert_eq!(ok.exit_code, 0);
        assert_eq!(ok.stdout, "out");
        let fail = ExecutionResult::fail(2, "boom");
        assert_eq!(fail.exit_code, 2);
        assert_eq!(fail.stderr, "boom");
    }

    #[test]
    fn plan_env_and_rendering() {
        let plan = ExecutionPlan {
            job_id: 1,
            tool_id: "t".into(),
            destination_id: "local".into(),
            command_line: "echo hi".into(),
            env: vec![("GALAXY_GPU_ENABLED".into(), "true".into())],
            container: None,
            command_parts: vec!["/bin/bash".into(), "-c".into(), "echo hi".into()],
        };
        assert_eq!(plan.env_var("GALAXY_GPU_ENABLED"), Some("true"));
        assert_eq!(plan.rendered_command(), "/bin/bash -c echo hi");
    }

    #[test]
    fn null_executor_succeeds() {
        let plan = ExecutionPlan {
            job_id: 1,
            tool_id: "t".into(),
            destination_id: "d".into(),
            command_line: String::new(),
            env: vec![],
            container: None,
            command_parts: vec![],
        };
        assert_eq!(NullExecutor.execute(&plan).exit_code, 0);
        let _job = Job::new(1, "t", ParamDict::new());
    }
}
