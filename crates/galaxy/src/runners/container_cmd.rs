//! Docker and Singularity launch command assembly.
//!
//! Reproduces the shape of Galaxy's container launch scripts: the runner
//! "executes the container by assembling a bash command" (paper §IV-B).
//! GYAN's GPU flags are *not* added here — they are injected by
//! [`crate::runners::CommandMutator`]s registered on the app, exactly as
//! GYAN patches the launch script rather than each tool.

/// A volume mount request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeBind {
    /// Host path.
    pub host: String,
    /// Container path.
    pub container: String,
    /// `rw` or `ro`.
    pub mode: BindMode,
}

/// Read-write or read-only bind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindMode {
    /// Read-write.
    Rw,
    /// Read-only.
    Ro,
}

impl BindMode {
    /// Flag suffix as used in `-v host:ctr:rw`.
    pub fn suffix(self) -> &'static str {
        match self {
            BindMode::Rw => "rw",
            BindMode::Ro => "ro",
        }
    }
}

impl VolumeBind {
    /// A read-write bind of the same path inside and out.
    pub fn rw(path: impl Into<String>) -> Self {
        let path = path.into();
        VolumeBind { host: path.clone(), container: path, mode: BindMode::Rw }
    }

    /// A read-only bind of the same path inside and out.
    pub fn ro(path: impl Into<String>) -> Self {
        let path = path.into();
        VolumeBind { host: path.clone(), container: path, mode: BindMode::Ro }
    }
}

/// Assemble a `docker run` command for `image` executing `tool_command`.
///
/// Shape: `docker run --rm -e K=V ... -v h:c:mode ... -w workdir image
/// /bin/bash -c '<tool_command>'`.
pub fn docker_command(
    image: &str,
    tool_command: &str,
    env: &[(String, String)],
    volumes: &[VolumeBind],
    workdir: &str,
) -> Vec<String> {
    let mut parts: Vec<String> = vec!["docker".into(), "run".into(), "--rm".into()];
    for (k, v) in env {
        parts.push("-e".into());
        parts.push(format!("{k}={v}"));
    }
    for vol in volumes {
        parts.push("-v".into());
        parts.push(format!("{}:{}:{}", vol.host, vol.container, vol.mode.suffix()));
    }
    parts.push("-w".into());
    parts.push(workdir.to_string());
    parts.push(image.to_string());
    parts.push("/bin/bash".into());
    parts.push("-c".into());
    parts.push(tool_command.to_string());
    parts
}

/// Assemble a `singularity exec` command.
///
/// Shape: `singularity exec --cleanenv -B h:c:mode ... --pwd workdir image
/// /bin/bash -c '<tool_command>'`. Environment is passed via
/// `SINGULARITYENV_`-prefixed assignments preceding the binary, matching
/// Galaxy's behaviour.
pub fn singularity_command(
    image: &str,
    tool_command: &str,
    env: &[(String, String)],
    volumes: &[VolumeBind],
    workdir: &str,
) -> Vec<String> {
    let mut parts: Vec<String> = Vec::new();
    for (k, v) in env {
        parts.push(format!("SINGULARITYENV_{k}={v}"));
    }
    parts.push("singularity".into());
    parts.push("exec".into());
    parts.push("--cleanenv".into());
    for vol in volumes {
        parts.push("-B".into());
        parts.push(format!("{}:{}:{}", vol.host, vol.container, vol.mode.suffix()));
    }
    parts.push("--pwd".into());
    parts.push(workdir.to_string());
    parts.push(image.to_string());
    parts.push("/bin/bash".into());
    parts.push("-c".into());
    parts.push(tool_command.to_string());
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Vec<(String, String)> {
        vec![("GALAXY_GPU_ENABLED".into(), "true".into())]
    }

    #[test]
    fn docker_command_shape() {
        let parts = docker_command(
            "gulsumgudukbay/racon_dockerfile",
            "racon_gpu -t 4 reads.fq ovl.paf draft.fa",
            &env(),
            &[VolumeBind::rw("/galaxy/data"), VolumeBind::ro("/galaxy/refs")],
            "/galaxy/job",
        );
        assert_eq!(parts[..3], ["docker", "run", "--rm"]);
        assert!(parts.contains(&"GALAXY_GPU_ENABLED=true".to_string()));
        assert!(parts.contains(&"/galaxy/data:/galaxy/data:rw".to_string()));
        assert!(parts.contains(&"/galaxy/refs:/galaxy/refs:ro".to_string()));
        let img_pos = parts.iter().position(|p| p == "gulsumgudukbay/racon_dockerfile").unwrap();
        assert_eq!(parts[img_pos + 1], "/bin/bash");
        assert_eq!(parts[img_pos + 2], "-c");
        assert!(parts[img_pos + 3].starts_with("racon_gpu"));
    }

    #[test]
    fn singularity_command_shape() {
        let parts = singularity_command(
            "racon.sif",
            "racon_gpu draft.fa",
            &env(),
            &[VolumeBind::rw("/data")],
            "/job",
        );
        assert_eq!(parts[0], "SINGULARITYENV_GALAXY_GPU_ENABLED=true");
        let exec_pos = parts.iter().position(|p| p == "exec").unwrap();
        assert_eq!(parts[exec_pos - 1], "singularity");
        // The rw flag is present by default — GYAN's singularity mutator
        // strips it (Singularity ≥3.1 + --nv incompatibility).
        assert!(parts.contains(&"/data:/data:rw".to_string()));
    }

    #[test]
    fn empty_env_and_volumes() {
        let parts = docker_command("img", "true", &[], &[], "/");
        assert!(!parts.iter().any(|p| p == "-e"));
        assert!(!parts.iter().any(|p| p == "-v"));
    }

    #[test]
    fn bind_mode_suffixes() {
        assert_eq!(BindMode::Rw.suffix(), "rw");
        assert_eq!(BindMode::Ro.suffix(), "ro");
    }
}
