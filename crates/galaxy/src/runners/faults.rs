//! Fault injection for job execution.
//!
//! [`FaultInjectingExecutor`] wraps any [`JobExecutor`] and consults a
//! shared [`FaultPlan`] before each execution: if a fault is queued for
//! the plan's job id it is consumed and returned as the execution result,
//! otherwise the inner executor runs normally. One queued fault therefore
//! models a *retryable* failure — the resubmitted attempt (same job id)
//! finds the queue empty and runs clean.
//!
//! The fault shapes mirror what Galaxy handlers actually see from
//! container runtimes and the kernel:
//!
//! * container launch failure — `docker run` dying before the tool starts
//!   (exit 125, the Docker daemon's own error code);
//! * runner out-of-memory — the OOM killer's SIGKILL (exit 137);
//! * runner crash — a segfaulting tool binary (exit 139).

use super::{ExecutionPlan, ExecutionResult, JobExecutor};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// One injectable execution failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The container runtime failed to start the tool at all.
    ContainerLaunch,
    /// The kernel OOM killer terminated the tool (SIGKILL → 128+9).
    OutOfMemory,
    /// The tool crashed with a segfault (SIGSEGV → 128+11).
    Crash,
}

impl InjectedFault {
    /// Render the fault as the [`ExecutionResult`] a handler would see.
    pub fn to_result(self, plan: &ExecutionPlan) -> ExecutionResult {
        match self {
            InjectedFault::ContainerLaunch => ExecutionResult::fail(
                125,
                format!(
                    "docker: Error response from daemon: failed to create task for \
                     container: {} (injected)",
                    plan.tool_id
                ),
            ),
            InjectedFault::OutOfMemory => {
                ExecutionResult::fail(137, format!("{}: Killed (injected oom)", plan.tool_id))
            }
            InjectedFault::Crash => ExecutionResult::fail(
                139,
                format!("{}: Segmentation fault (injected)", plan.tool_id),
            ),
        }
    }
}

/// Shared, clonable queue of faults keyed by job id. Injected faults are
/// consumed in FIFO order, one per execution attempt of that job.
#[derive(Clone, Default)]
pub struct FaultPlan {
    queued: Arc<Mutex<HashMap<u64, VecDeque<InjectedFault>>>>,
}

impl FaultPlan {
    /// An empty plan (no faults fire until some are injected).
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a fault for `job_id`'s next execution attempt. Queue several
    /// to fail several consecutive attempts.
    pub fn inject(&self, job_id: u64, fault: InjectedFault) {
        self.queued.lock().entry(job_id).or_default().push_back(fault);
    }

    /// Consume the next queued fault for `job_id`, if any.
    pub fn take(&self, job_id: u64) -> Option<InjectedFault> {
        let mut queued = self.queued.lock();
        let faults = queued.get_mut(&job_id)?;
        let fault = faults.pop_front();
        if faults.is_empty() {
            queued.remove(&job_id);
        }
        fault
    }

    /// Total faults still queued across all jobs.
    pub fn pending(&self) -> usize {
        self.queued.lock().values().map(VecDeque::len).sum()
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan").field("pending", &self.pending()).finish()
    }
}

/// A [`JobExecutor`] decorator that fails attempts according to a
/// [`FaultPlan`] and otherwise delegates to the wrapped executor.
pub struct FaultInjectingExecutor<E> {
    inner: E,
    plan: FaultPlan,
}

impl<E: JobExecutor> FaultInjectingExecutor<E> {
    /// Wrap `inner`, consulting `plan` before every execution.
    pub fn new(inner: E, plan: FaultPlan) -> Self {
        FaultInjectingExecutor { inner, plan }
    }

    /// The shared fault plan (inject through a clone of this).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<E: JobExecutor> JobExecutor for FaultInjectingExecutor<E> {
    fn execute(&self, plan: &ExecutionPlan) -> ExecutionResult {
        match self.plan.take(plan.job_id) {
            Some(fault) => fault.to_result(plan),
            None => self.inner.execute(plan),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runners::NullExecutor;

    fn plan_for(job_id: u64) -> ExecutionPlan {
        ExecutionPlan {
            job_id,
            tool_id: "racon".to_string(),
            destination_id: "local_gpu".to_string(),
            command_line: "racon -t 4".to_string(),
            env: Vec::new(),
            container: None,
            command_parts: Vec::new(),
        }
    }

    #[test]
    fn fault_fires_once_then_delegates() {
        let exec = FaultInjectingExecutor::new(NullExecutor, FaultPlan::new());
        exec.plan().inject(7, InjectedFault::OutOfMemory);
        let first = exec.execute(&plan_for(7));
        assert_eq!(first.exit_code, 137);
        assert!(first.stderr.contains("Killed"), "{}", first.stderr);
        // The fault was consumed: the retry attempt runs clean.
        assert_eq!(exec.execute(&plan_for(7)).exit_code, 0);
        // Other jobs are never affected.
        assert_eq!(exec.execute(&plan_for(8)).exit_code, 0);
    }

    #[test]
    fn faults_consume_fifo_per_job() {
        let faults = FaultPlan::new();
        faults.inject(1, InjectedFault::ContainerLaunch);
        faults.inject(1, InjectedFault::Crash);
        assert_eq!(faults.pending(), 2);
        assert_eq!(faults.take(1), Some(InjectedFault::ContainerLaunch));
        assert_eq!(faults.take(1), Some(InjectedFault::Crash));
        assert_eq!(faults.take(1), None);
        assert_eq!(faults.pending(), 0);
    }

    #[test]
    fn exit_codes_match_their_unix_signals() {
        let p = plan_for(3);
        assert_eq!(InjectedFault::ContainerLaunch.to_result(&p).exit_code, 125);
        assert_eq!(InjectedFault::OutOfMemory.to_result(&p).exit_code, 137);
        assert_eq!(InjectedFault::Crash.to_result(&p).exit_code, 139);
    }

    #[test]
    fn clones_share_the_queue() {
        let a = FaultPlan::new();
        let b = a.clone();
        a.inject(5, InjectedFault::Crash);
        assert_eq!(b.take(5), Some(InjectedFault::Crash));
        assert_eq!(a.take(5), None);
    }
}
