//! DAG workflows: explicit step dependencies with fan-out/fan-in.
//!
//! The sequential [`crate::workflow::Workflow`] runs steps strictly in
//! order. A [`DagWorkflow`] instead declares *dependencies*: a step may
//! run as soon as every step it depends on has completed, so independent
//! branches dispatch concurrently through the handler pool. Dependencies
//! come from two sources:
//!
//! - **data edges** — a parameter bound with
//!   [`DagStep::with_input_from`] (the upstream step's first output
//!   dataset feeds the parameter), and
//! - **ordering edges** — [`DagStep::after`], which sequences steps
//!   without passing data.
//!
//! Validation rejects self/out-of-range references with
//! [`GalaxyError::InvalidStepReference`] and cycles with
//! [`GalaxyError::WorkflowCycle`]. Unlike the sequential workflow,
//! *forward* references are legal here — the topology, not the list
//! order, decides execution order.

use crate::app::GalaxyApp;
use crate::error::GalaxyError;
use crate::workflow::{ValueSource, Workflow};
use std::collections::BTreeSet;

/// One step of a DAG workflow.
#[derive(Debug, Clone)]
pub struct DagStep {
    /// Tool to run.
    pub tool_id: String,
    /// Parameter bindings (literals or upstream outputs).
    pub params: Vec<(String, ValueSource)>,
    /// Ordering-only dependencies (step indices that must complete first).
    pub after: Vec<usize>,
}

impl DagStep {
    /// A step with no parameters and no dependencies.
    pub fn new(tool_id: impl Into<String>) -> Self {
        DagStep { tool_id: tool_id.into(), params: Vec::new(), after: Vec::new() }
    }

    /// Bind a literal parameter.
    pub fn with_param(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.push((name.into(), ValueSource::Literal(value.into())));
        self
    }

    /// Bind a parameter to `step`'s first output (adds a data edge).
    pub fn with_input_from(mut self, name: impl Into<String>, step: usize) -> Self {
        self.params.push((name.into(), ValueSource::StepOutput(step)));
        self
    }

    /// Add an ordering edge: this step waits for `step` to complete.
    pub fn after(mut self, step: usize) -> Self {
        self.after.push(step);
        self
    }
}

/// A workflow whose steps form a directed acyclic dependency graph.
#[derive(Debug, Clone)]
pub struct DagWorkflow {
    /// Display name.
    pub name: String,
    /// Steps; indices are the dependency vocabulary.
    pub steps: Vec<DagStep>,
}

impl DagWorkflow {
    /// An empty DAG workflow.
    pub fn new(name: impl Into<String>) -> Self {
        DagWorkflow { name: name.into(), steps: Vec::new() }
    }

    /// Append a step, returning `self` for chaining.
    pub fn step(mut self, step: DagStep) -> Self {
        self.steps.push(step);
        self
    }

    /// Convert a sequential [`Workflow`], keeping only its *data* edges as
    /// dependencies — steps that merely sat earlier in the list but share
    /// no data become independent and may run concurrently.
    pub fn from_workflow(wf: &Workflow) -> Self {
        DagWorkflow {
            name: wf.name.clone(),
            steps: wf
                .steps
                .iter()
                .map(|s| DagStep {
                    tool_id: s.tool_id.clone(),
                    params: s.params.clone(),
                    after: Vec::new(),
                })
                .collect(),
        }
    }

    /// All dependencies of step `i` (data + ordering edges, deduplicated).
    pub fn deps_of(&self, i: usize) -> BTreeSet<usize> {
        let mut deps = BTreeSet::new();
        if let Some(step) = self.steps.get(i) {
            for (_, source) in &step.params {
                if let ValueSource::StepOutput(from) = source {
                    deps.insert(*from);
                }
            }
            deps.extend(step.after.iter().copied());
        }
        deps
    }

    /// Steps with no dependencies (the initial dispatch frontier).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.steps.len()).filter(|i| self.deps_of(*i).is_empty()).collect()
    }

    /// Steps that depend (directly) on step `i`.
    pub fn dependents_of(&self, i: usize) -> Vec<usize> {
        (0..self.steps.len()).filter(|j| self.deps_of(*j).contains(&i)).collect()
    }

    /// Validate tools, references, and acyclicity.
    pub fn validate(&self, app: &GalaxyApp) -> Result<(), GalaxyError> {
        for (i, step) in self.steps.iter().enumerate() {
            if app.tool(&step.tool_id).is_none() {
                return Err(GalaxyError::UnknownTool(step.tool_id.clone()));
            }
            for dep in self.deps_of(i) {
                let reason = if dep == i {
                    "self_reference"
                } else if dep >= self.steps.len() {
                    "out_of_range"
                } else {
                    continue;
                };
                return Err(GalaxyError::InvalidStepReference {
                    workflow: self.name.clone(),
                    step: i,
                    reference: dep,
                    reason,
                });
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Kahn topological order, or [`GalaxyError::WorkflowCycle`] naming
    /// the steps stuck on the cycle.
    pub fn topo_order(&self) -> Result<Vec<usize>, GalaxyError> {
        let n = self.steps.len();
        let mut indegree: Vec<usize> = (0..n).map(|i| self.deps_of(i).len()).collect();
        let mut frontier: Vec<usize> = (0..n).filter(|i| indegree[*i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = frontier.pop() {
            order.push(i);
            for j in self.dependents_of(i) {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    frontier.push(j);
                }
            }
        }
        if order.len() < n {
            let stuck: Vec<String> = (0..n)
                .filter(|i| !order.contains(i))
                .map(|i| format!("step {i} ({})", self.steps[i].tool_id))
                .collect();
            return Err(GalaxyError::WorkflowCycle(format!(
                "workflow {:?}: {}",
                self.name,
                stuck.join(", ")
            )));
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DagWorkflow {
        DagWorkflow::new("diamond")
            .step(DagStep::new("prep"))
            .step(DagStep::new("left").after(0))
            .step(DagStep::new("right").after(0))
            .step(DagStep::new("join").after(1).after(2))
    }

    #[test]
    fn diamond_topology() {
        let dag = diamond();
        assert_eq!(dag.roots(), vec![0]);
        assert_eq!(dag.dependents_of(0), vec![1, 2]);
        assert_eq!(dag.deps_of(3), BTreeSet::from([1, 2]));
        let order = dag.topo_order().unwrap();
        assert_eq!(order.len(), 4);
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
    }

    #[test]
    fn data_edges_count_as_dependencies() {
        let dag = DagWorkflow::new("data")
            .step(DagStep::new("a"))
            .step(DagStep::new("b").with_input_from("x", 0));
        assert_eq!(dag.deps_of(1), BTreeSet::from([0]));
        assert_eq!(dag.roots(), vec![0]);
    }

    #[test]
    fn cycle_detected_and_named() {
        let dag = DagWorkflow::new("loopy")
            .step(DagStep::new("a").after(1))
            .step(DagStep::new("b").after(0));
        match dag.topo_order() {
            Err(GalaxyError::WorkflowCycle(m)) => {
                assert!(m.contains("step 0") && m.contains("step 1"), "{m}");
            }
            other => panic!("expected WorkflowCycle, got {other:?}"),
        }
    }

    #[test]
    fn forward_data_reference_is_legal_when_acyclic() {
        // Step 0 consumes step 1's output: fine in a DAG.
        let dag = DagWorkflow::new("fwd")
            .step(DagStep::new("a").with_input_from("x", 1))
            .step(DagStep::new("b"));
        let order = dag.topo_order().unwrap();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn from_workflow_drops_ordering_keeps_data() {
        use crate::workflow::WorkflowStep;
        let wf = Workflow::new("seq")
            .step(WorkflowStep::new("a"))
            .step(WorkflowStep::new("b"))
            .step(WorkflowStep::new("c").with_input_from("x", 0));
        let dag = DagWorkflow::from_workflow(&wf);
        // b no longer waits for a; c still depends on a's output.
        assert_eq!(dag.roots(), vec![0, 1]);
        assert_eq!(dag.deps_of(2), BTreeSet::from([0]));
    }
}
