//! Failure resubmission policy — Galaxy's `<resubmit>` semantics.
//!
//! Real Galaxy lets a destination declare `<resubmit>` children that send
//! a failed job to another destination (the canonical use: a GPU
//! destination falling back to CPU when the device errors or runs out of
//! memory). [`ResubmitPolicy`] models that: a total attempt budget plus an
//! ordered fallback destination list. Attempt 1 runs on the mapped
//! destination; attempt `n + 1` runs on `fallbacks[n - 1]` (the last
//! fallback repeats if the list is shorter than the budget).
//!
//! Destinations can carry their own policy through `job_conf` params
//! (`resubmit_destination`, `resubmit_attempts`), which overrides the
//! engine-wide default for jobs first mapped there.
//!
//! Ordering note: when an attempt fails retryably, the engine concludes
//! the attempt (`JobConclusion::FailedRetryable`, releasing any
//! hook-held resources such as GPU leases) **before** the resubmitted
//! attempt is re-prepared — so a GPU→CPU fallback never re-prepares
//! while the failed attempt still holds its devices.

use crate::job::conf::Destination;

/// Configurable retry/resubmission policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResubmitPolicy {
    /// Total attempts allowed, including the first (1 = never resubmit).
    pub max_attempts: u32,
    /// Fallback destination ids for attempts 2, 3, ...; the last entry
    /// repeats when the attempt budget exceeds the list.
    pub fallbacks: Vec<String>,
}

impl Default for ResubmitPolicy {
    fn default() -> Self {
        ResubmitPolicy::none()
    }
}

impl ResubmitPolicy {
    /// Never resubmit (a failure is final on the first attempt).
    pub fn none() -> Self {
        ResubmitPolicy { max_attempts: 1, fallbacks: Vec::new() }
    }

    /// The paper's canonical fallback: one retry on a CPU destination
    /// after a GPU failure.
    pub fn gpu_to_cpu(cpu_destination: impl Into<String>) -> Self {
        ResubmitPolicy { max_attempts: 2, fallbacks: vec![cpu_destination.into()] }
    }

    /// Destination for the attempt after `completed_attempts` failures, or
    /// `None` when the budget is exhausted or no fallback is configured.
    pub fn fallback_for(&self, completed_attempts: u32) -> Option<&str> {
        if completed_attempts >= self.max_attempts || self.fallbacks.is_empty() {
            return None;
        }
        let idx = (completed_attempts as usize - 1).min(self.fallbacks.len() - 1);
        Some(self.fallbacks[idx].as_str())
    }

    /// Parse a destination-level policy from `job_conf` params:
    /// `resubmit_destination` (comma-separated fallback ids) and optional
    /// `resubmit_attempts` (total attempts, default one per fallback + 1).
    pub fn from_destination(dest: &Destination) -> Option<Self> {
        let raw = dest.params.get("resubmit_destination")?;
        let fallbacks: Vec<String> =
            raw.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
        if fallbacks.is_empty() {
            return None;
        }
        let max_attempts = dest
            .params
            .get("resubmit_attempts")
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(fallbacks.len() as u32 + 1)
            .max(1);
        Some(ResubmitPolicy { max_attempts, fallbacks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::conf::JobConfig;

    #[test]
    fn none_never_offers_a_fallback() {
        let p = ResubmitPolicy::none();
        assert_eq!(p.fallback_for(1), None);
    }

    #[test]
    fn gpu_to_cpu_offers_exactly_one_retry() {
        let p = ResubmitPolicy::gpu_to_cpu("local_cpu");
        assert_eq!(p.fallback_for(1), Some("local_cpu"));
        assert_eq!(p.fallback_for(2), None, "budget exhausted");
    }

    #[test]
    fn last_fallback_repeats_up_to_budget() {
        let p = ResubmitPolicy {
            max_attempts: 4,
            fallbacks: vec!["docker_cpu".into(), "local_cpu".into()],
        };
        assert_eq!(p.fallback_for(1), Some("docker_cpu"));
        assert_eq!(p.fallback_for(2), Some("local_cpu"));
        assert_eq!(p.fallback_for(3), Some("local_cpu"));
        assert_eq!(p.fallback_for(4), None);
    }

    #[test]
    fn parsed_from_destination_params() {
        let conf = r#"<job_conf>
          <plugins><plugin id="local" type="runner" load="x"/></plugins>
          <destinations default="gpu">
            <destination id="gpu" runner="local">
              <param id="resubmit_destination">cpu_a, cpu_b</param>
              <param id="resubmit_attempts">3</param>
            </destination>
            <destination id="plain" runner="local"/>
          </destinations>
        </job_conf>"#;
        let config = JobConfig::from_xml(conf).unwrap();
        let p = ResubmitPolicy::from_destination(config.destination("gpu").unwrap()).unwrap();
        assert_eq!(p.max_attempts, 3);
        assert_eq!(p.fallbacks, vec!["cpu_a".to_string(), "cpu_b".to_string()]);
        assert!(ResubmitPolicy::from_destination(config.destination("plain").unwrap()).is_none());
    }
}
