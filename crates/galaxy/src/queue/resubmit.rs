//! Failure resubmission policy — Galaxy's `<resubmit>` semantics.
//!
//! Real Galaxy lets a destination declare `<resubmit>` children that send
//! a failed job to another destination (the canonical use: a GPU
//! destination falling back to CPU when the device errors or runs out of
//! memory). [`ResubmitPolicy`] models that: a total attempt budget plus an
//! ordered fallback destination list. Attempt 1 runs on the mapped
//! destination; attempt `n + 1` runs on `fallbacks[n - 1]` (the last
//! fallback repeats if the list is shorter than the budget).
//!
//! Destinations can carry their own policy through `job_conf` params
//! (`resubmit_destination`, `resubmit_attempts`), which overrides the
//! engine-wide default for jobs first mapped there.
//!
//! Ordering note: when an attempt fails retryably, the engine concludes
//! the attempt (`JobConclusion::FailedRetryable`, releasing any
//! hook-held resources such as GPU leases) **before** the resubmitted
//! attempt is re-prepared — so a GPU→CPU fallback never re-prepares
//! while the failed attempt still holds its devices.

use crate::job::conf::Destination;

/// Configurable retry/resubmission policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResubmitPolicy {
    /// Total attempts allowed, including the first (1 = never resubmit).
    pub max_attempts: u32,
    /// Fallback destination ids for attempts 2, 3, ...; the last entry
    /// repeats when the attempt budget exceeds the list.
    pub fallbacks: Vec<String>,
    /// Placement-aware retries: before walking the fallback ladder, retry
    /// up to this many times on the *same* destination with the failed
    /// node added to the job's exclusion set. Only effective when a
    /// placement advisor is registered (see
    /// [`crate::GalaxyApp::set_placement_advisor`]); node retries count
    /// against `max_attempts` but do not consume the fallback ladder.
    pub node_retries: u32,
    /// Footprint-revised retries: before walking the fallback ladder,
    /// retry up to this many times on the *same* destination with a
    /// revised GPU memory budget from the footprint advisor (see
    /// [`crate::GalaxyApp::set_footprint_advisor`]) — a job that died
    /// under a too-small learned budget gets a bigger one instead of
    /// blindly falling to CPU. Only effective when an advisor is
    /// registered; like node retries, these count against
    /// `max_attempts` but do not consume the fallback ladder.
    pub footprint_retries: u32,
}

impl Default for ResubmitPolicy {
    fn default() -> Self {
        ResubmitPolicy::none()
    }
}

impl ResubmitPolicy {
    /// Never resubmit (a failure is final on the first attempt).
    pub fn none() -> Self {
        ResubmitPolicy {
            max_attempts: 1,
            fallbacks: Vec::new(),
            node_retries: 0,
            footprint_retries: 0,
        }
    }

    /// The paper's canonical fallback: one retry on a CPU destination
    /// after a GPU failure.
    pub fn gpu_to_cpu(cpu_destination: impl Into<String>) -> Self {
        ResubmitPolicy {
            max_attempts: 2,
            fallbacks: vec![cpu_destination.into()],
            node_retries: 0,
            footprint_retries: 0,
        }
    }

    /// Allow up to `retries` same-destination resubmissions with a
    /// revised memory budget (footprint advisor) before the ladder,
    /// growing `max_attempts` to keep the existing ladder reachable.
    pub fn with_footprint_retries(mut self, retries: u32) -> Self {
        self.max_attempts += retries.saturating_sub(self.footprint_retries);
        self.footprint_retries = retries;
        self
    }

    /// TPV-style placement-aware fallback: after a fleet-GPU failure,
    /// retry up to `node_retries` times on the same destination with the
    /// failed node excluded, then fall back to `cpu_destination` —
    /// falling to CPU early when no viable node class remains.
    pub fn placement_aware(cpu_destination: impl Into<String>, node_retries: u32) -> Self {
        ResubmitPolicy {
            max_attempts: 2 + node_retries,
            fallbacks: vec![cpu_destination.into()],
            node_retries,
            footprint_retries: 0,
        }
    }

    /// Destination for the attempt after `completed_attempts` failures, or
    /// `None` when the budget is exhausted or no fallback is configured.
    pub fn fallback_for(&self, completed_attempts: u32) -> Option<&str> {
        if completed_attempts >= self.max_attempts || self.fallbacks.is_empty() {
            return None;
        }
        let idx = (completed_attempts as usize - 1).min(self.fallbacks.len() - 1);
        Some(self.fallbacks[idx].as_str())
    }

    /// Parse a destination-level policy from `job_conf` params:
    /// `resubmit_destination` (comma-separated fallback ids), optional
    /// `resubmit_node_retries` (placement-aware same-destination retries
    /// with the failed node excluded), and optional `resubmit_attempts`
    /// (total attempts; defaults to one per fallback plus one per node
    /// retry plus the initial attempt). A destination with node retries
    /// but no fallback list fails finally once its node-retry budget is
    /// spent.
    pub fn from_destination(dest: &Destination) -> Option<Self> {
        let fallbacks: Vec<String> = dest
            .params
            .get("resubmit_destination")
            .map(|raw| {
                raw.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect()
            })
            .unwrap_or_default();
        let node_retries = dest
            .params
            .get("resubmit_node_retries")
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(0);
        let footprint_retries = dest
            .params
            .get("resubmit_footprint_retries")
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(0);
        if fallbacks.is_empty() && node_retries == 0 && footprint_retries == 0 {
            return None;
        }
        let max_attempts = dest
            .params
            .get("resubmit_attempts")
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(fallbacks.len() as u32 + node_retries + footprint_retries + 1)
            .max(1);
        Some(ResubmitPolicy { max_attempts, fallbacks, node_retries, footprint_retries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::conf::JobConfig;

    #[test]
    fn none_never_offers_a_fallback() {
        let p = ResubmitPolicy::none();
        assert_eq!(p.fallback_for(1), None);
    }

    #[test]
    fn gpu_to_cpu_offers_exactly_one_retry() {
        let p = ResubmitPolicy::gpu_to_cpu("local_cpu");
        assert_eq!(p.fallback_for(1), Some("local_cpu"));
        assert_eq!(p.fallback_for(2), None, "budget exhausted");
    }

    #[test]
    fn last_fallback_repeats_up_to_budget() {
        let p = ResubmitPolicy {
            max_attempts: 4,
            fallbacks: vec!["docker_cpu".into(), "local_cpu".into()],
            node_retries: 0,
            footprint_retries: 0,
        };
        assert_eq!(p.fallback_for(1), Some("docker_cpu"));
        assert_eq!(p.fallback_for(2), Some("local_cpu"));
        assert_eq!(p.fallback_for(3), Some("local_cpu"));
        assert_eq!(p.fallback_for(4), None);
    }

    #[test]
    fn placement_aware_budgets_node_retries_before_cpu() {
        let p = ResubmitPolicy::placement_aware("local_cpu", 2);
        assert_eq!(p.max_attempts, 4, "1 initial + 2 node retries + 1 CPU");
        assert_eq!(p.node_retries, 2);
        assert_eq!(p.fallbacks, vec!["local_cpu".to_string()]);
    }

    #[test]
    fn node_retries_parsed_from_destination_params() {
        let conf = r#"<job_conf>
          <plugins><plugin id="local" type="runner" load="x"/></plugins>
          <destinations default="fleet_gpu">
            <destination id="fleet_gpu" runner="local">
              <param id="resubmit_destination">local_cpu</param>
              <param id="resubmit_node_retries">2</param>
            </destination>
            <destination id="nodes_only" runner="local">
              <param id="resubmit_node_retries">1</param>
            </destination>
          </destinations>
        </job_conf>"#;
        let config = JobConfig::from_xml(conf).unwrap();
        let p = ResubmitPolicy::from_destination(config.destination("fleet_gpu").unwrap()).unwrap();
        assert_eq!((p.max_attempts, p.node_retries), (4, 2));
        assert_eq!(p.fallbacks, vec!["local_cpu".to_string()]);
        // Node retries alone are a valid policy: no ladder, finite budget.
        let p =
            ResubmitPolicy::from_destination(config.destination("nodes_only").unwrap()).unwrap();
        assert_eq!((p.max_attempts, p.node_retries), (2, 1));
        assert!(p.fallbacks.is_empty());
        assert_eq!(p.fallback_for(1), None);
    }

    #[test]
    fn parsed_from_destination_params() {
        let conf = r#"<job_conf>
          <plugins><plugin id="local" type="runner" load="x"/></plugins>
          <destinations default="gpu">
            <destination id="gpu" runner="local">
              <param id="resubmit_destination">cpu_a, cpu_b</param>
              <param id="resubmit_attempts">3</param>
            </destination>
            <destination id="plain" runner="local"/>
          </destinations>
        </job_conf>"#;
        let config = JobConfig::from_xml(conf).unwrap();
        let p = ResubmitPolicy::from_destination(config.destination("gpu").unwrap()).unwrap();
        assert_eq!(p.max_attempts, 3);
        assert_eq!(p.fallbacks, vec!["cpu_a".to_string(), "cpu_b".to_string()]);
        assert!(ResubmitPolicy::from_destination(config.destination("plain").unwrap()).is_none());
    }
}
