//! Bounded priority queue with per-user fair-share ordering.
//!
//! Real Galaxy orders its job queue so no single user can starve the
//! cluster: handlers prefer the user who has consumed the least service.
//! [`FairShareQueue`] reproduces that policy deterministically — entries
//! are bucketed per user, and each pop selects the user with the lowest
//! accumulated usage (ties broken alphabetically), then the
//! highest-priority entry of that user (ties broken FIFO by sequence
//! number).
//!
//! Both selections are index lookups, not scans: a `ready` set ordered
//! by `(usage, user)` names the next user in O(log U), and each user's
//! bucket is ordered by `(priority desc, seq)` so its best entry is the
//! first key. That keeps `pop` at O(log n) with 10^5–10^6 users in
//! queue, where the previous all-bucket scan was O(users) *per pop* —
//! quadratic over a load-test run.
//!
//! Admission control is part of the queue: a push beyond the global
//! capacity, or beyond a per-user in-queue limit, is rejected with a
//! human-readable reason instead of blocking.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};

/// One queued entry (its priority and sequence number live in the bucket
/// key, which orders the bucket).
#[derive(Debug, Clone)]
struct Entry<T> {
    item: T,
    enqueued_at: f64,
}

/// Bucket ordering: highest priority first, then FIFO by sequence.
type BucketKey = (Reverse<u8>, u64);

/// Why the queue refused a push.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Human-readable reason (also used in audit events).
    pub reason: String,
}

/// A successful pop: the chosen item plus the bookkeeping the scheduler
/// audits (whose turn it was and why).
#[derive(Debug, Clone)]
pub struct Popped<T> {
    /// The owning user.
    pub user: String,
    /// The dequeued item.
    pub item: T,
    /// Priority the entry was queued with.
    pub priority: u8,
    /// Recorder-clock time the entry was pushed.
    pub enqueued_at: f64,
    /// The user's accumulated usage *after* charging this pop.
    pub usage: u64,
}

/// Bounded, fair-share-ordered priority queue.
#[derive(Debug)]
pub struct FairShareQueue<T> {
    capacity: usize,
    per_user_limit: Option<usize>,
    buckets: BTreeMap<String, BTreeMap<BucketKey, Entry<T>>>,
    usage: BTreeMap<String, u64>,
    /// Users with at least one queued entry, ordered by
    /// `(accumulated usage, name)` — the first element is exactly the
    /// user the old full scan's `min_by_key` would have chosen.
    ready: BTreeSet<(u64, String)>,
    seq: u64,
    len: usize,
}

impl<T> FairShareQueue<T> {
    /// An empty queue holding at most `capacity` entries, optionally
    /// capping how many entries one user may have in queue at once.
    pub fn new(capacity: usize, per_user_limit: Option<usize>) -> Self {
        FairShareQueue {
            capacity,
            per_user_limit,
            buckets: BTreeMap::new(),
            usage: BTreeMap::new(),
            ready: BTreeSet::new(),
            seq: 0,
            len: 0,
        }
    }

    /// Total queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries currently queued for `user`.
    pub fn user_depth(&self, user: &str) -> usize {
        self.buckets.get(user).map_or(0, BTreeMap::len)
    }

    /// Accumulated usage (dispatched entries) charged to `user`.
    pub fn user_usage(&self, user: &str) -> u64 {
        self.usage.get(user).copied().unwrap_or(0)
    }

    /// Admission control alone: would a push for `user` be accepted right
    /// now? Lets callers check *before* creating expensive state (a job
    /// record) for an entry that would be rejected anyway.
    pub fn check_admission(&self, user: &str) -> Result<(), Rejection> {
        if self.len >= self.capacity {
            return Err(Rejection {
                reason: format!("queue full ({} of {} entries)", self.len, self.capacity),
            });
        }
        if let Some(limit) = self.per_user_limit {
            if self.user_depth(user) >= limit {
                return Err(Rejection {
                    reason: format!("user {user:?} at per-user limit ({limit} queued)"),
                });
            }
        }
        Ok(())
    }

    /// Push with admission control: rejects when the queue is full or the
    /// user exceeds their in-queue limit.
    pub fn try_push(
        &mut self,
        user: &str,
        priority: u8,
        enqueued_at: f64,
        item: T,
    ) -> Result<(), Rejection> {
        self.check_admission(user)?;
        self.push_unchecked(user, priority, enqueued_at, item);
        Ok(())
    }

    /// Push bypassing admission control. Used for *internal* continuations
    /// (DAG steps becoming ready, resubmitted attempts): the work was
    /// already admitted at the submission boundary, so refusing it now
    /// would strand an accepted workflow.
    pub fn push_unchecked(&mut self, user: &str, priority: u8, enqueued_at: f64, item: T) {
        self.seq += 1;
        let bucket = self.buckets.entry(user.to_string()).or_default();
        let was_empty = bucket.is_empty();
        bucket.insert((Reverse(priority), self.seq), Entry { item, enqueued_at });
        let usage = *self.usage.entry(user.to_string()).or_insert(0);
        if was_empty {
            self.ready.insert((usage, user.to_string()));
        }
        self.len += 1;
    }

    /// Fair-share pop: the least-used user's best entry, charging one unit
    /// of usage to that user. Returns `None` when empty.
    pub fn pop(&mut self) -> Option<Popped<T>> {
        obs::profile_scope!("queue.fair_share.pop");
        // Least accumulated usage wins, ties alphabetical: the ready
        // set's first element, by construction of its key.
        let (ready_usage, user) = self.ready.pop_first()?;
        let bucket = self.buckets.get_mut(&user).expect("ready user has a bucket");
        let ((Reverse(priority), _seq), entry) =
            bucket.pop_first().expect("ready bucket is non-empty");
        let still_queued = !bucket.is_empty();
        self.len -= 1;
        let usage = self.usage.entry(user.clone()).or_insert(0);
        debug_assert_eq!(*usage, ready_usage, "ready-set usage key in sync");
        *usage += 1;
        let usage = *usage;
        if still_queued {
            // Re-file the user under the charged usage so the next pop
            // sees the updated fair-share position.
            self.ready.insert((usage, user.clone()));
        }
        Some(Popped { user, item: entry.item, priority, enqueued_at: entry.enqueued_at, usage })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut FairShareQueue<&'static str>) -> Vec<(String, &'static str)> {
        let mut order = Vec::new();
        while let Some(p) = q.pop() {
            order.push((p.user, p.item));
        }
        order
    }

    #[test]
    fn alternates_between_users_by_usage() {
        let mut q = FairShareQueue::new(16, None);
        for item in ["a1", "a2", "a3", "a4"] {
            q.try_push("alice", 0, 0.0, item).unwrap();
        }
        for item in ["b1", "b2"] {
            q.try_push("bob", 0, 0.0, item).unwrap();
        }
        let order: Vec<&str> = drain(&mut q).into_iter().map(|(_, i)| i).collect();
        // Fair share interleaves; FIFO would run all of alice's first.
        assert_eq!(order, vec!["a1", "b1", "a2", "b2", "a3", "a4"]);
    }

    #[test]
    fn priority_orders_within_a_user() {
        let mut q = FairShareQueue::new(16, None);
        q.try_push("u", 0, 0.0, "low").unwrap();
        q.try_push("u", 9, 0.0, "high").unwrap();
        q.try_push("u", 9, 0.0, "high-later").unwrap();
        let order: Vec<&str> = drain(&mut q).into_iter().map(|(_, i)| i).collect();
        assert_eq!(order, vec!["high", "high-later", "low"]);
    }

    #[test]
    fn capacity_rejects_with_reason() {
        let mut q = FairShareQueue::new(2, None);
        q.try_push("u", 0, 0.0, "a").unwrap();
        q.try_push("u", 0, 0.0, "b").unwrap();
        let err = q.try_push("u", 0, 0.0, "c").unwrap_err();
        assert!(err.reason.contains("queue full"), "{}", err.reason);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn per_user_limit_rejects_only_the_offender() {
        let mut q = FairShareQueue::new(16, Some(1));
        q.try_push("hog", 0, 0.0, "a").unwrap();
        let err = q.try_push("hog", 0, 0.0, "b").unwrap_err();
        assert!(err.reason.contains("per-user limit"), "{}", err.reason);
        q.try_push("other", 0, 0.0, "c").unwrap();
    }

    #[test]
    fn push_unchecked_bypasses_admission() {
        let mut q = FairShareQueue::new(1, Some(1));
        q.try_push("u", 0, 0.0, "a").unwrap();
        q.push_unchecked("u", 0, 0.0, "continuation");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn usage_persists_across_empty_buckets() {
        let mut q = FairShareQueue::new(16, None);
        q.try_push("alice", 0, 0.0, "a1").unwrap();
        assert!(q.pop().is_some());
        // Alice has usage 1; a fresh bob entry beats her next one.
        q.try_push("alice", 0, 0.0, "a2").unwrap();
        q.try_push("bob", 0, 0.0, "b1").unwrap();
        assert_eq!(q.pop().unwrap().item, "b1");
        assert_eq!(q.user_usage("alice"), 1);
        assert_eq!(q.user_usage("bob"), 1);
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q: FairShareQueue<u32> = FairShareQueue::new(4, None);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    /// The indexed pop must reproduce the original full-scan selection
    /// exactly. This replays a deterministic pseudo-random interleaving
    /// of pushes and pops against a brute-force reference.
    #[test]
    fn indexed_pop_matches_reference_scan() {
        #[derive(Clone)]
        struct RefEntry {
            user: String,
            priority: u8,
            seq: u64,
            item: u64,
        }
        // Brute-force reference: scan all entries, min by
        // (usage, user, Reverse(priority), seq).
        struct Reference {
            entries: Vec<RefEntry>,
            usage: BTreeMap<String, u64>,
        }
        impl Reference {
            fn pop(&mut self) -> Option<u64> {
                let idx = (0..self.entries.len()).min_by_key(|&i| {
                    let e = &self.entries[i];
                    (
                        self.usage.get(&e.user).copied().unwrap_or(0),
                        e.user.clone(),
                        Reverse(e.priority),
                        e.seq,
                    )
                })?;
                let e = self.entries.remove(idx);
                *self.usage.entry(e.user).or_insert(0) += 1;
                Some(e.item)
            }
        }

        let mut q: FairShareQueue<u64> = FairShareQueue::new(usize::MAX, None);
        let mut reference = Reference { entries: Vec::new(), usage: BTreeMap::new() };
        // Simple LCG so the interleaving is fixed without rand.
        let mut state: u64 = 0x2545F4914F6CDD1D;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut seq = 0u64;
        for round in 0..600 {
            let action = next() % 3;
            if action < 2 {
                let user = format!("user-{}", next() % 17);
                let priority = (next() % 4) as u8;
                seq += 1;
                q.push_unchecked(&user, priority, round as f64, seq);
                reference.entries.push(RefEntry { user, priority, seq, item: seq });
            } else {
                assert_eq!(q.pop().map(|p| p.item), reference.pop(), "round {round}");
            }
        }
        loop {
            let (got, want) = (q.pop().map(|p| p.item), reference.pop());
            assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }
}
